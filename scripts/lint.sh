#!/usr/bin/env bash
# Workspace lint gate: formatting, clippy at deny-warnings, the
# treesvd-lint source audit (with a negative fixture), the hb-tracker
# race-detector suite, and the treesvd-analyze schedule verifier run
# over every built-in ordering — including a certificate emit → check
# round-trip per ordering (see docs/ANALYSIS.md). Fails on the first
# violation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt: cargo fmt --all --check =="
cargo fmt --all --check

# One clippy pass per target set: the plain workspace plus every
# feature-gated configuration that compiles differently.
clippy_targets=(
    "--workspace --all-targets"
    "-p treesvd-comm --all-targets --features hb-tracker"
    "-p treesvd-batch --all-targets"
    # the tall-skinny QR front-end paths (matrix::qr / core::tall and the
    # bench_tall gate) get their own pass so they stay covered even if the
    # workspace set is ever narrowed
    "-p treesvd-matrix -p treesvd-core -p treesvd-bench --all-targets"
    # the auto-tuner (model, calibration, cache) and its bench_auto gate
    "-p treesvd-tune -p treesvd-bench --all-targets"
)
for target in "${clippy_targets[@]}"; do
    echo "== clippy: $target, deny warnings =="
    # shellcheck disable=SC2086 # word-splitting the target spec is intended
    cargo clippy $target -- -D warnings
done

echo "== treesvd-lint: source audit (SAFETY adjacency, forbid consistency, thread seams) =="
cargo build -q --release -p treesvd-analyze --bin treesvd-lint
TREESVD_LINT=target/release/treesvd-lint
"$TREESVD_LINT" --root .

echo "== treesvd-lint: negative fixture (uncommented unsafe must be flagged) =="
fixture=$(mktemp -d)
trap 'rm -rf "$fixture"' EXIT
mkdir -p "$fixture/crates/fixture/src"
printf 'pub fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n' \
    > "$fixture/crates/fixture/src/lib.rs"
if "$TREESVD_LINT" --root "$fixture" >/dev/null 2>&1; then
    echo "lint.sh: treesvd-lint FAILED to flag an uncommented unsafe block" >&2
    exit 1
fi

echo "== hb-tracker: vector-clock race-detector suite =="
cargo test -q -p treesvd-comm --features hb-tracker

echo "== analyzer self-check: every built-in ordering =="
cargo build -q --release -p treesvd-cli
TREESVD=target/release/treesvd
certdir=$(mktemp -d)
trap 'rm -rf "$fixture" "$certdir"' EXIT

# Each ordering at a representative size, on the topology the paper runs
# it on. The tree-structured orderings need powers of two; the rest take
# any even n. Every configuration also emits a proof certificate and
# immediately fast-checks it — the O(plan) validator must accept what
# the provers just proved.
cert_index=0
run_check() {
    cert="$certdir/ordering-$cert_index.cert"
    cert_index=$((cert_index + 1))
    echo "-- treesvd analyze $* (+ cert round-trip)"
    "$TREESVD" analyze "$@" --emit-cert "$cert" >/dev/null
    "$TREESVD" analyze "$@" --check-cert "$cert" >/dev/null
}
run_check --ordering ring          --n 32 --topology perfect
run_check --ordering round-robin   --n 32 --topology perfect
run_check --ordering fat-tree      --n 32 --topology perfect
run_check --ordering fat-tree      --n 64 --topology fat-tree
run_check --ordering new-ring      --n 32 --topology perfect
run_check --ordering modified-ring --n 32 --topology perfect
run_check --ordering llb-fat-tree  --n 32 --topology perfect
run_check --ordering hybrid        --n 64 --topology fat-tree
# the paper's §5 headline: the hybrid with groups n/4 is contention-free
# even on the skinny CM-5 tree
run_check --ordering hybrid        --n 64 --groups 16 --topology cm5

echo "lint.sh: all gates passed"
