#!/usr/bin/env bash
# Workspace lint gate: formatting, clippy at deny-warnings, and the
# treesvd-analyze schedule verifier run over every built-in ordering
# (see docs/ANALYSIS.md). Fails on the first violation.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt: cargo fmt --all --check =="
cargo fmt --all --check

echo "== clippy: workspace, all targets, deny warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== clippy: treesvd-comm with hb-tracker, deny warnings =="
cargo clippy -p treesvd-comm --all-targets --features hb-tracker -- -D warnings

echo "== clippy: treesvd-batch (SoA lane kernels + engine), deny warnings =="
cargo clippy -p treesvd-batch --all-targets -- -D warnings

echo "== analyzer self-check: every built-in ordering =="
cargo build -q --release -p treesvd-cli
TREESVD=target/release/treesvd

# Each ordering at a representative size, on the topology the paper runs
# it on. The tree-structured orderings need powers of two; the rest take
# any even n.
run_check() {
    echo "-- treesvd analyze $*"
    "$TREESVD" analyze "$@" >/dev/null
}
run_check --ordering ring          --n 32 --topology perfect
run_check --ordering round-robin   --n 32 --topology perfect
run_check --ordering fat-tree      --n 32 --topology perfect
run_check --ordering fat-tree      --n 64 --topology fat-tree
run_check --ordering new-ring      --n 32 --topology perfect
run_check --ordering modified-ring --n 32 --topology perfect
run_check --ordering llb-fat-tree  --n 32 --topology perfect
run_check --ordering hybrid        --n 64 --topology fat-tree
# the paper's §5 headline: the hybrid with groups n/4 is contention-free
# even on the skinny CM-5 tree
run_check --ordering hybrid        --n 64 --groups 16 --topology cm5

echo "lint.sh: all gates passed"
