#!/usr/bin/env bash
# Repo verification gate: tier-1 build + tests, then a quick kernel
# smoke benchmark (the fused rotate-and-measure kernel must not lose to
# the unfused rotate-then-renormalize sequence it replaced; see
# "Performance notes" in README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint gate: scripts/lint.sh =="
scripts/lint.sh

echo "== tier-1: cargo build --release =="
cargo build --release --workspace

echo "== tier-1: cargo test -q =="
cargo test -q --workspace

echo "== bench smoke: fused vs unfused rotation (512x64) =="
cargo run --release -p treesvd-bench --bin bench_kernels -- --smoke

echo "== bench smoke: Gram vs pairwise blocked meeting (512x128, c=16) =="
cargo run --release -p treesvd-bench --bin bench_blocked -- --smoke

echo "== bench smoke: zero-copy overlapped vs legacy distributed executor (4096x16) =="
cargo run --release -p treesvd-bench --bin bench_distributed -- --smoke

echo "== bench smoke: batched SoA engine vs per-problem sequential loop (8x8 x 100k) =="
cargo run --release -p treesvd-bench --bin bench_batched -- --smoke

echo "== bench smoke: tall-skinny QR front-end vs direct Jacobi (8192x64, m/n=128) =="
cargo run --release -p treesvd-bench --bin bench_tall -- --smoke

echo "== bench smoke: auto-tuner vs fixed configs + warm-path zero-alloc gate =="
# auto within 5% of the best fixed config at each probe point, strictly
# beating the untuned default somewhere (incl. the small-P distributed
# point with overlap correctly disabled), and the second plan_for on a
# cached key makes zero heap allocations and re-runs no probe
cargo run --release -p treesvd-bench --bin bench_auto -- --smoke

echo "== certificate smoke: warm driver run must skip the provers, bitwise-identical =="
# the cold run proves and emits a certificate; the warm run validates it
# instead of re-proving (hit/miss counters assert the skip) and must
# reproduce sigma/U/V bitwise (see docs/ANALYSIS.md, "Certificates and
# the fast checker")
cargo test -q --release -p treesvd-core --lib -- --exact \
    driver::distributed_tests::warm_certificate_run_skips_prover_and_is_bitwise_identical

echo "== chaos soak: seeded fault plans must recover bitwise (96x16, P=8) =="
# fixed seeds, bounded wall time; also gates zero steady-state payload
# allocations with an armed-but-inert plan (see DESIGN.md §12)
cargo run --release -p treesvd-bench --bin chaos_soak

echo "verify.sh: all gates passed"
