//! Cross-crate ordering invariants, including property-based tests with
//! proptest over sizes and group shapes.

use proptest::prelude::*;
use treesvd_analyze::{assert_valid_sweep, check_restores_after, verify_coverage};
use treesvd_orderings::validate::{all_moves_even, is_one_directional, max_link_load, move_counts};
use treesvd_orderings::{
    FatTreeOrdering, HybridOrdering, JacobiOrdering, LlbFatTreeOrdering, ModifiedRingOrdering,
    NewRingOrdering, OrderingKind, RingOrdering, RoundRobinOrdering,
};

#[test]
fn every_kind_builds_and_validates_at_n16() {
    for kind in OrderingKind::ALL {
        let ord = kind.build(16).expect("n = 16 valid for all orderings");
        assert_valid_sweep(ord.as_ref());
        check_restores_after(ord.as_ref(), ord.restore_period());
        assert_eq!(ord.n(), 16);
        assert!(!ord.name().is_empty());
    }
}

#[test]
fn sweep_lengths_are_n_minus_1() {
    for kind in OrderingKind::ALL {
        let ord = kind.build(32).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        assert_eq!(prog.steps.len(), 31, "{kind}");
        assert!(verify_coverage(&prog).is_ok(), "{kind}");
    }
}

#[test]
fn restore_periods_match_claims() {
    // fat-tree & the Fig.1 baselines restore every sweep; the rings and LLB
    // restore after two
    assert_eq!(FatTreeOrdering::new(16).unwrap().restore_period(), 1);
    assert_eq!(RoundRobinOrdering::new(16).unwrap().restore_period(), 1);
    assert_eq!(RingOrdering::new(16).unwrap().restore_period(), 1);
    assert_eq!(NewRingOrdering::new(16).unwrap().restore_period(), 2);
    assert_eq!(ModifiedRingOrdering::new(16).unwrap().restore_period(), 2);
    assert_eq!(LlbFatTreeOrdering::new(16).unwrap().restore_period(), 2);
    assert_eq!(HybridOrdering::new(16, 4).unwrap().restore_period(), 2);
}

#[test]
fn hybrid_explicit_shapes_valid_and_periodic() {
    // the shapes the unit suite used to spot-check, including non-power-of-
    // two n with power-of-two group sizes
    for (n, m) in [(8, 2), (16, 2), (16, 4), (32, 4), (32, 8), (24, 6), (24, 3), (12, 3), (64, 8)] {
        let ord = HybridOrdering::new(n, m).unwrap();
        assert_valid_sweep(&ord);
        check_restores_after(&ord, 2);
    }
}

#[test]
fn block_ring_variant_valid_and_periodic() {
    use treesvd_orderings::IntraGroupOrdering;
    for (n, m) in [(8, 2), (16, 4), (32, 4), (24, 3)] {
        let ord = HybridOrdering::with_intra(n, m, IntraGroupOrdering::RoundRobin).unwrap();
        assert_valid_sweep(&ord);
        check_restores_after(&ord, 2);
    }
}

#[test]
fn new_ring_even_shift_property_feeds_hybrid() {
    // §5's argument requires every index to shift an even number of times
    // per new-ring sweep, with index 1 never moving
    for n in [8usize, 12, 20, 32] {
        let ord = NewRingOrdering::new(n).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        assert!(all_moves_even(&prog), "n = {n}");
        assert_eq!(move_counts(&prog)[0], 0, "n = {n}");
        assert!(is_one_directional(&prog), "n = {n}");
        assert_eq!(max_link_load(&prog), 1, "n = {n}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_orderings_valid_for_any_even_n(k in 2usize..33) {
        let n = 2 * k;
        for ord in [
            Box::new(RingOrdering::new(n).unwrap()) as Box<dyn JacobiOrdering>,
            Box::new(RoundRobinOrdering::new(n).unwrap()),
            Box::new(NewRingOrdering::new(n).unwrap()),
            Box::new(ModifiedRingOrdering::new(n).unwrap()),
        ] {
            assert_valid_sweep(ord.as_ref());
            check_restores_after(ord.as_ref(), ord.restore_period());
        }
    }

    #[test]
    fn tree_orderings_valid_for_powers_of_two(e in 2u32..8) {
        let n = 1usize << e;
        for ord in [
            Box::new(FatTreeOrdering::new(n).unwrap()) as Box<dyn JacobiOrdering>,
            Box::new(LlbFatTreeOrdering::new(n).unwrap()),
        ] {
            assert_valid_sweep(ord.as_ref());
            check_restores_after(ord.as_ref(), ord.restore_period());
        }
    }

    #[test]
    fn hybrid_valid_for_all_legal_group_shapes(m in 2usize..9, we in 2u32..5) {
        let w = 1usize << we; // group size 4..16
        let n = m * w;
        let ord = HybridOrdering::new(n, m).unwrap();
        assert_valid_sweep(&ord);
        check_restores_after(&ord, 2);
        // step count is always n-1
        let prog = ord.sweep_program(0, &ord.initial_layout());
        prop_assert_eq!(prog.steps.len(), n - 1);
    }

    #[test]
    fn fat_tree_left_index_smaller_everywhere(e in 2u32..8) {
        let n = 1usize << e;
        let ord = FatTreeOrdering::new(n).unwrap();
        for step in ord.sweep_program(0, &ord.initial_layout()).step_pairs() {
            for (l, r) in step {
                prop_assert!(l < r);
            }
        }
    }

    #[test]
    fn new_ring_period_two_reversal(k in 2usize..25) {
        let n = 2 * k;
        let ord = NewRingOrdering::new(n).unwrap();
        let progs = ord.programs(2);
        let mut want: Vec<usize> = vec![0, 1];
        want.extend((2..n).rev());
        prop_assert_eq!(progs[0].final_layout(), want);
        prop_assert_eq!(progs[1].final_layout(), ord.initial_layout());
    }

    #[test]
    fn total_messages_bounded_by_steps_times_n(k in 2usize..17) {
        // every step moves at most n columns between processors
        let n = 2 * k;
        for kind in [OrderingKind::Ring, OrderingKind::RoundRobin, OrderingKind::NewRing] {
            let ord = kind.build(n).unwrap();
            let prog = ord.sweep_program(0, &ord.initial_layout());
            prop_assert!(prog.total_messages() <= (n - 1) * n);
        }
    }
}

#[test]
fn equivalence_search_is_symmetric() {
    use treesvd_orderings::equivalence::{are_equivalent, find_relabelling};
    let nr = NewRingOrdering::new(8).unwrap();
    let rr = RoundRobinOrdering::new(8).unwrap();
    let pn = nr.sweep_program(0, &nr.initial_layout());
    let pr = rr.sweep_program(0, &rr.initial_layout());
    assert!(are_equivalent(&pn, &pr));
    assert!(are_equivalent(&pr, &pn));
    let fwd = find_relabelling(&pn, &pr).unwrap();
    let bwd = find_relabelling(&pr, &pn).unwrap();
    // bwd need not be fwd's inverse (relabellings are not unique), but both
    // must verify
    assert!(treesvd_orderings::equivalence::verify_relabelling(&pn, &pr, &fwd));
    assert!(treesvd_orderings::equivalence::verify_relabelling(&pr, &pn, &bwd));
}

#[test]
fn modified_ring_equivalent_to_round_robin_too() {
    use treesvd_orderings::equivalence::are_equivalent;
    for n in [4usize, 6, 8] {
        let mr = ModifiedRingOrdering::new(n).unwrap();
        let rr = RoundRobinOrdering::new(n).unwrap();
        let pm = mr.sweep_program(0, &mr.initial_layout());
        let pr = rr.sweep_program(0, &rr.initial_layout());
        assert!(are_equivalent(&pm, &pr), "n = {n}");
    }
}

#[test]
fn llb_pair_sequences_forward_equals_reverse_backward() {
    let ord = LlbFatTreeOrdering::new(16).unwrap();
    let progs = ord.programs(2);
    let fwd = progs[0].step_pair_sets();
    let bwd = progs[1].step_pair_sets();
    for (i, step) in bwd.iter().enumerate() {
        assert_eq!(&fwd[fwd.len() - 1 - i], step, "backward step {i}");
    }
}
