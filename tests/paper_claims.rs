//! Claim-level integration tests: each of the paper's qualitative claims
//! (C1–C7 in DESIGN.md) asserted end-to-end.

use treesvd_bench::experiments;
use treesvd_core::{HestenesSvd, OrderingKind, SvdOptions, TopologyKind};
use treesvd_matrix::{checks, generate};
use treesvd_orderings::{HybridOrdering, JacobiOrdering};
use treesvd_sim::{analyze_program, Machine};

fn comm_report(
    ord: &dyn JacobiOrdering,
    kind: TopologyKind,
    words: u64,
) -> treesvd_sim::CommReport {
    let machine = Machine::with_kind(kind, ord.n() / 2);
    let prog = ord.sweep_program(0, &ord.initial_layout());
    analyze_program(&machine, &prog, words)
}

/// C1 (§3): on a perfect fat-tree the fat-tree ordering needs *far* fewer
/// global communications and less total comm time than the Fig. 1
/// orderings.
#[test]
fn c1_fat_tree_ordering_wins_on_perfect_fat_tree() {
    let n = 128;
    let ft = comm_report(
        OrderingKind::FatTree.build(n).unwrap().as_ref(),
        TopologyKind::PerfectFatTree,
        256,
    );
    let rr = comm_report(
        OrderingKind::RoundRobin.build(n).unwrap().as_ref(),
        TopologyKind::PerfectFatTree,
        256,
    );
    let ring = comm_report(
        OrderingKind::Ring.build(n).unwrap().as_ref(),
        TopologyKind::PerfectFatTree,
        256,
    );
    // global steps: O(log n) for fat-tree vs every step for Fig. 1
    assert!(ft.global_steps <= 8, "{}", ft.global_steps);
    assert_eq!(rr.global_steps, n - 1);
    assert_eq!(ring.global_steps, n - 1);
    assert!(ft.comm_time < rr.comm_time);
    assert!(ft.comm_time < ring.comm_time);
}

/// C2 (§3): the fat-tree ordering restores the index order each sweep; the
/// LLB baseline does not (and needs the forward/backward alternation).
#[test]
fn c2_order_restoration_difference() {
    for e in [3u32, 4, 5, 6] {
        let n = 1usize << e;
        let ft = OrderingKind::FatTree.build(n).unwrap();
        let prog = ft.sweep_program(0, &ft.initial_layout());
        assert_eq!(prog.final_layout(), ft.initial_layout(), "fat-tree n = {n}");

        let llb = OrderingKind::Llb.build(n).unwrap();
        let prog = llb.sweep_program(0, &llb.initial_layout());
        assert_ne!(prog.final_layout(), llb.initial_layout(), "llb n = {n}");
    }
}

/// C3 (§4): the new ring ordering is equivalent to round-robin, hence the
/// same convergence behaviour. Pair order *within* a sweep still differs,
/// so sweep counts on random inputs track each other only loosely (±2
/// empirically); the structural equivalence itself is asserted exactly in
/// `treesvd-orderings`' equivalence tests. Both must agree on the spectrum.
#[test]
fn c3_new_ring_convergence_matches_round_robin() {
    for seed in [1u64, 2, 3, 4] {
        let a = generate::random_uniform(32, 16, seed);
        let nr = HestenesSvd::with_ordering(OrderingKind::NewRing).compute(&a).unwrap();
        let rr = HestenesSvd::with_ordering(OrderingKind::RoundRobin).compute(&a).unwrap();
        let diff = (nr.sweeps as i64 - rr.sweeps as i64).abs();
        assert!(diff <= 2, "seed {seed}: {} vs {}", nr.sweeps, rr.sweeps);
        assert!(
            checks::spectrum_distance(&nr.svd.sigma, &rr.svd.sigma) < 1e-10,
            "seed {seed}: spectra disagree"
        );
    }
}

/// C4 (§3.2.1/§4): singular values emerge nonincreasing for every
/// ordering under the larger-norm-to-smaller-label rule.
#[test]
fn c4_sorted_singular_values() {
    for kind in OrderingKind::ALL {
        for seed in [5u64, 6] {
            let a = generate::random_uniform(24, 12, seed);
            let run = HestenesSvd::with_ordering(kind).compute(&a).unwrap();
            assert!(
                checks::is_nonincreasing(&run.svd.sigma),
                "{kind} seed {seed}: {:?}",
                run.svd.sigma
            );
        }
    }
}

/// C5 (§5): on the CM-5-like skinny tree the hybrid ordering (with the
/// proper block size) is contention-free while the fat-tree ordering is
/// not; the hybrid also uses far fewer global steps than the rings.
#[test]
fn c5_hybrid_contention_freedom() {
    let n = 128;
    let hy = HybridOrdering::new(n, n / 4).unwrap();
    let hy_rep = comm_report(&hy, TopologyKind::Cm5, 256);
    assert!(hy_rep.max_contention <= 1.0, "hybrid contends: {}", hy_rep.max_contention);

    let ft_rep =
        comm_report(OrderingKind::FatTree.build(n).unwrap().as_ref(), TopologyKind::Cm5, 256);
    assert!(ft_rep.max_contention > 1.0, "fat-tree should contend on cm5");

    let nr_rep =
        comm_report(OrderingKind::NewRing.build(n).unwrap().as_ref(), TopologyKind::Cm5, 256);
    // the hybrid reduces the number of global communications relative to
    // the rings (paper §6)
    assert!(hy_rep.global_steps < nr_rep.global_steps);
}

/// C6 (§1): ultimately quadratic convergence — each late sweep roughly
/// squares the maximum coupling.
#[test]
fn c6_quadratic_convergence_tail() {
    let a = generate::random_uniform(48, 24, 9);
    let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
    let h = run.coupling_history();
    assert!(h.len() >= 4, "{h:?}");
    // find the first sweep with coupling < 1e-2 and check the next sweep
    // is at least quadratically smaller (with a generous constant)
    let idx = h.iter().position(|&c| c < 1e-2).expect("reaches small coupling");
    if idx + 1 < h.len() && h[idx + 1] > 0.0 {
        assert!(
            h[idx + 1] <= 100.0 * h[idx] * h[idx],
            "not quadratic: {} -> {}",
            h[idx],
            h[idx + 1]
        );
    }
}

/// C7 (§6): simulated sweep times — the hybrid beats the fat-tree ordering
/// on the CM-5-like tree; the fat-tree ordering wins on the perfect
/// fat-tree once the full bandwidth is there.
#[test]
fn c7_who_wins_where() {
    let n = 128;
    let words = 1024; // long columns: serialization dominates latency
    let hy = HybridOrdering::new(n, n / 4).unwrap();
    let ft = OrderingKind::FatTree.build(n).unwrap();

    let hy_cm5 = comm_report(&hy, TopologyKind::Cm5, words);
    let ft_cm5 = comm_report(ft.as_ref(), TopologyKind::Cm5, words);
    assert!(
        hy_cm5.comm_time < ft_cm5.comm_time,
        "cm5: hybrid {} vs fat-tree {}",
        hy_cm5.comm_time,
        ft_cm5.comm_time
    );

    let ft_fat = comm_report(ft.as_ref(), TopologyKind::PerfectFatTree, words);
    let rr_fat = comm_report(
        OrderingKind::RoundRobin.build(n).unwrap().as_ref(),
        TopologyKind::PerfectFatTree,
        words,
    );
    assert!(ft_fat.comm_time < rr_fat.comm_time);
}

/// The experiment harness itself produces complete tables (smoke-level
/// integration of the `experiments` binary's internals).
#[test]
fn experiment_tables_complete() {
    let t = experiments::e1_comm_cost(32, 32);
    assert_eq!(t.len(), 6);
    let t = experiments::e2_contention(32, 32);
    assert_eq!(t.len(), 6);
    let (t, narrative) = experiments::e4_equivalence(8);
    assert!(narrative.contains("found"));
    assert!(t.len() == 5);
    let t = experiments::e7_scalability(&[16, 32], 64);
    assert_eq!(t.len(), 6); // 2 sizes x 3 topologies
}
