//! Integration across the execution paths and application layer: the
//! simulated machine, the distributed message-passing machine, and the
//! blocked undersized-machine driver must all agree — and the apps built
//! on top must be internally consistent whichever path produced the SVD.

use std::time::Duration;
use treesvd_apps::{lstsq, pca, pseudoinverse, ridge, symmetric_eigen};
use treesvd_core::{
    blocked_svd, BlockedOptions, FaultPlan, FaultPolicy, HestenesSvd, OrderingKind, SvdError,
    SvdOptions,
};
use treesvd_matrix::{checks, generate, Matrix};

/// Run `f` on its own thread and fail loudly if it does not finish in
/// `limit` — the recovery layer's contract is "bitwise or a clean error,
/// never a hang", and only a watchdog can observe the third outcome.
fn with_watchdog<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(limit).expect("distributed run hung past the watchdog")
}

#[test]
fn three_execution_paths_agree() {
    let a = generate::with_singular_values(24, &[9.0, 7.0, 5.0, 3.0, 2.0, 1.0, 0.5, 0.25], 50);
    let solver = HestenesSvd::new(SvdOptions::default());
    let sim = solver.compute(&a).unwrap();
    let dist = solver.compute_distributed(&a).unwrap();
    let blocked = blocked_svd(&a, &BlockedOptions::for_processors(2)).unwrap();

    // simulated and distributed are bitwise identical
    assert_eq!(sim.svd.sigma, dist.svd.sigma);
    // blocked agrees to rounding
    assert!(checks::spectrum_distance(&blocked.svd.sigma, &sim.svd.sigma) < 1e-9);
    for run in [&sim.svd, &dist.svd, &blocked.svd] {
        assert!(run.residual(&a) < 1e-10);
        assert!(run.orthogonality() < 1e-10);
    }
}

#[test]
fn distributed_path_for_every_ordering_kind() {
    let a = generate::random_uniform(20, 16, 51);
    let reference = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
    for kind in OrderingKind::ALL {
        let run = HestenesSvd::with_ordering(kind).compute_distributed(&a).unwrap();
        assert!(checks::spectrum_distance(&run.svd.sigma, &reference.svd.sigma) < 1e-9, "{kind}");
    }
}

#[test]
fn cached_norms_driver_agrees_with_reference() {
    let a = generate::graded(32, 16, 1e-5, 52);
    let reference = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
    let fast = HestenesSvd::new(SvdOptions::default().with_cached_norms(true)).compute(&a).unwrap();
    assert!(checks::spectrum_distance(&fast.svd.sigma, &reference.svd.sigma) < 1e-9);
    assert!(fast.svd.residual(&a) < 1e-10);
    assert!(fast.svd.orthogonality() < 1e-10);
}

#[test]
fn chaos_recovery_is_bitwise_across_orderings_and_world_sizes() {
    // random (seeded) fault plans × three orderings × P ∈ {2, 4, 8}: every
    // absorbable plan must reproduce the fault-free run bitwise
    let mut total_injected = 0u64;
    for kind in [OrderingKind::NewRing, OrderingKind::FatTree, OrderingKind::Hybrid] {
        for (n, seed) in [(4usize, 101u64), (8, 102), (16, 103)] {
            if kind == OrderingKind::Hybrid && n < 8 {
                continue; // the hybrid ordering needs at least two groups of 4
            }
            let a = generate::random_uniform(24, n, seed);
            let clean = HestenesSvd::with_ordering(kind).compute_distributed(&a).unwrap();
            let opts = SvdOptions::default()
                .with_ordering(kind)
                .with_chaos(seed ^ (n as u64) << 32)
                .with_recv_timeout(Duration::from_millis(10));
            let chaotic = with_watchdog(Duration::from_secs(120), move || {
                HestenesSvd::new(opts).compute_distributed(&a)
            })
            .unwrap();
            assert_eq!(clean.svd.sigma, chaotic.svd.sigma, "{kind} n={n}");
            assert_eq!(clean.svd.u, chaotic.svd.u, "{kind} n={n}");
            assert_eq!(clean.svd.v, chaotic.svd.v, "{kind} n={n}");
            let health = chaotic.health.expect("distributed runs report health");
            total_injected += health.faults.injected();
        }
    }
    assert!(total_injected > 0, "nine chaos plans injected nothing — the suite is vacuous");
}

#[test]
fn unabsorbable_fault_fails_fast_with_a_clean_error_not_a_hang() {
    // both directions of the rank 0 ↔ 1 link are poisoned and the ladder
    // is disabled: no retry budget can absorb that, so the run must
    // surface `SvdError::Unrecoverable` well inside the watchdog window
    let a = generate::random_uniform(16, 8, 104);
    let plan = FaultPlan::default().with_poisoned_link(0, 1).with_poisoned_link(1, 0);
    let policy = FaultPolicy {
        recv_timeout: Duration::from_millis(5),
        max_retries: 1,
        degrade: false,
        ..FaultPolicy::chaos()
    };
    let mut opts = SvdOptions::default().with_fault_policy(policy);
    opts.chaos = Some(plan);
    let err = with_watchdog(Duration::from_secs(60), move || {
        HestenesSvd::new(opts).compute_distributed(&a)
    })
    .expect_err("a fully poisoned link with no fallback cannot succeed");
    assert!(matches!(err, SvdError::Unrecoverable(_)), "{err:?}");
    let msg = err.to_string();
    for needle in ["unrecoverable", "rank", "sweep"] {
        assert!(msg.contains(needle), "diagnostic {msg:?} misses {needle:?}");
    }
}

#[test]
fn degradation_ladder_rescues_the_same_unabsorbable_fault() {
    // the identical poisoned-link plan, but with the ladder armed: the
    // supervisor must walk down to a rung that avoids the dead link (the
    // sequential fallback at worst) and still match the oracle bitwise
    let a = generate::random_uniform(16, 8, 104);
    let clean = HestenesSvd::new(SvdOptions::default()).compute_distributed(&a).unwrap();
    let plan = FaultPlan::default().with_poisoned_link(0, 1).with_poisoned_link(1, 0);
    let policy = FaultPolicy {
        recv_timeout: Duration::from_millis(5),
        max_retries: 1,
        max_restarts: 0,
        ..FaultPolicy::chaos()
    };
    let mut opts = SvdOptions::default().with_fault_policy(policy);
    opts.chaos = Some(plan);
    let rescued = with_watchdog(Duration::from_secs(120), move || {
        HestenesSvd::new(opts).compute_distributed(&a)
    })
    .unwrap();
    assert_eq!(clean.svd.sigma, rescued.svd.sigma);
    assert_eq!(clean.svd.u, rescued.svd.u);
    assert_eq!(clean.svd.v, rescued.svd.v);
    let health = rescued.health.expect("distributed runs report health");
    assert!(health.degraded(), "the ladder must have been used");
    assert!(!health.fallbacks.is_empty(), "at least one rung must have been abandoned");
}

#[test]
fn lstsq_normal_equations_consistency() {
    // the least-squares solution must satisfy Aᵀ(Ax − b) = 0
    let a = generate::random_uniform(20, 6, 53);
    let b: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
    let sol = lstsq(&a, &b, None).unwrap();
    let mut residual = b.clone();
    for (j, &xj) in sol.x.iter().enumerate() {
        treesvd_matrix::ops::axpy(-xj, a.col(j), &mut residual);
    }
    for j in 0..6 {
        let g = treesvd_matrix::ops::dot(a.col(j), &residual);
        assert!(g.abs() < 1e-9, "gradient component {j} = {g}");
    }
}

#[test]
fn ridge_interpolates_between_lstsq_and_zero() {
    let a = generate::with_singular_values(16, &[5.0, 1.0, 0.2], 54);
    let b: Vec<f64> = (0..16).map(|i| 1.0 / (i + 1) as f64).collect();
    let x_small = ridge(&a, &b, 1e-9).unwrap();
    let plain = lstsq(&a, &b, None).unwrap();
    for (x, y) in x_small.iter().zip(plain.x.iter()) {
        assert!((x - y).abs() < 1e-6);
    }
    let x_huge = ridge(&a, &b, 1e6).unwrap();
    assert!(treesvd_matrix::ops::norm2(&x_huge) < 1e-9);
}

#[test]
fn pinv_solves_like_lstsq() {
    let a = generate::random_uniform(14, 5, 55);
    let b: Vec<f64> = (0..14).map(|i| (i % 3) as f64).collect();
    let sol = lstsq(&a, &b, None).unwrap();
    let p = pseudoinverse(&a, None).unwrap();
    let mut x2 = vec![0.0; 5];
    for (j, &bj) in b.iter().enumerate() {
        treesvd_matrix::ops::axpy(bj, p.col(j), &mut x2);
    }
    for (x, y) in sol.x.iter().zip(x2.iter()) {
        assert!((x - y).abs() < 1e-9);
    }
}

#[test]
fn eigen_of_gram_matrix_matches_singular_values() {
    // eig(AᵀA) = σ² — ties the eigensolver to the SVD it is built on
    let sigma = [3.0, 2.0, 1.0];
    let a = generate::with_singular_values(10, &sigma, 56);
    let gram = a.transpose().matmul(&a).unwrap();
    // symmetrize exactly against rounding
    let n = gram.cols();
    let sym = Matrix::from_fn(n, n, |i, j| 0.5 * (gram.get(i, j) + gram.get(j, i))).unwrap();
    let eig = symmetric_eigen(&sym).unwrap();
    for (l, s) in eig.lambda.iter().zip(sigma.iter()) {
        assert!((l - s * s).abs() < 1e-9, "{l} vs {}", s * s);
    }
}

#[test]
fn pca_on_svd_consistent_variance() {
    // total PCA variance equals the per-feature variance sum
    let data = generate::random_uniform(40, 6, 57);
    let model = pca(&data).unwrap();
    let m = data.rows();
    let mut total_var = 0.0;
    for j in 0..6 {
        let col = data.col(j);
        let mean: f64 = col.iter().sum::<f64>() / m as f64;
        total_var += col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (m - 1) as f64;
    }
    let pca_total: f64 = model.explained_variance.iter().sum();
    assert!((total_var - pca_total).abs() < 1e-9 * total_var);
}
