//! Integration across the execution paths and application layer: the
//! simulated machine, the distributed message-passing machine, and the
//! blocked undersized-machine driver must all agree — and the apps built
//! on top must be internally consistent whichever path produced the SVD.

use treesvd_apps::{lstsq, pca, pseudoinverse, ridge, symmetric_eigen};
use treesvd_core::{blocked_svd, BlockedOptions, HestenesSvd, OrderingKind, SvdOptions};
use treesvd_matrix::{checks, generate, Matrix};

#[test]
fn three_execution_paths_agree() {
    let a = generate::with_singular_values(24, &[9.0, 7.0, 5.0, 3.0, 2.0, 1.0, 0.5, 0.25], 50);
    let solver = HestenesSvd::new(SvdOptions::default());
    let sim = solver.compute(&a).unwrap();
    let dist = solver.compute_distributed(&a).unwrap();
    let blocked = blocked_svd(&a, &BlockedOptions::for_processors(2)).unwrap();

    // simulated and distributed are bitwise identical
    assert_eq!(sim.svd.sigma, dist.svd.sigma);
    // blocked agrees to rounding
    assert!(checks::spectrum_distance(&blocked.svd.sigma, &sim.svd.sigma) < 1e-9);
    for run in [&sim.svd, &dist.svd, &blocked.svd] {
        assert!(run.residual(&a) < 1e-10);
        assert!(run.orthogonality() < 1e-10);
    }
}

#[test]
fn distributed_path_for_every_ordering_kind() {
    let a = generate::random_uniform(20, 16, 51);
    let reference = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
    for kind in OrderingKind::ALL {
        let run = HestenesSvd::with_ordering(kind).compute_distributed(&a).unwrap();
        assert!(checks::spectrum_distance(&run.svd.sigma, &reference.svd.sigma) < 1e-9, "{kind}");
    }
}

#[test]
fn cached_norms_driver_agrees_with_reference() {
    let a = generate::graded(32, 16, 1e-5, 52);
    let reference = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
    let fast = HestenesSvd::new(SvdOptions::default().with_cached_norms(true)).compute(&a).unwrap();
    assert!(checks::spectrum_distance(&fast.svd.sigma, &reference.svd.sigma) < 1e-9);
    assert!(fast.svd.residual(&a) < 1e-10);
    assert!(fast.svd.orthogonality() < 1e-10);
}

#[test]
fn lstsq_normal_equations_consistency() {
    // the least-squares solution must satisfy Aᵀ(Ax − b) = 0
    let a = generate::random_uniform(20, 6, 53);
    let b: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
    let sol = lstsq(&a, &b, None).unwrap();
    let mut residual = b.clone();
    for (j, &xj) in sol.x.iter().enumerate() {
        treesvd_matrix::ops::axpy(-xj, a.col(j), &mut residual);
    }
    for j in 0..6 {
        let g = treesvd_matrix::ops::dot(a.col(j), &residual);
        assert!(g.abs() < 1e-9, "gradient component {j} = {g}");
    }
}

#[test]
fn ridge_interpolates_between_lstsq_and_zero() {
    let a = generate::with_singular_values(16, &[5.0, 1.0, 0.2], 54);
    let b: Vec<f64> = (0..16).map(|i| 1.0 / (i + 1) as f64).collect();
    let x_small = ridge(&a, &b, 1e-9).unwrap();
    let plain = lstsq(&a, &b, None).unwrap();
    for (x, y) in x_small.iter().zip(plain.x.iter()) {
        assert!((x - y).abs() < 1e-6);
    }
    let x_huge = ridge(&a, &b, 1e6).unwrap();
    assert!(treesvd_matrix::ops::norm2(&x_huge) < 1e-9);
}

#[test]
fn pinv_solves_like_lstsq() {
    let a = generate::random_uniform(14, 5, 55);
    let b: Vec<f64> = (0..14).map(|i| (i % 3) as f64).collect();
    let sol = lstsq(&a, &b, None).unwrap();
    let p = pseudoinverse(&a, None).unwrap();
    let mut x2 = vec![0.0; 5];
    for (j, &bj) in b.iter().enumerate() {
        treesvd_matrix::ops::axpy(bj, p.col(j), &mut x2);
    }
    for (x, y) in sol.x.iter().zip(x2.iter()) {
        assert!((x - y).abs() < 1e-9);
    }
}

#[test]
fn eigen_of_gram_matrix_matches_singular_values() {
    // eig(AᵀA) = σ² — ties the eigensolver to the SVD it is built on
    let sigma = [3.0, 2.0, 1.0];
    let a = generate::with_singular_values(10, &sigma, 56);
    let gram = a.transpose().matmul(&a).unwrap();
    // symmetrize exactly against rounding
    let n = gram.cols();
    let sym = Matrix::from_fn(n, n, |i, j| 0.5 * (gram.get(i, j) + gram.get(j, i))).unwrap();
    let eig = symmetric_eigen(&sym).unwrap();
    for (l, s) in eig.lambda.iter().zip(sigma.iter()) {
        assert!((l - s * s).abs() < 1e-9, "{l} vs {}", s * s);
    }
}

#[test]
fn pca_on_svd_consistent_variance() {
    // total PCA variance equals the per-feature variance sum
    let data = generate::random_uniform(40, 6, 57);
    let model = pca(&data).unwrap();
    let m = data.rows();
    let mut total_var = 0.0;
    for j in 0..6 {
        let col = data.col(j);
        let mean: f64 = col.iter().sum::<f64>() / m as f64;
        total_var += col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (m - 1) as f64;
    }
    let pca_total: f64 = model.explained_variance.iter().sum();
    assert!((total_var - pca_total).abs() < 1e-9 * total_var);
}
