//! Integration tests of the simulated machine: numerics are
//! schedule-faithful, costs are topology-faithful, and the two never
//! interfere.

use treesvd_matrix::generate;
use treesvd_net::{CostModel, Topology, TopologyKind};
use treesvd_orderings::OrderingKind;
use treesvd_sim::{analyze_program, execute_program, ColumnStore, ExecConfig, Machine, SortMode};

fn machine(kind: TopologyKind, n: usize) -> Machine {
    Machine::new(Topology::new(kind, (n / 2).next_power_of_two()), CostModel::default())
}

#[test]
fn executed_stats_match_dry_run_analysis() {
    // the data-free analyzer and the real executor must agree on the
    // communication accounting
    let n = 16;
    let m_rows = 8;
    let ord = OrderingKind::FatTree.build(n).unwrap();
    let prog = ord.sweep_program(0, &ord.initial_layout());
    let mac = machine(TopologyKind::PerfectFatTree, n);

    let a = generate::random_uniform(m_rows, n, 1);
    let mut store = ColumnStore::from_columns(a.into_columns(), false);
    let stats = execute_program(&mac, &prog, &mut store, &ExecConfig::default());
    let rep = analyze_program(&mac, &prog, m_rows as u64);

    assert_eq!(stats.phases.len(), rep.phases.len());
    for (s, r) in stats.phases.iter().zip(rep.phases.iter()) {
        assert_eq!(s.max_level, r.max_level);
        assert!((s.time - r.time).abs() < 1e-9);
    }
    assert_eq!(stats.level_histogram, rep.level_histogram);
    assert!((stats.comm_time - rep.comm_time).abs() < 1e-9);
}

#[test]
fn v_payload_increases_comm_time_only() {
    let n = 8;
    let ord = OrderingKind::RoundRobin.build(n).unwrap();
    let prog = ord.sweep_program(0, &ord.initial_layout());
    let mac = machine(TopologyKind::PerfectFatTree, n);
    let a = generate::random_uniform(16, n, 2);

    let mut with_v = ColumnStore::from_columns(a.clone().into_columns(), true);
    let mut without_v = ColumnStore::from_columns(a.into_columns(), false);
    let s1 = execute_program(&mac, &prog, &mut with_v, &ExecConfig::default());
    let s2 = execute_program(&mac, &prog, &mut without_v, &ExecConfig::default());
    assert!(s1.comm_time > s2.comm_time);
    assert_eq!(s1.rotations, s2.rotations);
    assert_eq!(s1.swaps, s2.swaps);
}

#[test]
fn full_iteration_to_convergence_on_every_ordering() {
    let n = 16;
    let a = generate::random_uniform(24, n, 3);
    for kind in OrderingKind::ALL {
        let ord = kind.build(n).unwrap();
        let mac = machine(TopologyKind::PerfectFatTree, n);
        let mut store = ColumnStore::from_columns(a.clone().into_columns(), false);
        let mut layout = ord.initial_layout();
        let mut converged = false;
        for k in 0..40 {
            let prog = ord.sweep_program(k, &layout);
            let stats = execute_program(&mac, &prog, &mut store, &ExecConfig::default());
            layout = prog.final_layout();
            if stats.is_converged() {
                converged = true;
                break;
            }
        }
        assert!(converged, "{kind}: no convergence");
        // all pairwise couplings tiny at the end
        let cols = store.columns_in_index_order();
        for i in 0..n {
            for j in (i + 1)..n {
                let d = treesvd_matrix::ops::dot(&cols[i].a, &cols[j].a).abs();
                let ni = treesvd_matrix::ops::norm2(&cols[i].a);
                let nj = treesvd_matrix::ops::norm2(&cols[j].a);
                assert!(d <= 1e-10 * ni * nj, "{kind}: columns {i},{j} still coupled");
            }
        }
    }
}

#[test]
fn cost_scales_with_column_length() {
    let n = 8;
    let ord = OrderingKind::NewRing.build(n).unwrap();
    let prog = ord.sweep_program(0, &ord.initial_layout());
    let mac = machine(TopologyKind::BinaryTree, n);
    let short = analyze_program(&mac, &prog, 16);
    let long = analyze_program(&mac, &prog, 1024);
    assert!(long.comm_time > short.comm_time);
    assert!(long.compute_time > short.compute_time);
    // the serialization component scales ~linearly in words; latency does not
    let ratio = long.comm_time / short.comm_time;
    assert!(ratio > 2.0 && ratio < 64.0, "ratio {ratio}");
}

#[test]
fn skinny_trees_cost_more_for_global_traffic() {
    let n = 64;
    let ord = OrderingKind::RoundRobin.build(n).unwrap();
    let prog = ord.sweep_program(0, &ord.initial_layout());
    let fat = analyze_program(&machine(TopologyKind::PerfectFatTree, n), &prog, 512);
    let cm5 = analyze_program(&machine(TopologyKind::Cm5, n), &prog, 512);
    let bin = analyze_program(&machine(TopologyKind::BinaryTree, n), &prog, 512);
    assert!(fat.comm_time <= cm5.comm_time, "{} vs {}", fat.comm_time, cm5.comm_time);
    assert!(cm5.comm_time <= bin.comm_time, "{} vs {}", cm5.comm_time, bin.comm_time);
}

#[test]
fn sort_mode_none_never_swaps() {
    let n = 8;
    let ord = OrderingKind::RoundRobin.build(n).unwrap();
    let prog = ord.sweep_program(0, &ord.initial_layout());
    let mac = machine(TopologyKind::PerfectFatTree, n);
    let a = generate::random_uniform(12, n, 4);
    let mut store = ColumnStore::from_columns(a.into_columns(), false);
    let cfg = ExecConfig { threshold: 1e-14, sort: SortMode::None, ..ExecConfig::default() };
    let stats = execute_program(&mac, &prog, &mut store, &cfg);
    assert_eq!(stats.swaps, 0);
}

#[test]
fn store_layout_follows_multi_sweep_programs() {
    let n = 8;
    let ord = OrderingKind::ModifiedRing.build(n).unwrap();
    let mac = machine(TopologyKind::PerfectFatTree, n);
    let a = generate::random_uniform(6, n, 5);
    let mut store = ColumnStore::from_columns(a.into_columns(), false);
    let mut layout = ord.initial_layout();
    for k in 0..2 {
        let prog = ord.sweep_program(k, &layout);
        execute_program(&mac, &prog, &mut store, &ExecConfig::default());
        layout = prog.final_layout();
        assert_eq!(store.layout, layout);
    }
    // period 2: back to identity
    assert_eq!(store.layout, (0..n).collect::<Vec<_>>());
}

#[test]
fn contention_consistency_between_exec_and_analysis() {
    let n = 32;
    let ord = OrderingKind::FatTree.build(n).unwrap();
    let prog = ord.sweep_program(0, &ord.initial_layout());
    let mac = machine(TopologyKind::Cm5, n);
    let m_rows = 10usize;
    let a = generate::random_uniform(m_rows, n, 6);
    let mut store = ColumnStore::from_columns(a.into_columns(), false);
    let stats = execute_program(&mac, &prog, &mut store, &ExecConfig::default());
    let rep = analyze_program(&mac, &prog, m_rows as u64);
    assert!((stats.max_contention() - rep.max_contention).abs() < 1e-12);
    assert!(stats.max_contention() > 1.0, "fat-tree ordering must contend on cm5");
}
