//! End-to-end SVD integration tests: every ordering × every matrix class,
//! cross-checked against the sequential reference and the constructions'
//! known spectra.

use treesvd_core::{
    sequential::sequential_svd, HestenesSvd, OrderingKind, SortMode, SvdOptions, TopologyKind,
};
use treesvd_matrix::{checks, generate, Matrix};

fn assert_valid_svd(a: &Matrix, svd: &treesvd_core::Svd, tol: f64, ctx: &str) {
    let res = svd.residual(a);
    let orth = svd.orthogonality();
    assert!(res < tol, "{ctx}: residual {res}");
    assert!(orth < tol, "{ctx}: orthogonality {orth}");
    assert!(checks::is_nonincreasing(&svd.sigma), "{ctx}: sigma unsorted {:?}", svd.sigma);
}

#[test]
fn all_orderings_all_classes() {
    let classes: Vec<(&str, Matrix)> = vec![
        ("random", generate::random_uniform(24, 16, 1)),
        ("graded", generate::graded(24, 16, 1e-6, 2)),
        ("rank-deficient", generate::rank_deficient(24, 16, 9, 3)),
        ("hilbert", generate::hilbert(20, 16)),
        ("orthogonal", generate::already_orthogonal(24, 16, 4)),
    ];
    for kind in OrderingKind::ALL {
        for (name, a) in &classes {
            let run = HestenesSvd::with_ordering(kind)
                .compute(a)
                .unwrap_or_else(|e| panic!("{kind}/{name}: {e}"));
            assert_valid_svd(a, &run.svd, 1e-9, &format!("{kind}/{name}"));
        }
    }
}

#[test]
fn parallel_matches_sequential_spectra() {
    for seed in [10u64, 11, 12] {
        let a = generate::random_uniform(30, 20, seed);
        let seq = sequential_svd(&a, 60).expect("sequential converges");
        for kind in OrderingKind::ALL {
            let par = HestenesSvd::with_ordering(kind).compute(&a).expect("parallel converges");
            let d = checks::spectrum_distance(&par.svd.sigma, &seq.svd.sigma);
            assert!(d < 1e-9, "{kind} seed {seed}: spectrum distance {d}");
        }
    }
}

#[test]
fn every_topology_gives_identical_numerics() {
    // the topology changes simulated time, never the arithmetic
    let a = generate::random_uniform(20, 16, 20);
    let base = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
    for topo in [TopologyKind::BinaryTree, TopologyKind::Cm5, TopologyKind::SkinnyAbove(2)] {
        let run = HestenesSvd::new(SvdOptions::default().with_topology(topo)).compute(&a).unwrap();
        assert_eq!(run.sweeps, base.sweeps, "{topo}");
        for (x, y) in run.svd.sigma.iter().zip(base.svd.sigma.iter()) {
            assert_eq!(x, y, "{topo}: sigma must be bitwise identical");
        }
    }
}

#[test]
fn shapes_square_tall_wide_tiny() {
    let shapes = [(16usize, 16usize), (40, 8), (8, 40), (5, 4), (4, 5), (4, 4), (64, 3)];
    for (m, n) in shapes {
        let k = m.min(n);
        let sigma: Vec<f64> = (1..=k).rev().map(|x| x as f64).collect();
        let a = if m >= n {
            generate::with_singular_values(m, &sigma, (m * 31 + n) as u64)
        } else {
            generate::with_singular_values(n, &sigma, (m * 31 + n) as u64).transpose()
        };
        let run = HestenesSvd::new(SvdOptions::default())
            .compute(&a)
            .unwrap_or_else(|e| panic!("{m}x{n}: {e}"));
        assert_eq!(run.svd.sigma.len(), k, "{m}x{n}");
        assert!(
            checks::spectrum_distance(&run.svd.sigma, &sigma) < 1e-9,
            "{m}x{n}: {:?}",
            run.svd.sigma
        );
    }
}

#[test]
fn single_column_and_single_row() {
    let a = Matrix::from_col_major(5, 1, vec![3.0, 0.0, 4.0, 0.0, 0.0]).unwrap();
    let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
    assert!((run.svd.sigma[0] - 5.0).abs() < 1e-12);
    let at = a.transpose();
    let run = HestenesSvd::new(SvdOptions::default()).compute(&at).unwrap();
    assert!((run.svd.sigma[0] - 5.0).abs() < 1e-12);
}

#[test]
fn scaled_matrices_extreme_magnitudes() {
    for scale in [1e-150_f64, 1e-30, 1e30, 1e150] {
        let mut a = generate::with_singular_values(10, &[4.0, 2.0, 1.0], 33);
        a.scale(scale);
        let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
        let expect = [4.0 * scale, 2.0 * scale, scale];
        for (c, e) in run.svd.sigma.iter().zip(expect.iter()) {
            assert!((c - e).abs() < 1e-10 * e, "scale {scale}: {c} vs {e}");
        }
    }
}

#[test]
fn duplicate_singular_values() {
    let sigma = [3.0, 3.0, 3.0, 1.0, 1.0];
    let a = generate::with_singular_values(10, &sigma, 44);
    let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
    assert!(checks::spectrum_distance(&run.svd.sigma, &sigma) < 1e-10);
    assert_valid_svd(&a, &run.svd, 1e-10, "duplicates");
}

#[test]
fn unsorted_mode_spectra_match_sorted_multiset() {
    let a = generate::random_uniform(18, 12, 55);
    let sorted = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
    let unsorted =
        HestenesSvd::new(SvdOptions::default().with_sort(SortMode::None)).compute(&a).unwrap();
    let mut s = unsorted.svd.sigma.clone();
    s.sort_by(|x, y| y.partial_cmp(x).unwrap());
    assert!(checks::spectrum_distance(&s, &sorted.svd.sigma) < 1e-10);
    // unsorted mode must still produce a correct factorization
    assert!(unsorted.svd.residual(&a) < 1e-10);
    assert!(unsorted.svd.orthogonality() < 1e-10);
}

#[test]
fn repeated_runs_are_deterministic() {
    let a = generate::random_uniform(20, 12, 66);
    let r1 = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
    let r2 = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
    assert_eq!(r1.sweeps, r2.sweeps);
    assert_eq!(r1.svd.sigma, r2.svd.sigma);
}

#[test]
fn truncated_svd_is_best_low_rank() {
    let sigma = [10.0, 5.0, 1.0, 0.1];
    let a = generate::with_singular_values(12, &sigma, 77);
    let run = HestenesSvd::new(SvdOptions::default()).compute(&a).unwrap();
    for k in 1..=4usize {
        let ak = run.svd.truncate(k).unwrap();
        let err = a.sub(&ak).unwrap().frobenius_norm();
        let expect: f64 = sigma[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((err - expect).abs() < 1e-9, "k = {k}: {err} vs {expect}");
    }
}
