//! Cross-crate schedule-verification suite: every built-in ordering
//! generator, every analyzer check, sizes n ∈ {4..32}, plus deliberately
//! corrupted schedules that must fail each check with a step-precise
//! diagnostic.

use treesvd_analyze::{
    analyze_ordering, check_certificate, emit_certificate, verify_contention, verify_coverage,
    verify_deadlock_freedom, verify_ordering_schedule, verify_permutation_safety, verify_plan,
    verify_restore, AnalysisOptions, Check, CommModel, CommPlan, ProofCertificate, Violation,
};
use treesvd_net::{Topology, TopologyKind};
use treesvd_orderings::four_block::{module_a_movements, module_b_movements};
use treesvd_orderings::schedule::Permutation;
use treesvd_orderings::two_block::{two_block_movements, RotatingSide};
use treesvd_orderings::{
    FatTreeOrdering, HybridOrdering, JacobiOrdering, LlbFatTreeOrdering, ModifiedRingOrdering,
    NewRingOrdering, PairStep, Program, RingOrdering, RoundRobinOrdering,
};

/// Every built-in ordering constructible at size `n`, by name.
fn orderings_for(n: usize) -> Vec<Box<dyn JacobiOrdering>> {
    let mut out: Vec<Box<dyn JacobiOrdering>> = Vec::new();
    if let Ok(o) = RingOrdering::new(n) {
        out.push(Box::new(o));
    }
    if let Ok(o) = NewRingOrdering::new(n) {
        out.push(Box::new(o));
    }
    if let Ok(o) = ModifiedRingOrdering::new(n) {
        out.push(Box::new(o));
    }
    if let Ok(o) = RoundRobinOrdering::new(n) {
        out.push(Box::new(o));
    }
    if let Ok(o) = FatTreeOrdering::new(n) {
        out.push(Box::new(o));
    }
    if let Ok(o) = LlbFatTreeOrdering::new(n) {
        out.push(Box::new(o));
    }
    if let Ok(o) = HybridOrdering::with_default_groups(n) {
        out.push(Box::new(o));
    }
    out
}

#[test]
fn every_builtin_ordering_verifies_at_every_size() {
    for n in (4..=32).step_by(2) {
        for ord in orderings_for(n) {
            let report = analyze_ordering(ord.as_ref(), &AnalysisOptions::default());
            assert!(report.is_verified(), "{} n = {n}:\n{report}", ord.name());
        }
    }
}

#[test]
fn every_builtin_ordering_passes_the_driver_gate() {
    for n in [8usize, 16] {
        for ord in orderings_for(n) {
            assert!(
                verify_ordering_schedule(ord.as_ref()).is_ok(),
                "{} n = {n} rejected by the driver gate",
                ord.name()
            );
        }
    }
}

#[test]
fn paper_contention_claims_hold() {
    // §5: the hybrid ordering with groups of 4 columns is contention-free
    // on the CM-5 tree (capacity doubling stops above level 2).
    for n in [16usize, 32, 64] {
        let ord = HybridOrdering::new(n, n / 4).unwrap();
        let topo = Topology::new(TopologyKind::Cm5, n / 2);
        let opts = AnalysisOptions { topology: Some(topo), words_per_column: 64 };
        let report = analyze_ordering(&ord, &opts);
        assert!(report.is_verified(), "hybrid n = {n} on CM-5:\n{report}");
        assert!(report.max_contention.unwrap() <= 1.0);
    }
    // the recursive fat-tree ordering is contention-free on the perfect
    // fat-tree it was designed for...
    for n in [8usize, 16, 32] {
        let ord = FatTreeOrdering::new(n).unwrap();
        let topo = Topology::new(TopologyKind::PerfectFatTree, n / 2);
        let opts = AnalysisOptions { topology: Some(topo), words_per_column: 64 };
        let report = analyze_ordering(&ord, &opts);
        assert!(report.is_verified(), "fat-tree n = {n}:\n{report}");
    }
    // ...but not on a plain binary tree, where the verifier must name the
    // first violating (step, channel).
    let ord = FatTreeOrdering::new(32).unwrap();
    let prog = ord.sweep_program(0, &ord.initial_layout());
    let topo = Topology::new(TopologyKind::BinaryTree, 16);
    match verify_contention(&prog, &topo, 64) {
        Err(Violation::ChannelOverload { channel, load, capacity, .. }) => {
            assert!(channel.level >= 2);
            assert!(load > capacity);
        }
        other => panic!("expected ChannelOverload on the binary tree, got {other:?}"),
    }
}

/// A `Program` built from raw movement permutations: pairs come from the
/// running layout, so permutation-safety and deadlock checks apply even
/// though a single basic module does not constitute a full sweep.
fn program_from_movements(n: usize, movements: Vec<Permutation>) -> Program {
    Program {
        n,
        initial_layout: (0..n).collect(),
        steps: movements.into_iter().map(|m| PairStep { move_after: m }).collect(),
    }
}

#[test]
fn basic_modules_are_safe_and_deadlock_free() {
    for base in [0usize, 4] {
        let a = program_from_movements(8, module_a_movements(8, base).to_vec());
        assert!(verify_permutation_safety(&a).is_ok());
        assert!(verify_deadlock_freedom(&a).is_ok());
        let b = program_from_movements(8, module_b_movements(8, base).to_vec());
        assert!(verify_permutation_safety(&b).is_ok());
        assert!(verify_deadlock_freedom(&b).is_ok());
    }
    for rot in [RotatingSide::Even, RotatingSide::Odd] {
        let prog = program_from_movements(16, two_block_movements(16, 0, 8, rot));
        assert!(verify_permutation_safety(&prog).is_ok());
        assert!(verify_deadlock_freedom(&prog).is_ok());
    }
}

// --- corrupted schedules: each check must fail with a precise diagnostic ---

fn valid_sweep(n: usize) -> Program {
    let ord = FatTreeOrdering::new(n).unwrap();
    ord.sweep_program(0, &ord.initial_layout())
}

#[test]
fn corrupted_layout_fails_permutation_check() {
    let mut prog = valid_sweep(16);
    prog.initial_layout[7] = prog.initial_layout[3];
    match verify_permutation_safety(&prog) {
        Err(Violation::DuplicateOwnership { step, index, slots }) => {
            assert_eq!(step, 0, "corruption is visible at the first step");
            assert_eq!(index, prog.initial_layout[3]);
            assert_eq!(slots, (3, 7));
        }
        other => panic!("expected DuplicateOwnership, got {other:?}"),
    }
    // the coverage check subsumes permutation safety and must also reject
    assert!(verify_coverage(&prog).is_err());
}

#[test]
fn stalled_schedule_fails_coverage_check() {
    // identity movements: the same n/2 pairs rotate at every step
    let n = 8;
    let prog = program_from_movements(n, vec![Permutation::identity(n); n - 1]);
    match verify_coverage(&prog) {
        Err(Violation::PairRepeated { step, first_step, pair }) => {
            assert_eq!((step, first_step), (1, 0));
            assert_eq!(pair, (0, 1));
        }
        other => panic!("expected PairRepeated, got {other:?}"),
    }
}

#[test]
fn truncated_sweep_fails_coverage_check() {
    let mut prog = valid_sweep(16);
    prog.steps.truncate(prog.steps.len() - 2);
    match verify_coverage(&prog) {
        Err(Violation::PairsMissed { covered, expected, example }) => {
            assert!(covered < expected);
            assert!(example.0 < example.1);
        }
        other => panic!("expected PairsMissed, got {other:?}"),
    }
}

#[test]
fn non_restoring_ordering_fails_restore_check() {
    /// Fat-tree sweeps with the final restoring movement replaced by the
    /// identity, so the layout never returns.
    struct Truncated(FatTreeOrdering);
    impl JacobiOrdering for Truncated {
        fn n(&self) -> usize {
            self.0.n()
        }
        fn name(&self) -> String {
            "truncated-fat-tree".into()
        }
        fn restore_period(&self) -> usize {
            1
        }
        fn sweep_program(&self, sweep: usize, layout: &[usize]) -> Program {
            let mut prog = self.0.sweep_program(sweep, layout);
            let last = prog.steps.len() - 1;
            prog.steps[last].move_after = Permutation::identity(self.0.n());
            prog
        }
    }
    let ord = Truncated(FatTreeOrdering::new(8).unwrap());
    match verify_restore(&ord) {
        Err(Violation::LayoutNotRestored { sweeps, slot, expected, found }) => {
            assert_eq!(sweeps, 1);
            assert_ne!(expected, found, "slot {slot} must name a real mismatch");
        }
        other => panic!("expected LayoutNotRestored, got {other:?}"),
    }
}

#[test]
fn misrouted_schedule_fails_contention_check() {
    // the fat-tree ordering's long-range exchanges overload a skinny
    // binary tree: the proof must name the first step and channel
    let prog = valid_sweep(64);
    let topo = Topology::new(TopologyKind::BinaryTree, 32);
    match verify_contention(&prog, &topo, 64) {
        Err(Violation::ChannelOverload { step, channel, factor, .. }) => {
            assert!(step < prog.steps.len());
            assert!(channel.level >= 2);
            assert!(factor > 1.0);
        }
        other => panic!("expected ChannelOverload, got {other:?}"),
    }
}

#[test]
fn mutilated_comm_plan_fails_deadlock_check() {
    let prog = valid_sweep(16);
    let intact = CommPlan::from_program(&prog);
    assert!(verify_plan(&intact, CommModel::Buffered).is_ok());

    // dropping one send starves its receiver
    let mut no_send = intact.clone();
    let pos = no_send.ops[3]
        .iter()
        .position(|(_, op)| matches!(op, treesvd_analyze::CommOp::Send { .. }))
        .expect("rank 3 sends in a fat-tree sweep");
    no_send.ops[3].remove(pos);
    match verify_plan(&no_send, CommModel::Buffered) {
        Err(Violation::UnmatchedRecv { op }) => assert!(!op.is_send),
        other => panic!("expected UnmatchedRecv, got {other:?}"),
    }

    // under rendezvous semantics the pairwise exchange idiom itself is a
    // wait cycle — the formal reason the communicator buffers sends
    match verify_plan(&intact, CommModel::Rendezvous) {
        Err(Violation::WaitCycle { cycle }) => {
            assert!(cycle.len() >= 2);
            assert!(cycle.iter().any(|op| op.is_send), "a send must participate");
        }
        other => panic!("expected WaitCycle under rendezvous, got {other:?}"),
    }
}

#[test]
fn overlapped_plans_verify_and_legacy_plans_cycle_under_rendezvous() {
    // the overlapped (send-ahead) plan the distributed executor runs must
    // hold under BOTH message models — including rendezvous, where the
    // legacy blocking plan deadlocks (previous test) — for every built-in
    // ordering
    for n in [8usize, 16] {
        for ord in orderings_for(n) {
            for prog in ord.programs(ord.restore_period().max(1)) {
                for vectors in [true, false] {
                    treesvd_analyze::verify_overlap_freedom(&prog, vectors).unwrap_or_else(|v| {
                        panic!("{} n = {n} vectors = {vectors}: {v}", ord.name())
                    });
                }
            }
        }
    }
}

#[test]
fn corrupted_overlap_plan_fails_with_step_precise_error() {
    let prog = valid_sweep(16);
    let intact = CommPlan::from_program_overlapped(&prog, true);
    assert!(verify_plan(&intact, CommModel::Buffered).is_ok());
    assert!(verify_plan(&intact, CommModel::Rendezvous).is_ok());

    // corrupt one prefetch: rank 5's first PostRecv now names the wrong
    // source rank, as if the executor prefetched from the wrong neighbour
    let mut wrong_dest = intact.clone();
    let ranks = wrong_dest.ops.len();
    let (pos, true_source) = wrong_dest.ops[5]
        .iter()
        .enumerate()
        .find_map(|(i, (_, op))| match op {
            treesvd_analyze::CommOp::PostRecv { from, .. } => Some((i, *from)),
            _ => None,
        })
        .expect("rank 5 prefetches in a fat-tree sweep");
    if let (_, treesvd_analyze::CommOp::PostRecv { from, .. }) = &mut wrong_dest.ops[5][pos] {
        *from = (true_source + 1) % ranks;
    }

    // the completion that expected the true source now has no posted
    // prefetch — and the diagnostic names the exact rank, step, and peer
    match verify_plan(&wrong_dest, CommModel::Buffered) {
        Err(Violation::PrefetchMissing { op }) => {
            assert_eq!(op.rank, 5, "diagnostic must name the corrupted rank");
            assert_eq!(op.peer, true_source, "diagnostic must name the expected source");
            assert!(op.step < prog.steps.len() + 1, "step must be in range");
            assert!(!op.is_send);
            let msg = format!("{}", Violation::PrefetchMissing { op });
            assert!(msg.contains("never posted"), "human-readable diagnostic: {msg}");
        }
        other => panic!("expected PrefetchMissing, got {other:?}"),
    }
}

#[test]
fn hb_tracker_complements_the_static_check() {
    use std::thread;
    use treesvd_comm::ThreadWorld;

    // the dynamic twin of permutation safety: column ownership handed over
    // through a message is race-free...
    let mut comms = ThreadWorld::new(2).into_communicators();
    let mut c1 = comms.pop().unwrap();
    let c0 = comms.pop().unwrap();
    let h = thread::spawn(move || {
        c1.recv(0, 1).unwrap();
        c1.record_access(0)
    });
    c0.record_access(0).unwrap();
    c0.send(1, 1, vec![0.0]);
    assert_eq!(h.join().unwrap(), Ok(()));

    // ...while touching a block the schedule never handed over is flagged
    let comms = ThreadWorld::new(2).into_communicators();
    comms[0].record_access(9).unwrap();
    let race = comms[1].record_access(9).unwrap_err();
    assert_eq!((race.first_rank, race.second_rank), (0, 1));
}

#[test]
fn analysis_report_displays_failures() {
    /// An ordering whose sweeps stall on the first pairing forever.
    struct Stalled(usize);
    impl JacobiOrdering for Stalled {
        fn n(&self) -> usize {
            self.0
        }
        fn name(&self) -> String {
            "stalled".into()
        }
        fn restore_period(&self) -> usize {
            1
        }
        fn sweep_program(&self, _sweep: usize, layout: &[usize]) -> Program {
            Program {
                n: self.0,
                initial_layout: layout.to_vec(),
                steps: vec![PairStep { move_after: Permutation::identity(self.0) }; self.0 - 1],
            }
        }
    }
    let report = analyze_ordering(&Stalled(8), &AnalysisOptions::default());
    assert!(!report.is_verified());
    let violation = report.first_violation().expect("stalled schedule must fail");
    assert!(matches!(violation, Violation::PairRepeated { .. }));
    let rendered = format!("{report}");
    assert!(rendered.contains("FAIL"), "rendered report must flag the failure:\n{rendered}");
    assert!(rendered.contains("step 1"), "diagnostic must be step-precise:\n{rendered}");
}

// ---------------------------------------------------------------------
// proof certificates: emit → serialize → parse → check round-trips, and
// every class of witness tampering is rejected with a step-precise error

/// Expect a `CertificateMismatch` and return its (check, sweep, step).
fn expect_mismatch(
    cert: &ProofCertificate,
    ord: &dyn JacobiOrdering,
    opts: &AnalysisOptions,
) -> (Check, usize, usize) {
    match check_certificate(cert, ord, opts) {
        Err(Violation::CertificateMismatch { cert_check, sweep, step, .. }) => {
            (cert_check, sweep, step)
        }
        other => panic!("tampered certificate must be rejected, got {other:?}"),
    }
}

#[test]
fn certificates_round_trip_over_every_builtin_ordering() {
    for n in [8, 12, 16] {
        for ord in orderings_for(n) {
            let opts = AnalysisOptions::default();
            let cert = emit_certificate(ord.as_ref(), &opts, true, true)
                .unwrap_or_else(|e| panic!("{} n={n}: {e}", ord.name()));
            let obligations = check_certificate(&cert, ord.as_ref(), &opts)
                .unwrap_or_else(|e| panic!("{} n={n}: {e}", ord.name()));
            assert!(obligations > 0, "{} n={n}", ord.name());

            let parsed = ProofCertificate::parse(&cert.to_text())
                .unwrap_or_else(|e| panic!("{} n={n}: {e}", ord.name()));
            assert_eq!(parsed, cert, "{} n={n}: serialization must round-trip", ord.name());
            assert_eq!(
                check_certificate(&parsed, ord.as_ref(), &opts).unwrap(),
                obligations,
                "{} n={n}",
                ord.name()
            );
        }
    }
}

#[test]
fn tampered_certificates_fail_step_precisely() {
    let ord = FatTreeOrdering::new(16).unwrap();
    let opts = AnalysisOptions {
        topology: Some(Topology::new(TopologyKind::PerfectFatTree, 8)),
        words_per_column: 16,
    };
    let cert = emit_certificate(&ord, &opts, true, true).unwrap();
    assert!(check_certificate(&cert, &ord, &opts).unwrap() > 0);

    // 1. a flipped ownership cell breaks the permutation witness exactly
    // where it was flipped
    let mut t = cert.clone();
    t.layouts[0][1][0] = t.layouts[0][1][1];
    let (check, sweep, step) = expect_mismatch(&t, &ord, &opts);
    assert_eq!(check, Check::Permutation);
    assert_eq!((sweep, step), (0, 1));

    // 2. a perturbed pair digest breaks the coverage witness at its step
    let mut t = cert.clone();
    t.pair_digests[0][2] ^= 0x5bd1_e995;
    let (check, sweep, step) = expect_mismatch(&t, &ord, &opts);
    assert_eq!(check, Check::Coverage);
    assert_eq!((sweep, step), (0, 2));

    // 3. an inflated channel load breaks the contention witness at the
    // (sweep, step) of the doctored entry
    let mut t = cert.clone();
    let doctored = (t.loads[0].sweep, t.loads[0].step);
    t.loads[0].load += 7;
    let (check, sweep, step) = expect_mismatch(&t, &ord, &opts);
    assert_eq!(check, Check::Contention);
    assert_eq!((sweep, step), doctored);

    // 4. a reordered topological witness is no longer a valid linear
    // extension of the wait-for graph
    let mut t = cert.clone();
    t.plans[0].order.reverse();
    let (check, _, _) = expect_mismatch(&t, &ord, &opts);
    assert_eq!(check, Check::Deadlock);

    // 5. a dropped pool release means a lease the plan proves is missing
    // from the witness
    let mut t = cert.clone();
    t.leases.remove(0);
    let (check, _, _) = expect_mismatch(&t, &ord, &opts);
    assert_eq!(check, Check::Pool);

    // 6. the untampered certificate still refuses to certify a different
    // schedule outright
    let other = RingOrdering::new(16).unwrap();
    let (check, _, _) = expect_mismatch(&cert, &other, &opts);
    assert_eq!(check, Check::Permutation);
}
