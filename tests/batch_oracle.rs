//! Cross-crate validation of the batched small-SVD engine against the
//! sequential reference driver.
//!
//! Two layers:
//!
//! * an exhaustive order-2 edge-case suite (zero matrices, rank-1, equal
//!   singular values, denormal and huge entries, sign/ordering
//!   conventions), every problem checked against `sequential_svd`;
//! * property tests over random mixed batches — σ to tight relative
//!   bounds against the per-problem oracle, factor orthogonality,
//!   reconstruction residual — across lane widths, thread counts, and
//!   both kernel paths.

use proptest::prelude::*;
use treesvd_batch::{batch_svd, BatchOptions, BatchOutput, BatchSoA, LanePath};
use treesvd_core::sequential::sequential_svd;
use treesvd_matrix::{checks, generate, ops, Matrix};

/// Relative σ tolerance vs the oracle: the engines run the same
/// iteration but accumulate Gram entries in different orders, so the
/// trajectories (and the final values) differ by a few ulps per sweep.
fn sigma_tol(scale: f64) -> f64 {
    1e4 * f64::EPSILON * scale.max(1.0)
}

/// Check one problem of a batch output against the sequential oracle.
fn check_against_oracle(a: &Matrix, batch: &BatchSoA, out: &BatchOutput, i: usize, tag: &str) {
    let oracle = sequential_svd(a, 60).expect("oracle converges");
    let sigma = out.sigma(i);
    let scale = oracle.svd.sigma.iter().fold(0.0_f64, |m, &s| m.max(s));
    for (j, (&got, &want)) in sigma.iter().zip(oracle.svd.sigma.iter()).enumerate() {
        assert!(
            (got - want).abs() <= sigma_tol(scale),
            "{tag} problem {i} sigma[{j}]: {got} vs oracle {want}"
        );
    }
    // descending order, like the oracle
    for w in sigma.windows(2) {
        assert!(w[0] >= w[1] - sigma_tol(scale), "{tag} problem {i}: sigma not sorted {sigma:?}");
    }
    assert_eq!(out.rank(i), oracle.svd.rank, "{tag} problem {i}: rank");
    let u = batch.problem(i);
    let v = out.v_problem(i).expect("vectors accumulated");
    // Outside roughly [1e-145, 1e150] the Gram entries σ² are subnormal
    // (or the scaled norms overflow their 1/scale factor), and *neither*
    // engine can orthogonalize or measure residuals meaningfully — both
    // still agree on σ and rank above, but factor quality is only checked
    // in the representable regime.
    let amax = a.max_abs();
    let gram_representable = amax == 0.0 || (1e-145..=1e151).contains(&amax);
    if gram_representable {
        assert!(checks::orthogonality_residual(&u) < 1e-11, "{tag} problem {i}: U orthogonality");
        assert!(checks::orthogonality_residual(&v) < 1e-11, "{tag} problem {i}: V orthogonality");
        let residual = checks::reconstruction_residual(a, &u, sigma, &v);
        assert!(residual < 1e-11, "{tag} problem {i}: residual {residual}");
    }
}

/// Solve `ms` as one batch and check every problem against the oracle.
fn batch_vs_oracle(ms: &[Matrix], lanes: usize, opts: &BatchOptions, tag: &str) {
    let mut batch = BatchSoA::from_matrices(ms, lanes).expect("valid batch");
    let out = batch_svd(&mut batch, opts).expect("batch converges");
    for (i, a) in ms.iter().enumerate() {
        check_against_oracle(a, &batch, &out, i, tag);
    }
}

// ---------------------------------------------------------------------------
// order-2 edge cases (satellite: exhaustive 2×2 suite)
// ---------------------------------------------------------------------------

/// The order-2 edge-case zoo: every degenerate shape the batched kernel
/// must agree with the sequential driver on.
fn order2_edge_cases() -> Vec<(&'static str, Matrix)> {
    let m = |d: [f64; 4]| Matrix::from_row_major(2, 2, &d).unwrap();
    vec![
        ("zero", m([0.0, 0.0, 0.0, 0.0])),
        ("identity", m([1.0, 0.0, 0.0, 1.0])),
        ("rank1-cols", m([1.0, 2.0, 2.0, 4.0])),
        ("rank1-rows", m([3.0, 4.0, 0.0, 0.0])),
        ("zero-col", m([5.0, 0.0, -2.0, 0.0])),
        ("equal-sigma-rotation", m([0.6, -0.8, 0.8, 0.6])),
        ("equal-sigma-scaled", m([3.0, 0.0, 0.0, -3.0])),
        ("needs-swap", m([1.0, 0.0, 0.0, 7.0])),
        ("already-sorted", m([7.0, 0.0, 0.0, 1.0])),
        ("coupled", m([2.0, 1.0, 1.0, 3.0])),
        ("negative", m([-2.0, 1.5, 0.5, -3.0])),
        ("tiny", m([1e-160, 2e-160, -3e-160, 1e-161])),
        ("denormal", m([5e-310, 1e-310, -2e-310, 3e-310])),
        ("huge", m([3e150, -1e150, 2e150, 5e149])),
        ("graded", m([1e100, 1.0, 1.0, 1e-100])),
        ("near-rank1", m([1.0, 1.0, 1.0, 1.0 + 1e-12])),
    ]
}

#[test]
fn order2_edge_cases_match_the_sequential_driver() {
    for (name, a) in order2_edge_cases() {
        // each case solved alone AND inside a shared batch below
        batch_vs_oracle(std::slice::from_ref(&a), 4, &BatchOptions::default(), name);
    }
}

#[test]
fn order2_edge_cases_share_one_lane_group() {
    // all edge cases packed into one batch: lanes see wildly different
    // data side by side, exercising the per-lane masks hard
    let ms: Vec<Matrix> = order2_edge_cases().into_iter().map(|(_, m)| m).collect();
    for lanes in [4, 8, 16] {
        batch_vs_oracle(&ms, lanes, &BatchOptions::default(), "edge-zoo");
        let opts = BatchOptions::default().with_path(LanePath::Scalar);
        batch_vs_oracle(&ms, lanes, &opts, "edge-zoo-scalar");
    }
}

#[test]
fn order2_no_overflow_on_extreme_magnitudes() {
    // α, β near the f64 limits: the batched (c, s) solve must not
    // overflow ζ² (the sequential driver never reaches |ζ| > 1e150 on
    // this data either — both must converge and agree)
    let ms = vec![
        Matrix::from_row_major(2, 2, &[1e154, 1e0, 1e0, 1e-154]).unwrap(),
        Matrix::from_row_major(2, 2, &[1e150, 1e150, -1e150, 1e150]).unwrap(),
        Matrix::from_row_major(2, 2, &[1e-150, 1e-155, 1e-155, 1e-150]).unwrap(),
    ];
    let mut batch = BatchSoA::from_matrices(&ms, 4).unwrap();
    let out = batch_svd(&mut batch, &BatchOptions::default()).unwrap();
    for (i, m) in ms.iter().enumerate() {
        assert!(out.sigma(i).iter().all(|s| s.is_finite()), "problem {i}: {:?}", out.sigma(i));
        check_against_oracle(m, &batch, &out, i, "extreme");
    }
}

#[test]
fn order2_sign_conventions_match_the_oracle() {
    // well-separated σ: each singular direction is unique up to a joint
    // (u_j, v_j) sign flip — verify the batch picks directions that agree
    // with the oracle's up to that joint sign, per problem
    let ms: Vec<Matrix> = (0..6)
        .map(|i| generate::with_singular_values(2, &[4.0 + i as f64, 1.0], 900 + i as u64))
        .collect();
    let mut batch = BatchSoA::from_matrices(&ms, 4).unwrap();
    let out = batch_svd(&mut batch, &BatchOptions::default()).unwrap();
    for (i, a) in ms.iter().enumerate() {
        let oracle = sequential_svd(a, 60).unwrap();
        let u = batch.problem(i);
        let v = out.v_problem(i).unwrap();
        for j in 0..2 {
            let du = ops::dot(u.col(j), oracle.svd.u.col(j));
            let dv = ops::dot(v.col(j), oracle.svd.v.col(j));
            assert!(du.abs() > 1.0 - 1e-9, "problem {i} col {j}: |u·u'| = {}", du.abs());
            assert!(dv.abs() > 1.0 - 1e-9, "problem {i} col {j}: |v·v'| = {}", dv.abs());
            // the sign flip must be *joint*: u_j and v_j flip together,
            // or UΣVᵀ would change sign
            assert!(du * dv > 0.0, "problem {i} col {j}: inconsistent signs ({du}, {dv})");
        }
    }
}

// ---------------------------------------------------------------------------
// mixed-content batches vs the oracle (satellite: property tests)
// ---------------------------------------------------------------------------

/// A deterministic batch of mixed content: full-rank, rank-deficient,
/// graded, prescribed-spectrum, and zero problems interleaved.
fn mixed_batch(rows: usize, cols: usize, count: usize, seed: u64) -> Vec<Matrix> {
    (0..count)
        .map(|i| {
            let s = seed + 31 * i as u64;
            match i % 5 {
                0 => generate::random_uniform(rows, cols, s),
                1 => generate::rank_deficient(rows, cols, (cols / 2).max(1), s),
                2 => generate::graded(rows, cols, 10.0, s),
                3 => {
                    let sv: Vec<f64> = (0..cols).map(|k| (cols - k) as f64).collect();
                    generate::with_singular_values(rows, &sv, s)
                }
                _ => Matrix::zeros(rows, cols).unwrap(),
            }
        })
        .collect()
}

#[test]
fn mixed_batches_match_the_oracle_across_lane_widths() {
    for lanes in [4, 8, 16] {
        // count chosen to leave a partially-filled (padded) tail group
        let ms = mixed_batch(6, 4, lanes + lanes / 2 + 1, 1000 + lanes as u64);
        batch_vs_oracle(&ms, lanes, &BatchOptions::default(), &format!("mixed-l{lanes}"));
    }
}

#[test]
fn mixed_batches_match_the_oracle_across_thread_counts() {
    let ms = mixed_batch(5, 5, 26, 2000);
    for threads in [1, 2, 3, 4] {
        let opts = BatchOptions::default().with_threads(Some(threads));
        batch_vs_oracle(&ms, 4, &opts, &format!("mixed-t{threads}"));
    }
}

#[test]
fn scalar_and_auto_paths_are_bitwise_identical_end_to_end() {
    let ms = mixed_batch(8, 6, 13, 3000);
    let solve = |path: LanePath| {
        let mut batch = BatchSoA::from_matrices(&ms, 8).unwrap();
        let out = batch_svd(&mut batch, &BatchOptions::default().with_path(path)).unwrap();
        (batch, out)
    };
    let (batch_a, out_a) = solve(LanePath::Auto);
    let (batch_s, out_s) = solve(LanePath::Scalar);
    assert_eq!(batch_a.as_slice(), batch_s.as_slice(), "U planes differ between paths");
    assert_eq!(out_a.sigmas(), out_s.sigmas(), "sigmas differ between paths");
    for i in 0..ms.len() {
        assert_eq!(out_a.sweeps(i), out_s.sweeps(i), "sweep counts differ at {i}");
    }
}

#[test]
fn sweep_counts_match_the_oracle_on_identical_trajectories() {
    // diagonal problems rotate nothing: both engines must report the
    // same (minimal) sweep count and identical σ
    let ms: Vec<Matrix> = (0..5)
        .map(|i| Matrix::diagonal(4, &[4.0, 3.0, 2.0, 1.0 + i as f64 * 0.1]).unwrap())
        .collect();
    let mut batch = BatchSoA::from_matrices(&ms, 4).unwrap();
    let out = batch_svd(&mut batch, &BatchOptions::default()).unwrap();
    for (i, a) in ms.iter().enumerate() {
        let oracle = sequential_svd(a, 60).unwrap();
        assert_eq!(out.sweeps(i), oracle.sweeps, "problem {i}");
        assert_eq!(out.sigma(i), &oracle.svd.sigma[..], "problem {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_batches_match_the_oracle(
        cols in 1usize..7,
        extra_rows in 0usize..3,
        count in 1usize..11,
        seed in 0u64..1_000_000,
    ) {
        let rows = cols + extra_rows;
        let ms = mixed_batch(rows, cols, count, seed);
        let mut batch = BatchSoA::from_matrices(&ms, 4).expect("valid batch");
        let out = batch_svd(&mut batch, &BatchOptions::default()).expect("converges");
        for (i, a) in ms.iter().enumerate() {
            let oracle = sequential_svd(a, 60).expect("oracle converges");
            let scale = oracle.svd.sigma.iter().fold(0.0_f64, |m, &s| m.max(s));
            let dist: f64 = out
                .sigma(i)
                .iter()
                .zip(oracle.svd.sigma.iter())
                .map(|(&c, &r)| (c - r).abs())
                .fold(0.0, f64::max);
            prop_assert!(dist <= sigma_tol(scale), "problem {i}: sigma distance {dist}");
            prop_assert_eq!(out.rank(i), oracle.svd.rank, "problem {}", i);
            let u = batch.problem(i);
            let v = out.v_problem(i).expect("vectors");
            prop_assert!(checks::orthogonality_residual(&u) < 1e-11);
            prop_assert!(checks::orthogonality_residual(&v) < 1e-11);
            prop_assert!(checks::reconstruction_residual(a, &u, out.sigma(i), &v) < 1e-11);
        }
    }
}
