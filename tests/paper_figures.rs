//! Figure-level regression tests: the regenerated schedules of Figs. 1–9
//! have exactly the structure the paper describes.

use treesvd_bench::figures;
use treesvd_orderings::{
    FatTreeOrdering, HybridOrdering, JacobiOrdering, NewRingOrdering, RoundRobinOrdering,
};

fn one_based(ord: &dyn JacobiOrdering) -> Vec<Vec<(usize, usize)>> {
    ord.sweep_program(0, &ord.initial_layout())
        .step_pairs()
        .iter()
        .map(|s| s.iter().map(|&(a, b)| (a + 1, b + 1)).collect())
        .collect()
}

#[test]
fn fig1b_round_robin_canonical_table() {
    // the canonical Brent–Luk table for n = 8
    let pairs = one_based(&RoundRobinOrdering::new(8).unwrap());
    let expect: Vec<Vec<(usize, usize)>> = vec![
        vec![(1, 2), (3, 4), (5, 6), (7, 8)],
        vec![(1, 4), (2, 6), (3, 8), (5, 7)],
        vec![(1, 6), (4, 8), (2, 7), (3, 5)],
        vec![(1, 8), (6, 7), (4, 5), (2, 3)],
        vec![(1, 7), (8, 5), (6, 3), (4, 2)],
        vec![(1, 5), (7, 3), (8, 2), (6, 4)],
        vec![(1, 3), (5, 2), (7, 4), (8, 6)],
    ];
    assert_eq!(pairs, expect);
}

#[test]
fn fig6_fat_tree_table_for_eight_indices() {
    let pairs = one_based(&FatTreeOrdering::new(8).unwrap());
    let expect: Vec<Vec<(usize, usize)>> = vec![
        vec![(1, 2), (3, 4), (5, 6), (7, 8)],
        vec![(1, 3), (2, 4), (5, 7), (6, 8)],
        vec![(1, 4), (2, 3), (5, 8), (6, 7)],
        vec![(1, 5), (3, 7), (2, 6), (4, 8)],
        vec![(1, 7), (3, 5), (2, 8), (4, 6)],
        vec![(1, 8), (3, 6), (2, 7), (4, 5)],
        vec![(1, 6), (3, 8), (2, 5), (4, 7)],
    ];
    assert_eq!(pairs, expect);
}

#[test]
fn fig7a_new_ring_table_for_eight_indices() {
    let pairs = one_based(&NewRingOrdering::new(8).unwrap());
    let expect: Vec<Vec<(usize, usize)>> = vec![
        vec![(1, 2), (3, 4), (5, 6), (7, 8)],
        vec![(1, 7), (4, 2), (6, 3), (8, 5)],
        vec![(1, 5), (2, 7), (6, 4), (8, 3)],
        vec![(1, 3), (7, 5), (6, 2), (8, 4)],
        vec![(1, 4), (7, 3), (2, 5), (8, 6)],
        vec![(1, 6), (7, 4), (5, 3), (8, 2)],
        vec![(1, 8), (7, 6), (5, 4), (2, 3)],
    ];
    assert_eq!(pairs, expect);
}

#[test]
fn fig9_hybrid_structure() {
    // 16 indices, 4 groups: steps 1-3 intra-group (fat-tree inside groups),
    // then 6 two-step two-block super-steps; 7 "global" boundaries.
    let ord = HybridOrdering::new(16, 4).unwrap();
    let prog = ord.sweep_program(0, &ord.initial_layout());
    assert_eq!(prog.steps.len(), 15);
    let mut globals = 0;
    for step in &prog.steps {
        if step.move_after.inter_processor_moves().iter().any(|&(f, t)| f / 4 != t / 4) {
            globals += 1;
        }
    }
    assert_eq!(globals, 7);
}

#[test]
fn figure_text_output_is_stable() {
    // figure renderings keep their key rows (a cheap regression net over
    // the whole rendering path)
    let f6 = figures::fig6();
    assert!(f6.contains("   1  (1 2) (3 4) (5 6) (7 8)"));
    assert!(f6.contains("(1 6) (3 8) (2 5) (4 7)"));
    let f7 = figures::fig7a();
    assert!(f7.contains("(1 8) (7 6) (5 4) (2 3)"));
    let f1a = figures::fig1a();
    assert!(f1a.contains("   7  "));
    let f9 = figures::fig9();
    assert!(f9.contains("global"));
}

#[test]
fn fig2_fig3_two_block_tables() {
    use treesvd_orderings::two_block::{two_block_movements, RotatingSide};
    use treesvd_orderings::{PairStep, Program};
    // Fig. 2: indices (1,3) block 1, (2,4) block 2 in our slot convention
    let prog = Program {
        n: 4,
        initial_layout: vec![0, 1, 2, 3],
        steps: two_block_movements(4, 0, 2, RotatingSide::Odd)
            .into_iter()
            .map(|move_after| PairStep { move_after })
            .collect(),
    };
    let pairs = prog.step_pairs();
    assert_eq!(pairs[0], vec![(0, 1), (2, 3)]);
    assert_eq!(pairs[1], vec![(0, 3), (2, 1)]);

    // Fig. 3: size-4 two-block ordering needs exactly one level-2 exchange
    let movements = two_block_movements(8, 0, 4, RotatingSide::Odd);
    let level2_steps = movements
        .iter()
        .filter(|m| m.inter_processor_moves().iter().any(|&(f, t)| (f / 2).abs_diff(t / 2) > 1))
        .count();
    assert_eq!(level2_steps, 1);
}

#[test]
fn fig4_modules_match_paper() {
    use treesvd_orderings::four_block::{module_a_movements, module_b_movements};
    // module A restores; module B leaves 3,4 reversed
    let mut layout: Vec<usize> = vec![0, 1, 2, 3];
    for m in module_a_movements(4, 0) {
        layout = m.apply(&layout);
    }
    assert_eq!(layout, vec![0, 1, 2, 3]);
    let mut layout: Vec<usize> = vec![0, 1, 2, 3];
    for m in module_b_movements(4, 0) {
        layout = m.apply(&layout);
    }
    assert_eq!(layout, vec![0, 1, 3, 2]);
}

#[test]
fn all_figures_render_without_panicking() {
    let all = figures::all_figures();
    assert!(all.len() > 2000, "suspiciously short figure output");
}
