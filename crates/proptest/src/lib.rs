//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `proptest` cannot be used. This crate implements the exact
//! subset of its API that the `treesvd` workspace exercises — the
//! `proptest!` macro, `prop_assert*` / `prop_assume!`, range and
//! collection strategies, tuples, and `prop_map` — on top of a
//! deterministic SplitMix64 stream. Cases are seeded from the test name,
//! so every run of a given test sees the same inputs (reproducibility
//! without a persistence file).
//!
//! Shrinking is intentionally not implemented: on failure the macro panics
//! with the failing message; the deterministic seeding makes the failure
//! reproducible by just re-running the test.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;

/// Deterministic generator backing all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream from a test's name (stable across runs).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        Self { state: h.finish() ^ 0xA076_1D64_78BD_642F }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    #[inline]
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer from `[0, n)`.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it is not counted.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure with a message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values for one macro argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value (e.g. draw a
    /// length, then draw vectors of that length).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn pick(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.pick(rng))
    }
}

/// The [`Strategy::prop_flat_map`] combinator.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn pick(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.pick(rng)).pick(rng)
    }
}

/// A strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.next_below(span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Anything usable as a vector-length specification.
    pub trait SizeRange {
        /// Draw a length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            Strategy::pick(self, rng)
        }
    }

    /// A strategy producing `Vec`s of `elem`-generated values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.elem.pick(rng)).collect()
        }
    }

    /// A `Vec` strategy with element strategy `elem` and length spec `len`
    /// (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Filter out a case (not counted toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The test-defining macro. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` inner attribute followed by `fn` items whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(&$config, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::pick(&($strat), rng);)+
                    #[allow(unused_mut)]
                    let mut case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    case()
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Drive one proptest: generate cases until `config.cases` of them pass
/// (rejects do not count), panicking on the first failure.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < 100_000,
                    "{name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: proptest case {accepted} failed: {msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..17, x in -2.5..4.0f64) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.5..4.0).contains(&x));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0.0..1.0f64, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_map(p in (0usize..4, 0usize..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(p <= 6);
        }

        #[test]
        fn assume_filters(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic() {
        crate::run_proptest(&ProptestConfig::with_cases(4), "failures_panic", |_rng| {
            Err(crate::TestCaseError::fail("boom".into()))
        });
    }
}
