//! Parallel Jacobi orderings for tree architectures.
//!
//! This crate implements every ordering from Zhou & Brent, *Parallel
//! Computation of the Singular Value Decomposition on Tree Architectures*
//! (ICPP 1993), plus the two classical baselines the paper compares
//! against:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`round_robin`] | Fig. 1(b), Brent & Luk's round-robin ordering \[2\] |
//! | [`ring`] | Fig. 1(a), a ring ordering in the style of Eberlein & Park \[3\] |
//! | [`two_block`] | §3.1, Figs. 2–3: the two-block ordering |
//! | [`four_block`] | §3.2, Fig. 4: the four-block basic modules |
//! | [`fat_tree`] | §3.3, Figs. 5–6: the fat-tree (merge) ordering |
//! | [`new_ring`] | §4, Figs. 7–8: the new one-directional ring orderings |
//! | [`hybrid`] | §5, Fig. 9: the hybrid ordering for skinny fat-trees |
//! | [`llb`] | the Lee–Luk–Boley-style fat-tree ordering \[8\] (baseline) |
//!
//! # The slot model
//!
//! An ordering on `n` indices is executed by `n/2` processors, each owning
//! two *slots*. A [`Program`](schedule::Program) describes one sweep: the
//! slot→index layout at the start of the sweep and, for each of the sweep's
//! steps, the slot permutation applied *after* the step's rotations. The
//! pair rotated by processor `p` at a step is simply whatever occupies
//! slots `2p` and `2p+1` at that moment — exactly the "two indices in the
//! same column" convention of the paper's figures.
//!
//! The sweep-validity checkers (every pair exactly once per sweep; layout
//! restoration after the ordering's period; ownership safety; deadlock
//! freedom) live in the `treesvd-analyze` crate, the workspace's canonical
//! schedule verifier. [`validate`] keeps the traffic bookkeeping the
//! constructions reason about, [`equivalence`] implements the paper's
//! Definition 1 (orderings equivalent up to index relabelling), and
//! [`render`] prints paper-style index-pair tables for every figure.
//!
//! ```
//! use treesvd_orderings::{FatTreeOrdering, JacobiOrdering};
//!
//! let ord = FatTreeOrdering::new(8).unwrap();
//! let sweep = ord.sweep_program(0, &ord.initial_layout());
//! assert_eq!(sweep.steps.len(), 7);                      // n - 1 steps
//! assert_eq!(sweep.step_pair_sets().len(), 7);           // n/2 pairs per step
//! assert_eq!(sweep.final_layout(), ord.initial_layout()); // order restored (§3)
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod equivalence;
pub mod fat_tree;
pub mod four_block;
pub mod hybrid;
pub mod llb;
pub mod new_ring;
#[cfg(test)]
mod proptests;
pub mod render;
pub mod ring;
pub mod round_robin;
pub mod schedule;
pub mod two_block;
pub mod validate;

pub use schedule::{
    pair_key, ColIndex, JacobiOrdering, OrderingError, PairStep, Permutation, Program, Slot,
};

pub use fat_tree::FatTreeOrdering;
pub use hybrid::{HybridOrdering, IntraGroupOrdering};
pub use llb::LlbFatTreeOrdering;
pub use new_ring::{ModifiedRingOrdering, NewRingOrdering};
pub use ring::RingOrdering;
pub use round_robin::RoundRobinOrdering;

/// Every ordering in this crate, behind one enum for easy sweeping in
/// experiments and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingKind {
    /// Fig. 1(a) baseline ring ordering.
    Ring,
    /// Fig. 1(b) Brent–Luk round-robin.
    RoundRobin,
    /// §3 fat-tree (merge) ordering.
    FatTree,
    /// §4 new one-directional ring ordering (Fig. 7).
    NewRing,
    /// §4 modified ring ordering (Fig. 8).
    ModifiedRing,
    /// Lee–Luk–Boley-style fat-tree ordering with forward/backward sweeps.
    Llb,
    /// §5 hybrid ordering (fat-tree within groups, ring between groups).
    Hybrid,
}

impl OrderingKind {
    /// All kinds, in presentation order.
    pub const ALL: [OrderingKind; 7] = [
        OrderingKind::Ring,
        OrderingKind::RoundRobin,
        OrderingKind::FatTree,
        OrderingKind::NewRing,
        OrderingKind::ModifiedRing,
        OrderingKind::Llb,
        OrderingKind::Hybrid,
    ];

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            OrderingKind::Ring => "ring",
            OrderingKind::RoundRobin => "round-robin",
            OrderingKind::FatTree => "fat-tree",
            OrderingKind::NewRing => "new-ring",
            OrderingKind::ModifiedRing => "modified-ring",
            OrderingKind::Llb => "llb-fat-tree",
            OrderingKind::Hybrid => "hybrid",
        }
    }

    /// Instantiate the ordering for `n` columns.
    ///
    /// For [`OrderingKind::Hybrid`] a default group count is chosen by
    /// [`HybridOrdering::with_default_groups`]; use [`HybridOrdering::new`]
    /// directly for explicit control.
    ///
    /// # Errors
    /// Propagates each ordering's size requirements (even `n`; powers of
    /// two for the tree orderings).
    pub fn build(self, n: usize) -> Result<Box<dyn JacobiOrdering>, OrderingError> {
        Ok(match self {
            OrderingKind::Ring => Box::new(RingOrdering::new(n)?),
            OrderingKind::RoundRobin => Box::new(RoundRobinOrdering::new(n)?),
            OrderingKind::FatTree => Box::new(FatTreeOrdering::new(n)?),
            OrderingKind::NewRing => Box::new(NewRingOrdering::new(n)?),
            OrderingKind::ModifiedRing => Box::new(ModifiedRingOrdering::new(n)?),
            OrderingKind::Llb => Box::new(LlbFatTreeOrdering::new(n)?),
            OrderingKind::Hybrid => Box::new(HybridOrdering::with_default_groups(n)?),
        })
    }
}

impl std::fmt::Display for OrderingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
