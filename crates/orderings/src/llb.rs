//! A Lee–Luk–Boley-style fat-tree ordering (reference \[8\]) — the baseline
//! the paper's §3 improves upon.
//!
//! Reference \[8\] (Lee, Luk & Boley, *Computing the SVD on a fat-tree
//! architecture*, RPI TR 92-33) was not available to us, so this is a
//! reconstruction capturing exactly the behaviour the paper criticizes:
//!
//! * after a *forward* sweep the indices are permuted (the singular vectors
//!   end up in the "wrong" processors), so a *backward* sweep — the forward
//!   sweep performed in reverse order — must follow; the layout is restored
//!   only after each forward/backward pair;
//! * the first rotation of each backward sweep acts on the same pairs as
//!   the last rotation of the preceding forward sweep (and could be
//!   omitted);
//! * the number of steps between two rotations of the same pair varies
//!   wildly between sweeps, which may slow convergence (§3, disadvantage 1);
//! * if termination happens to require an odd number of sweeps, an extra
//!   half-sweep is wasted on average (§3, disadvantage 2).
//!
//! The forward sweep is the same merge procedure as
//! [`FatTreeOrdering`](crate::fat_tree::FatTreeOrdering) but *without* the
//! closing interchanges that return blocks to their home positions (their
//! communication is what \[8\] saves — and what costs it the restoration
//! property). Communication locality is therefore the same as the fat-tree
//! ordering's, making this the right baseline for the §3 comparison.

use crate::schedule::{
    require_power_of_two, ColIndex, JacobiOrdering, OrderingError, PairStep, Permutation, Program,
};
use crate::two_block::{perm_from_moves, two_block_movements, RotatingSide};

/// Movements of the LLB-style *forward* sweep: the merge procedure without
/// the home-returning interchange after each stage. The final movement is
/// the identity, so the backward sweep's first step repeats the forward
/// sweep's last pairs — the omittable rotation the paper mentions.
fn forward_movements(n: usize) -> Vec<Permutation> {
    // stage 1: module B (Fig. 4(b)) — the simpler module whose sweep leaves
    // indices 3,4 reversed
    let mut movements: Vec<Permutation> = (0..3)
        .map(|step| {
            let mut acc = Permutation::identity(n);
            for g in (0..n).step_by(4) {
                acc = acc.then(&crate::four_block::module_b_movements(n, g)[step]);
            }
            acc
        })
        .collect();

    let mut g = 4;
    while g < n {
        // I_pre: block 2 <-> block 3
        let mut moves = Vec::new();
        for b0 in (0..n).step_by(2 * g) {
            for i in 0..g / 2 {
                let a = b0 + 2 * i + 1;
                let b = b0 + g + 2 * i;
                moves.push((a, b));
                moves.push((b, a));
            }
        }
        let last = movements.len() - 1;
        movements[last] = movements[last].clone().then(&perm_from_moves(n, &moves));

        movements.extend(merged_two_blocks(n, g));

        // I_mid: block 3 <-> block 4
        let mut moves = Vec::new();
        for b0 in (0..n).step_by(2 * g) {
            for i in 0..g / 2 {
                let a = b0 + 2 * i + 1;
                let b = b0 + g + 2 * i + 1;
                moves.push((a, b));
                moves.push((b, a));
            }
        }
        let last = movements.len() - 1;
        movements[last] = movements[last].clone().then(&perm_from_moves(n, &moves));

        movements.extend(merged_two_blocks(n, g));
        // no I_post: blocks stay displaced — the communication [8] saves
        g *= 2;
    }
    // the movement after the final step is the identity, so the backward
    // sweep's first step sees exactly the forward sweep's last pairs (for
    // n = 4 this drops module B's trailing exchange, leaving the indices
    // permuted — which is the point of this baseline)
    let last = movements.len() - 1;
    movements[last] = Permutation::identity(n);
    movements
}

fn merged_two_blocks(n: usize, g: usize) -> Vec<Permutation> {
    let mut acc: Option<Vec<Permutation>> = None;
    for b0 in (0..n).step_by(2 * g) {
        let l = two_block_movements(n, b0, g / 2, RotatingSide::Odd);
        let r = two_block_movements(n, b0 + g, g / 2, RotatingSide::Odd);
        let both: Vec<Permutation> = l.into_iter().zip(r.iter()).map(|(x, y)| x.then(y)).collect();
        acc = Some(match acc {
            None => both,
            Some(prev) => prev.into_iter().zip(both.iter()).map(|(x, y)| x.then(y)).collect(),
        });
    }
    acc.expect("at least one super-group")
}

/// The LLB-style baseline: forward sweeps on even sweep numbers, backward
/// sweeps (the forward sweep reversed) on odd ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlbFatTreeOrdering {
    n: usize,
}

impl LlbFatTreeOrdering {
    /// Build for `n` indices (`n` a power of two, `n ≥ 4`).
    ///
    /// # Errors
    /// [`OrderingError::NotPowerOfTwo`] / [`OrderingError::TooSmall`].
    pub fn new(n: usize) -> Result<Self, OrderingError> {
        require_power_of_two(n)?;
        Ok(Self { n })
    }
}

impl JacobiOrdering for LlbFatTreeOrdering {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        "llb-fat-tree".to_string()
    }

    fn restore_period(&self) -> usize {
        2
    }

    fn sweep_program(&self, sweep: usize, layout: &[ColIndex]) -> Program {
        assert_eq!(layout.len(), self.n, "layout size mismatch");
        let fwd = forward_movements(self.n);
        let movements: Vec<Permutation> = if sweep.is_multiple_of(2) {
            fwd
        } else {
            // backward: visit the forward layouts in reverse; movement after
            // backward step j is the inverse of forward movement m-j-1, and
            // the last movement is the identity.
            let m = fwd.len();
            let mut out: Vec<Permutation> = (0..m - 1).map(|j| fwd[m - 2 - j].inverse()).collect();
            out.push(Permutation::identity(self.n));
            out
        };
        let steps = movements.into_iter().map(|move_after| PairStep { move_after }).collect();
        Program { n: self.n, initial_layout: layout.to_vec(), steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // sweep validity of both the forward and backward sweeps is asserted by
    // the treesvd-analyze verifier in the cross-crate suites

    #[test]
    fn rejects_bad_sizes() {
        assert!(LlbFatTreeOrdering::new(6).is_err());
        assert!(LlbFatTreeOrdering::new(8).is_ok());
    }

    #[test]
    fn forward_sweep_permutes_indices() {
        // the paper's complaint: singular vectors end up in the wrong
        // processors after a forward sweep
        for n in [8usize, 16, 32] {
            let ord = LlbFatTreeOrdering::new(n).unwrap();
            let prog = ord.sweep_program(0, &ord.initial_layout());
            assert_ne!(prog.final_layout(), ord.initial_layout(), "n = {n}");
        }
    }

    #[test]
    fn backward_first_step_repeats_forward_last_pairs() {
        // the omittable rotation at the start of every backward sweep
        let ord = LlbFatTreeOrdering::new(16).unwrap();
        let progs = ord.programs(2);
        let fwd_pairs = progs[0].step_pairs();
        let bwd_pairs = progs[1].step_pairs();
        let last_fwd: std::collections::HashSet<(usize, usize)> =
            fwd_pairs.last().unwrap().iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        let first_bwd: std::collections::HashSet<(usize, usize)> =
            bwd_pairs[0].iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        assert_eq!(last_fwd, first_bwd);
    }

    #[test]
    fn backward_sweep_is_forward_reversed() {
        let ord = LlbFatTreeOrdering::new(8).unwrap();
        let progs = ord.programs(2);
        let fwd: Vec<std::collections::HashSet<(usize, usize)>> = progs[0]
            .step_pairs()
            .iter()
            .map(|s| s.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect())
            .collect();
        let bwd: Vec<std::collections::HashSet<(usize, usize)>> = progs[1]
            .step_pairs()
            .iter()
            .map(|s| s.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect())
            .collect();
        for (j, b) in bwd.iter().enumerate() {
            assert_eq!(*b, fwd[fwd.len() - 1 - j], "backward step {j}");
        }
    }

    #[test]
    fn sweeps_have_n_minus_1_steps() {
        let ord = LlbFatTreeOrdering::new(32).unwrap();
        for prog in ord.programs(2) {
            assert_eq!(prog.steps.len(), 31);
        }
    }

    #[test]
    fn rotation_gap_varies_across_sweep_pairs() {
        // §3 disadvantage 1: the number of rotations between two meetings of
        // a fixed pair is variable, not constant. Measure the gap (in steps)
        // between consecutive meetings of each pair over 4 sweeps.
        let ord = LlbFatTreeOrdering::new(16).unwrap();
        let mut last_met = std::collections::HashMap::new();
        let mut gaps: std::collections::HashMap<(usize, usize), Vec<usize>> =
            std::collections::HashMap::new();
        let mut t = 0usize;
        for prog in ord.programs(4) {
            for step in prog.step_pairs() {
                for (a, b) in step {
                    let key = (a.min(b), a.max(b));
                    if let Some(prev) = last_met.insert(key, t) {
                        gaps.entry(key).or_default().push(t - prev);
                    }
                }
                t += 1;
            }
        }
        let variable = gaps.values().any(|g| {
            let min = g.iter().min().unwrap();
            let max = g.iter().max().unwrap();
            max > min
        });
        assert!(variable, "expected variable inter-rotation gaps");
    }
}
