//! The baseline ring ordering (paper Fig. 1(a), after Eberlein & Park \[3\]).
//!
//! The figure's numerals did not survive our source scan, so this is a
//! faithful reconstruction of a classical ring Jacobi ordering with the
//! properties §3 and §4 attribute to Fig. 1(a):
//!
//! * a valid sweep of `n − 1` steps with nearest-neighbour *ring*
//!   communication — the wrap-around link `P−1 → 0` carries traffic at
//!   every step, so the schedule genuinely needs the ring;
//! * messages are evenly distributed (at most one per link per direction
//!   per step) but flow in **both** directions around the ring — the §4
//!   new ring ordering's improvement is precisely that its messages travel
//!   in one direction only;
//! * when the ring is embedded in a tree, the step-to-step traffic crosses
//!   *every* tree level including the root — the "global communication at
//!   each step" disadvantage §3 cites for both Fig. 1 orderings.
//!
//! Construction: the round-robin tournament caterpillar with the
//! processors renamed by a half-ring rotation, so the fixed index sits at
//! processor `P/2` and the caterpillar's turning traffic lands on the
//! wrap-around link. The layout is restored after every sweep.

use crate::schedule::{
    require_even, ColIndex, JacobiOrdering, OrderingError, PairStep, Permutation, Program,
};

/// The Fig. 1(a) baseline ring ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingOrdering {
    n: usize,
}

impl RingOrdering {
    /// Build for `n` indices (`n` even, `n ≥ 4`).
    ///
    /// # Errors
    /// [`OrderingError::OddSize`] / [`OrderingError::TooSmall`].
    pub fn new(n: usize) -> Result<Self, OrderingError> {
        require_even(n)?;
        Ok(Self { n })
    }

    /// The per-step movement (identical at every step): the round-robin
    /// tournament caterpillar with the processors renamed by a half-ring
    /// rotation, so the fixed index sits at processor `P/2` and the
    /// caterpillar's turning traffic crosses the ring's wrap-around link
    /// `P−1 → 0` at every step.
    pub fn movement(n: usize) -> Permutation {
        let procs = n / 2;
        let rot = procs / 2;
        let rho = |s: usize| -> usize { ((s / 2 + rot) % procs) * 2 + s % 2 };
        let rr = crate::round_robin::RoundRobinOrdering::movement(n);
        let mut dest = vec![0usize; n];
        for s in 0..n {
            dest[rho(s)] = rho(rr.dest_of(s));
        }
        Permutation::from_dest(dest)
    }
}

impl JacobiOrdering for RingOrdering {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        "ring".to_string()
    }

    fn restore_period(&self) -> usize {
        1
    }

    fn sweep_program(&self, _sweep: usize, layout: &[ColIndex]) -> Program {
        assert_eq!(layout.len(), self.n, "layout size mismatch");
        let movement = Self::movement(self.n);
        let steps = (0..self.n - 1).map(|_| PairStep { move_after: movement.clone() }).collect();
        Program { n: self.n, initial_layout: layout.to_vec(), steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::ring_traffic;

    // sweep validity and order restoration are asserted by the
    // treesvd-analyze verifier in the cross-crate suites

    #[test]
    fn rejects_bad_sizes() {
        assert!(RingOrdering::new(7).is_err());
        assert!(RingOrdering::new(2).is_err());
        assert!(RingOrdering::new(6).is_ok());
    }

    #[test]
    fn n4_schedule() {
        let ord = RingOrdering::new(4).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let pairs = prog.step_pairs();
        assert_eq!(pairs[0], vec![(0, 1), (2, 3)]);
        assert_eq!(pairs[1], vec![(3, 0), (2, 1)]);
        assert_eq!(pairs[2], vec![(1, 3), (2, 0)]);
    }

    #[test]
    fn wraparound_link_used_every_step() {
        // The wrap link P-1 -> 0 distinguishes the ring embedding from a
        // linear array: it must carry traffic at every step.
        let ord = RingOrdering::new(16).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let (cw, _) = ring_traffic(&prog);
        let procs = 8;
        for (s, step) in cw.iter().enumerate() {
            assert!(step[procs - 1] > 0, "step {s}: wrap link idle");
        }
    }

    #[test]
    fn traffic_is_bidirectional_but_light() {
        // At most 2 messages per directed link per step, but both ring
        // directions are used — the §4 new ring ordering removes exactly
        // this bidirectionality.
        let ord = RingOrdering::new(32).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let (cw, ccw) = ring_traffic(&prog);
        for step in cw.iter().chain(ccw.iter()) {
            assert!(step.iter().all(|&c| c <= 2));
        }
        let ccw_total: usize = ccw.iter().flat_map(|s| s.iter()).sum();
        let cw_total: usize = cw.iter().flat_map(|s| s.iter()).sum();
        assert!(ccw_total > 0, "expected counterclockwise traffic");
        assert!(cw_total > 0, "expected clockwise traffic");
    }

    #[test]
    fn fixed_index_never_moves() {
        // the fixed index sits at processor P/2's top slot, i.e. index n/2
        let ord = RingOrdering::new(12).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let counts = crate::validate::move_counts(&prog);
        assert_eq!(counts[6], 0);
        assert_eq!(counts.iter().filter(|&&c| c == 0).count(), 1);
    }
}
