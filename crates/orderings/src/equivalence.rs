//! Ordering equivalence (paper §4, Definition 1).
//!
//! Two orderings are *equivalent* if one sweep of the first can be obtained
//! from one sweep of the second by a relabelling of indices \[12\]. The
//! paper proves its new ring ordering equivalent to the Brent–Luk
//! round-robin this way; equivalent orderings have the same convergence
//! properties.
//!
//! [`find_relabelling`] searches for such a relabelling by backtracking
//! over the step-by-step pair structure; [`are_equivalent`] is the
//! predicate form.

use crate::schedule::{pair_key as key, ColIndex, Program};
use std::collections::HashSet;

/// Try to find a permutation `pi` of `0..n` such that applying `pi` to
/// every index of sweep `a` yields, step for step, exactly the pair sets of
/// sweep `b`.
///
/// Returns `None` when no relabelling exists (or when the sweeps have
/// different shapes). The search is exact: backtracking over the pairs of
/// each step with forward constraint propagation.
pub fn find_relabelling(a: &Program, b: &Program) -> Option<Vec<ColIndex>> {
    if a.n != b.n || a.steps.len() != b.steps.len() {
        return None;
    }
    let n = a.n;
    let a_steps: Vec<Vec<(usize, usize)>> = a.step_pairs();
    let b_sets: Vec<HashSet<(usize, usize)>> = b.step_pair_sets();

    let mut pi: Vec<Option<usize>> = vec![None; n];
    let mut used: Vec<bool> = vec![false; n];

    // Process pairs in step order; at each a-pair, try all compatible
    // b-pairs of the same step.
    let flat: Vec<(usize, (usize, usize))> = a_steps
        .iter()
        .enumerate()
        .flat_map(|(s, pairs)| pairs.iter().map(move |&(x, y)| (s, (x, y))))
        .collect();

    fn dfs(
        i: usize,
        flat: &[(usize, (usize, usize))],
        b_sets: &[HashSet<(usize, usize)>],
        pi: &mut Vec<Option<usize>>,
        used: &mut Vec<bool>,
    ) -> bool {
        if i == flat.len() {
            return true;
        }
        let (s, (x, y)) = flat[i];
        match (pi[x], pi[y]) {
            (Some(px), Some(py)) => {
                b_sets[s].contains(&key(px, py)) && dfs(i + 1, flat, b_sets, pi, used)
            }
            (Some(px), None) => {
                // partner must pair with px in step s
                let candidates: Vec<usize> = b_sets[s]
                    .iter()
                    .filter_map(|&(u, v)| {
                        if u == px {
                            Some(v)
                        } else if v == px {
                            Some(u)
                        } else {
                            None
                        }
                    })
                    .collect();
                for c in candidates {
                    if !used[c] {
                        pi[y] = Some(c);
                        used[c] = true;
                        if dfs(i + 1, flat, b_sets, pi, used) {
                            return true;
                        }
                        pi[y] = None;
                        used[c] = false;
                    }
                }
                false
            }
            (None, Some(py)) => {
                let candidates: Vec<usize> = b_sets[s]
                    .iter()
                    .filter_map(|&(u, v)| {
                        if u == py {
                            Some(v)
                        } else if v == py {
                            Some(u)
                        } else {
                            None
                        }
                    })
                    .collect();
                for c in candidates {
                    if !used[c] {
                        pi[x] = Some(c);
                        used[c] = true;
                        if dfs(i + 1, flat, b_sets, pi, used) {
                            return true;
                        }
                        pi[x] = None;
                        used[c] = false;
                    }
                }
                false
            }
            (None, None) => {
                // try every pair of step s with both endpoints free
                let pairs: Vec<(usize, usize)> = b_sets[s].iter().copied().collect();
                for (u, v) in pairs {
                    for (pu, pv) in [(u, v), (v, u)] {
                        if !used[pu] && !used[pv] {
                            pi[x] = Some(pu);
                            pi[y] = Some(pv);
                            used[pu] = true;
                            used[pv] = true;
                            if dfs(i + 1, flat, b_sets, pi, used) {
                                return true;
                            }
                            pi[x] = None;
                            pi[y] = None;
                            used[pu] = false;
                            used[pv] = false;
                        }
                    }
                }
                false
            }
        }
    }

    if dfs(0, &flat, &b_sets, &mut pi, &mut used) {
        Some(pi.into_iter().map(|v| v.expect("complete assignment")).collect())
    } else {
        None
    }
}

/// Whether one sweep of `a` is a relabelling of one sweep of `b`.
pub fn are_equivalent(a: &Program, b: &Program) -> bool {
    find_relabelling(a, b).is_some()
}

/// Verify that `pi` is a relabelling taking sweep `a` to sweep `b`.
pub fn verify_relabelling(a: &Program, b: &Program, pi: &[ColIndex]) -> bool {
    if a.n != b.n || pi.len() != a.n || a.steps.len() != b.steps.len() {
        return false;
    }
    let b_steps: Vec<HashSet<(usize, usize)>> = b.step_pair_sets();
    for (s, pairs) in a.step_pairs().iter().enumerate() {
        for &(x, y) in pairs {
            if !b_steps[s].contains(&key(pi[x], pi[y])) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::new_ring::NewRingOrdering;
    use crate::ring::RingOrdering;
    use crate::round_robin::RoundRobinOrdering;
    use crate::schedule::JacobiOrdering;

    fn sweep(ord: &dyn JacobiOrdering) -> Program {
        ord.sweep_program(0, &ord.initial_layout())
    }

    #[test]
    fn identity_relabelling_of_itself() {
        let ord = RoundRobinOrdering::new(8).unwrap();
        let prog = sweep(&ord);
        let pi = find_relabelling(&prog, &prog).expect("self-equivalence");
        assert!(verify_relabelling(&prog, &prog, &pi));
    }

    #[test]
    fn new_ring_equivalent_to_round_robin() {
        // the paper's §4 theorem
        for n in [4usize, 6, 8, 10, 12] {
            let nr = sweep(&NewRingOrdering::new(n).unwrap());
            let rr = sweep(&RoundRobinOrdering::new(n).unwrap());
            let pi = find_relabelling(&nr, &rr)
                .unwrap_or_else(|| panic!("n = {n}: no relabelling found"));
            assert!(verify_relabelling(&nr, &rr, &pi), "n = {n}");
        }
    }

    #[test]
    fn ring_equivalent_to_round_robin() {
        // the Fig. 1(a) ring ordering is a tournament relabelling too
        for n in [4usize, 8, 10] {
            let r = sweep(&RingOrdering::new(n).unwrap());
            let rr = sweep(&RoundRobinOrdering::new(n).unwrap());
            assert!(are_equivalent(&r, &rr), "n = {n}");
        }
    }

    #[test]
    fn non_equivalent_sweeps_rejected() {
        // the fat-tree ordering's sweep is NOT a relabelling of round-robin
        // in general (different step structure of meetings)
        let ft = sweep(&crate::fat_tree::FatTreeOrdering::new(8).unwrap());
        let rr = sweep(&RoundRobinOrdering::new(8).unwrap());
        // both are valid sweeps of 7 steps, but the meeting structure
        // differs; if a relabelling exists it must verify, and if not the
        // search must return None. Either way verify_relabelling with a
        // wrong map fails:
        let wrong: Vec<usize> = (0..8).collect();
        let equal_already = verify_relabelling(&ft, &rr, &wrong);
        assert!(!equal_already, "fat-tree sweep should differ from round-robin as-is");
    }

    #[test]
    fn shape_mismatch_is_not_equivalent() {
        let a = sweep(&RoundRobinOrdering::new(8).unwrap());
        let b = sweep(&RoundRobinOrdering::new(6).unwrap());
        assert!(find_relabelling(&a, &b).is_none());
    }

    #[test]
    fn verify_rejects_bad_relabelling() {
        let nr = sweep(&NewRingOrdering::new(8).unwrap());
        let rr = sweep(&RoundRobinOrdering::new(8).unwrap());
        // a permutation that cannot work: reverse everything
        let bad: Vec<usize> = (0..8).rev().collect();
        assert!(!verify_relabelling(&nr, &rr, &bad));
    }
}
