//! Property-based tests of the schedule algebra and ordering invariants.

#![cfg(test)]

use crate::schedule::{JacobiOrdering, Permutation};
use crate::{
    FatTreeOrdering, HybridOrdering, LlbFatTreeOrdering, ModifiedRingOrdering, NewRingOrdering,
    RingOrdering, RoundRobinOrdering,
};
use proptest::prelude::*;

/// A random permutation of `0..n` built from swaps.
fn permutation(n: usize) -> impl Strategy<Value = Permutation> {
    proptest::collection::vec(0usize..n, 0..2 * n).prop_map(move |swaps| {
        let mut dest: Vec<usize> = (0..n).collect();
        for w in swaps.chunks(2) {
            if w.len() == 2 {
                dest.swap(w[0], w[1]);
            }
        }
        Permutation::from_dest(dest)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn permutation_inverse_law(p in permutation(12)) {
        prop_assert!(p.then(&p.inverse()).is_identity());
        prop_assert!(p.inverse().then(&p).is_identity());
    }

    #[test]
    fn permutation_apply_respects_composition(p in permutation(10), q in permutation(10)) {
        let layout: Vec<usize> = (100..110).collect();
        let one = q.apply(&p.apply(&layout));
        let two = p.then(&q).apply(&layout);
        prop_assert_eq!(one, two);
    }

    #[test]
    fn inter_processor_moves_subset_of_moves(p in permutation(16)) {
        let all = p.moves();
        let cross = p.inter_processor_moves();
        prop_assert!(cross.len() <= all.len());
        for m in &cross {
            prop_assert!(all.contains(m));
            prop_assert_ne!(m.0 / 2, m.1 / 2);
        }
    }

    #[test]
    fn net_permutation_order_divides_restore_period_times_sweeps(k in 2usize..12) {
        // applying an ordering's sweeps for `period` sweeps gives the
        // identity net permutation on indices
        let n = 2 * k;
        let ords: Vec<Box<dyn JacobiOrdering>> = vec![
            Box::new(RoundRobinOrdering::new(n).unwrap()),
            Box::new(RingOrdering::new(n).unwrap()),
            Box::new(NewRingOrdering::new(n).unwrap()),
            Box::new(ModifiedRingOrdering::new(n).unwrap()),
        ];
        for ord in ords {
            let progs = ord.programs(ord.restore_period());
            let mut layout = ord.initial_layout();
            for p in &progs {
                layout = p.final_layout();
                let _ = p;
            }
            prop_assert_eq!(layout, ord.initial_layout());
        }
    }

    #[test]
    fn every_step_is_a_perfect_matching(e in 2u32..7) {
        let n = 1usize << e;
        let ords: Vec<Box<dyn JacobiOrdering>> = vec![
            Box::new(FatTreeOrdering::new(n).unwrap()),
            Box::new(LlbFatTreeOrdering::new(n).unwrap()),
        ];
        for ord in ords {
            let prog = ord.sweep_program(0, &ord.initial_layout());
            for step in prog.step_pairs() {
                let mut seen = std::collections::HashSet::new();
                for (a, b) in step {
                    prop_assert!(seen.insert(a));
                    prop_assert!(seen.insert(b));
                }
                prop_assert_eq!(seen.len(), n);
            }
        }
    }

    #[test]
    fn hybrid_total_messages_independent_of_group_count(we in 2u32..4, m in 2usize..5) {
        // each column is shifted the same total number of times per sweep
        // whatever the grouping — the ring's even-shift bookkeeping
        let w = 1usize << we;
        let n = m * w;
        let ord = HybridOrdering::new(n, m).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        // total messages bounded and nonzero
        let msgs = prog.total_messages();
        prop_assert!(msgs > 0);
        prop_assert!(msgs <= (n - 1) * n);
    }

    #[test]
    fn sweep_programs_are_deterministic(k in 2usize..10) {
        let n = 2 * k;
        let ord = NewRingOrdering::new(n).unwrap();
        let p1 = ord.sweep_program(0, &ord.initial_layout());
        let p2 = ord.sweep_program(0, &ord.initial_layout());
        prop_assert_eq!(p1.step_pairs(), p2.step_pairs());
        prop_assert_eq!(p1.final_layout(), p2.final_layout());
    }
}
