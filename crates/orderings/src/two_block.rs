//! The two-block ordering of §3.1 (Figs. 2 and 3).
//!
//! Two blocks of `k` indices each are *interleaved* over a region of `2k`
//! consecutive slots (`k` processors): one block in the even slots, the
//! other in the odd slots. Each step pairs the co-resident columns, so
//! every pair is one even-slot index and one odd-slot index; over `k` steps
//! each index of one block meets each index of the other exactly once
//! (`k²` pairs).
//!
//! The divide-and-conquer structure follows the paper exactly: the problem
//! of size `k` splits into four half-size sub-problems solved in two
//! super-steps, with the *rotating* block's two halves exchanged between
//! the super-steps (a level-`log2(k)` communication, the highest this
//! ordering ever uses). The basic module (`k = 2`, Fig. 2) needs only
//! level-one communication.
//!
//! After one application the rotating block's two halves have exchanged
//! places with the order inside each half preserved (§3.1.2); applying the
//! ordering twice restores the layout.

use crate::schedule::Permutation;

/// Which slot-parity class rotates during the ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotatingSide {
    /// The block in the even slots rotates.
    Even,
    /// The block in the odd slots rotates (the paper's "second block").
    Odd,
}

impl RotatingSide {
    fn offset(self) -> usize {
        match self {
            RotatingSide::Even => 0,
            RotatingSide::Odd => 1,
        }
    }
}

/// Build a full-width permutation from a partial move list (`(from, to)`
/// entries; unlisted slots stay).
///
/// # Panics
/// Panics if the moves do not form a permutation.
pub(crate) fn perm_from_moves(n: usize, moves: &[(usize, usize)]) -> Permutation {
    let mut dest: Vec<usize> = (0..n).collect();
    for &(f, t) in moves {
        dest[f] = t;
    }
    Permutation::from_dest(dest)
}

/// Compose two permutations acting on (typically disjoint) slot sets.
fn merge(a: Permutation, b: &Permutation) -> Permutation {
    a.then(b)
}

/// The movement permutations of a two-block ordering of block size `k`
/// over region `[base, base + 2k)` of an `n`-slot machine.
///
/// Returns exactly `k` permutations: the movement *after* each of the `k`
/// steps; the last entry is the identity (the net half-exchange of the
/// rotating block is produced by the internal movements).
///
/// # Panics
/// Panics if `k` is not a power of two or the region exceeds `n` slots.
pub fn two_block_movements(n: usize, base: usize, k: usize, rot: RotatingSide) -> Vec<Permutation> {
    assert!(k.is_power_of_two(), "block size must be a power of two");
    assert!(base + 2 * k <= n, "region out of range");
    if k == 1 {
        return vec![Permutation::identity(n)];
    }
    let sub_l = two_block_movements(n, base, k / 2, rot);
    let sub_r = two_block_movements(n, base + k, k / 2, rot);
    let combined: Vec<Permutation> =
        sub_l.into_iter().zip(sub_r.iter()).map(|(l, r)| merge(l, r)).collect();
    // the half-exchange of the rotating class between the super-steps
    let off = rot.offset();
    let mut moves = Vec::with_capacity(k);
    for i in 0..k / 2 {
        let a = base + 2 * i + off;
        let b = base + k + 2 * i + off;
        moves.push((a, b));
        moves.push((b, a));
    }
    let half_swap = perm_from_moves(n, &moves);

    let mut out = Vec::with_capacity(k);
    out.extend(combined[..k / 2 - 1].iter().cloned());
    out.push(half_swap);
    out.extend(combined);
    debug_assert_eq!(out.len(), k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Execute the movements starting from the identity layout and return
    /// (pairs per step, final layout).
    fn run(
        n: usize,
        base: usize,
        k: usize,
        rot: RotatingSide,
    ) -> (Vec<Vec<(usize, usize)>>, Vec<usize>) {
        let movements = two_block_movements(n, base, k, rot);
        let mut layout: Vec<usize> = (0..n).collect();
        let mut pairs = Vec::new();
        for m in &movements {
            pairs.push(layout.chunks(2).map(|c| (c[0], c[1])).collect());
            layout = m.apply(&layout);
        }
        (pairs, layout)
    }

    #[test]
    fn basic_module_matches_fig2() {
        // k = 2 on a 4-slot machine: blocks A = {0, 2} (even), B = {1, 3}
        // (odd). Step 1 pairs (0,1),(2,3); step 2 pairs (0,3),(2,1).
        let (pairs, layout) = run(4, 0, 2, RotatingSide::Odd);
        assert_eq!(pairs[0], vec![(0, 1), (2, 3)]);
        assert_eq!(pairs[1], vec![(0, 3), (2, 1)]);
        // B's two indices exchanged afterwards, A untouched
        assert_eq!(layout, vec![0, 3, 2, 1]);
    }

    #[test]
    fn each_cross_pair_met_exactly_once() {
        for k in [1usize, 2, 4, 8, 16] {
            let n = 2 * k;
            let (pairs, _) = run(n, 0, k, RotatingSide::Odd);
            assert_eq!(pairs.len(), k);
            let mut met = HashSet::new();
            for step in &pairs {
                for &(a, b) in step {
                    // a from even class (block A), b odd (block B)
                    assert_eq!(a % 2, 0, "left of pair must be block A for identity layout");
                    assert!(met.insert((a, b)), "pair ({a},{b}) repeated");
                }
            }
            assert_eq!(met.len(), k * k, "k = {k}");
        }
    }

    #[test]
    fn rotating_block_halves_exchange_order_preserved() {
        // §3.1.2 for k = 4 (Fig. 3): after one sweep the rotating block's
        // halves (B1, B2) have exchanged positions, each internally ordered.
        let (_, layout) = run(8, 0, 4, RotatingSide::Odd);
        // block A (evens) untouched
        assert_eq!(layout[0], 0);
        assert_eq!(layout[2], 2);
        assert_eq!(layout[4], 4);
        assert_eq!(layout[6], 6);
        // block B was (1,3 | 5,7); halves exchange: (5,7 | 1,3)
        assert_eq!((layout[1], layout[3], layout[5], layout[7]), (5, 7, 1, 3));
    }

    #[test]
    fn double_application_restores() {
        for k in [2usize, 4, 8, 16] {
            let n = 2 * k;
            let movements = two_block_movements(n, 0, k, RotatingSide::Odd);
            let mut layout: Vec<usize> = (0..n).collect();
            for _ in 0..2 {
                for m in &movements {
                    layout = m.apply(&layout);
                }
            }
            assert_eq!(layout, (0..n).collect::<Vec<_>>(), "k = {k}");
        }
    }

    #[test]
    fn even_side_rotation_mirrors_odd() {
        let (_, layout) = run(8, 0, 4, RotatingSide::Even);
        // odd slots untouched, even halves exchanged
        assert_eq!((layout[1], layout[3], layout[5], layout[7]), (1, 3, 5, 7));
        assert_eq!((layout[0], layout[2], layout[4], layout[6]), (4, 6, 0, 2));
    }

    #[test]
    fn works_in_a_subregion() {
        // region [4, 12) of a 16-slot machine; slots outside untouched
        let n = 16;
        let movements = two_block_movements(n, 4, 4, RotatingSide::Odd);
        let mut layout: Vec<usize> = (0..n).collect();
        for m in &movements {
            layout = m.apply(&layout);
        }
        for (s, &v) in layout.iter().enumerate().take(4) {
            assert_eq!(v, s);
        }
        for (s, &v) in layout.iter().enumerate().skip(12) {
            assert_eq!(v, s);
        }
        assert_eq!((layout[5], layout[7], layout[9], layout[11]), (9, 11, 5, 7));
    }

    #[test]
    fn highest_communication_is_the_half_swap() {
        // for k = 8 (16 slots), the longest move spans k slots = k/2 leaves
        let movements = two_block_movements(16, 0, 8, RotatingSide::Odd);
        let max_span = movements
            .iter()
            .flat_map(|m| m.inter_processor_moves())
            .map(|(f, t)| (f / 2).abs_diff(t / 2))
            .max()
            .unwrap();
        assert_eq!(max_span, 4); // k/2 leaves apart
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_block() {
        let _ = two_block_movements(12, 0, 3, RotatingSide::Odd);
    }
}
