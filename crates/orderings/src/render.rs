//! Paper-style rendering of sweep schedules.
//!
//! The paper's figures present an ordering as a table of index pairs per
//! step, with a *level* column giving the highest fat-tree level the
//! following communication ascends through (§3's "level-r communication"),
//! and `global` markers in Fig. 9 where blocks move between groups. This
//! module regenerates those tables from any [`Program`].

use crate::schedule::Program;
use std::fmt::Write as _;

/// The fat-tree level of a communication between two leaves of a complete
/// binary tree: the number of levels a message must ascend to reach the
/// lowest common ancestor. Sibling leaves are level 1; `leaf_a == leaf_b`
/// is level 0 (no communication).
pub fn comm_level(leaf_a: usize, leaf_b: usize) -> usize {
    if leaf_a == leaf_b {
        return 0;
    }
    (usize::BITS - (leaf_a ^ leaf_b).leading_zeros()) as usize
}

/// The highest level any column movement after `step` ascends through,
/// with slots mapped two-per-leaf.
pub fn step_level(prog: &Program, step: usize) -> usize {
    prog.steps[step]
        .move_after
        .inter_processor_moves()
        .iter()
        .map(|&(f, t)| comm_level(f / 2, t / 2))
        .max()
        .unwrap_or(0)
}

/// Render one sweep as a paper-style table: one row per step with 1-based
/// index pairs and the level of the following communication.
///
/// `group_size`, when given, adds the Fig. 9 `global` marker to steps whose
/// following movement crosses a group boundary.
pub fn render_sweep(prog: &Program, group_size: Option<usize>) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "step  index pairs{}", " ".repeat(6 * prog.processors().saturating_sub(2)));
    for (s, pairs) in prog.step_pairs().iter().enumerate() {
        let row: String = pairs
            .iter()
            .map(|&(a, b)| format!("({} {})", a + 1, b + 1))
            .collect::<Vec<_>>()
            .join(" ");
        let lvl = step_level(prog, s);
        let marker = match group_size {
            Some(w) if crosses_group(prog, s, w) => "  global".to_string(),
            _ if lvl > 0 => format!("  level {lvl}"),
            _ => String::new(),
        };
        let _ = writeln!(out, "{:>4}  {row}{marker}", s + 1);
    }
    out
}

/// Whether the movement after `step` crosses a boundary between groups of
/// `w` consecutive slots.
pub fn crosses_group(prog: &Program, step: usize, w: usize) -> bool {
    prog.steps[step].move_after.inter_processor_moves().iter().any(|&(f, t)| f / w != t / w)
}

/// Histogram of communication levels over a sweep: `hist[l]` counts column
/// movements whose route ascends exactly `l` levels (index 0 counts
/// intra-leaf shuffles, which are free).
pub fn level_histogram(prog: &Program) -> Vec<usize> {
    let procs = prog.processors();
    let max_level =
        if procs <= 1 { 1 } else { (usize::BITS - (procs - 1).leading_zeros()) as usize + 1 };
    let mut hist = vec![0usize; max_level + 1];
    for step in &prog.steps {
        for (f, t) in step.move_after.moves() {
            let lvl = comm_level(f / 2, t / 2);
            hist[lvl] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fat_tree::FatTreeOrdering;
    use crate::hybrid::HybridOrdering;
    use crate::schedule::JacobiOrdering;

    #[test]
    fn comm_level_basics() {
        assert_eq!(comm_level(0, 0), 0);
        assert_eq!(comm_level(0, 1), 1); // siblings
        assert_eq!(comm_level(1, 2), 2);
        assert_eq!(comm_level(0, 3), 2);
        assert_eq!(comm_level(0, 4), 3);
        assert_eq!(comm_level(3, 4), 3);
        assert_eq!(comm_level(0, 7), 3);
    }

    #[test]
    fn render_contains_all_steps_and_levels() {
        let ord = FatTreeOrdering::new(8).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let table = render_sweep(&prog, None);
        assert_eq!(table.lines().count(), 8); // header + 7 steps
        assert!(table.contains("(1 2)"));
        assert!(table.contains("level"));
    }

    #[test]
    fn hybrid_render_marks_globals() {
        let ord = HybridOrdering::new(16, 4).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let table = render_sweep(&prog, Some(4));
        let globals = table.matches("global").count();
        // 7 super-boundaries (after steps 3,5,7,9,11,13,15)
        assert_eq!(globals, 7);
    }

    #[test]
    fn level_histogram_sums_to_total_moves() {
        let ord = FatTreeOrdering::new(16).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let hist = level_histogram(&prog);
        let total_moves: usize = prog.steps.iter().map(|s| s.move_after.moves().len()).sum();
        assert_eq!(hist.iter().sum::<usize>(), total_moves);
        // the fat-tree ordering is dominated by low levels
        assert!(hist[1] > hist[hist.len() - 1]);
    }
}
