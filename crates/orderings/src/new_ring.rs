//! The new ring orderings of §4 (Figs. 7 and 8).
//!
//! The paper's new ring ordering runs on a ring of `P = n/2` processors and
//! has the defining property that **messages travel in one direction only**
//! throughout the computation, with exactly one message per ring link per
//! step (evenly distributed, contention-free — the property §5 exploits).
//!
//! # Construction
//!
//! The figure's numerals did not survive in our source scan, so the
//! schedule is *re-derived* from the invariants the text states, which pin
//! it down (we verified by exhaustive search that all one-message-per-link
//! schedules satisfying them generate this pair sequence):
//!
//! * one sweep is `n − 1` steps and is a valid sweep (every pair once);
//! * every message travels clockwise, one per link per step;
//! * index 1 never moves; every other index is shifted an even number of
//!   times per sweep (the property §5's hybrid ordering relies on);
//! * after one sweep indices 1 and 2 are back in place and indices
//!   `3..n` are in *reversed* order; two sweeps restore the layout.
//!
//! The closed form found by the search is a **walking exchange station**:
//! each processor holds a *top* and a *bottom* column. At every step each
//! processor sends one column clockwise. Ordinary processors pass their
//! bottom column along (top stays put); the single *station* processor
//! instead sends its top column and promotes its bottom to top. The
//! station sits at processor 1..P−1 in turn, two steps each, after an
//! opening step in which every processor except 0 acts as a station.
//!
//! The modified ring ordering (Fig. 8) differs in the station walk
//! (an all-station opening step, then stations 0, 1, 1, …, P−2, P−2,
//! P−1): its one-sweep net permutation is the *full* reversal, so singular
//! values come out nondecreasing after an odd number of sweeps and
//! nonincreasing after an even number — exactly the behaviour §4 claims.

use crate::schedule::{
    require_even, ColIndex, JacobiOrdering, OrderingError, PairStep, Permutation, Program, Slot,
};

/// Which slot a processor forwards at a step, in the station model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Pass the bottom column clockwise; the top column stays.
    Pass,
    /// Exchange station: send the top column clockwise; the bottom column
    /// rises to the top slot. Incoming columns always land in the bottom.
    Station,
}

/// Build one step's movement permutation from per-processor roles.
///
/// Every processor sends exactly one column to its clockwise neighbour and
/// receives exactly one into its bottom slot, so each ring link carries one
/// message and all messages flow the same way.
fn step_permutation(roles: &[Role]) -> Permutation {
    let procs = roles.len();
    let n = 2 * procs;
    let mut dest = vec![0usize; n];
    for (p, &role) in roles.iter().enumerate() {
        let top = 2 * p;
        let bottom = 2 * p + 1;
        let next_bottom = 2 * ((p + 1) % procs) + 1;
        match role {
            Role::Pass => {
                dest[top] = top; // top stays
                dest[bottom] = next_bottom; // bottom forwarded clockwise
            }
            Role::Station => {
                dest[top] = next_bottom; // top forwarded clockwise
                dest[bottom] = top; // bottom rises
            }
        }
    }
    Permutation::from_dest(dest)
}

/// Compose `perm` with a within-pair swap on the given processors
/// (intra-processor, therefore free of communication cost).
fn compose_pair_swaps(perm: Permutation, swap_procs: &[usize]) -> Permutation {
    let n = perm.len();
    let mut w: Vec<Slot> = (0..n).collect();
    for &p in swap_procs {
        w.swap(2 * p, 2 * p + 1);
    }
    perm.then(&Permutation::from_dest(w))
}

/// Shared builder: a station-walk program from a role table plus final
/// within-pair swaps.
fn station_program(
    n: usize,
    layout: &[ColIndex],
    roles_per_step: Vec<Vec<Role>>,
    final_swaps: &[usize],
) -> Program {
    debug_assert_eq!(roles_per_step.len(), n - 1);
    let last = roles_per_step.len() - 1;
    let steps = roles_per_step
        .into_iter()
        .enumerate()
        .map(|(i, roles)| {
            let perm = step_permutation(&roles);
            let perm = if i == last { compose_pair_swaps(perm, final_swaps) } else { perm };
            PairStep { move_after: perm }
        })
        .collect();
    Program { n, initial_layout: layout.to_vec(), steps }
}

/// The §4 new ring ordering (Fig. 7(a)): one-directional ring messages,
/// index 1 pinned, indices `3..n` reversed after one sweep, restored after
/// two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewRingOrdering {
    n: usize,
}

impl NewRingOrdering {
    /// Build for `n` indices (`n` even, `n ≥ 4`).
    ///
    /// # Errors
    /// [`OrderingError::OddSize`] / [`OrderingError::TooSmall`].
    pub fn new(n: usize) -> Result<Self, OrderingError> {
        require_even(n)?;
        Ok(Self { n })
    }

    fn roles(&self) -> Vec<Vec<Role>> {
        let procs = self.n / 2;
        let mut out = Vec::with_capacity(self.n - 1);
        // opening step: every processor except 0 is a station
        out.push((0..procs).map(|p| if p == 0 { Role::Pass } else { Role::Station }).collect());
        // then the station walks from processor 1 to P-1, two steps each
        for k in 1..procs {
            let step: Vec<Role> =
                (0..procs).map(|p| if p == k { Role::Station } else { Role::Pass }).collect();
            out.push(step.clone());
            out.push(step);
        }
        out.truncate(self.n - 1);
        out
    }
}

impl JacobiOrdering for NewRingOrdering {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        "new-ring".to_string()
    }

    fn restore_period(&self) -> usize {
        2
    }

    fn sweep_program(&self, _sweep: usize, layout: &[ColIndex]) -> Program {
        assert_eq!(layout.len(), self.n, "layout size mismatch");
        let swaps: Vec<usize> = (1..self.n / 2).collect();
        station_program(self.n, layout, self.roles(), &swaps)
    }
}

/// The §4 modified ring ordering (Fig. 8(a)): identical machinery, but the
/// sweep's net permutation is the full reversal, so singular values emerge
/// nondecreasing after an odd number of sweeps and nonincreasing after an
/// even number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModifiedRingOrdering {
    n: usize,
}

impl ModifiedRingOrdering {
    /// Build for `n` indices (`n` even, `n ≥ 4`).
    ///
    /// # Errors
    /// [`OrderingError::OddSize`] / [`OrderingError::TooSmall`].
    pub fn new(n: usize) -> Result<Self, OrderingError> {
        require_even(n)?;
        Ok(Self { n })
    }

    fn roles(&self) -> Vec<Vec<Role>> {
        let procs = self.n / 2;
        let mut out: Vec<Vec<Role>> = Vec::with_capacity(self.n - 1);
        // all-station opening step
        out.push(vec![Role::Station; procs]);
        // station at processor 0, once
        out.push((0..procs).map(|p| if p == 0 { Role::Station } else { Role::Pass }).collect());
        // stations 1..P-2, two steps each
        for k in 1..procs.saturating_sub(1) {
            let step: Vec<Role> =
                (0..procs).map(|p| if p == k { Role::Station } else { Role::Pass }).collect();
            out.push(step.clone());
            out.push(step);
        }
        // station at P-1, once
        out.push(
            (0..procs).map(|p| if p == procs - 1 { Role::Station } else { Role::Pass }).collect(),
        );
        out.truncate(self.n - 1);
        out
    }
}

impl JacobiOrdering for ModifiedRingOrdering {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        "modified-ring".to_string()
    }

    fn restore_period(&self) -> usize {
        2
    }

    fn sweep_program(&self, _sweep: usize, layout: &[ColIndex]) -> Program {
        assert_eq!(layout.len(), self.n, "layout size mismatch");
        let swaps: Vec<usize> = (0..self.n / 2 - 1).collect();
        station_program(self.n, layout, self.roles(), &swaps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{all_moves_even, is_one_directional, max_link_load, move_counts};

    // sweep validity and the period-2 restoration are asserted by the
    // treesvd-analyze verifier in the cross-crate suites

    #[test]
    fn rejects_bad_sizes() {
        assert!(NewRingOrdering::new(5).is_err());
        assert!(ModifiedRingOrdering::new(3).is_err());
        assert!(NewRingOrdering::new(4).is_ok());
    }

    #[test]
    fn new_ring_sweep_reverses_three_to_n() {
        // Paper §4: after one sweep, indices 1 and 2 unchanged, 3..n reversed.
        for n in [4usize, 8, 12, 16] {
            let ord = NewRingOrdering::new(n).unwrap();
            let prog = ord.sweep_program(0, &ord.initial_layout());
            let after = prog.final_layout();
            let mut want: Vec<usize> = vec![0, 1];
            want.extend((2..n).rev());
            assert_eq!(after, want, "n = {n}");
        }
    }

    #[test]
    fn modified_ring_sweep_is_full_reversal() {
        for n in [4usize, 8, 10, 16] {
            let ord = ModifiedRingOrdering::new(n).unwrap();
            let prog = ord.sweep_program(0, &ord.initial_layout());
            let after = prog.final_layout();
            let want: Vec<usize> = (0..n).rev().collect();
            assert_eq!(after, want, "n = {n}");
        }
    }

    #[test]
    fn messages_one_directional_evenly_distributed() {
        for n in [8, 16, 32] {
            for prog in [
                NewRingOrdering::new(n).unwrap().sweep_program(0, &(0..n).collect::<Vec<_>>()),
                ModifiedRingOrdering::new(n).unwrap().sweep_program(0, &(0..n).collect::<Vec<_>>()),
            ] {
                assert!(is_one_directional(&prog), "n = {n}");
                assert_eq!(max_link_load(&prog), 1, "n = {n}: a link carries > 1 message");
            }
        }
    }

    #[test]
    fn new_ring_index_one_pinned_and_even_shifts() {
        // §5 relies on: index 1 never moves, all other indices move an even
        // number of times.
        for n in [8usize, 16, 24] {
            let ord = NewRingOrdering::new(n).unwrap();
            let prog = ord.sweep_program(0, &ord.initial_layout());
            let counts = move_counts(&prog);
            assert_eq!(counts[0], 0, "index 1 moved");
            assert!(all_moves_even(&prog), "odd shift count: {counts:?}");
        }
    }

    #[test]
    fn new_ring_n8_pair_table() {
        // The schedule derived from the paper's invariants, n = 8 (1-based).
        let ord = NewRingOrdering::new(8).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let pairs: Vec<Vec<(usize, usize)>> = prog
            .step_pairs()
            .iter()
            .map(|s| s.iter().map(|&(a, b)| (a + 1, b + 1)).collect())
            .collect();
        assert_eq!(pairs[0], vec![(1, 2), (3, 4), (5, 6), (7, 8)]);
        assert_eq!(pairs[1], vec![(1, 7), (4, 2), (6, 3), (8, 5)]);
        assert_eq!(pairs[2], vec![(1, 5), (2, 7), (6, 4), (8, 3)]);
        assert_eq!(pairs[3], vec![(1, 3), (7, 5), (6, 2), (8, 4)]);
        assert_eq!(pairs[4], vec![(1, 4), (7, 3), (2, 5), (8, 6)]);
        assert_eq!(pairs[5], vec![(1, 6), (7, 4), (5, 3), (8, 2)]);
        assert_eq!(pairs[6], vec![(1, 8), (7, 6), (5, 4), (2, 3)]);
    }

    #[test]
    fn second_sweep_differs_from_first() {
        // Period 2 means the second sweep's pair sequence is the first's
        // relabelled by the net permutation — not identical.
        let ord = NewRingOrdering::new(8).unwrap();
        let progs = ord.programs(2);
        assert_ne!(progs[0].step_pairs()[1], progs[1].step_pairs()[1]);
    }
}
