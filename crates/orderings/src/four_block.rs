//! The four-block basic modules of §3.2.1 (Fig. 4).
//!
//! Four indices on two processors meet pairwise in three steps. The paper
//! gives two realizations:
//!
//! * **Module A** (Fig. 4(a)) — the index order `(1,2,3,4)` is restored
//!   after every sweep, and in every pair the smaller index sits on the
//!   left — the property that lets the SVD driver deliver singular values
//!   in nonincreasing order. Its step-3 "left-right arrow" (an in-pair
//!   swap before the next communication) is folded into the rotation by
//!   equation (3), so it costs nothing.
//! * **Module B** (Fig. 4(b)) — simpler movements, but indices 3 and 4 end
//!   up reversed; the order is only restored after two sweeps. We keep it
//!   as the building block of the Lee–Luk–Boley-style baseline.

use crate::schedule::Permutation;
use crate::two_block::perm_from_moves;

/// The three movement permutations of module A (Fig. 4(a)) for the region
/// `[base, base + 4)` of an `n`-slot machine. The third movement restores
/// the region's original layout.
///
/// # Panics
/// Panics if the region does not fit.
pub fn module_a_movements(n: usize, base: usize) -> [Permutation; 3] {
    assert!(base + 4 <= n, "region out of range");
    [
        // (0,1)(2,3) -> (0,2)(1,3): exchange slots base+1, base+2
        perm_from_moves(n, &[(base + 1, base + 2), (base + 2, base + 1)]),
        // (0,2)(1,3) -> (0,3)(1,2): exchange slots base+1, base+3
        perm_from_moves(n, &[(base + 1, base + 3), (base + 3, base + 1)]),
        // restore: 3-cycle base+1 -> base+3 -> base+2 -> base+1
        perm_from_moves(n, &[(base + 1, base + 3), (base + 3, base + 2), (base + 2, base + 1)]),
    ]
}

/// The three movement permutations of module B (Fig. 4(b)); after one sweep
/// the indices in slots `base+2` and `base+3` are reversed.
///
/// # Panics
/// Panics if the region does not fit.
pub fn module_b_movements(n: usize, base: usize) -> [Permutation; 3] {
    assert!(base + 4 <= n, "region out of range");
    [
        perm_from_moves(n, &[(base + 1, base + 2), (base + 2, base + 1)]),
        perm_from_moves(n, &[(base + 1, base + 3), (base + 3, base + 1)]),
        // leave 3 and 4 reversed: exchange slots base+1, base+2
        perm_from_moves(n, &[(base + 1, base + 2), (base + 2, base + 1)]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn run(movements: &[Permutation]) -> (Vec<Vec<(usize, usize)>>, Vec<usize>) {
        let n = movements[0].len();
        let mut layout: Vec<usize> = (0..n).collect();
        let mut pairs = Vec::new();
        for m in movements {
            pairs.push(layout.chunks(2).map(|c| (c[0], c[1])).collect());
            layout = m.apply(&layout);
        }
        (pairs, layout)
    }

    #[test]
    fn module_a_matches_fig_4a() {
        let (pairs, layout) = run(&module_a_movements(4, 0));
        assert_eq!(pairs[0], vec![(0, 1), (2, 3)]);
        assert_eq!(pairs[1], vec![(0, 2), (1, 3)]);
        assert_eq!(pairs[2], vec![(0, 3), (1, 2)]);
        // order restored after ONE sweep — module A's defining property
        assert_eq!(layout, vec![0, 1, 2, 3]);
    }

    #[test]
    fn module_a_left_index_always_smaller() {
        let (pairs, _) = run(&module_a_movements(4, 0));
        for step in &pairs {
            for &(l, r) in step {
                assert!(l < r, "pair ({l},{r}) violates the Fig. 4(a) invariant");
            }
        }
    }

    #[test]
    fn module_b_matches_fig_4b() {
        let (pairs, layout) = run(&module_b_movements(4, 0));
        assert_eq!(pairs[0], vec![(0, 1), (2, 3)]);
        assert_eq!(pairs[1], vec![(0, 2), (1, 3)]);
        assert_eq!(pairs[2], vec![(0, 3), (1, 2)]);
        // indices 3 and 4 (slots 2, 3) reversed after one sweep
        assert_eq!(layout, vec![0, 1, 3, 2]);
    }

    #[test]
    fn module_b_restores_after_two_sweeps_and_stays_valid() {
        let movements = module_b_movements(4, 0);
        let mut layout: Vec<usize> = vec![0, 1, 2, 3];
        let mut met = HashSet::new();
        for sweep in 0..2 {
            let mut sweep_met = HashSet::new();
            for m in &movements {
                for c in layout.chunks(2) {
                    let key = (c[0].min(c[1]), c[0].max(c[1]));
                    assert!(sweep_met.insert(key), "sweep {sweep}: pair repeated");
                    met.insert(key);
                }
                layout = m.apply(&layout);
            }
            assert_eq!(sweep_met.len(), 6);
        }
        assert_eq!(layout, vec![0, 1, 2, 3]);
        assert_eq!(met.len(), 6);
    }

    #[test]
    fn modules_work_in_subregions() {
        let ms = module_a_movements(8, 4);
        let mut layout: Vec<usize> = (0..8).collect();
        for m in &ms {
            layout = m.apply(&layout);
        }
        assert_eq!(layout, (0..8).collect::<Vec<_>>());
        for m in &ms {
            for (f, t) in m.moves() {
                assert!(f >= 4 && t >= 4, "movement escaped the region");
            }
        }
    }

    #[test]
    fn all_module_communication_is_level_one() {
        // both modules only ever exchange between sibling leaves
        for ms in [module_a_movements(4, 0), module_b_movements(4, 0)] {
            for m in &ms {
                for (f, t) in m.inter_processor_moves() {
                    assert_eq!((f / 2).abs_diff(t / 2), 1);
                }
            }
        }
    }
}
