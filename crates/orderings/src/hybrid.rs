//! The hybrid ordering of §5 (Fig. 9) — fat-tree ordering inside groups,
//! block ring ordering between groups.
//!
//! `n` indices are divided into `m` groups of `w = n/m` consecutive indices
//! (`w` a power of two ≥ 4); each group is split into two blocks of `w/2`
//! indices, interleaved over the group's slots (Schreiber's partitioning
//! \[14\]). Treating each block as a super-index, the §4 *new ring
//! ordering* runs at the block level over `2m − 1` super-steps:
//!
//! * **super-step 1** — the fat-tree ordering inside every group
//!   (`w − 1` steps): all intra-group pairs;
//! * **super-steps 2..2m−1** — a two-block ordering inside every group
//!   (`w/2` steps each): the co-resident blocks' cross pairs.
//!
//! Between super-steps the blocks move one group clockwise following the
//! ring schedule, so inter-group messages are evenly distributed — one
//! block's worth per ring link per super-boundary — and by choosing the
//! block size appropriately **no channel of a skinny fat-tree is ever
//! oversubscribed** (§5's contention-freedom claim, quantified in
//! `treesvd-net`).
//!
//! Total steps: `(w−1) + (2m−2)·w/2 = n − 1`, a full sweep. Because every
//! block is two-block-rotated exactly once per shift and the ring shifts
//! every index an even number of times per sweep (§5's argument), the
//! layout is restored after two sweeps.

use crate::fat_tree::fat_tree_movements;
use crate::schedule::{ColIndex, JacobiOrdering, OrderingError, PairStep, Permutation, Program};
use crate::two_block::{perm_from_moves, two_block_movements, RotatingSide};

/// Which ordering runs *inside* each group during super-step 1.
///
/// The paper's hybrid ordering uses the fat-tree ordering (§5); the
/// round-robin variant is the ablation showing how much the fat-tree
/// ordering's intra-group locality matters ("block ring ordering" with a
/// naive group schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraGroupOrdering {
    /// The §3 fat-tree ordering (the paper's choice).
    FatTree,
    /// Brent–Luk round-robin inside each group (ablation baseline).
    RoundRobin,
}

/// Round-robin movements restricted to the region `[base, base+w)`:
/// `w − 1` identical caterpillar permutations.
fn round_robin_movements_in_region(n: usize, base: usize, w: usize) -> Vec<Permutation> {
    let local = crate::round_robin::RoundRobinOrdering::movement(w);
    let mut dest: Vec<usize> = (0..n).collect();
    for s in 0..w {
        dest[base + s] = base + local.dest_of(s);
    }
    let moved = Permutation::from_dest(dest);
    (0..w - 1).map(|_| moved.clone()).collect()
}

/// Per-group role in one super-step of the block ring (see
/// [`crate::new_ring`]): ordinary groups forward their odd-class block,
/// the station forwards its even-class block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Pass,
    Station,
}

/// The §5 hybrid ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridOrdering {
    n: usize,
    groups: usize,
    intra: IntraGroupOrdering,
}

impl HybridOrdering {
    /// Build for `n` indices divided into `groups` groups.
    ///
    /// # Errors
    /// [`OrderingError::BadGroups`] unless `groups ≥ 2`, `groups` divides
    /// `n`, and the group size `n/groups` is a power of two ≥ 4.
    pub fn new(n: usize, groups: usize) -> Result<Self, OrderingError> {
        Self::with_intra(n, groups, IntraGroupOrdering::FatTree)
    }

    /// Build with an explicit intra-group ordering (the round-robin variant
    /// is the locality ablation).
    ///
    /// # Errors
    /// As [`HybridOrdering::new`].
    pub fn with_intra(
        n: usize,
        groups: usize,
        intra: IntraGroupOrdering,
    ) -> Result<Self, OrderingError> {
        if groups < 2 {
            return Err(OrderingError::BadGroups {
                n,
                groups,
                requirement: "need at least 2 groups (use FatTreeOrdering for 1)",
            });
        }
        if n == 0 || !n.is_multiple_of(groups) {
            return Err(OrderingError::BadGroups {
                n,
                groups,
                requirement: "group count must divide n",
            });
        }
        let w = n / groups;
        if w < 4 || !w.is_power_of_two() {
            return Err(OrderingError::BadGroups {
                n,
                groups,
                requirement: "group size n/groups must be a power of two >= 4",
            });
        }
        Ok(Self { n, groups, intra })
    }

    /// Build with a default group count: groups of eight indices when
    /// possible (`n` divisible by 8 with `n ≥ 16`), otherwise groups of
    /// four.
    ///
    /// # Errors
    /// [`OrderingError::BadGroups`] when no valid grouping exists.
    pub fn with_default_groups(n: usize) -> Result<Self, OrderingError> {
        if n >= 16 && n.is_multiple_of(8) {
            Self::new(n, n / 8)
        } else if n >= 8 && n.is_multiple_of(4) {
            Self::new(n, n / 4)
        } else {
            Err(OrderingError::BadGroups {
                n,
                groups: 0,
                requirement: "n must be divisible by 4 (group size 4) or 8 with n >= 8",
            })
        }
    }

    /// Number of groups `m`.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Group size `w = n / m`.
    pub fn group_size(&self) -> usize {
        self.n / self.groups
    }

    /// The ring roles for each of the `2m − 1` super-steps (the §4 new ring
    /// ordering's walking-station schedule at block level).
    fn roles(&self) -> Vec<Vec<Role>> {
        let m = self.groups;
        let mut out: Vec<Vec<Role>> = Vec::with_capacity(2 * m - 1);
        out.push((0..m).map(|q| if q == 0 { Role::Pass } else { Role::Station }).collect());
        for k in 1..m {
            let step: Vec<Role> =
                (0..m).map(|q| if q == k { Role::Station } else { Role::Pass }).collect();
            out.push(step.clone());
            out.push(step);
        }
        out.truncate(2 * m - 1);
        out
    }

    /// The full movement list of one sweep (`n − 1` movements; the last one
    /// includes the ring's closing within-group block swap).
    fn movements(&self) -> Vec<Permutation> {
        let n = self.n;
        let m = self.groups;
        let w = self.group_size();
        let roles = self.roles();
        let mut movements: Vec<Permutation> = Vec::with_capacity(n - 1);

        for (s, role) in roles.iter().enumerate() {
            // ---- the super-step's intra-group computation ----
            if s == 0 {
                // the chosen intra-group ordering inside every group
                let per_group: Vec<Vec<Permutation>> = (0..m)
                    .map(|q| match self.intra {
                        IntraGroupOrdering::FatTree => fat_tree_movements(n, q * w, w),
                        IntraGroupOrdering::RoundRobin => {
                            round_robin_movements_in_region(n, q * w, w)
                        }
                    })
                    .collect();
                for i in 0..w - 1 {
                    let mut acc = Permutation::identity(n);
                    for group in &per_group {
                        acc = acc.then(&group[i]);
                    }
                    movements.push(acc);
                }
            } else {
                // two-block ordering inside every group; the block about to
                // be shifted is the rotating one (§5's parity rule)
                let mut acc: Option<Vec<Permutation>> = None;
                for (q, &r) in role.iter().enumerate() {
                    let rot = match r {
                        Role::Pass => RotatingSide::Odd,
                        Role::Station => RotatingSide::Even,
                    };
                    let tb = two_block_movements(n, q * w, w / 2, rot);
                    acc = Some(match acc {
                        None => tb,
                        Some(prev) => {
                            prev.into_iter().zip(tb.iter()).map(|(a, b)| a.then(b)).collect()
                        }
                    });
                }
                movements.extend(acc.expect("at least one group"));
            }

            // ---- the super-boundary block movement ----
            let mut moves = Vec::new();
            for (q, &r) in role.iter().enumerate() {
                let nq = (q + 1) % m;
                match r {
                    Role::Pass => {
                        for i in 0..w / 2 {
                            moves.push((q * w + 2 * i + 1, nq * w + 2 * i + 1));
                        }
                    }
                    Role::Station => {
                        for i in 0..w / 2 {
                            moves.push((q * w + 2 * i, nq * w + 2 * i + 1));
                            moves.push((q * w + 2 * i + 1, q * w + 2 * i));
                        }
                    }
                }
            }
            let mut boundary = perm_from_moves(n, &moves);

            if s == 0 {
                // the blocks shifted right after the fat-tree super-step did
                // not get their two-block rotation: pre-exchange their
                // halves (intra-group communication) so every block's
                // rotation count equals its shift count.
                let mut half = Vec::new();
                for (q, &r) in role.iter().enumerate() {
                    let class = match r {
                        Role::Station => 0,
                        Role::Pass => 1,
                    };
                    for i in 0..w / 4 {
                        let a = q * w + 2 * i + class;
                        let b = q * w + 2 * (i + w / 4) + class;
                        half.push((a, b));
                        half.push((b, a));
                    }
                }
                boundary = perm_from_moves(n, &half).then(&boundary);
            }
            if s == roles.len() - 1 {
                // the ring's closing within-group block swap on groups
                // 1..m-1 (intra-processor, free)
                let mut sw = Vec::new();
                for q in 1..m {
                    for i in 0..w / 2 {
                        sw.push((q * w + 2 * i, q * w + 2 * i + 1));
                        sw.push((q * w + 2 * i + 1, q * w + 2 * i));
                    }
                }
                boundary = boundary.then(&perm_from_moves(n, &sw));
            }

            let last = movements.len() - 1;
            movements[last] = movements[last].clone().then(&boundary);
        }
        debug_assert_eq!(movements.len(), n - 1);
        movements
    }
}

impl JacobiOrdering for HybridOrdering {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        match self.intra {
            IntraGroupOrdering::FatTree => format!("hybrid({} groups)", self.groups),
            IntraGroupOrdering::RoundRobin => format!("block-ring({} groups)", self.groups),
        }
    }

    fn restore_period(&self) -> usize {
        2
    }

    fn sweep_program(&self, _sweep: usize, layout: &[ColIndex]) -> Program {
        assert_eq!(layout.len(), self.n, "layout size mismatch");
        let steps =
            self.movements().into_iter().map(|move_after| PairStep { move_after }).collect();
        Program { n: self.n, initial_layout: layout.to_vec(), steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // sweep validity over the legal (n, groups) shapes and the period-2
    // restoration are asserted by the treesvd-analyze verifier in the
    // cross-crate suites

    #[test]
    fn constructor_constraints() {
        assert!(HybridOrdering::new(16, 1).is_err());
        assert!(HybridOrdering::new(16, 3).is_err()); // 16/3 not integral
        assert!(HybridOrdering::new(24, 2).is_err()); // group size 12 not a power of 2
        assert!(HybridOrdering::new(16, 8).is_err()); // group size 2 < 4
        assert!(HybridOrdering::new(16, 4).is_ok());
        assert!(HybridOrdering::new(24, 6).is_ok()); // w = 4, m = 6: n need not be 2^k
        assert!(HybridOrdering::new(24, 3).is_ok()); // w = 8
    }

    #[test]
    fn default_groups() {
        assert_eq!(HybridOrdering::with_default_groups(16).unwrap().group_size(), 8);
        assert_eq!(HybridOrdering::with_default_groups(64).unwrap().group_size(), 8);
        assert_eq!(HybridOrdering::with_default_groups(8).unwrap().group_size(), 4);
        assert_eq!(HybridOrdering::with_default_groups(12).unwrap().group_size(), 4);
        assert!(HybridOrdering::with_default_groups(6).is_err());
    }

    #[test]
    fn sweep_has_n_minus_1_steps() {
        let ord = HybridOrdering::new(16, 4).unwrap();
        assert_eq!(ord.sweep_program(0, &ord.initial_layout()).steps.len(), 15);
    }

    #[test]
    fn fig9_structure_16_indices_4_groups() {
        // Fig. 9: first w-1 = 3 steps intra-group, then 6 two-block
        // super-steps of 2 steps each, with a "global" block move between.
        let ord = HybridOrdering::new(16, 4).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let pairs = prog.step_pairs();
        // steps 1-3: all pairs within a group of 4 consecutive indices
        for step in &pairs[..3] {
            for &(a, b) in step {
                assert_eq!(a / 4, b / 4, "stage-1 pair crosses groups: ({a},{b})");
            }
        }
        // afterwards every step has cross-group pairs only
        for (s, step) in pairs[3..].iter().enumerate() {
            for &(a, b) in step {
                assert_ne!(a / 4, b / 4, "step {}: intra-group pair ({a},{b})", s + 4);
            }
        }
    }

    #[test]
    fn inter_group_communication_only_at_super_boundaries() {
        let ord = HybridOrdering::new(16, 4).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let w = 4;
        // super-boundaries after steps 3, 5, 7, 9, 11, 13, 15 (1-based)
        let boundaries: Vec<usize> = {
            let mut b = vec![w - 1 - 1]; // 0-based index of the step whose move crosses groups
            let mut t = w - 1;
            for _ in 0..6 {
                t += 2;
                b.push(t - 1);
            }
            b
        };
        for (i, step) in prog.steps.iter().enumerate() {
            let crosses =
                step.move_after.inter_processor_moves().iter().any(|&(f, t)| f / w != t / w);
            assert_eq!(
                crosses,
                boundaries.contains(&i),
                "step {}: unexpected inter-group communication state",
                i + 1
            );
        }
    }

    #[test]
    fn block_ring_variant_named_and_periodic() {
        for (n, m) in [(8, 2), (16, 4), (32, 4), (24, 3)] {
            let ord = HybridOrdering::with_intra(n, m, IntraGroupOrdering::RoundRobin).unwrap();
            assert_eq!(ord.restore_period(), 2);
            assert!(ord.name().contains("block-ring"));
        }
    }

    #[test]
    fn block_ring_less_tree_local_than_hybrid() {
        // the ablation point: with round-robin inside groups the intra-group
        // traffic climbs the tree (the caterpillar crosses the group
        // subtree's spine every step), while the fat-tree ordering keeps
        // most hops at level 1. Measure total levels ascended per sweep.
        let n = 64;
        let hy = HybridOrdering::new(n, 2).unwrap();
        let br = HybridOrdering::with_intra(n, 2, IntraGroupOrdering::RoundRobin).unwrap();
        let level_sum = |ord: &HybridOrdering| -> usize {
            ord.sweep_program(0, &ord.initial_layout())
                .steps
                .iter()
                .flat_map(|s| s.move_after.inter_processor_moves())
                .map(|(f, t)| crate::render::comm_level(f / 2, t / 2))
                .sum()
        };
        let (h, b) = (level_sum(&hy), level_sum(&br));
        assert!(b > h, "block-ring {b} should ascend more levels than hybrid {h}");
    }

    #[test]
    fn ring_messages_one_block_per_link() {
        // at each super-boundary each group sends exactly w/2 columns to
        // the next group — evenly distributed, one direction
        let ord = HybridOrdering::new(32, 4).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let w = 8;
        for step in &prog.steps {
            let mut per_link = std::collections::HashMap::new();
            for (f, t) in step.move_after.inter_processor_moves() {
                let (gf, gt) = (f / w, t / w);
                if gf != gt {
                    *per_link.entry((gf, gt)).or_insert(0usize) += 1;
                    // one direction: clockwise on the group ring
                    assert_eq!((gf + 1) % 4, gt, "message not clockwise: {gf} -> {gt}");
                }
            }
            for (&link, &count) in &per_link {
                assert!(count <= w / 2, "link {link:?} carries {count} > w/2 columns");
            }
        }
    }
}
