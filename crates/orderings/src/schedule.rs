//! The slot model: programs, steps, permutations, and the ordering trait.
//!
//! One sweep of a parallel Jacobi ordering is a [`Program`]: a starting
//! slot→index layout plus, per step, the slot permutation applied after the
//! step's rotations. `n/2` processors own two slots each; processor `p`
//! rotates whatever occupies slots `2p` and `2p+1`.

use std::collections::HashSet;
use std::fmt;

/// A logical column index, `0..n`.
pub type ColIndex = usize;

/// Canonical form of an unordered index pair: `(min, max)`.
///
/// The single pair identity used everywhere pairs are compared — the
/// coverage checker in `treesvd-analyze`, the equivalence search, and any
/// schedule bookkeeping.
pub fn pair_key(a: ColIndex, b: ColIndex) -> (ColIndex, ColIndex) {
    (a.min(b), a.max(b))
}

/// A physical slot, `0..n`; processor `p` owns slots `2p` and `2p+1`.
pub type Slot = usize;

/// Errors raised by ordering constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderingError {
    /// The orderings require an even number of columns.
    OddSize(usize),
    /// At least four columns are required (two processors).
    TooSmall(usize),
    /// The tree orderings require `n` to be a power of two (paper §3).
    NotPowerOfTwo(usize),
    /// The hybrid ordering's group count must satisfy the stated divisibility.
    BadGroups {
        /// Total index count.
        n: usize,
        /// Requested group count.
        groups: usize,
        /// Human-readable constraint that was violated.
        requirement: &'static str,
    },
}

impl fmt::Display for OrderingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderingError::OddSize(n) => write!(f, "ordering needs an even index count, got {n}"),
            OrderingError::TooSmall(n) => write!(f, "ordering needs at least 4 indices, got {n}"),
            OrderingError::NotPowerOfTwo(n) => {
                write!(f, "tree ordering needs a power-of-two index count, got {n}")
            }
            OrderingError::BadGroups { n, groups, requirement } => {
                write!(f, "hybrid ordering with n={n}, groups={groups}: {requirement}")
            }
        }
    }
}

impl std::error::Error for OrderingError {}

/// A permutation of `n` slots, stored as `dest[s]` = new slot of the
/// content currently in slot `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    dest: Vec<Slot>,
}

impl Permutation {
    /// The identity permutation on `n` slots.
    pub fn identity(n: usize) -> Self {
        Self { dest: (0..n).collect() }
    }

    /// Build from a destination map, validating it is a bijection.
    ///
    /// # Panics
    /// Panics if `dest` is not a permutation of `0..dest.len()` — ordering
    /// generators are internal and a malformed movement is a bug, not a
    /// recoverable condition.
    pub fn from_dest(dest: Vec<Slot>) -> Self {
        let n = dest.len();
        let mut seen = vec![false; n];
        for &d in &dest {
            assert!(d < n, "destination {d} out of range for {n} slots");
            assert!(!seen[d], "destination {d} used twice: not a permutation");
            seen[d] = true;
        }
        Self { dest }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.dest.len()
    }

    /// Whether this permutation is empty (zero slots).
    pub fn is_empty(&self) -> bool {
        self.dest.is_empty()
    }

    /// Destination slot for the content of slot `s`.
    #[inline]
    pub fn dest_of(&self, s: Slot) -> Slot {
        self.dest[s]
    }

    /// The underlying destination map.
    pub fn as_dest_slice(&self) -> &[Slot] {
        &self.dest
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.dest.iter().enumerate().all(|(s, &d)| s == d)
    }

    /// Apply to a layout: returns the new `slot → value` map.
    pub fn apply<T: Copy + Default>(&self, layout: &[T]) -> Vec<T> {
        assert_eq!(layout.len(), self.dest.len(), "layout/permutation size mismatch");
        let mut out = vec![T::default(); layout.len()];
        for (s, &d) in self.dest.iter().enumerate() {
            out[d] = layout[s];
        }
        out
    }

    /// Compose: the permutation that applies `self` then `other`.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "composing permutations of different sizes");
        let dest = self.dest.iter().map(|&d| other.dest[d]).collect();
        Permutation { dest }
    }

    /// Inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut dest = vec![0; self.len()];
        for (s, &d) in self.dest.iter().enumerate() {
            dest[d] = s;
        }
        Permutation { dest }
    }

    /// The moves that actually leave their slot: `(from, to)` with
    /// `from != to`.
    pub fn moves(&self) -> Vec<(Slot, Slot)> {
        self.dest.iter().enumerate().filter(|&(s, &d)| s != d).map(|(s, &d)| (s, d)).collect()
    }

    /// The moves that cross processor boundaries (slot/2 differs) — the
    /// ones that cost communication; intra-processor shuffles are free.
    pub fn inter_processor_moves(&self) -> Vec<(Slot, Slot)> {
        self.moves().into_iter().filter(|&(s, d)| s / 2 != d / 2).collect()
    }
}

/// One step of a sweep: rotations happen, then `move_after` repositions the
/// columns for the next step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairStep {
    /// Slot permutation applied after this step's rotations.
    pub move_after: Permutation,
}

/// One sweep of an ordering, in the slot model.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Number of indices (columns); always even.
    pub n: usize,
    /// Layout at the start of the sweep: `initial_layout[slot] = index`.
    pub initial_layout: Vec<ColIndex>,
    /// The sweep's steps, in order.
    pub steps: Vec<PairStep>,
}

impl Program {
    /// Number of processors (`n / 2`).
    pub fn processors(&self) -> usize {
        self.n / 2
    }

    /// The layout (slot → index) in force *during* each step, i.e. before
    /// that step's `move_after`. `result.len() == steps.len()`.
    pub fn layouts(&self) -> Vec<Vec<ColIndex>> {
        let mut out = Vec::with_capacity(self.steps.len());
        let mut layout = self.initial_layout.clone();
        for step in &self.steps {
            out.push(layout.clone());
            layout = step.move_after.apply(&layout);
        }
        out
    }

    /// Layout after the sweep completes (all steps' movements applied).
    pub fn final_layout(&self) -> Vec<ColIndex> {
        let mut layout = self.initial_layout.clone();
        for step in &self.steps {
            layout = step.move_after.apply(&layout);
        }
        layout
    }

    /// The index pairs rotated at each step, ordered by processor; within a
    /// pair, the first element is the content of the even slot (`2p`).
    pub fn step_pairs(&self) -> Vec<Vec<(ColIndex, ColIndex)>> {
        self.layouts()
            .into_iter()
            .map(|layout| layout.chunks(2).map(|c| (c[0], c[1])).collect())
            .collect()
    }

    /// The canonical pair *set* of each step: [`Program::step_pairs`] with
    /// every pair reduced to its [`pair_key`] form. The shape the coverage
    /// checker and the equivalence search both consume.
    pub fn step_pair_sets(&self) -> Vec<HashSet<(ColIndex, ColIndex)>> {
        self.step_pairs()
            .iter()
            .map(|pairs| pairs.iter().map(|&(a, b)| pair_key(a, b)).collect())
            .collect()
    }

    /// The net permutation of the whole sweep.
    pub fn net_permutation(&self) -> Permutation {
        let mut acc = Permutation::identity(self.n);
        for step in &self.steps {
            acc = acc.then(&step.move_after);
        }
        acc
    }

    /// Total number of inter-processor column movements in the sweep.
    pub fn total_messages(&self) -> usize {
        self.steps.iter().map(|s| s.move_after.inter_processor_moves().len()).sum()
    }
}

/// A parallel Jacobi ordering: a generator of sweep [`Program`]s.
///
/// Orderings whose layout is only restored after `restore_period()` sweeps
/// (e.g. the new ring ordering: period 2) and orderings whose program
/// depends on the sweep number (the Lee–Luk–Boley baseline alternates
/// forward and backward sweeps) receive the sweep number and the current
/// layout.
pub trait JacobiOrdering {
    /// Number of indices this ordering was built for.
    fn n(&self) -> usize;

    /// Display name (matches the paper's terminology).
    fn name(&self) -> String;

    /// Number of sweeps after which the slot layout provably returns to
    /// the initial layout.
    fn restore_period(&self) -> usize;

    /// Build the program for sweep `sweep` (0-based) starting from
    /// `layout` (slot → index).
    fn sweep_program(&self, sweep: usize, layout: &[ColIndex]) -> Program;

    /// The layout at the very start of sweep 0. Identity by convention.
    fn initial_layout(&self) -> Vec<ColIndex> {
        (0..self.n()).collect()
    }

    /// Convenience: the programs for the first `sweeps` sweeps, chained so
    /// that each starts from the previous one's final layout.
    fn programs(&self, sweeps: usize) -> Vec<Program> {
        let mut out = Vec::with_capacity(sweeps);
        let mut layout = self.initial_layout();
        for k in 0..sweeps {
            let prog = self.sweep_program(k, &layout);
            layout = prog.final_layout();
            out.push(prog);
        }
        out
    }
}

/// Check that `n` is even and at least 4.
pub(crate) fn require_even(n: usize) -> Result<(), OrderingError> {
    if n < 4 {
        return Err(OrderingError::TooSmall(n));
    }
    if !n.is_multiple_of(2) {
        return Err(OrderingError::OddSize(n));
    }
    Ok(())
}

/// Check that `n` is a power of two and at least 4.
pub(crate) fn require_power_of_two(n: usize) -> Result<(), OrderingError> {
    if n < 4 {
        return Err(OrderingError::TooSmall(n));
    }
    if !n.is_power_of_two() {
        return Err(OrderingError::NotPowerOfTwo(n));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_identity_properties() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.len(), 4);
        assert!(p.moves().is_empty());
        assert_eq!(p.apply(&[10usize, 11, 12, 13]), vec![10, 11, 12, 13]);
    }

    #[test]
    fn permutation_apply_and_inverse() {
        // content of slot 0 goes to slot 2, 1 -> 0, 2 -> 1, 3 stays
        let p = Permutation::from_dest(vec![2, 0, 1, 3]);
        let layout = [100usize, 101, 102, 103];
        let applied = p.apply(&layout);
        assert_eq!(applied, vec![101, 102, 100, 103]);
        let inv = p.inverse();
        assert_eq!(inv.apply(&applied), layout.to_vec());
        assert!(p.then(&inv).is_identity());
    }

    #[test]
    fn permutation_composition_order() {
        let first = Permutation::from_dest(vec![1, 0, 2, 3]);
        let second = Permutation::from_dest(vec![0, 2, 1, 3]);
        let composed = first.then(&second);
        let layout = [7usize, 8, 9, 10];
        let direct = second.apply(&first.apply(&layout));
        assert_eq!(composed.apply(&layout), direct);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permutation_rejects_duplicates() {
        let _ = Permutation::from_dest(vec![0, 0, 1, 2]);
    }

    #[test]
    fn inter_processor_moves_ignore_local_shuffles() {
        // swap within processor 0 (slots 0,1) plus a cross move 2 -> 3? no:
        // dest: 0->1, 1->0 (local), 2->3, 3->2 would also be local (proc 1).
        let p = Permutation::from_dest(vec![1, 0, 3, 2]);
        assert_eq!(p.moves().len(), 4);
        assert!(p.inter_processor_moves().is_empty());
        // now a genuine cross-processor exchange: slots 1 and 2
        let q = Permutation::from_dest(vec![0, 2, 1, 3]);
        assert_eq!(q.inter_processor_moves().len(), 2);
    }

    #[test]
    fn program_layout_replay() {
        // n = 4, one step that swaps slots 1 and 2, then one identity step.
        let prog = Program {
            n: 4,
            initial_layout: vec![0, 1, 2, 3],
            steps: vec![
                PairStep { move_after: Permutation::from_dest(vec![0, 2, 1, 3]) },
                PairStep { move_after: Permutation::identity(4) },
            ],
        };
        let pairs = prog.step_pairs();
        assert_eq!(pairs[0], vec![(0, 1), (2, 3)]);
        assert_eq!(pairs[1], vec![(0, 2), (1, 3)]);
        assert_eq!(prog.final_layout(), vec![0, 2, 1, 3]);
        assert_eq!(prog.total_messages(), 2);
        assert_eq!(prog.net_permutation().apply(&[0usize, 1, 2, 3]), vec![0, 2, 1, 3]);
    }

    #[test]
    fn size_requirement_helpers() {
        assert!(require_even(8).is_ok());
        assert_eq!(require_even(7), Err(OrderingError::OddSize(7)));
        assert_eq!(require_even(2), Err(OrderingError::TooSmall(2)));
        assert!(require_power_of_two(16).is_ok());
        assert_eq!(require_power_of_two(12), Err(OrderingError::NotPowerOfTwo(12)));
        assert_eq!(require_power_of_two(2), Err(OrderingError::TooSmall(2)));
    }

    #[test]
    fn error_display() {
        assert!(OrderingError::OddSize(7).to_string().contains('7'));
        assert!(OrderingError::NotPowerOfTwo(12).to_string().contains("power"));
        let e = OrderingError::BadGroups { n: 16, groups: 3, requirement: "must divide" };
        assert!(e.to_string().contains("groups=3"));
    }
}
