//! Combinatorial checkers for Jacobi orderings.
//!
//! A *valid sweep* (paper §1) consists of `n(n−1)/2` rotations in which
//! every unordered column pair meets exactly once; a parallel ordering
//! additionally partitions them into steps of `n/2` disjoint pairs. These
//! checkers are used by every ordering's unit tests and by the
//! property-based suites.

use crate::schedule::{JacobiOrdering, Program};
use std::collections::HashSet;

/// Check that a single program is a valid parallel sweep.
///
/// Verifies: the initial layout is a permutation of `0..n`; every step has
/// `n/2` disjoint pairs (automatic in the slot model, but re-checked);
/// no unordered pair occurs twice; and the total is `n(n−1)/2`.
///
/// # Errors
/// Returns a human-readable description of the first violation.
pub fn check_valid_program(prog: &Program) -> Result<(), String> {
    let n = prog.n;
    if prog.initial_layout.len() != n {
        return Err(format!(
            "initial layout has {} slots, expected {n}",
            prog.initial_layout.len()
        ));
    }
    let mut seen_idx = vec![false; n];
    for &idx in &prog.initial_layout {
        if idx >= n {
            return Err(format!("index {idx} out of range in initial layout"));
        }
        if seen_idx[idx] {
            return Err(format!("index {idx} appears twice in initial layout"));
        }
        seen_idx[idx] = true;
    }
    let mut met: HashSet<(usize, usize)> = HashSet::new();
    for (step_no, step) in prog.step_pairs().iter().enumerate() {
        if step.len() != n / 2 {
            return Err(format!("step {step_no} has {} pairs, expected {}", step.len(), n / 2));
        }
        let mut in_step: HashSet<usize> = HashSet::new();
        for &(a, b) in step {
            if a == b {
                return Err(format!("step {step_no}: degenerate pair ({a},{b})"));
            }
            if !in_step.insert(a) || !in_step.insert(b) {
                return Err(format!("step {step_no}: index reused within the step"));
            }
            let key = (a.min(b), a.max(b));
            if !met.insert(key) {
                return Err(format!("pair ({},{}) meets twice in one sweep", key.0, key.1));
            }
        }
    }
    let expect = n * (n - 1) / 2;
    if met.len() != expect {
        return Err(format!("sweep covers {} pairs, expected {expect}", met.len()));
    }
    Ok(())
}

/// Assert that *every* sweep in the ordering's restore period is a valid
/// parallel sweep (panicking with the violation on failure).
///
/// # Panics
/// Panics if any sweep in the period is invalid.
pub fn assert_valid_sweep(ord: &dyn JacobiOrdering) {
    let period = ord.restore_period().max(1);
    for (k, prog) in ord.programs(period).iter().enumerate() {
        if let Err(e) = check_valid_program(prog) {
            panic!("{}: sweep {k} invalid: {e}", ord.name());
        }
    }
}

/// Check the paper's order-restoration property: after `sweeps` sweeps the
/// slot layout is back to the ordering's initial layout.
///
/// # Panics
/// Panics if the layout is not restored, or if it is *already* restored
/// after fewer sweeps than claimed (so a period-2 ordering genuinely needs
/// two sweeps).
pub fn check_restores_after(ord: &dyn JacobiOrdering, sweeps: usize) {
    let initial = ord.initial_layout();
    let mut layout = initial.clone();
    for k in 0..sweeps {
        let prog = ord.sweep_program(k, &layout);
        layout = prog.final_layout();
        if k + 1 < sweeps {
            assert_ne!(
                layout,
                initial,
                "{}: layout already restored after {} sweeps (claimed period {sweeps})",
                ord.name(),
                k + 1
            );
        }
    }
    assert_eq!(layout, initial, "{}: layout not restored after {sweeps} sweeps", ord.name());
}

/// Count, for a program, how often each index moves between processors
/// during the sweep (the paper's "shifted r times" bookkeeping in §5).
pub fn move_counts(prog: &Program) -> Vec<usize> {
    let mut counts = vec![0usize; prog.n];
    let mut layout = prog.initial_layout.clone();
    for step in &prog.steps {
        for (from, to) in step.move_after.inter_processor_moves() {
            counts[layout[from]] += 1;
            let _ = to;
        }
        layout = step.move_after.apply(&layout);
    }
    counts
}

/// Check the §5 parity property: every index is shifted an even number of
/// times during one sweep (index 1, which never moves, trivially included).
pub fn all_moves_even(prog: &Program) -> bool {
    move_counts(prog).iter().all(|&c| c % 2 == 0)
}

/// Per-step message counts crossing each directed ring link `p → p+1`
/// assuming the processors form a ring. Returns `counts[step][link]`.
///
/// A move from processor `a` to processor `b` on a `P`-processor ring is
/// charged to the clockwise links `a → a+1 → … → b`; counterclockwise
/// moves are charged to the counterclockwise links (reported separately by
/// [`ring_traffic`]'s second component).
pub fn ring_traffic(prog: &Program) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let procs = prog.processors();
    let mut cw = Vec::new();
    let mut ccw = Vec::new();
    for step in &prog.steps {
        let mut cw_step = vec![0usize; procs];
        let mut ccw_step = vec![0usize; procs];
        for (from, to) in step.move_after.inter_processor_moves() {
            let a = from / 2;
            let b = to / 2;
            let cw_dist = (b + procs - a) % procs;
            let ccw_dist = (a + procs - b) % procs;
            if cw_dist <= ccw_dist {
                // charge clockwise path
                let mut p = a;
                for _ in 0..cw_dist {
                    cw_step[p] += 1;
                    p = (p + 1) % procs;
                }
            } else {
                let mut p = a;
                for _ in 0..ccw_dist {
                    p = (p + procs - 1) % procs;
                    ccw_step[p] += 1;
                }
            }
        }
        cw.push(cw_step);
        ccw.push(ccw_step);
    }
    (cw, ccw)
}

/// True when every message in the program travels clockwise on the
/// processor ring (the defining property of the §4 new ring ordering).
pub fn is_one_directional(prog: &Program) -> bool {
    let (_, ccw) = ring_traffic(prog);
    ccw.iter().all(|step| step.iter().all(|&c| c == 0))
}

/// The maximum number of messages any single ring link carries in any
/// single step (lower is better; 1 means perfectly even distribution).
pub fn max_link_load(prog: &Program) -> usize {
    let (cw, ccw) = ring_traffic(prog);
    cw.iter()
        .chain(ccw.iter())
        .flat_map(|step| step.iter().copied())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{PairStep, Permutation};

    fn tiny_program(steps: Vec<Vec<usize>>) -> Program {
        Program {
            n: 4,
            initial_layout: vec![0, 1, 2, 3],
            steps: steps
                .into_iter()
                .map(|d| PairStep { move_after: Permutation::from_dest(d) })
                .collect(),
        }
    }

    #[test]
    fn valid_program_accepted() {
        // A correct 3-step tournament for n = 4 with steps
        // (0,1)(2,3) -> (0,2)(1,3) -> (0,3)(1,2):
        // layouts 0,1,2,3 -> 0,2,1,3 -> 0,3,1,2.
        let prog = tiny_program(vec![
            vec![0, 2, 1, 3], // 1<->2
            vec![0, 3, 2, 1], // contents of slots 1 and 3 exchange
            vec![0, 1, 2, 3], // identity after the last step
        ]);
        assert!(check_valid_program(&prog).is_ok(), "{:?}", check_valid_program(&prog));
        // An incomplete sweep (a pair repeats before all pairs are covered):
        let bad = tiny_program(vec![
            vec![0, 2, 1, 3],
            vec![0, 1, 3, 2], // leads back into an already-met pair
            vec![0, 1, 2, 3],
        ]);
        assert!(check_valid_program(&bad).is_err());
    }

    #[test]
    fn repeated_pair_rejected() {
        let prog = tiny_program(vec![vec![0, 1, 2, 3], vec![0, 1, 2, 3], vec![0, 1, 2, 3]]);
        let err = check_valid_program(&prog).unwrap_err();
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn bad_layout_rejected() {
        let mut prog = tiny_program(vec![vec![0, 1, 2, 3]]);
        prog.initial_layout = vec![0, 0, 1, 2];
        assert!(check_valid_program(&prog).unwrap_err().contains("twice"));
        prog.initial_layout = vec![0, 1, 2, 9];
        assert!(check_valid_program(&prog).unwrap_err().contains("out of range"));
        prog.initial_layout = vec![0, 1, 2];
        assert!(check_valid_program(&prog).unwrap_err().contains("slots"));
    }

    #[test]
    fn move_counts_track_indices_not_slots() {
        // one movement: content of slot 1 (index 1) to slot 2 and vice versa
        let prog = tiny_program(vec![vec![0, 2, 1, 3]]);
        let counts = move_counts(&prog);
        assert_eq!(counts, vec![0, 1, 1, 0]);
        assert!(!all_moves_even(&prog));
    }

    #[test]
    fn ring_traffic_charges_clockwise_paths() {
        // n=4, P=2: move slot1 (proc0) to slot2 (proc1): clockwise 1 hop
        let prog = tiny_program(vec![vec![0, 2, 1, 3]]);
        let (cw, ccw) = ring_traffic(&prog);
        // slot1->slot2 is proc0->proc1 (cw dist 1 == ccw dist 1, charged cw)
        // slot2->slot1 is proc1->proc0 (cw dist 1 on a 2-ring, charged cw)
        assert_eq!(cw[0][0] + cw[0][1], 2);
        assert_eq!(ccw[0], vec![0, 0]);
        assert!(is_one_directional(&prog));
        assert_eq!(max_link_load(&prog), 1);
    }
}
