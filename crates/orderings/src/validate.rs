//! Traffic bookkeeping for Jacobi orderings.
//!
//! The sweep-validity checkers (pair coverage, ownership safety, order
//! restoration) live in the `treesvd-analyze` crate, which is the
//! canonical verifier for the whole workspace — this crate's test suites
//! use it as a dev-dependency. What remains here is the *traffic*
//! bookkeeping (move parity, ring link loads) that the ordering
//! constructions themselves reason about.

use crate::schedule::Program;

/// Count, for a program, how often each index moves between processors
/// during the sweep (the paper's "shifted r times" bookkeeping in §5).
pub fn move_counts(prog: &Program) -> Vec<usize> {
    let mut counts = vec![0usize; prog.n];
    let mut layout = prog.initial_layout.clone();
    for step in &prog.steps {
        for (from, to) in step.move_after.inter_processor_moves() {
            counts[layout[from]] += 1;
            let _ = to;
        }
        layout = step.move_after.apply(&layout);
    }
    counts
}

/// Check the §5 parity property: every index is shifted an even number of
/// times during one sweep (index 1, which never moves, trivially included).
pub fn all_moves_even(prog: &Program) -> bool {
    move_counts(prog).iter().all(|&c| c % 2 == 0)
}

/// Per-step message counts crossing each directed ring link `p → p+1`
/// assuming the processors form a ring. Returns `counts[step][link]`.
///
/// A move from processor `a` to processor `b` on a `P`-processor ring is
/// charged to the clockwise links `a → a+1 → … → b`; counterclockwise
/// moves are charged to the counterclockwise links (reported separately by
/// [`ring_traffic`]'s second component).
pub fn ring_traffic(prog: &Program) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let procs = prog.processors();
    let mut cw = Vec::new();
    let mut ccw = Vec::new();
    for step in &prog.steps {
        let mut cw_step = vec![0usize; procs];
        let mut ccw_step = vec![0usize; procs];
        for (from, to) in step.move_after.inter_processor_moves() {
            let a = from / 2;
            let b = to / 2;
            let cw_dist = (b + procs - a) % procs;
            let ccw_dist = (a + procs - b) % procs;
            if cw_dist <= ccw_dist {
                // charge clockwise path
                let mut p = a;
                for _ in 0..cw_dist {
                    cw_step[p] += 1;
                    p = (p + 1) % procs;
                }
            } else {
                let mut p = a;
                for _ in 0..ccw_dist {
                    p = (p + procs - 1) % procs;
                    ccw_step[p] += 1;
                }
            }
        }
        cw.push(cw_step);
        ccw.push(ccw_step);
    }
    (cw, ccw)
}

/// True when every message in the program travels clockwise on the
/// processor ring (the defining property of the §4 new ring ordering).
pub fn is_one_directional(prog: &Program) -> bool {
    let (_, ccw) = ring_traffic(prog);
    ccw.iter().all(|step| step.iter().all(|&c| c == 0))
}

/// The maximum number of messages any single ring link carries in any
/// single step (lower is better; 1 means perfectly even distribution).
pub fn max_link_load(prog: &Program) -> usize {
    let (cw, ccw) = ring_traffic(prog);
    cw.iter().chain(ccw.iter()).flat_map(|step| step.iter().copied()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{PairStep, Permutation};

    fn tiny_program(steps: Vec<Vec<usize>>) -> Program {
        Program {
            n: 4,
            initial_layout: vec![0, 1, 2, 3],
            steps: steps
                .into_iter()
                .map(|d| PairStep { move_after: Permutation::from_dest(d) })
                .collect(),
        }
    }

    #[test]
    fn move_counts_track_indices_not_slots() {
        // one movement: content of slot 1 (index 1) to slot 2 and vice versa
        let prog = tiny_program(vec![vec![0, 2, 1, 3]]);
        let counts = move_counts(&prog);
        assert_eq!(counts, vec![0, 1, 1, 0]);
        assert!(!all_moves_even(&prog));
    }

    #[test]
    fn ring_traffic_charges_clockwise_paths() {
        // n=4, P=2: move slot1 (proc0) to slot2 (proc1): clockwise 1 hop
        let prog = tiny_program(vec![vec![0, 2, 1, 3]]);
        let (cw, ccw) = ring_traffic(&prog);
        // slot1->slot2 is proc0->proc1 (cw dist 1 == ccw dist 1, charged cw)
        // slot2->slot1 is proc1->proc0 (cw dist 1 on a 2-ring, charged cw)
        assert_eq!(cw[0][0] + cw[0][1], 2);
        assert_eq!(ccw[0], vec![0, 0]);
        assert!(is_one_directional(&prog));
        assert_eq!(max_link_load(&prog), 1);
    }
}
