//! The fat-tree (merge) ordering of §3.3 (Figs. 5 and 6).
//!
//! The ordering is built bottom-up by the paper's merge procedure: `n/4`
//! groups of four indices first run the four-block basic module (Fig. 4(a));
//! then pairs of groups repeatedly merge, each merge performing super-steps
//! 2 and 3 of the four-block ordering (§3.2.2) as two-block orderings
//! between interleaved blocks. A sweep takes exactly `n − 1` steps, almost
//! all communication is at low tree levels (a level-`k` exchange happens
//! only during the size-`2^k` merge stage), and — the ordering's headline
//! property — **the original index order is restored after every sweep**,
//! unlike the Lee–Luk–Boley ordering \[8\] which needs alternating
//! forward/backward sweeps.
//!
//! The inter-block interchanges between super-steps follow the paper's
//! Example 1 choreography; the rotating-block assignments (the odd-slot
//! class rotates in both super-steps) and the closing interchange that
//! returns blocks 2/3/4 to their home positions were fixed by exhaustively
//! checking the restoration invariant for n up to 64 (see
//! `tests/paper_figures.rs` for the Fig. 6 schedule this generates).

use crate::schedule::{
    require_power_of_two, ColIndex, JacobiOrdering, OrderingError, PairStep, Permutation, Program,
};
use crate::two_block::{perm_from_moves, two_block_movements, RotatingSide};

/// Compose movement lists element-wise (the regions they act on are
/// disjoint, so composition order is immaterial).
fn zip_compose(a: Vec<Permutation>, b: &[Permutation]) -> Vec<Permutation> {
    debug_assert_eq!(a.len(), b.len());
    a.into_iter().zip(b.iter()).map(|(x, y)| x.then(y)).collect()
}

/// The `w − 1` movement permutations of the fat-tree ordering on the region
/// `[base, base + w)` of an `n`-slot machine (`w` a power of two, `w ≥ 4`).
///
/// The final movement restores the region's original layout, so the list
/// can be replayed sweep after sweep.
///
/// # Panics
/// Panics if `w < 4`, `w` is not a power of two, or the region overflows.
pub fn fat_tree_movements(n: usize, base: usize, w: usize) -> Vec<Permutation> {
    assert!(w >= 4 && w.is_power_of_two(), "fat-tree region must be a power of two >= 4");
    assert!(base + w <= n, "region out of range");

    // stage 1: four-block basic module (Fig. 4(a)) in every 4-group
    let mut movements: Vec<Permutation> = (0..3)
        .map(|step| {
            let mut acc = Permutation::identity(n);
            for g in (base..base + w).step_by(4) {
                acc = acc.then(&crate::four_block::module_a_movements(n, g)[step]);
            }
            acc
        })
        .collect();

    // merge stages: group size g doubles until it reaches w
    let mut g = 4;
    while g < w {
        // I_pre: block 2 (odd slots of the left group) <-> block 3 (even
        // slots of the right group), per super-group — level-(log2 g)+1.
        let mut moves = Vec::new();
        for b0 in (base..base + w).step_by(2 * g) {
            for i in 0..g / 2 {
                let a = b0 + 2 * i + 1;
                let b = b0 + g + 2 * i;
                moves.push((a, b));
                moves.push((b, a));
            }
        }
        let last = movements.len() - 1;
        movements[last] = movements[last].clone().then(&perm_from_moves(n, &moves));

        // super-step 2: two-block orderings, the odd-slot class rotating
        let tb = merged_two_blocks(n, base, w, g);
        movements.extend(tb);

        // I_mid: block 3 (odd of left) <-> block 4 (odd of right)
        let mut moves = Vec::new();
        for b0 in (base..base + w).step_by(2 * g) {
            for i in 0..g / 2 {
                let a = b0 + 2 * i + 1;
                let b = b0 + g + 2 * i + 1;
                moves.push((a, b));
                moves.push((b, a));
            }
        }
        let last = movements.len() - 1;
        movements[last] = movements[last].clone().then(&perm_from_moves(n, &moves));

        // super-step 3
        let tb = merged_two_blocks(n, base, w, g);
        movements.extend(tb);

        // I_post: return blocks home — left-odd <-> right-even, then a free
        // intra-processor swap inside the right group
        let mut moves = Vec::new();
        for b0 in (base..base + w).step_by(2 * g) {
            for i in 0..g / 2 {
                let a = b0 + 2 * i + 1;
                let b = b0 + g + 2 * i;
                moves.push((a, b));
                moves.push((b, a));
            }
        }
        let mut ipost = perm_from_moves(n, &moves);
        let mut moves = Vec::new();
        for b0 in (base..base + w).step_by(2 * g) {
            for i in 0..g / 2 {
                let a = b0 + g + 2 * i;
                let b = b0 + g + 2 * i + 1;
                moves.push((a, b));
                moves.push((b, a));
            }
        }
        ipost = ipost.then(&perm_from_moves(n, &moves));
        let last = movements.len() - 1;
        movements[last] = movements[last].clone().then(&ipost);

        g *= 2;
    }
    debug_assert_eq!(movements.len(), w - 1);
    movements
}

/// One super-step's worth of parallel two-block orderings: every `g`-slot
/// half-region of every `2g` super-group, odd class rotating.
fn merged_two_blocks(n: usize, base: usize, w: usize, g: usize) -> Vec<Permutation> {
    let mut acc: Option<Vec<Permutation>> = None;
    for b0 in (base..base + w).step_by(2 * g) {
        let l = two_block_movements(n, b0, g / 2, RotatingSide::Odd);
        let r = two_block_movements(n, b0 + g, g / 2, RotatingSide::Odd);
        let both = zip_compose(l, &r);
        acc = Some(match acc {
            None => both,
            Some(prev) => zip_compose(prev, &both),
        });
    }
    acc.expect("at least one super-group")
}

/// The §3 fat-tree ordering for `n = 2^m` indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTreeOrdering {
    n: usize,
}

impl FatTreeOrdering {
    /// Build for `n` indices (`n` a power of two, `n ≥ 4`).
    ///
    /// # Errors
    /// [`OrderingError::NotPowerOfTwo`] / [`OrderingError::TooSmall`].
    pub fn new(n: usize) -> Result<Self, OrderingError> {
        require_power_of_two(n)?;
        Ok(Self { n })
    }
}

impl JacobiOrdering for FatTreeOrdering {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        "fat-tree".to_string()
    }

    fn restore_period(&self) -> usize {
        1
    }

    fn sweep_program(&self, _sweep: usize, layout: &[ColIndex]) -> Program {
        assert_eq!(layout.len(), self.n, "layout size mismatch");
        let steps = fat_tree_movements(self.n, 0, self.n)
            .into_iter()
            .map(|move_after| PairStep { move_after })
            .collect();
        Program { n: self.n, initial_layout: layout.to_vec(), steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // sweep validity and the headline §3 restoration property are asserted
    // by the treesvd-analyze verifier in the cross-crate suites

    #[test]
    fn rejects_bad_sizes() {
        assert!(FatTreeOrdering::new(12).is_err());
        assert!(FatTreeOrdering::new(2).is_err());
        assert!(FatTreeOrdering::new(16).is_ok());
    }

    #[test]
    fn sweep_has_n_minus_1_steps() {
        for n in [8usize, 32] {
            let ord = FatTreeOrdering::new(n).unwrap();
            assert_eq!(ord.sweep_program(0, &ord.initial_layout()).steps.len(), n - 1);
        }
    }

    #[test]
    fn n8_first_three_steps_are_intra_group() {
        // stage 1 works inside the two 4-index groups (Fig. 6 structure)
        let ord = FatTreeOrdering::new(8).unwrap();
        let pairs = ord.sweep_program(0, &ord.initial_layout()).step_pairs();
        for step in &pairs[..3] {
            for &(a, b) in step {
                assert_eq!(a / 4, b / 4, "cross-group pair in stage 1: ({a},{b})");
            }
        }
        // stages 2+: all pairs cross-group
        for step in &pairs[3..] {
            for &(a, b) in step {
                assert_ne!(a / 4, b / 4, "intra-group pair after stage 1: ({a},{b})");
            }
        }
    }

    #[test]
    fn n8_schedule_matches_merge_example() {
        // the Example-1 choreography (1-based labels)
        let ord = FatTreeOrdering::new(8).unwrap();
        let pairs: Vec<Vec<(usize, usize)>> = ord
            .sweep_program(0, &ord.initial_layout())
            .step_pairs()
            .iter()
            .map(|s| s.iter().map(|&(a, b)| (a + 1, b + 1)).collect())
            .collect();
        assert_eq!(pairs[0], vec![(1, 2), (3, 4), (5, 6), (7, 8)]);
        assert_eq!(pairs[1], vec![(1, 3), (2, 4), (5, 7), (6, 8)]);
        assert_eq!(pairs[2], vec![(1, 4), (2, 3), (5, 8), (6, 7)]);
        // super-step 2: blocks (1,3)x(5,7) and (2,4)x(6,8)
        assert_eq!(pairs[3], vec![(1, 5), (3, 7), (2, 6), (4, 8)]);
        assert_eq!(pairs[4], vec![(1, 7), (3, 5), (2, 8), (4, 6)]);
        // super-step 3: blocks (1,3)x(6,8) and (2,4)x(5,7)
        assert_eq!(pairs[5], vec![(1, 8), (3, 6), (2, 7), (4, 5)]);
        assert_eq!(pairs[6], vec![(1, 6), (3, 8), (2, 5), (4, 7)]);
    }

    #[test]
    fn smaller_index_always_on_the_left() {
        // Fig. 4(a)'s invariant survives the merge procedure — the property
        // §3.2.1 uses to obtain sorted singular values.
        for n in [8usize, 16, 32, 64] {
            let ord = FatTreeOrdering::new(n).unwrap();
            for step in ord.sweep_program(0, &ord.initial_layout()).step_pairs() {
                for (l, r) in step {
                    assert!(l < r, "n={n}: pair ({l},{r}) has larger index on the left");
                }
            }
        }
    }

    #[test]
    fn communication_is_level_local() {
        // Level-k exchanges only occur during (and between) the size-2^k
        // stages: quantified here as "most steps move columns only between
        // sibling leaves".
        let ord = FatTreeOrdering::new(64).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let mut level1_steps = 0;
        for step in &prog.steps {
            let max_span = step
                .move_after
                .inter_processor_moves()
                .iter()
                .map(|&(f, t)| (f / 2).abs_diff(t / 2))
                .max()
                .unwrap_or(0);
            if max_span <= 1 {
                level1_steps += 1;
            }
        }
        // at least half of all steps are purely sibling-local
        assert!(
            level1_steps * 2 >= prog.steps.len(),
            "only {level1_steps}/{} level-1 steps",
            prog.steps.len()
        );
    }

    #[test]
    fn subregion_generator_leaves_outside_untouched() {
        let movements = fat_tree_movements(16, 8, 8);
        let mut layout: Vec<usize> = (0..16).collect();
        for m in &movements {
            for (f, t) in m.moves() {
                assert!(f >= 8 && t >= 8);
            }
            layout = m.apply(&layout);
        }
        assert_eq!(layout, (0..16).collect::<Vec<_>>());
    }
}
