//! The Brent–Luk round-robin ordering (paper Fig. 1(b), reference \[2\]).
//!
//! The classic "chess tournament" scheme on a linear array of `n/2`
//! processors, drawn as a 2 × n/2 array: top row in the even slots, bottom
//! row in the odd slots. The index in the top-left position stays put; all
//! other indices rotate one position around the U-shaped cycle
//!
//! ```text
//! t0 -> (fixed)   t1 -> t2 -> ... -> t(K-1)
//!  ^                                   |
//! b0 <- b1 <- ...              <- b(K-1)
//! ```
//!
//! i.e. `b0` climbs to `t1`, the top row shifts right, the rightmost top
//! index drops to the bottom row, and the bottom row shifts left. One sweep
//! is `n − 1` steps; the layout returns to the initial one after every
//! sweep, because the cycle has length `n − 1`.

use crate::schedule::{
    require_even, ColIndex, JacobiOrdering, OrderingError, PairStep, Permutation, Program,
};

/// The round-robin ordering of Brent & Luk (Fig. 1(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRobinOrdering {
    n: usize,
}

impl RoundRobinOrdering {
    /// Build a round-robin ordering for `n` indices (`n` even, `n ≥ 4`).
    ///
    /// # Errors
    /// [`OrderingError::OddSize`] / [`OrderingError::TooSmall`].
    pub fn new(n: usize) -> Result<Self, OrderingError> {
        require_even(n)?;
        Ok(Self { n })
    }

    /// The single-step movement permutation (identical at every step).
    pub fn movement(n: usize) -> Permutation {
        let k = n / 2; // processors
        let top = |p: usize| 2 * p;
        let bottom = |p: usize| 2 * p + 1;
        let mut dest = vec![0; n];
        dest[top(0)] = top(0); // fixed index
        if k == 1 {
            // degenerate (not constructible through `new`, but total anyway)
            dest[bottom(0)] = bottom(0);
            return Permutation::from_dest(dest);
        }
        dest[bottom(0)] = top(1); // b0 climbs
        for p in 1..k - 1 {
            dest[top(p)] = top(p + 1); // top row shifts right
        }
        dest[top(k - 1)] = bottom(k - 1); // rightmost top drops
        for p in 1..k {
            dest[bottom(p)] = bottom(p - 1); // bottom row shifts left
        }
        Permutation::from_dest(dest)
    }
}

impl JacobiOrdering for RoundRobinOrdering {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        "round-robin".to_string()
    }

    fn restore_period(&self) -> usize {
        1
    }

    fn sweep_program(&self, _sweep: usize, layout: &[ColIndex]) -> Program {
        assert_eq!(layout.len(), self.n, "layout size mismatch");
        let movement = Self::movement(self.n);
        let steps = (0..self.n - 1).map(|_| PairStep { move_after: movement.clone() }).collect();
        Program { n: self.n, initial_layout: layout.to_vec(), steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // sweep validity and restoration are asserted by the treesvd-analyze
    // verifier in the cross-crate suites

    #[test]
    fn rejects_bad_sizes() {
        assert!(RoundRobinOrdering::new(5).is_err());
        assert!(RoundRobinOrdering::new(2).is_err());
        assert!(RoundRobinOrdering::new(8).is_ok());
    }

    #[test]
    fn n8_step2_matches_classic_figure() {
        // The canonical Brent–Luk picture: step 1 is (1,2)(3,4)(5,6)(7,8),
        // step 2 is (1,4)(2,6)(3,8)(5,7) — in 1-based index labels.
        let ord = RoundRobinOrdering::new(8).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let pairs = prog.step_pairs();
        let one_based: Vec<Vec<(usize, usize)>> =
            pairs.iter().map(|step| step.iter().map(|&(a, b)| (a + 1, b + 1)).collect()).collect();
        assert_eq!(one_based[0], vec![(1, 2), (3, 4), (5, 6), (7, 8)]);
        assert_eq!(one_based[1], vec![(1, 4), (2, 6), (3, 8), (5, 7)]);
    }

    #[test]
    fn sweep_has_n_minus_1_steps() {
        let ord = RoundRobinOrdering::new(16).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        assert_eq!(prog.steps.len(), 15);
    }

    #[test]
    fn movement_is_a_single_cycle_of_length_n_minus_1() {
        let m = RoundRobinOrdering::movement(8);
        // iterate from slot 1 (b0): must return after exactly 7 applications
        let mut s = 1;
        for _ in 0..7 {
            s = m.dest_of(s);
        }
        assert_eq!(s, 1);
        let mut s = 1;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..7 {
            assert!(seen.insert(s));
            s = m.dest_of(s);
        }
        assert_eq!(m.dest_of(0), 0);
    }
}
