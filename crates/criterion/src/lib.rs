//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be resolved. This shim implements the subset the workspace's
//! benches use — `Criterion::benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`/`criterion_main!` —
//! as a plain wall-clock harness: each benchmark is warmed up, then timed
//! over `sample_size` samples of an adaptively chosen batch size, and the
//! median time per iteration is printed as one line.
//!
//! The numbers are honest medians but carry none of criterion's
//! statistical machinery; for the recorded perf trajectory the workspace
//! uses `cargo run -p treesvd-bench --bin bench_kernels`, which emits
//! machine-readable JSON with the same methodology.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(4);

/// The top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup { _c: self, name: name.to_string(), sample_size: 10 }
    }
}

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter display value.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        Self { label: format!("{function}/{parameter}") }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Run one benchmark with an auxiliary input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// Run one benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        self.report(name, &b);
        self
    }

    fn report(&self, label: &str, b: &Bencher) {
        let mut s = b.samples.clone();
        s.sort_by(|a, x| a.partial_cmp(x).unwrap());
        let median = s.get(s.len() / 2).copied().unwrap_or(f64::NAN);
        let mut line = String::new();
        let _ = write!(line, "bench {}/{label}: {median:.1} ns/iter", self.name);
        if let (Some(lo), Some(hi)) = (s.first(), s.last()) {
            let _ = write!(line, " (min {lo:.1}, max {hi:.1}, n={})", s.len());
        }
        eprintln!("{line}");
    }

    /// Close the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// The per-benchmark timing handle passed to the closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time the routine: warm up, pick a batch size targeting a few
    /// milliseconds per sample, then record `sample_size` samples of
    /// nanoseconds-per-iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // warm-up and batch-size calibration
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;
        for _ in 0..batch.min(1000) {
            std::hint::black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let per_iter = t.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples.push(per_iter);
        }
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// The bench entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_records() {
        benches();
        let mut b = Bencher { samples: Vec::new(), sample_size: 5 };
        b.iter(|| std::hint::black_box(3.0_f64).sqrt());
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s.is_finite() && s >= 0.0));
    }
}
