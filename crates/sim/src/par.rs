//! Minimal fork–join parallelism on a **persistent parked-worker pool**.
//!
//! The executor previously forked scoped threads per step
//! (`std::thread::scope`); the spawn + join cost tens of microseconds per
//! step, which caps speedup on the thousands of small steps a sweep
//! program emits. The pool here is spawned **once** (lazily, on first
//! use) and reused for every step of every sweep: workers park on a
//! condvar when idle, so a fork is one queue push + one wake instead of a
//! thread spawn.
//!
//! [`join`] keeps the fork–join shape callers build balanced trees with:
//! it runs two closures concurrently and blocks for both. The forked
//! closure is pushed to the shared queue as a stack job; when the caller
//! finishes its own half it either *reclaims* the job (if no worker got
//! to it yet — the job is removed from the queue and run inline) or
//! parks until the worker that took it signals completion. Because a
//! waiter only ever parks on a job some thread is *actively running*,
//! nested joins cannot deadlock, whatever the worker count.
//!
//! Pool size: [`num_threads`] − 1 workers (the caller is the remaining
//! lane). `TREESVD_THREADS` overrides the probed parallelism; setting it
//! to `1` disables forking entirely.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::Thread;

/// Parse a `TREESVD_THREADS`-style override: a positive integer, else
/// `None` (invalid or absent values fall back to the probed parallelism).
fn parse_thread_override(value: Option<&str>) -> Option<usize> {
    value.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Number of worker lanes (pool workers + the calling thread): the
/// `TREESVD_THREADS` environment variable when set to a positive integer,
/// otherwise the machine's available parallelism. Probed once and cached —
/// the persistent pool is sized from this on first use.
pub fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        parse_thread_override(std::env::var("TREESVD_THREADS").ok().as_deref()).unwrap_or_else(
            || std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
        )
    })
}

/// A type-erased pointer to a stack-allocated [`JobSlot`], valid until the
/// owning `join`/`par_sum_indexed` call returns (enforced by the
/// reclaim-or-wait protocol).
struct JobPtr(*const dyn Job);
// SAFETY: the pointee is a `JobSlot` whose closure and result types are
// `Send`; the queue discipline guarantees exactly one thread executes it.
unsafe impl Send for JobPtr {}

/// What the workers run. Implemented only by [`JobSlot`].
trait Job {
    /// Execute the job. Called exactly once, by whichever thread popped
    /// the job from the queue (worker) or reclaimed it (owner).
    fn execute(&self);
}

/// Erase the borrow lifetime of a stack job so it can sit in the static
/// queue.
///
/// SAFETY (caller): the pointer must be removed from the queue (reclaim)
/// or fully executed before the referent's frame is popped — the
/// reclaim-or-wait protocol in [`join`]/[`par_sum_indexed`] guarantees it.
fn erase<'a>(job: &'a (dyn Job + 'a)) -> *const (dyn Job + 'static) {
    // SAFETY: only the lifetime brand changes — same pointer, same vtable.
    // The 'static claim is never acted on: every dereference happens
    // before the referent's frame is popped, per the caller contract
    // above (reclaim-or-wait).
    unsafe {
        std::mem::transmute::<*const (dyn Job + 'a), *const (dyn Job + 'static)>(
            job as *const (dyn Job + 'a),
        )
    }
}

/// The persistent pool: a shared FIFO of pending jobs plus parked workers.
struct Pool {
    queue: Mutex<VecDeque<JobPtr>>,
    available: Condvar,
    /// Worker threads spawned (0 when `num_threads() == 1` — every join
    /// then degrades to a serial call).
    workers: usize,
}

impl Pool {
    /// Push a job and wake one parked worker.
    fn push(&self, job: *const dyn Job) {
        let mut q = self.queue.lock().expect("pool queue poisoned");
        q.push_back(JobPtr(job));
        drop(q);
        self.available.notify_one();
    }

    /// Remove `job` from the queue if no worker has taken it yet.
    /// Returns `true` when the caller now owns the job and must run it
    /// inline.
    fn reclaim(&self, job: *const dyn Job) -> bool {
        let mut q = self.queue.lock().expect("pool queue poisoned");
        let target = job as *const ();
        if let Some(pos) = q.iter().position(|j| std::ptr::eq(j.0 as *const (), target)) {
            q.remove(pos);
            true
        } else {
            false
        }
    }

    /// Worker body: pop jobs forever, parking on the condvar while the
    /// queue is empty. Workers live for the process lifetime.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().expect("pool queue poisoned");
                loop {
                    if let Some(j) = q.pop_front() {
                        break j;
                    }
                    q = self.available.wait(q).expect("pool queue poisoned");
                }
            };
            // SAFETY: the owning call frame is alive: it cannot return
            // before the job is executed (reclaim-or-wait), and we are the
            // unique executor because we popped the queue entry.
            unsafe { (*job.0).execute() };
        }
    }
}

/// The process-wide pool, spawned on first use.
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = num_threads().saturating_sub(1);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::with_capacity(4 * workers.max(1))),
            available: Condvar::new(),
            workers,
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("treesvd-worker-{i}"))
                .spawn(move || pool.worker_loop())
                .expect("failed to spawn pool worker");
        }
        pool
    })
}

/// Spawn a dedicated, named OS thread *outside* the fork/join pool.
///
/// This is the one sanctioned long-lived thread seam in the workspace
/// besides `treesvd-comm` itself (the `treesvd-lint` source audit
/// enforces it): the distributed executor's rank workers live for a whole
/// attempt and block on receives, so they must never occupy pool workers
/// — a pool worker parked in a receive would deadlock the fork/join
/// traffic of the ranks still computing.
///
/// # Panics
/// Panics if the OS refuses to spawn a thread.
pub fn spawn_worker<T, F>(name: String, f: F) -> std::thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::Builder::new().name(name).spawn(f).expect("failed to spawn dedicated worker")
}

/// A fork's stack-allocated state: the closure to run, the slot its result
/// (or panic payload) lands in, and the completion handshake.
struct JobSlot<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
    owner: Thread,
}

// SAFETY: `func`/`result` are touched by exactly one executor thread
// (queue discipline) and read back by the owner only after the `done`
// release/acquire handshake.
unsafe impl<F: Send, R: Send> Sync for JobSlot<F, R> {}

impl<F: FnOnce() -> R + Send, R: Send> JobSlot<F, R> {
    fn new(func: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
            owner: std::thread::current(),
        }
    }

    /// Block until a worker finishes the job, then return its result,
    /// re-raising a panic from the worker on the owner.
    fn wait(&self) -> R {
        while !self.done.load(Ordering::Acquire) {
            std::thread::park();
        }
        // SAFETY: `done` is set with release ordering after the result is
        // written; we are the only reader.
        let result = unsafe { (*self.result.get()).take().expect("job completed without result") };
        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Run the job on the owner itself after reclaiming it from the queue.
    fn run_inline(&self) -> R {
        // SAFETY: reclaiming removed the queue entry, so we are the unique
        // executor.
        let func = unsafe { (*self.func.get()).take().expect("job executed twice") };
        func()
    }
}

impl<F: FnOnce() -> R + Send, R: Send> Job for JobSlot<F, R> {
    fn execute(&self) {
        // SAFETY: we are the unique executor (popped the queue entry).
        let func = unsafe { (*self.func.get()).take().expect("job executed twice") };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(func));
        // Clone the unpark handle *before* publishing completion: the
        // owner may observe `done` and pop its frame the moment the store
        // lands, so no access to `self` is allowed after it.
        let owner = self.owner.clone();
        // SAFETY: unique executor; owner reads only after the handshake.
        unsafe { *self.result.get() = Some(result) };
        self.done.store(true, Ordering::Release);
        owner.unpark();
    }
}

/// Run both closures, `b` on the persistent pool and `a` on the caller,
/// and return both results. Panics in either closure propagate. With a
/// single-lane pool (`TREESVD_THREADS=1` or a one-core machine) both run
/// serially on the caller.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    let pool = pool();
    if pool.workers == 0 {
        return (a(), b());
    }
    let slot = JobSlot::new(b);
    let job = erase(&slot);
    pool.push(job);
    let ra = a();
    let rb = if pool.reclaim(job) { slot.run_inline() } else { slot.wait() };
    (ra, rb)
}

/// Dyn-compatible [`join`]: run both mutable closures, the second on the
/// persistent pool, returning when both are done. This is the adapter the
/// `treesvd_matrix::qr::Joiner` trait object plugs into — the matrix
/// crate sits *below* this one and cannot name the pool, so the QR
/// front-end hands its fork–join needs down through `&dyn` closures.
pub fn join_dyn(a: &mut (dyn FnMut() + Send), b: &mut (dyn FnMut() + Send)) {
    join(a, b);
}

/// Parallel sum of `f(i)` over `i in 0..count` using up to `tasks` lanes of
/// the persistent pool with a strided index assignment (balances
/// triangular loops). Falls back to a serial loop for `tasks <= 1`.
pub fn par_sum_indexed<F>(count: usize, tasks: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    let tasks = tasks.clamp(1, count.max(1));
    if tasks <= 1 || pool().workers == 0 {
        return (0..count).map(&f).sum();
    }
    let p = pool();
    let f = &f;
    let slots: Vec<_> = (1..tasks)
        .map(|t| JobSlot::new(move || (t..count).step_by(tasks).map(f).sum::<f64>()))
        .collect();
    for slot in &slots {
        p.push(erase(slot));
    }
    let mine: f64 = (0..count).step_by(tasks).map(f).sum();
    let mut total = mine;
    for slot in &slots {
        let job = erase(slot);
        total += if p.reclaim(job) { slot.run_inline() } else { slot.wait() };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "forked");
        assert_eq!(a, 4);
        assert_eq!(b, "forked");
    }

    #[test]
    fn join_recursion_builds_a_tree() {
        fn sum(range: std::ops::Range<u64>, tasks: usize) -> u64 {
            let len = range.end - range.start;
            if tasks <= 1 || len <= 1 {
                return range.sum();
            }
            let mid = range.start + len / 2;
            let (lo, hi) = join(
                || sum(range.start..mid, tasks / 2),
                || sum(mid..range.end, tasks - tasks / 2),
            );
            lo + hi
        }
        assert_eq!(sum(0..1000, 8), 499_500);
    }

    #[test]
    fn join_deeply_nested_and_repeated() {
        // thousands of small forks: the per-step pattern the pool exists
        // for. Also exercises reclaim (tiny jobs are often won back by the
        // owner before a worker wakes).
        for round in 0..200u64 {
            let (a, (b, c)) = join(|| round * 2, || join(|| round * 3, || round * 5));
            assert_eq!((a, b, c), (round * 2, round * 3, round * 5));
        }
    }

    #[test]
    fn join_propagates_forked_panic() {
        let caught = std::panic::catch_unwind(|| {
            join(|| 1, || -> i32 { panic!("forked job panicked on purpose") })
        });
        let payload = caught.expect_err("panic must propagate to the joiner");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("on purpose"), "unexpected payload: {msg:?}");
        // the pool survives a panicked job
        let (a, b) = join(|| 1, || 2);
        assert_eq!(a + b, 3);
    }

    #[test]
    fn join_dyn_runs_both_closures() {
        let (mut a, mut b) = (0u64, 0u64);
        {
            let mut fa = || a = 7;
            let mut fb = || b = 11;
            join_dyn(&mut fa, &mut fb);
        }
        assert_eq!((a, b), (7, 11));
    }

    #[test]
    fn par_sum_matches_serial() {
        let f = |i: usize| (i as f64).sqrt();
        let serial: f64 = (0..500).map(f).sum();
        for tasks in [1, 2, 3, 7] {
            let par = par_sum_indexed(500, tasks, f);
            assert!((par - serial).abs() < 1e-9 * serial, "tasks={tasks}");
        }
    }

    #[test]
    fn num_threads_is_positive_and_stable() {
        assert!(num_threads() >= 1);
        assert_eq!(num_threads(), num_threads());
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_thread_override(None), None);
        assert_eq!(parse_thread_override(Some("")), None);
        assert_eq!(parse_thread_override(Some("0")), None);
        assert_eq!(parse_thread_override(Some("-2")), None);
        assert_eq!(parse_thread_override(Some("abc")), None);
        assert_eq!(parse_thread_override(Some("1")), Some(1));
        assert_eq!(parse_thread_override(Some(" 8 ")), Some(8));
    }
}
