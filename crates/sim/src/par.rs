//! Minimal fork–join parallelism on `std::thread::scope`.
//!
//! The executor previously leaned on an external work-stealing pool; the
//! rotation step's parallel structure is actually static (disjoint column
//! pairs, one per processor), so a recursive binary fork over scoped
//! threads is all it needs. [`join`] runs two closures concurrently and
//! blocks for both; callers build a balanced tree by recursing, so `t`-way
//! parallelism costs `t − 1` thread spawns — which the executor's adaptive
//! serial cutoff only pays when the per-step work is large enough to
//! amortize it.

use std::sync::OnceLock;

/// Number of worker threads worth forking into: the machine's available
/// parallelism, probed once and cached.
pub fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    })
}

/// Run both closures, `b` on a freshly scoped thread and `a` on the caller,
/// and return both results. Panics in either closure propagate.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("forked task panicked");
        (ra, rb)
    })
}

/// Parallel sum of `f(i)` over `i in 0..count` using up to `tasks` scoped
/// threads with a strided index assignment (balances triangular loops).
/// Falls back to a serial loop for `tasks <= 1`.
pub fn par_sum_indexed<F>(count: usize, tasks: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    let tasks = tasks.clamp(1, count.max(1));
    if tasks <= 1 {
        return (0..count).map(&f).sum();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..tasks)
            .map(|t| {
                let f = &f;
                s.spawn(move || (t..count).step_by(tasks).map(f).sum::<f64>())
            })
            .collect();
        let mine: f64 = (0..count).step_by(tasks).map(&f).sum();
        mine + handles.into_iter().map(|h| h.join().expect("sum task panicked")).sum::<f64>()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "forked");
        assert_eq!(a, 4);
        assert_eq!(b, "forked");
    }

    #[test]
    fn join_recursion_builds_a_tree() {
        fn sum(range: std::ops::Range<u64>, tasks: usize) -> u64 {
            let len = range.end - range.start;
            if tasks <= 1 || len <= 1 {
                return range.sum();
            }
            let mid = range.start + len / 2;
            let (lo, hi) = join(
                || sum(range.start..mid, tasks / 2),
                || sum(mid..range.end, tasks - tasks / 2),
            );
            lo + hi
        }
        assert_eq!(sum(0..1000, 8), 499_500);
    }

    #[test]
    fn par_sum_matches_serial() {
        let f = |i: usize| (i as f64).sqrt();
        let serial: f64 = (0..500).map(f).sum();
        for tasks in [1, 2, 3, 7] {
            let par = par_sum_indexed(500, tasks, f);
            assert!((par - serial).abs() < 1e-9 * serial, "tasks={tasks}");
        }
    }

    #[test]
    fn num_threads_is_positive_and_stable() {
        assert!(num_threads() >= 1);
        assert_eq!(num_threads(), num_threads());
    }
}
