//! Data-free communication analysis of a sweep program.
//!
//! The communication experiments (paper claims C1/C5 in DESIGN.md) only
//! need the *schedule* and the topology, not matrix data. This module
//! replays a program's movements as routed phases and aggregates the cost.

use crate::machine::Machine;
use treesvd_net::{Message, Phase, PhaseCost};
use treesvd_orderings::Program;

/// Aggregated communication report for one sweep on one machine.
#[derive(Debug, Clone)]
pub struct CommReport {
    /// Total simulated communication time.
    pub comm_time: f64,
    /// Total simulated compute time (one rotation per processor per step).
    pub compute_time: f64,
    /// Message-count histogram by level (`[0]` = intra-leaf shuffles).
    pub level_histogram: Vec<usize>,
    /// Worst per-phase contention factor across the sweep.
    pub max_contention: f64,
    /// Number of steps whose movement reaches the tree's top level.
    pub global_steps: usize,
    /// Per-step phase costs.
    pub phases: Vec<PhaseCost>,
    /// Total words×hops moved.
    pub word_hops: u64,
}

impl CommReport {
    /// Total simulated sweep time.
    pub fn total_time(&self) -> f64 {
        self.comm_time + self.compute_time
    }
}

/// Analyze a sweep program on a machine with columns of `m` words
/// (`words_per_column` should include the `V` payload when relevant).
///
/// # Panics
/// Panics if the machine's slot count differs from the program's `n`.
pub fn analyze_program(machine: &Machine, program: &Program, words_per_column: u64) -> CommReport {
    assert!(machine.slots() >= program.n, "machine too small for the program");
    let topo = machine.topology();
    let cost = machine.cost();
    let top = topo.levels();

    let mut report = CommReport {
        comm_time: 0.0,
        compute_time: cost.rotation_cost(words_per_column as usize) * program.steps.len() as f64,
        level_histogram: vec![0; top + 1],
        max_contention: 0.0,
        global_steps: 0,
        phases: Vec::with_capacity(program.steps.len()),
        word_hops: 0,
    };

    for step in &program.steps {
        let messages: Vec<Message> = step
            .move_after
            .inter_processor_moves()
            .into_iter()
            .map(|(f, t)| Message { src: f / 2, dst: t / 2, words: words_per_column })
            .collect();
        let phase = Phase::new(topo, messages);
        for (lvl, c) in phase.level_histogram(topo).iter().enumerate() {
            report.level_histogram[lvl] += c;
        }
        report.word_hops += phase.word_hops();
        if phase.max_level() == top && top > 0 {
            report.global_steps += 1;
        }
        let pc = cost.phase_cost(topo, &phase);
        report.comm_time += pc.time;
        report.max_contention = report.max_contention.max(pc.contention);
        report.phases.push(pc);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use treesvd_net::TopologyKind;
    use treesvd_orderings::{
        FatTreeOrdering, HybridOrdering, JacobiOrdering, RingOrdering, RoundRobinOrdering,
    };

    fn report(ord: &dyn JacobiOrdering, kind: TopologyKind, words: u64) -> CommReport {
        let machine = Machine::with_kind(kind, ord.n() / 2);
        let prog = ord.sweep_program(0, &ord.initial_layout());
        analyze_program(&machine, &prog, words)
    }

    #[test]
    fn fat_tree_ordering_localizes_communication() {
        // C1: the fat-tree ordering's message histogram is dominated by low
        // levels, while round-robin's traffic hits high levels every step.
        let n = 64;
        let ft = report(&FatTreeOrdering::new(n).unwrap(), TopologyKind::PerfectFatTree, 64);
        let rr = report(&RoundRobinOrdering::new(n).unwrap(), TopologyKind::PerfectFatTree, 64);
        // fat-tree: fewer global steps than round-robin
        assert!(
            ft.global_steps < rr.global_steps,
            "ft {} vs rr {}",
            ft.global_steps,
            rr.global_steps
        );
        // the per-level message counts decay geometrically: a level-k
        // exchange only happens during the size-2^k merge stage
        for k in 1..ft.level_histogram.len() - 1 {
            assert!(
                ft.level_histogram[k] > ft.level_histogram[k + 1],
                "histogram {:?}",
                ft.level_histogram
            );
        }
        // level 1 is the plurality
        let max = *ft.level_histogram.iter().max().unwrap();
        assert_eq!(ft.level_histogram[1], max);
    }

    #[test]
    fn hybrid_contention_free_on_cm5_with_proper_block_size() {
        // C5: §5 — "we may properly choose the block size so that the
        // number of messages passing through the lowest skinny level do
        // not cause contention". On the CM-5 tree the lowest skinny level
        // has capacity 2, so blocks of 2 columns (groups of 4) fit.
        let n = 64;
        let hy = HybridOrdering::new(n, n / 4).unwrap();
        let rep = report(&hy, TopologyKind::Cm5, 64);
        assert!(rep.max_contention <= 1.0, "contention {}", rep.max_contention);
        // whereas the fat-tree ordering does contend on the skinny tree
        let ft = report(&FatTreeOrdering::new(n).unwrap(), TopologyKind::Cm5, 64);
        assert!(ft.max_contention > 1.0, "fat-tree contention {}", ft.max_contention);
    }

    #[test]
    fn ring_contention_free_on_binary_tree() {
        // §4: ring traffic is evenly distributed on an ordinary tree
        let n = 32;
        let rep = report(&RingOrdering::new(n).unwrap(), TopologyKind::BinaryTree, 32);
        // §4: "the messages can be evenly distributed on the tree without
        // contention" — the interior never becomes the bottleneck
        assert!(rep.max_contention <= 1.0, "contention {}", rep.max_contention);
    }

    #[test]
    fn report_totals_consistent() {
        let n = 16;
        let rep = report(&RoundRobinOrdering::new(n).unwrap(), TopologyKind::PerfectFatTree, 8);
        assert_eq!(rep.phases.len(), n - 1);
        assert!(rep.comm_time > 0.0);
        assert!(rep.compute_time > 0.0);
        assert!(rep.total_time() > rep.comm_time);
        assert!(rep.word_hops > 0);
        let total_msgs: usize = rep.level_histogram[1..].iter().sum();
        assert!(total_msgs > 0);
    }

    #[test]
    fn binary_tree_slower_than_fat_tree_for_global_orderings() {
        let n = 64;
        let rr_fat =
            report(&RoundRobinOrdering::new(n).unwrap(), TopologyKind::PerfectFatTree, 256);
        let rr_bin = report(&RoundRobinOrdering::new(n).unwrap(), TopologyKind::BinaryTree, 256);
        assert!(rr_bin.comm_time >= rr_fat.comm_time);
    }
}
