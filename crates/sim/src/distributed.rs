//! A genuinely distributed-style executor: every processor is its own
//! thread owning its two columns, exchanging them by explicit tag-matched
//! messages over `treesvd-comm` — the shape of the paper's CM-5
//! implementation (CMMD send/recv), with the convergence test as a global
//! allreduce once per sweep.
//!
//! The same schedules, the same arithmetic: the distributed run is
//! **bitwise identical** to [`execute_program`](crate::exec::execute_program)
//! (asserted in this module's tests and in
//! `tests/simulation_integration.rs`), because rotation order within a pair
//! is fully determined by the schedule and f64 arithmetic is deterministic.
//!
//! Two transports are available ([`Transport`]):
//!
//! * **Legacy** — the original oracle path: every exchange serializes both
//!   columns into a fresh header-prefixed `Vec<f64>` (plus two more
//!   allocations on decode) and every step blocks on its receives.
//! * **Zero-copy** (default) — a departing column's storage *is* the
//!   message: the sender moves its `Vec` into a detached
//!   [`MsgBuf`](treesvd_comm::MsgBuf) and the receiver adopts the
//!   allocation. Exactly `n` data (and `n` vector) buffers exist for the
//!   whole run, wandering between ranks along the movement permutations;
//!   the steady state performs **zero payload allocations** (collectives
//!   lease from the rank-local [`BufferPool`](treesvd_comm::BufferPool),
//!   which is warm after the first sweep).
//!
//! On top of the zero-copy transport, [`DistConfig::overlap`] enables
//! communication/computation overlap: §4's movement permutations fix every
//! next destination statically, so a rank ships a departing data column
//! immediately after the A-phase rotation — while its own vector update,
//! the V-phase messages, and the *receiver's* current step are still in
//! flight — and defers each arrival to its point of use one step later
//! (post at the top of step `s`, complete at step `s+1`). The split is
//! bitwise-invisible because a Jacobi pair factors exactly into
//! `rotate_pair_a` (Gram + data columns) then `rotate_pair_v` (vector
//! columns). Before enabling the overlap the executor asks
//! `treesvd-analyze` to prove the overlapped plan deadlock-free under both
//! buffered and rendezvous semantics ([`verify_overlap_freedom`]); if the
//! proof fails for an exotic ordering, the run silently falls back to the
//! non-overlapped zero-copy path.
//!
//! # Fault tolerance
//!
//! [`DistConfig::policy`] and [`DistConfig::fault`] arm the recovery
//! layer. A [`FaultPlan`] interposes deterministic, seeded message faults
//! (drop / delay / duplication / corruption, rank stalls and crashes,
//! poisoned links) at the communicator boundary; a [`FaultPolicy`]
//! decides how much the run absorbs:
//!
//! 1. **Retry + redelivery** — receives are bounded and retried with
//!    exponential backoff; each retry first asks the retransmission store
//!    for the lost payload (proved deadlock-free by
//!    `treesvd_analyze::verify_recovery_freedom`, which also gates the
//!    overlap when recovery is armed).
//! 2. **Checkpoint restart** — ranks deposit their columns at sweep
//!    boundaries; a crash restarts the world from the last sweep *all*
//!    ranks completed.
//! 3. **Degradation ladder** — when restarts are exhausted the executor
//!    descends overlapped → zero-copy → legacy → single-rank sequential
//!    (no network at all, so even a fully poisoned link is absorbed).
//!
//! Absorbable faults leave the result **bitwise identical** to the
//! fault-free run — the store redelivers the exact payload, checkpoints
//! capture exact state, and every ladder rung computes the same
//! arithmetic. Unabsorbable faults surface as a precise
//! [`DistError::Unrecoverable`]; the executor never hangs. What recovery
//! actually ran is reported in [`DistributedOutcome::health`].

use crate::exec::{
    execute_program, rotate_pair, rotate_pair_a, rotate_pair_v, ColumnStore, ExecConfig, SlotData,
};
use crate::machine::Machine;
use crate::recovery::{CheckpointStore, DistError, FaultPolicy, HealthReport, RankCkpt};
use std::sync::Arc;
use treesvd_analyze::{
    overlap_tag_a, overlap_tag_v, verify_overlap_freedom, verify_pool_safety,
    verify_recovery_freedom, AnalysisOptions, CertificateCache, Violation,
};
use treesvd_comm::{
    allreduce_sum, allreduce_sum_in_place, Communicator, FaultInjector, FaultPlan, MsgBuf,
    RecvError, RetryPolicy, StallKind, ThreadWorld, WorldConfig,
};
use treesvd_net::TopologyKind;
use treesvd_orderings::{ColIndex, JacobiOrdering, Program};

/// Column-exchange transport of the distributed executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Serialize both columns of an exchange into a fresh header-prefixed
    /// `Vec<f64>` per message (the original executor; kept as the oracle
    /// and benchmark baseline).
    Legacy,
    /// Move the column storage itself as a detached
    /// [`MsgBuf`](treesvd_comm::MsgBuf); the receiver adopts the
    /// allocation. Zero copies, zero steady-state allocations.
    #[default]
    ZeroCopy,
}

/// Configuration of a distributed run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Rotation/kernel parameters (shared with the simulated executor).
    pub exec: ExecConfig,
    /// Sweep cap.
    pub max_sweeps: usize,
    /// Column-exchange transport.
    pub transport: Transport,
    /// Communication/computation overlap (send-ahead + deferred receives).
    /// Only effective with [`Transport::ZeroCopy`], and only after the
    /// analyzer proves the overlapped plan deadlock-free for the ordering.
    pub overlap: bool,
    /// Recovery knobs: receive windows, retries, checkpoints, restarts,
    /// and the degradation ladder. The default policy reproduces the
    /// pre-recovery executor (5 s windows, fail on first timeout).
    pub policy: FaultPolicy,
    /// Seeded fault plan to arm, if any. `None` runs fault-free with no
    /// interposition at all.
    pub fault: Option<FaultPlan>,
    /// Certificate cache for the overlap/recovery gate. When set, the
    /// gate consumes a validated [`ProofCertificate`] instead of
    /// re-running the analyzer's provers on every call; a matching
    /// certificate that fails witness validation is a hard
    /// [`DistError::BadCertificate`]. `None` re-proves every time (the
    /// pre-certificate behavior).
    ///
    /// [`ProofCertificate`]: treesvd_analyze::ProofCertificate
    pub cert_cache: Option<Arc<CertificateCache>>,
}

impl Default for DistConfig {
    fn default() -> Self {
        Self {
            exec: ExecConfig::default(),
            max_sweeps: 64,
            transport: Transport::ZeroCopy,
            overlap: true,
            policy: FaultPolicy::default(),
            fault: None,
            cert_cache: None,
        }
    }
}

/// Result of a distributed run.
#[derive(Debug)]
pub struct DistributedOutcome {
    /// Slot contents at termination, indexed by slot.
    pub slots: Vec<SlotData>,
    /// Final slot→index layout.
    pub layout: Vec<ColIndex>,
    /// Sweeps executed.
    pub sweeps: usize,
    /// Whether the termination criterion (no rotations, no swaps in a full
    /// sweep) was reached.
    pub converged: bool,
    /// Total rotations across all ranks and sweeps.
    pub total_rotations: usize,
    /// Whether the overlapped (send-ahead) schedule actually ran — i.e.
    /// it was requested *and* the analyzer proved it safe *and* no ladder
    /// descent abandoned it.
    pub overlap: bool,
    /// Payload allocation events during the warm-up sweep, summed over all
    /// ranks' buffer pools.
    pub warm_payload_allocs: u64,
    /// Payload allocation events *after* the warm-up sweep, summed over
    /// all ranks. Zero for a zero-copy run (the smoke-benchmark gate);
    /// fault-layer copies are charged separately
    /// ([`FaultSnapshot::chaos_allocations`](treesvd_comm::FaultSnapshot)).
    pub steady_payload_allocs: u64,
    /// What the recovery layer actually did: injected faults, retries,
    /// restarts, ladder descents. All-zero/empty for a clean run.
    pub health: HealthReport,
}

/// One rung of the degradation ladder, ordered fastest-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rung {
    Overlapped,
    ZeroCopy,
    Legacy,
    Sequential,
}

impl Rung {
    fn label(self) -> &'static str {
        match self {
            Self::Overlapped => "overlapped",
            Self::ZeroCopy => "zero-copy",
            Self::Legacy => "legacy",
            Self::Sequential => "sequential",
        }
    }
}

/// The rungs a run may use, fastest first: entry point from the requested
/// transport (and whether the overlap proof went through), descent only
/// when the policy allows degradation.
fn build_ladder(transport: Transport, overlap_ok: bool, degrade: bool) -> Vec<Rung> {
    const FULL: [Rung; 4] = [Rung::Overlapped, Rung::ZeroCopy, Rung::Legacy, Rung::Sequential];
    let start = match (transport, overlap_ok) {
        (Transport::ZeroCopy, true) => 0,
        (Transport::ZeroCopy, false) => 1,
        (Transport::Legacy, _) => 2,
    };
    if degrade {
        FULL[start..].to_vec()
    } else {
        vec![FULL[start]]
    }
}

/// Everything a per-rank worker owns besides its communicator: the shared
/// schedule, its two resident columns, the execution parameters, and its
/// resume/checkpoint context.
struct WorkerTask<'a> {
    programs: &'a [Program],
    left: SlotData,
    right: SlotData,
    config: ExecConfig,
    transport: Transport,
    overlap: bool,
    vectors: bool,
    /// First sweep to execute (0 on a fresh start, the checkpointed sweep
    /// count on a restart).
    start_sweep: usize,
    /// Global step counter at `start_sweep` (steps of all prior sweeps).
    start_step: usize,
    /// This rank's cumulative rotation count at `start_sweep`.
    base_rotations: usize,
    checkpoints: Option<Arc<CheckpointStore>>,
    checkpoint_every: usize,
}

/// What a per-rank worker reports back.
struct WorkerOut {
    left: SlotData,
    right: SlotData,
    sweeps: usize,
    rotations: usize,
    converged: bool,
    warm_allocs: u64,
    steady_allocs: u64,
    retries: u64,
}

/// Context-preserving wrapper for receive failures inside a worker.
fn recv_fail(rank: usize, sweep: usize, step: u64) -> impl Fn(RecvError) -> DistError {
    move |err| DistError::Recv { rank, sweep, step, err }
}

/// Fire this rank's stall/crash event at the top of `sweep`, if the armed
/// plan schedules one (one-shot: a restarted run resumes past it).
fn check_stall(comm: &Communicator, rank: usize, sweep: usize) -> Result<(), DistError> {
    let Some(inj) = comm.fault() else { return Ok(()) };
    match inj.stall_event(rank, sweep) {
        Some(StallKind::Sleep(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(StallKind::Crash) => Err(DistError::Crashed { rank, sweep }),
        None => Ok(()),
    }
}

/// Deposit a sweep-boundary checkpoint when one is due.
fn maybe_checkpoint(
    checkpoints: &Option<Arc<CheckpointStore>>,
    every: usize,
    sweeps_done: usize,
    rank: usize,
    left: &SlotData,
    right: &SlotData,
    rotations: usize,
) {
    if every == 0 {
        return;
    }
    if let Some(store) = checkpoints {
        if sweeps_done.is_multiple_of(every) {
            store.deposit(
                sweeps_done,
                rank,
                RankCkpt { left: left.clone(), right: right.clone(), rotations },
            );
        }
    }
}

/// Per-rank worker: executes its two slots across all sweeps.
fn worker(comm: &mut Communicator, task: WorkerTask<'_>) -> Result<WorkerOut, DistError> {
    match (task.transport, task.overlap) {
        (Transport::Legacy, _) => worker_legacy(comm, task),
        (Transport::ZeroCopy, false) => worker_zero_copy(comm, task),
        (Transport::ZeroCopy, true) => worker_overlapped(comm, task),
    }
}

/// The original executor loop: encode/decode copies, blocking receives at
/// the end of every step. Kept verbatim as the oracle and baseline.
fn worker_legacy(comm: &mut Communicator, task: WorkerTask<'_>) -> Result<WorkerOut, DistError> {
    let WorkerTask {
        programs,
        mut left,
        mut right,
        config,
        start_sweep,
        start_step,
        base_rotations,
        checkpoints,
        checkpoint_every,
        ..
    } = task;
    let rank = comm.rank();
    let my_slots = [2 * rank, 2 * rank + 1];
    let mut total_rotations = base_rotations;
    let mut sweeps = start_sweep;
    let mut converged = false;
    let mut global_step: u64 = start_step as u64;
    let mut warm_allocs = 0u64;

    'sweeps: for (sweep_no, program) in programs.iter().enumerate().skip(start_sweep) {
        check_stall(comm, rank, sweep_no)?;
        let layouts = program.layouts();
        let mut rotations = 0usize;
        let mut swaps = 0usize;
        for (step_no, step) in program.steps.iter().enumerate() {
            // --- rotate the resident pair ---
            let layout = &layouts[step_no];
            let small_on_left = layout[my_slots[0]] < layout[my_slots[1]];
            let report =
                rotate_pair(&mut left, &mut right, config.threshold, config.sort, small_on_left);
            if report.rotated {
                rotations += 1;
            }
            if report.swapped {
                swaps += 1;
            }

            // --- communication: route this step's movement ---
            let perm = &step.move_after;
            let inv = perm.inverse();
            // send departing columns; tag identifies (global step, dest slot)
            for (i, &s) in my_slots.iter().enumerate() {
                let d = perm.dest_of(s);
                if d / 2 != rank {
                    let data =
                        if i == 0 { std::mem::take(&mut left) } else { std::mem::take(&mut right) };
                    let tag = global_step << 1 | (d % 2) as u64;
                    comm.send(d / 2, tag, encode(&data));
                }
            }
            // local shuffles (within this rank)
            let mut next: [Option<SlotData>; 2] = [None, None];
            for (i, &s) in my_slots.iter().enumerate() {
                let d = perm.dest_of(s);
                if d / 2 == rank {
                    let data =
                        if i == 0 { std::mem::take(&mut left) } else { std::mem::take(&mut right) };
                    next[d % 2] = Some(data);
                }
            }
            // receive arrivals into the still-empty slots
            for local in 0..2usize {
                if next[local].is_none() {
                    let dest_slot = my_slots[local];
                    let src_slot = inv.dest_of(dest_slot);
                    if src_slot / 2 == rank {
                        // already handled as a local shuffle above
                        continue;
                    }
                    let tag = global_step << 1 | (dest_slot % 2) as u64;
                    let payload = comm.recv(src_slot / 2, tag).map_err(recv_fail(
                        rank,
                        sweep_no,
                        global_step,
                    ))?;
                    next[local] = Some(decode(payload));
                }
            }
            left = next[0].take().expect("slot 0 filled");
            right = next[1].take().expect("slot 1 filled");
            global_step += 1;
        }

        // --- global convergence test ---
        let sums = allreduce_sum(comm, sweep_no as u64, vec![rotations as f64, swaps as f64])
            .map_err(recv_fail(rank, sweep_no, global_step))?;
        total_rotations += rotations;
        sweeps = sweep_no + 1;
        if sweep_no == start_sweep {
            warm_allocs = comm.payload_allocations();
        }
        maybe_checkpoint(
            &checkpoints,
            checkpoint_every,
            sweeps,
            rank,
            &left,
            &right,
            total_rotations,
        );
        if sums[0] == 0.0 && sums[1] == 0.0 {
            converged = true;
            break 'sweeps;
        }
    }
    let steady_allocs = comm.payload_allocations() - warm_allocs;
    Ok(WorkerOut {
        left,
        right,
        sweeps,
        rotations: total_rotations,
        converged,
        warm_allocs,
        steady_allocs,
        retries: comm.retries(),
    })
}

/// Zero-copy transport without overlap: the full pair rotation runs, then
/// departing columns leave as two detached messages (A phase: the data
/// column; V phase: the vector column) whose storage the receiver adopts,
/// and the step blocks on its arrivals like the legacy loop.
fn worker_zero_copy(comm: &mut Communicator, task: WorkerTask<'_>) -> Result<WorkerOut, DistError> {
    let WorkerTask {
        programs,
        mut left,
        mut right,
        config,
        vectors,
        start_sweep,
        start_step,
        base_rotations,
        checkpoints,
        checkpoint_every,
        ..
    } = task;
    let rank = comm.rank();
    let my_slots = [2 * rank, 2 * rank + 1];
    let mut total_rotations = base_rotations;
    let mut sweeps = start_sweep;
    let mut converged = false;
    let mut global_step = start_step;
    let mut warm_allocs = 0u64;

    'sweeps: for (sweep_no, program) in programs.iter().enumerate().skip(start_sweep) {
        check_stall(comm, rank, sweep_no)?;
        let layouts = program.layouts();
        let mut rotations = 0usize;
        let mut swaps = 0usize;
        for (step_no, step) in program.steps.iter().enumerate() {
            let layout = &layouts[step_no];
            let small_on_left = layout[my_slots[0]] < layout[my_slots[1]];
            let report =
                rotate_pair(&mut left, &mut right, config.threshold, config.sort, small_on_left);
            rotations += report.rotated as usize;
            swaps += report.swapped as usize;

            let perm = &step.move_after;
            let inv = perm.inverse();
            // departures: the column's storage is the message
            for (i, &s) in my_slots.iter().enumerate() {
                let d = perm.dest_of(s);
                if d / 2 != rank {
                    let slot = if i == 0 { &mut left } else { &mut right };
                    let a = std::mem::take(&mut slot.a);
                    comm.send_buf(d / 2, overlap_tag_a(global_step, d), MsgBuf::detached(a));
                    if vectors {
                        let v = std::mem::take(&mut slot.v);
                        comm.send_buf(d / 2, overlap_tag_v(global_step, d), MsgBuf::detached(v));
                    }
                }
            }
            // local shuffle: a stay crossing slots is a plain swap of the
            // resident pair (departed columns left empty shells behind)
            if crosses_locally(perm, rank) {
                std::mem::swap(&mut left, &mut right);
            }
            // arrivals: adopt the sender's storage into the vacated shells
            for (local, &dest_slot) in my_slots.iter().enumerate() {
                let src_slot = inv.dest_of(dest_slot);
                if src_slot / 2 != rank {
                    let slot = if local == 0 { &mut left } else { &mut right };
                    slot.a = comm
                        .recv(src_slot / 2, overlap_tag_a(global_step, dest_slot))
                        .map_err(recv_fail(rank, sweep_no, global_step as u64))?;
                    if vectors {
                        slot.v = comm
                            .recv(src_slot / 2, overlap_tag_v(global_step, dest_slot))
                            .map_err(recv_fail(rank, sweep_no, global_step as u64))?;
                    }
                }
            }
            global_step += 1;
        }

        let mut sums = [rotations as f64, swaps as f64];
        allreduce_sum_in_place(comm, sweep_no as u64, &mut sums).map_err(recv_fail(
            rank,
            sweep_no,
            global_step as u64,
        ))?;
        total_rotations += rotations;
        sweeps = sweep_no + 1;
        if sweep_no == start_sweep {
            warm_allocs = comm.payload_allocations();
        }
        maybe_checkpoint(
            &checkpoints,
            checkpoint_every,
            sweeps,
            rank,
            &left,
            &right,
            total_rotations,
        );
        if sums[0] == 0.0 && sums[1] == 0.0 {
            converged = true;
            break 'sweeps;
        }
    }
    let steady_allocs = comm.payload_allocations() - warm_allocs;
    Ok(WorkerOut {
        left,
        right,
        sweeps,
        rotations: total_rotations,
        converged,
        warm_allocs,
        steady_allocs,
        retries: comm.retries(),
    })
}

/// An arrival deferred to its point of use: the column headed for local
/// slot `local`, sent by `src` during movement `step`. `v_done` marks a
/// vector payload that was opportunistically completed at the top of the
/// step (it had already been delivered), skipping the deferred blocking
/// receive.
#[derive(Clone, Copy)]
struct PendingArrival {
    local: usize,
    src: usize,
    step: usize,
    v_done: bool,
}

/// Zero-copy transport with communication/computation overlap, mirroring
/// the analyzer's overlapped `CommPlan` op for op. Per step `s`: post the
/// movement-`s` arrival set (the double buffer — computable ahead of time
/// because next destinations are static), complete the movement-`s−1` A
/// arrivals at their point of use, rotate the data columns, ship the
/// departing A phase, then do the same for the V phase, and finally
/// shuffle locally. Arrivals of the last movement drain after the loop —
/// or early at a checkpoint boundary, so the deposited state is the full
/// post-sweep state (completing an arrival is pure data adoption, so the
/// early completion is bitwise-invisible).
fn worker_overlapped(
    comm: &mut Communicator,
    task: WorkerTask<'_>,
) -> Result<WorkerOut, DistError> {
    let WorkerTask {
        programs,
        mut left,
        mut right,
        config,
        vectors,
        start_sweep,
        start_step,
        base_rotations,
        checkpoints,
        checkpoint_every,
        ..
    } = task;
    let rank = comm.rank();
    let my_slots = [2 * rank, 2 * rank + 1];
    let mut total_rotations = base_rotations;
    let mut sweeps = start_sweep;
    let mut converged = false;
    let mut global_step = start_step;
    let mut warm_allocs = 0u64;
    let mut pending: Vec<PendingArrival> = Vec::with_capacity(2);
    let mut posted: Vec<PendingArrival> = Vec::with_capacity(2);

    'sweeps: for (sweep_no, program) in programs.iter().enumerate().skip(start_sweep) {
        check_stall(comm, rank, sweep_no)?;
        let layouts = program.layouts();
        let mut rotations = 0usize;
        let mut swaps = 0usize;
        for (step_no, step) in program.steps.iter().enumerate() {
            let perm = &step.move_after;
            let inv = perm.inverse();

            // 1. prefetch post: register this movement's arrivals before
            //    any compute (the PostRecv ops of the overlapped plan)
            posted.clear();
            for (local, &dest_slot) in my_slots.iter().enumerate() {
                let src_slot = inv.dest_of(dest_slot);
                if src_slot / 2 != rank {
                    posted.push(PendingArrival {
                        local,
                        src: src_slot / 2,
                        step: global_step,
                        v_done: false,
                    });
                }
            }

            // 2. complete the previous movement's A arrivals at their
            //    point of use, adopting the sender's storage; piggyback
            //    any vector payload that is already in (one parking point
            //    per step instead of two when the sender runs ahead)
            for p in &mut pending {
                let slot = if p.local == 0 { &mut left } else { &mut right };
                slot.a = comm
                    .recv(p.src, overlap_tag_a(p.step, my_slots[p.local]))
                    .map_err(recv_fail(rank, sweep_no, p.step as u64))?;
                if vectors {
                    if let Some(v) = comm.try_recv(p.src, overlap_tag_v(p.step, my_slots[p.local]))
                    {
                        slot.v = v;
                        p.v_done = true;
                    }
                }
            }

            // 3. A-phase rotation (Gram + data columns)
            let layout = &layouts[step_no];
            let small_on_left = layout[my_slots[0]] < layout[my_slots[1]];
            let (rot, report) =
                rotate_pair_a(&mut left, &mut right, config.threshold, config.sort, small_on_left);
            rotations += report.rotated as usize;
            swaps += report.swapped as usize;

            // 4. ship departing data columns immediately — the receiver is
            //    still mid-step; its vector work and ours overlap the wire
            for (i, &s) in my_slots.iter().enumerate() {
                let d = perm.dest_of(s);
                if d / 2 != rank {
                    let slot = if i == 0 { &mut left } else { &mut right };
                    let a = std::mem::take(&mut slot.a);
                    comm.send_buf(d / 2, overlap_tag_a(global_step, d), MsgBuf::detached(a));
                }
            }

            if vectors {
                // 5. complete the previous movement's V arrivals (unless
                //    already piggybacked at the top of the step)
                for p in &pending {
                    if p.v_done {
                        continue;
                    }
                    let slot = if p.local == 0 { &mut left } else { &mut right };
                    slot.v = comm
                        .recv(p.src, overlap_tag_v(p.step, my_slots[p.local]))
                        .map_err(recv_fail(rank, sweep_no, p.step as u64))?;
                }
                // 6. V-phase rotation
                rotate_pair_v(rot, &report, &mut left, &mut right);
                // 7. ship departing vector columns
                for (i, &s) in my_slots.iter().enumerate() {
                    let d = perm.dest_of(s);
                    if d / 2 != rank {
                        let slot = if i == 0 { &mut left } else { &mut right };
                        let v = std::mem::take(&mut slot.v);
                        comm.send_buf(d / 2, overlap_tag_v(global_step, d), MsgBuf::detached(v));
                    }
                }
            }

            // 8. local shuffle; the posted arrivals become pending
            if crosses_locally(perm, rank) {
                std::mem::swap(&mut left, &mut right);
            }
            std::mem::swap(&mut pending, &mut posted);
            global_step += 1;
        }

        let mut sums = [rotations as f64, swaps as f64];
        allreduce_sum_in_place(comm, sweep_no as u64, &mut sums).map_err(recv_fail(
            rank,
            sweep_no,
            global_step as u64,
        ))?;
        total_rotations += rotations;
        sweeps = sweep_no + 1;
        if sweep_no == start_sweep {
            warm_allocs = comm.payload_allocations();
        }
        // a due checkpoint first materializes the deferred arrivals, so
        // the deposit is the true post-sweep state
        if checkpoint_every > 0 && checkpoints.is_some() && sweeps % checkpoint_every == 0 {
            for p in &pending {
                let slot = if p.local == 0 { &mut left } else { &mut right };
                slot.a = comm
                    .recv(p.src, overlap_tag_a(p.step, my_slots[p.local]))
                    .map_err(recv_fail(rank, sweep_no, p.step as u64))?;
                if vectors && !p.v_done {
                    slot.v = comm
                        .recv(p.src, overlap_tag_v(p.step, my_slots[p.local]))
                        .map_err(recv_fail(rank, sweep_no, p.step as u64))?;
                }
            }
            pending.clear();
            maybe_checkpoint(
                &checkpoints,
                checkpoint_every,
                sweeps,
                rank,
                &left,
                &right,
                total_rotations,
            );
        }
        if sums[0] == 0.0 && sums[1] == 0.0 {
            converged = true;
            break 'sweeps;
        }
    }

    // drain: the final movement's arrivals complete after the sweep loop
    // (already empty if the last sweep ended on a checkpoint boundary)
    for p in &pending {
        let slot = if p.local == 0 { &mut left } else { &mut right };
        slot.a = comm.recv(p.src, overlap_tag_a(p.step, my_slots[p.local])).map_err(recv_fail(
            rank,
            sweeps,
            p.step as u64,
        ))?;
        if vectors && !p.v_done {
            slot.v = comm
                .recv(p.src, overlap_tag_v(p.step, my_slots[p.local]))
                .map_err(recv_fail(rank, sweeps, p.step as u64))?;
        }
    }

    let steady_allocs = comm.payload_allocations() - warm_allocs;
    Ok(WorkerOut {
        left,
        right,
        sweeps,
        rotations: total_rotations,
        converged,
        warm_allocs,
        steady_allocs,
        retries: comm.retries(),
    })
}

/// Whether this step's movement keeps a column on `rank` but moves it to
/// the other local slot — the only intra-rank shuffle two slots allow.
fn crosses_locally(perm: &treesvd_orderings::schedule::Permutation, rank: usize) -> bool {
    for (i, s) in [2 * rank, 2 * rank + 1].into_iter().enumerate() {
        let d = perm.dest_of(s);
        if d / 2 == rank && d % 2 != i {
            return true;
        }
    }
    false
}

fn encode(d: &SlotData) -> Vec<f64> {
    let mut out = Vec::with_capacity(d.a.len() + d.v.len() + 1);
    out.push(d.a.len() as f64);
    out.extend_from_slice(&d.a);
    out.extend_from_slice(&d.v);
    out
}

fn decode(payload: Vec<f64>) -> SlotData {
    let m = payload[0] as usize;
    let a = payload[1..1 + m].to_vec();
    let v = payload[1 + m..].to_vec();
    SlotData { a, v }
}

/// What one completed attempt (any rung) produced.
struct AttemptOut {
    slots: Vec<SlotData>,
    sweeps: usize,
    converged: bool,
    total_rotations: usize,
    warm: u64,
    steady: u64,
    retries: u64,
    overlap: bool,
}

/// Where a (re)start resumes: the newest complete checkpoint, or the
/// initial columns.
fn resume_point(
    checkpoints: &Option<Arc<CheckpointStore>>,
    initial: &[SlotData],
    procs: usize,
) -> (usize, Vec<SlotData>, Vec<usize>) {
    if let Some(store) = checkpoints {
        if let Some((sweeps, row)) = store.latest_complete() {
            let mut slots = Vec::with_capacity(initial.len());
            let mut bases = Vec::with_capacity(procs);
            for ckpt in row {
                slots.push(ckpt.left);
                slots.push(ckpt.right);
                bases.push(ckpt.rotations);
            }
            return (sweeps, slots, bases);
        }
    }
    (0, initial.to_vec(), vec![0; procs])
}

/// One threaded-world attempt on a network rung. Spawns a thread per
/// rank, joins them all (a failed rank makes its peers time out, so every
/// thread terminates), and reports the first failure — a crash wins over
/// the receive errors it caused on other ranks.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    rung: Rung,
    programs: &Arc<Vec<Program>>,
    start_sweep: usize,
    mut slot_data: Vec<SlotData>,
    bases: &[usize],
    vectors: bool,
    exec: ExecConfig,
    policy: &FaultPolicy,
    injector: &Option<Arc<FaultInjector>>,
    checkpoints: &Option<Arc<CheckpointStore>>,
) -> Result<AttemptOut, DistError> {
    let procs = slot_data.len() / 2;
    let (transport, overlap) = match rung {
        Rung::Overlapped => (Transport::ZeroCopy, true),
        Rung::ZeroCopy => (Transport::ZeroCopy, false),
        Rung::Legacy => (Transport::Legacy, false),
        Rung::Sequential => unreachable!("the sequential rung runs outside the world"),
    };
    let world = ThreadWorld::with_config(
        procs,
        WorldConfig {
            recv_timeout: policy.recv_timeout,
            retry: RetryPolicy { max_retries: policy.max_retries, backoff: policy.backoff },
            check_finite: policy.check_finite,
            fault: injector.clone(),
        },
    );
    let start_step: usize = programs[..start_sweep].iter().map(|p| p.steps.len()).sum();
    let checkpoint_every = policy.checkpoint_every;

    let mut handles = Vec::with_capacity(procs);
    for (rank, mut comm) in world.into_communicators().into_iter().enumerate() {
        let left = std::mem::take(&mut slot_data[2 * rank]);
        let right = std::mem::take(&mut slot_data[2 * rank + 1]);
        let programs = Arc::clone(programs);
        let checkpoints = checkpoints.clone();
        let base_rotations = bases[rank];
        handles.push(crate::par::spawn_worker(format!("treesvd-rank-{rank}"), move || {
            worker(
                &mut comm,
                WorkerTask {
                    programs: &programs,
                    left,
                    right,
                    config: exec,
                    transport,
                    overlap,
                    vectors,
                    start_sweep,
                    start_step,
                    base_rotations,
                    checkpoints,
                    checkpoint_every,
                },
            )
        }));
    }

    let n = 2 * procs;
    let mut slots: Vec<SlotData> = (0..n).map(|_| SlotData::default()).collect();
    let mut sweeps = start_sweep;
    let mut converged = false;
    let mut total_rotations = 0usize;
    let mut warm = 0u64;
    let mut steady = 0u64;
    let mut retries = 0u64;
    let mut first_err: Option<DistError> = None;
    for (rank, h) in handles.into_iter().enumerate() {
        match h.join().expect("worker panicked") {
            Ok(out) => {
                slots[2 * rank] = out.left;
                slots[2 * rank + 1] = out.right;
                sweeps = out.sweeps; // identical on all ranks by the allreduce
                converged = out.converged;
                total_rotations += out.rotations;
                warm += out.warm_allocs;
                steady += out.steady_allocs;
                retries += out.retries;
            }
            Err(e) => {
                let crash = matches!(e, DistError::Crashed { .. });
                match &first_err {
                    None => first_err = Some(e),
                    Some(prev) if crash && !matches!(prev, DistError::Crashed { .. }) => {
                        first_err = Some(e);
                    }
                    _ => {}
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(AttemptOut {
        slots,
        sweeps,
        converged,
        total_rotations,
        warm,
        steady,
        retries,
        overlap: rung == Rung::Overlapped,
    })
}

/// The bottom of the ladder: the synchronous single-process executor,
/// which exchanges no messages and therefore cannot be faulted. Bitwise
/// identical to the distributed rungs (that equivalence is this module's
/// founding invariant).
fn run_sequential(
    programs: &[Program],
    start_sweep: usize,
    slots: Vec<SlotData>,
    bases: &[usize],
    exec: ExecConfig,
) -> AttemptOut {
    let n = slots.len();
    let mac = Machine::with_kind(TopologyKind::PerfectFatTree, (n / 2).next_power_of_two());
    let layout: Vec<ColIndex> = if start_sweep == 0 {
        programs.first().map_or_else(|| (0..n).collect(), |p| p.initial_layout.clone())
    } else {
        programs[start_sweep - 1].final_layout()
    };
    let mut store = ColumnStore { slots, layout };
    let mut total_rotations: usize = bases.iter().sum();
    let mut sweeps = start_sweep;
    let mut converged = false;
    for (k, program) in programs.iter().enumerate().skip(start_sweep) {
        let stats = execute_program(&mac, program, &mut store, &exec);
        total_rotations += stats.rotations;
        sweeps = k + 1;
        if stats.is_converged() {
            converged = true;
            break;
        }
    }
    AttemptOut {
        slots: store.slots,
        sweeps,
        converged,
        total_rotations,
        warm: 0,
        steady: 0,
        retries: 0,
        overlap: false,
    }
}

/// Run the ordering to convergence with one thread per processor, using
/// the default [`DistConfig`] (zero-copy transport with overlap, no
/// recovery armed).
///
/// `columns[j]` is column `j`; `accumulate_v` attaches identity `V`
/// columns. Returns the final slots, layout, and counters.
///
/// # Errors
/// Returns a [`DistError`] if a rank fails past its recovery budget (with
/// the default policy: on the first receive timeout — a schedule bug).
///
/// # Panics
/// Panics if `columns.len()` is odd or disagrees with the ordering.
pub fn distributed_svd(
    ordering: &dyn JacobiOrdering,
    columns: Vec<Vec<f64>>,
    accumulate_v: bool,
    config: ExecConfig,
    max_sweeps: usize,
) -> Result<DistributedOutcome, DistError> {
    let cfg = DistConfig { exec: config, max_sweeps, ..DistConfig::default() };
    distributed_svd_with(ordering, columns, accumulate_v, &cfg)
}

/// [`distributed_svd`] with full control over transport, overlap, fault
/// injection, and recovery.
///
/// The supervisor walks the degradation ladder: on each rung it runs up
/// to `1 + policy.max_restarts` whole-world attempts (each resuming from
/// the newest complete checkpoint, or the initial columns), then — if the
/// policy allows — descends to the next rung. The retransmission store is
/// cleared between attempts (rungs encode tags differently, so a stale
/// deposit must never satisfy a later redelivery); stall/crash latches
/// are *not* cleared, so a restarted run resumes past the event that
/// killed its predecessor.
///
/// # Errors
/// [`DistError::Unrecoverable`] when every attempt on every permitted
/// rung failed, carrying the final failure and the recovery history.
///
/// # Panics
/// Panics if `columns.len()` is odd or disagrees with the ordering.
pub fn distributed_svd_with(
    ordering: &dyn JacobiOrdering,
    columns: Vec<Vec<f64>>,
    accumulate_v: bool,
    cfg: &DistConfig,
) -> Result<DistributedOutcome, DistError> {
    let n = columns.len();
    assert_eq!(n, ordering.n(), "column count disagrees with the ordering");
    assert_eq!(n % 2, 0, "need an even column count");
    let procs = n / 2;

    // programs are precomputed (they are deterministic) and shared read-only
    let programs: Arc<Vec<Program>> = Arc::new(ordering.programs(cfg.max_sweeps));

    let policy = cfg.policy;
    let injector: Option<Arc<FaultInjector>> =
        cfg.fault.as_ref().map(|plan| Arc::new(FaultInjector::new(plan.clone())));
    let recovery = injector.is_some() || policy.is_armed();

    // overlap only runs on the zero-copy transport, and only once the
    // analyzer has proved the send-ahead plan deadlock-free under both
    // buffered and rendezvous semantics; with recovery armed the stricter
    // proofs (send-ahead *plus* the deposit/ack retransmission protocol,
    // plus the pool-lease discipline on every recovery path) gate it
    // instead. One restore period covers every distinct per-sweep program
    // the ordering generates. With a certificate cache configured, the
    // gate consumes a validated certificate instead of re-proving; a
    // matching certificate that fails witness validation is a hard error.
    let period = ordering.restore_period().max(1).min(programs.len());
    let overlap_requested = cfg.overlap && cfg.transport == Transport::ZeroCopy;
    let overlap_ok = overlap_requested
        && match &cfg.cert_cache {
            Some(cache) => {
                match cache.verify_or_prove(ordering, &AnalysisOptions::default(), true, recovery) {
                    Ok(_) => true,
                    Err(v @ Violation::CertificateMismatch { .. }) => {
                        return Err(DistError::BadCertificate { detail: v.to_string() });
                    }
                    Err(_) => false,
                }
            }
            None => programs[..period].iter().all(|p| {
                if recovery {
                    verify_recovery_freedom(p, accumulate_v).is_ok()
                        && verify_pool_safety(p, accumulate_v).is_ok()
                } else {
                    verify_overlap_freedom(p, accumulate_v).is_ok()
                }
            }),
        };

    let store = ColumnStore::from_columns(columns, accumulate_v);
    let initial: Vec<SlotData> = store.slots;

    let ladder = build_ladder(cfg.transport, overlap_ok, policy.degrade);
    let checkpoints = (policy.checkpoint_every > 0).then(|| Arc::new(CheckpointStore::new(procs)));

    let mut restarts_used = 0u32;
    let mut fallbacks: Vec<&'static str> = Vec::new();
    let mut rungs_tried: Vec<&'static str> = Vec::new();
    let mut last_err: Option<DistError> = None;
    let mut completed: Option<AttemptOut> = None;

    'ladder: for (ri, &rung) in ladder.iter().enumerate() {
        rungs_tried.push(rung.label());
        for attempt in 0..=policy.max_restarts {
            if attempt > 0 {
                restarts_used += 1;
            }
            if let Some(inj) = &injector {
                inj.reset_store();
            }
            let (start_sweep, slots, bases) = resume_point(&checkpoints, &initial, procs);
            let result = if rung == Rung::Sequential {
                Ok(run_sequential(&programs, start_sweep, slots, &bases, cfg.exec))
            } else {
                run_attempt(
                    rung,
                    &programs,
                    start_sweep,
                    slots,
                    &bases,
                    accumulate_v,
                    cfg.exec,
                    &policy,
                    &injector,
                    &checkpoints,
                )
            };
            match result {
                Ok(out) => {
                    completed = Some(out);
                    break 'ladder;
                }
                Err(e) => last_err = Some(e),
            }
        }
        if ri + 1 < ladder.len() {
            fallbacks.push(rung.label());
        }
    }

    let out = match completed {
        Some(out) => out,
        None => {
            return Err(DistError::Unrecoverable {
                last: Box::new(last_err.expect("a failed attempt recorded its error")),
                restarts: restarts_used,
                rungs: rungs_tried,
            });
        }
    };

    let health = HealthReport {
        faults: injector.as_ref().map(|i| i.snapshot()).unwrap_or_default(),
        retries: out.retries,
        restarts: restarts_used,
        fallbacks,
    };

    // final layout: replay the programs that actually ran
    let mut layout: Vec<ColIndex> = (0..n).collect();
    for program in programs.iter().take(out.sweeps) {
        layout = program.final_layout();
    }

    Ok(DistributedOutcome {
        slots: out.slots,
        layout,
        sweeps: out.sweeps,
        converged: out.converged,
        total_rotations: out.total_rotations,
        overlap: out.overlap,
        warm_payload_allocs: out.warm,
        steady_payload_allocs: out.steady,
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_program, ColumnStore, ExecConfig};
    use crate::machine::Machine;
    use std::time::Duration;
    use treesvd_comm::{StallEvent, StallKind};
    use treesvd_matrix::generate;
    use treesvd_net::TopologyKind;
    use treesvd_orderings::OrderingKind;

    fn reference_run(
        kind: OrderingKind,
        a: &treesvd_matrix::Matrix,
        accumulate_v: bool,
        max_sweeps: usize,
    ) -> (Vec<SlotData>, Vec<usize>, usize) {
        let n = a.cols();
        let ord = kind.build(n).unwrap();
        let mac = Machine::with_kind(TopologyKind::PerfectFatTree, (n / 2).next_power_of_two());
        let mut store = ColumnStore::from_columns(a.clone().into_columns(), accumulate_v);
        let mut layout = ord.initial_layout();
        let mut sweeps = 0;
        for k in 0..max_sweeps {
            let prog = ord.sweep_program(k, &layout);
            let stats = execute_program(&mac, &prog, &mut store, &ExecConfig::default());
            layout = prog.final_layout();
            sweeps = k + 1;
            if stats.is_converged() {
                break;
            }
        }
        (store.slots, store.layout, sweeps)
    }

    #[test]
    fn distributed_matches_synchronous_bitwise() {
        for kind in [OrderingKind::RoundRobin, OrderingKind::FatTree, OrderingKind::NewRing] {
            let n = 8;
            let a = generate::random_uniform(12, n, 3);
            let ord = kind.build(n).unwrap();
            let dist = distributed_svd(
                ord.as_ref(),
                a.clone().into_columns(),
                false,
                ExecConfig::default(),
                40,
            )
            .unwrap();
            let (ref_slots, ref_layout, ref_sweeps) = reference_run(kind, &a, false, 40);
            assert_eq!(dist.sweeps, ref_sweeps, "{kind}");
            assert_eq!(dist.layout, ref_layout, "{kind}");
            for (s, (d, r)) in dist.slots.iter().zip(ref_slots.iter()).enumerate() {
                assert_eq!(d.a, r.a, "{kind}: slot {s} differs");
            }
            assert!(!dist.health.degraded(), "{kind}: clean run reported recovery");
        }
    }

    #[test]
    fn distributed_with_v_accumulation() {
        let n = 8;
        let a = generate::random_uniform(10, n, 5);
        let ord = OrderingKind::FatTree.build(n).unwrap();
        let dist = distributed_svd(
            ord.as_ref(),
            a.clone().into_columns(),
            true,
            ExecConfig::default(),
            40,
        )
        .unwrap();
        let (ref_slots, _, _) = reference_run(OrderingKind::FatTree, &a, true, 40);
        for (d, r) in dist.slots.iter().zip(ref_slots.iter()) {
            assert_eq!(d.a, r.a);
            assert_eq!(d.v, r.v);
        }
        assert!(dist.converged);
    }

    #[test]
    fn transports_and_overlap_are_bitwise_identical() {
        for kind in [OrderingKind::NewRing, OrderingKind::FatTree, OrderingKind::Hybrid] {
            let n = 8;
            let a = generate::random_uniform(12, n, 11);
            let ord = kind.build(n).unwrap();
            let mut runs = Vec::new();
            for (transport, overlap) in [
                (Transport::Legacy, false),
                (Transport::ZeroCopy, false),
                (Transport::ZeroCopy, true),
            ] {
                let cfg = DistConfig { transport, overlap, ..DistConfig::default() };
                let run = distributed_svd_with(ord.as_ref(), a.clone().into_columns(), true, &cfg)
                    .unwrap();
                assert_eq!(run.overlap, overlap, "{kind}: overlap gate disagreed");
                runs.push(run);
            }
            let base = &runs[0];
            for run in &runs[1..] {
                assert_eq!(run.sweeps, base.sweeps, "{kind}");
                assert_eq!(run.total_rotations, base.total_rotations, "{kind}");
                assert_eq!(run.layout, base.layout, "{kind}");
                for (s, (d, r)) in run.slots.iter().zip(base.slots.iter()).enumerate() {
                    assert_eq!(d.a, r.a, "{kind}: slot {s} data differs");
                    assert_eq!(d.v, r.v, "{kind}: slot {s} vectors differ");
                }
            }
        }
    }

    #[test]
    fn zero_copy_steady_state_makes_no_payload_allocations() {
        for overlap in [false, true] {
            let n = 16;
            let a = generate::random_uniform(24, n, 13);
            let ord = OrderingKind::NewRing.build(n).unwrap();
            let cfg =
                DistConfig { transport: Transport::ZeroCopy, overlap, ..DistConfig::default() };
            let run = distributed_svd_with(ord.as_ref(), a.into_columns(), true, &cfg).unwrap();
            assert!(run.converged);
            assert!(run.sweeps > 2, "need a steady state to measure");
            assert!(run.warm_payload_allocs > 0, "warm-up must populate the pools");
            assert_eq!(
                run.steady_payload_allocs, 0,
                "overlap={overlap}: steady state allocated payload buffers"
            );
        }
    }

    #[test]
    fn legacy_transport_never_overlaps() {
        let n = 8;
        let a = generate::random_uniform(16, n, 17);
        let ord = OrderingKind::NewRing.build(n).unwrap();
        // even with overlap requested, the legacy transport must refuse it:
        // its blocking plan cycles under rendezvous semantics (PR 2)
        let cfg =
            DistConfig { transport: Transport::Legacy, overlap: true, ..DistConfig::default() };
        let run = distributed_svd_with(ord.as_ref(), a.into_columns(), true, &cfg).unwrap();
        assert!(run.converged);
        assert!(!run.overlap, "legacy transport must never overlap");
    }

    #[test]
    fn distributed_converges_and_orthogonalizes() {
        let n = 16;
        let a = generate::random_uniform(20, n, 7);
        let ord = OrderingKind::Hybrid.build(n).unwrap();
        let dist =
            distributed_svd(ord.as_ref(), a.into_columns(), false, ExecConfig::default(), 40)
                .unwrap();
        assert!(dist.converged);
        assert!(dist.total_rotations > 0);
        // all pairs orthogonal
        for i in 0..n {
            for j in (i + 1)..n {
                let d = treesvd_matrix::ops::dot(&dist.slots[i].a, &dist.slots[j].a).abs();
                let ni = treesvd_matrix::ops::norm2(&dist.slots[i].a);
                let nj = treesvd_matrix::ops::norm2(&dist.slots[j].a);
                assert!(d <= 1e-10 * ni * nj, "columns in slots {i},{j} coupled");
            }
        }
    }

    // ---- recovery layer ----

    /// Fault-free oracle with the default config.
    fn oracle(kind: OrderingKind, a: &treesvd_matrix::Matrix, vectors: bool) -> DistributedOutcome {
        let ord = kind.build(a.cols()).unwrap();
        distributed_svd(ord.as_ref(), a.clone().into_columns(), vectors, ExecConfig::default(), 40)
            .unwrap()
    }

    fn assert_bitwise(run: &DistributedOutcome, base: &DistributedOutcome, what: &str) {
        assert_eq!(run.sweeps, base.sweeps, "{what}: sweeps");
        assert_eq!(run.total_rotations, base.total_rotations, "{what}: rotations");
        assert_eq!(run.layout, base.layout, "{what}: layout");
        for (s, (d, r)) in run.slots.iter().zip(base.slots.iter()).enumerate() {
            assert_eq!(d.a, r.a, "{what}: slot {s} data differs");
            assert_eq!(d.v, r.v, "{what}: slot {s} vectors differ");
        }
    }

    /// A quick-failing recovery policy for tests (small windows so
    /// unabsorbable faults surface in milliseconds, not seconds).
    fn test_policy() -> FaultPolicy {
        FaultPolicy {
            recv_timeout: Duration::from_millis(10),
            max_retries: 4,
            backoff: 2.0,
            checkpoint_every: 1,
            max_restarts: 2,
            degrade: true,
            check_finite: true,
        }
    }

    #[test]
    fn seeded_message_chaos_is_bitwise_identical_to_fault_free() {
        for kind in [OrderingKind::NewRing, OrderingKind::FatTree] {
            let n = 8;
            let a = generate::random_uniform(12, n, 23);
            let base = oracle(kind, &a, true);
            let plan = FaultPlan {
                seed: 7,
                drop: 0.1,
                delay: 0.1,
                max_delay: Duration::from_millis(2),
                duplicate: 0.1,
                corrupt: 0.05,
                stalls: vec![StallEvent {
                    rank: 1,
                    sweep: 1,
                    kind: StallKind::Sleep(Duration::from_millis(3)),
                }],
                ..FaultPlan::default()
            };
            let cfg =
                DistConfig { policy: test_policy(), fault: Some(plan), ..DistConfig::default() };
            let ord = kind.build(n).unwrap();
            let run =
                distributed_svd_with(ord.as_ref(), a.clone().into_columns(), true, &cfg).unwrap();
            assert!(run.converged, "{kind}");
            assert!(run.health.faults.injected() > 0, "{kind}: plan never fired");
            assert!(run.health.restarts == 0, "{kind}: message faults must not need a restart");
            assert_bitwise(&run, &base, &format!("{kind} under message chaos"));
        }
    }

    #[test]
    fn crash_restarts_from_the_last_checkpoint() {
        let n = 8;
        let a = generate::random_uniform(12, n, 29);
        let base = oracle(OrderingKind::NewRing, &a, true);
        let plan = FaultPlan::default().with_stall(StallEvent {
            rank: 1,
            sweep: 2,
            kind: StallKind::Crash,
        });
        let cfg = DistConfig { policy: test_policy(), fault: Some(plan), ..DistConfig::default() };
        let ord = OrderingKind::NewRing.build(n).unwrap();
        let run = distributed_svd_with(ord.as_ref(), a.clone().into_columns(), true, &cfg).unwrap();
        assert!(run.converged);
        assert!(run.health.restarts >= 1, "the crash must consume a restart");
        assert_eq!(run.health.faults.stalls, 1);
        assert!(run.health.fallbacks.is_empty(), "a checkpointed crash needs no ladder descent");
        assert_bitwise(&run, &base, "crash + checkpoint restart");
    }

    #[test]
    fn canonical_chaos_plan_recovers_bitwise() {
        // the exact profile the CLI's --chaos flag arms
        let n = 8;
        let a = generate::random_uniform(12, n, 31);
        let base = oracle(OrderingKind::Hybrid, &a, true);
        let ord = OrderingKind::Hybrid.build(n).unwrap();
        for seed in [2u64, 3, 5] {
            let mut policy = FaultPolicy::chaos();
            policy.recv_timeout = Duration::from_millis(10); // keep the test fast
            let cfg =
                DistConfig { policy, fault: Some(FaultPlan::chaos(seed)), ..DistConfig::default() };
            let run =
                distributed_svd_with(ord.as_ref(), a.clone().into_columns(), true, &cfg).unwrap();
            assert!(run.converged, "seed {seed}");
            assert!(run.health.faults.injected() > 0, "seed {seed}: plan never fired");
            assert_bitwise(&run, &base, &format!("chaos seed {seed}"));
        }
    }

    #[test]
    fn poisoned_link_descends_the_ladder_to_sequential() {
        let n = 8;
        let a = generate::random_uniform(12, n, 37);
        let base = oracle(OrderingKind::NewRing, &a, true);
        let plan = FaultPlan::default().with_poisoned_link(0, 1).with_poisoned_link(1, 0);
        let policy = FaultPolicy {
            recv_timeout: Duration::from_millis(5),
            max_retries: 1,
            max_restarts: 0,
            ..test_policy()
        };
        let cfg = DistConfig { policy, fault: Some(plan), ..DistConfig::default() };
        let ord = OrderingKind::NewRing.build(n).unwrap();
        let run = distributed_svd_with(ord.as_ref(), a.clone().into_columns(), true, &cfg).unwrap();
        assert!(run.converged);
        assert_eq!(
            run.health.fallbacks,
            vec!["overlapped", "zero-copy", "legacy"],
            "every network rung must fail on a dead edge"
        );
        assert!(!run.overlap);
        assert_bitwise(&run, &base, "sequential fallback");
    }

    #[test]
    fn unabsorbable_fault_without_degradation_fails_fast_with_context() {
        let n = 8;
        let a = generate::random_uniform(12, n, 41);
        let plan = FaultPlan::default().with_poisoned_link(0, 1);
        let policy = FaultPolicy {
            recv_timeout: Duration::from_millis(5),
            max_retries: 1,
            max_restarts: 1,
            degrade: false,
            ..test_policy()
        };
        let cfg = DistConfig { policy, fault: Some(plan), ..DistConfig::default() };
        let ord = OrderingKind::NewRing.build(n).unwrap();
        let err = distributed_svd_with(ord.as_ref(), a.into_columns(), true, &cfg).unwrap_err();
        let DistError::Unrecoverable { last, restarts, rungs } = &err else {
            panic!("expected Unrecoverable, got {err}");
        };
        assert_eq!(*restarts, 1, "the restart budget must be spent before giving up");
        assert_eq!(rungs.len(), 1, "degrade=false must stay on one rung");
        assert!(matches!(**last, DistError::Recv { .. }), "a dead link surfaces as a recv failure");
        let msg = err.to_string();
        assert!(msg.contains("rank") && msg.contains("sweep"), "diagnostic lacks context: {msg}");
    }

    #[test]
    fn armed_inert_plan_is_bitwise_invisible_and_allocation_free() {
        let n = 16;
        let a = generate::random_uniform(24, n, 43);
        let base = oracle(OrderingKind::NewRing, &a, true);
        let cfg = DistConfig {
            policy: test_policy(),
            fault: Some(FaultPlan::default()),
            ..DistConfig::default()
        };
        let ord = OrderingKind::NewRing.build(n).unwrap();
        let run = distributed_svd_with(ord.as_ref(), a.clone().into_columns(), true, &cfg).unwrap();
        assert!(run.converged);
        assert_eq!(run.health.faults.injected(), 0);
        assert!(!run.health.degraded(), "inert plan must not trigger recovery");
        assert_eq!(
            run.steady_payload_allocs, 0,
            "armed recovery must keep the zero-alloc steady state (fault-layer copies are \
             charged to chaos_allocations, not the pools)"
        );
        assert_bitwise(&run, &base, "armed-inert plan");
    }
}
