//! A genuinely distributed-style executor: every processor is its own
//! thread owning its two columns, exchanging them by explicit tag-matched
//! messages over `treesvd-comm` — the shape of the paper's CM-5
//! implementation (CMMD send/recv), with the convergence test as a global
//! allreduce once per sweep.
//!
//! The same schedules, the same arithmetic: the distributed run is
//! **bitwise identical** to [`execute_program`](crate::exec::execute_program)
//! (asserted in this module's tests and in
//! `tests/simulation_integration.rs`), because rotation order within a pair
//! is fully determined by the schedule and f64 arithmetic is deterministic.

use crate::exec::{rotate_pair, ExecConfig, SlotData};
use std::sync::Arc;
use treesvd_comm::{allreduce_sum, Communicator, RecvError, ThreadWorld};
use treesvd_orderings::{ColIndex, JacobiOrdering, Program};

/// Result of a distributed run.
#[derive(Debug)]
pub struct DistributedOutcome {
    /// Slot contents at termination, indexed by slot.
    pub slots: Vec<SlotData>,
    /// Final slot→index layout.
    pub layout: Vec<ColIndex>,
    /// Sweeps executed.
    pub sweeps: usize,
    /// Whether the termination criterion (no rotations, no swaps in a full
    /// sweep) was reached.
    pub converged: bool,
    /// Total rotations across all ranks and sweeps.
    pub total_rotations: usize,
}

/// Everything a per-rank worker owns besides its communicator: the shared
/// schedule, its two resident columns, and the execution parameters.
struct WorkerTask<'a> {
    programs: &'a [Program],
    left: SlotData,
    right: SlotData,
    config: ExecConfig,
}

/// Per-rank worker: executes its two slots across all sweeps.
fn worker(
    comm: &mut Communicator,
    task: WorkerTask<'_>,
) -> Result<(SlotData, SlotData, usize, usize, bool), RecvError> {
    let WorkerTask { programs, mut left, mut right, config } = task;
    let rank = comm.rank();
    let my_slots = [2 * rank, 2 * rank + 1];
    let mut total_rotations = 0usize;
    let mut sweeps = 0usize;
    let mut converged = false;
    let mut global_step: u64 = 0;

    'sweeps: for (sweep_no, program) in programs.iter().enumerate() {
        let layouts = program.layouts();
        let mut rotations = 0usize;
        let mut swaps = 0usize;
        for (step_no, step) in program.steps.iter().enumerate() {
            // --- rotate the resident pair ---
            let layout = &layouts[step_no];
            let small_on_left = layout[my_slots[0]] < layout[my_slots[1]];
            let report =
                rotate_pair(&mut left, &mut right, config.threshold, config.sort, small_on_left);
            if report.rotated {
                rotations += 1;
            }
            if report.swapped {
                swaps += 1;
            }

            // --- communication: route this step's movement ---
            let perm = &step.move_after;
            let inv = perm.inverse();
            // send departing columns; tag identifies (global step, dest slot)
            for (i, &s) in my_slots.iter().enumerate() {
                let d = perm.dest_of(s);
                if d / 2 != rank {
                    let data =
                        if i == 0 { std::mem::take(&mut left) } else { std::mem::take(&mut right) };
                    let tag = global_step << 1 | (d % 2) as u64;
                    comm.send(d / 2, tag, encode(&data));
                }
            }
            // local shuffles (within this rank)
            let mut next: [Option<SlotData>; 2] = [None, None];
            for (i, &s) in my_slots.iter().enumerate() {
                let d = perm.dest_of(s);
                if d / 2 == rank {
                    let data =
                        if i == 0 { std::mem::take(&mut left) } else { std::mem::take(&mut right) };
                    next[d % 2] = Some(data);
                }
            }
            // receive arrivals into the still-empty slots
            for local in 0..2usize {
                if next[local].is_none() {
                    let dest_slot = my_slots[local];
                    let src_slot = inv.dest_of(dest_slot);
                    if src_slot / 2 == rank {
                        // already handled as a local shuffle above
                        continue;
                    }
                    let tag = global_step << 1 | (dest_slot % 2) as u64;
                    let payload = comm.recv(src_slot / 2, tag)?;
                    next[local] = Some(decode(payload));
                }
            }
            left = next[0].take().expect("slot 0 filled");
            right = next[1].take().expect("slot 1 filled");
            global_step += 1;
        }

        // --- global convergence test ---
        let sums = allreduce_sum(comm, sweep_no as u64, vec![rotations as f64, swaps as f64])?;
        total_rotations += rotations;
        sweeps = sweep_no + 1;
        if sums[0] == 0.0 && sums[1] == 0.0 {
            converged = true;
            break 'sweeps;
        }
    }
    Ok((left, right, sweeps, total_rotations, converged))
}

fn encode(d: &SlotData) -> Vec<f64> {
    let mut out = Vec::with_capacity(d.a.len() + d.v.len() + 1);
    out.push(d.a.len() as f64);
    out.extend_from_slice(&d.a);
    out.extend_from_slice(&d.v);
    out
}

fn decode(payload: Vec<f64>) -> SlotData {
    let m = payload[0] as usize;
    let a = payload[1..1 + m].to_vec();
    let v = payload[1 + m..].to_vec();
    SlotData { a, v }
}

/// Run the ordering to convergence with one thread per processor.
///
/// `columns[j]` is column `j`; `accumulate_v` attaches identity `V`
/// columns. Returns the final slots, layout, and counters.
///
/// # Errors
/// Returns a [`RecvError`] if a rank times out (schedule bug) or the world
/// is torn down.
///
/// # Panics
/// Panics if `columns.len()` is odd or disagrees with the ordering.
pub fn distributed_svd(
    ordering: &dyn JacobiOrdering,
    columns: Vec<Vec<f64>>,
    accumulate_v: bool,
    config: ExecConfig,
    max_sweeps: usize,
) -> Result<DistributedOutcome, RecvError> {
    let n = columns.len();
    assert_eq!(n, ordering.n(), "column count disagrees with the ordering");
    assert_eq!(n % 2, 0, "need an even column count");
    let procs = n / 2;

    // programs are precomputed (they are deterministic) and shared read-only
    let programs: Arc<Vec<Program>> = Arc::new(ordering.programs(max_sweeps));

    let store = crate::exec::ColumnStore::from_columns(columns, accumulate_v);
    let mut slot_data: Vec<SlotData> = store.slots;

    let world = ThreadWorld::new(procs);
    let comms = world.into_communicators();

    let mut handles = Vec::with_capacity(procs);
    for (rank, mut comm) in comms.into_iter().enumerate() {
        let left = std::mem::take(&mut slot_data[2 * rank]);
        let right = std::mem::take(&mut slot_data[2 * rank + 1]);
        let programs = Arc::clone(&programs);
        handles.push(std::thread::spawn(move || {
            worker(&mut comm, WorkerTask { programs: &programs, left, right, config })
        }));
    }

    let mut slots: Vec<SlotData> = (0..n).map(|_| SlotData::default()).collect();
    let mut sweeps = 0usize;
    let mut total_rotations = 0usize;
    let mut converged = false;
    for (rank, h) in handles.into_iter().enumerate() {
        let (left, right, s, r, c) = h.join().expect("worker panicked")?;
        slots[2 * rank] = left;
        slots[2 * rank + 1] = right;
        sweeps = s; // identical on all ranks by the allreduce
        converged = c;
        total_rotations += r;
    }

    // final layout: replay the programs that actually ran
    let mut layout: Vec<ColIndex> = (0..n).collect();
    for program in programs.iter().take(sweeps) {
        layout = program.final_layout();
    }

    Ok(DistributedOutcome { slots, layout, sweeps, converged, total_rotations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_program, ColumnStore, ExecConfig};
    use crate::machine::Machine;
    use treesvd_matrix::generate;
    use treesvd_net::TopologyKind;
    use treesvd_orderings::OrderingKind;

    fn reference_run(
        kind: OrderingKind,
        a: &treesvd_matrix::Matrix,
        accumulate_v: bool,
        max_sweeps: usize,
    ) -> (Vec<SlotData>, Vec<usize>, usize) {
        let n = a.cols();
        let ord = kind.build(n).unwrap();
        let mac = Machine::with_kind(TopologyKind::PerfectFatTree, (n / 2).next_power_of_two());
        let mut store = ColumnStore::from_columns(a.clone().into_columns(), accumulate_v);
        let mut layout = ord.initial_layout();
        let mut sweeps = 0;
        for k in 0..max_sweeps {
            let prog = ord.sweep_program(k, &layout);
            let stats = execute_program(&mac, &prog, &mut store, &ExecConfig::default());
            layout = prog.final_layout();
            sweeps = k + 1;
            if stats.is_converged() {
                break;
            }
        }
        (store.slots, store.layout, sweeps)
    }

    #[test]
    fn distributed_matches_synchronous_bitwise() {
        for kind in [OrderingKind::RoundRobin, OrderingKind::FatTree, OrderingKind::NewRing] {
            let n = 8;
            let a = generate::random_uniform(12, n, 3);
            let ord = kind.build(n).unwrap();
            let dist = distributed_svd(
                ord.as_ref(),
                a.clone().into_columns(),
                false,
                ExecConfig::default(),
                40,
            )
            .unwrap();
            let (ref_slots, ref_layout, ref_sweeps) = reference_run(kind, &a, false, 40);
            assert_eq!(dist.sweeps, ref_sweeps, "{kind}");
            assert_eq!(dist.layout, ref_layout, "{kind}");
            for (s, (d, r)) in dist.slots.iter().zip(ref_slots.iter()).enumerate() {
                assert_eq!(d.a, r.a, "{kind}: slot {s} differs");
            }
        }
    }

    #[test]
    fn distributed_with_v_accumulation() {
        let n = 8;
        let a = generate::random_uniform(10, n, 5);
        let ord = OrderingKind::FatTree.build(n).unwrap();
        let dist = distributed_svd(
            ord.as_ref(),
            a.clone().into_columns(),
            true,
            ExecConfig::default(),
            40,
        )
        .unwrap();
        let (ref_slots, _, _) = reference_run(OrderingKind::FatTree, &a, true, 40);
        for (d, r) in dist.slots.iter().zip(ref_slots.iter()) {
            assert_eq!(d.a, r.a);
            assert_eq!(d.v, r.v);
        }
        assert!(dist.converged);
    }

    #[test]
    fn distributed_converges_and_orthogonalizes() {
        let n = 16;
        let a = generate::random_uniform(20, n, 7);
        let ord = OrderingKind::Hybrid.build(n).unwrap();
        let dist =
            distributed_svd(ord.as_ref(), a.into_columns(), false, ExecConfig::default(), 40)
                .unwrap();
        assert!(dist.converged);
        assert!(dist.total_rotations > 0);
        // all pairs orthogonal
        for i in 0..n {
            for j in (i + 1)..n {
                let d = treesvd_matrix::ops::dot(&dist.slots[i].a, &dist.slots[j].a).abs();
                let ni = treesvd_matrix::ops::norm2(&dist.slots[i].a);
                let nj = treesvd_matrix::ops::norm2(&dist.slots[j].a);
                assert!(d <= 1e-10 * ni * nj, "columns in slots {i},{j} coupled");
            }
        }
    }
}
