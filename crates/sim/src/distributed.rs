//! A genuinely distributed-style executor: every processor is its own
//! thread owning its two columns, exchanging them by explicit tag-matched
//! messages over `treesvd-comm` — the shape of the paper's CM-5
//! implementation (CMMD send/recv), with the convergence test as a global
//! allreduce once per sweep.
//!
//! The same schedules, the same arithmetic: the distributed run is
//! **bitwise identical** to [`execute_program`](crate::exec::execute_program)
//! (asserted in this module's tests and in
//! `tests/simulation_integration.rs`), because rotation order within a pair
//! is fully determined by the schedule and f64 arithmetic is deterministic.
//!
//! Two transports are available ([`Transport`]):
//!
//! * **Legacy** — the original oracle path: every exchange serializes both
//!   columns into a fresh header-prefixed `Vec<f64>` (plus two more
//!   allocations on decode) and every step blocks on its receives.
//! * **Zero-copy** (default) — a departing column's storage *is* the
//!   message: the sender moves its `Vec` into a detached
//!   [`MsgBuf`](treesvd_comm::MsgBuf) and the receiver adopts the
//!   allocation. Exactly `n` data (and `n` vector) buffers exist for the
//!   whole run, wandering between ranks along the movement permutations;
//!   the steady state performs **zero payload allocations** (collectives
//!   lease from the rank-local [`BufferPool`](treesvd_comm::BufferPool),
//!   which is warm after the first sweep).
//!
//! On top of the zero-copy transport, [`DistConfig::overlap`] enables
//! communication/computation overlap: §4's movement permutations fix every
//! next destination statically, so a rank ships a departing data column
//! immediately after the A-phase rotation — while its own vector update,
//! the V-phase messages, and the *receiver's* current step are still in
//! flight — and defers each arrival to its point of use one step later
//! (post at the top of step `s`, complete at step `s+1`). The split is
//! bitwise-invisible because a Jacobi pair factors exactly into
//! `rotate_pair_a` (Gram + data columns) then `rotate_pair_v` (vector
//! columns). Before enabling the overlap the executor asks
//! `treesvd-analyze` to prove the overlapped plan deadlock-free under both
//! buffered and rendezvous semantics ([`verify_overlap_freedom`]); if the
//! proof fails for an exotic ordering, the run silently falls back to the
//! non-overlapped zero-copy path.

use crate::exec::{rotate_pair, rotate_pair_a, rotate_pair_v, ExecConfig, SlotData};
use std::sync::Arc;
use treesvd_analyze::{overlap_tag_a, overlap_tag_v, verify_overlap_freedom};
use treesvd_comm::{
    allreduce_sum, allreduce_sum_in_place, Communicator, MsgBuf, RecvError, ThreadWorld,
};
use treesvd_orderings::{ColIndex, JacobiOrdering, Program};

/// Column-exchange transport of the distributed executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Serialize both columns of an exchange into a fresh header-prefixed
    /// `Vec<f64>` per message (the original executor; kept as the oracle
    /// and benchmark baseline).
    Legacy,
    /// Move the column storage itself as a detached
    /// [`MsgBuf`](treesvd_comm::MsgBuf); the receiver adopts the
    /// allocation. Zero copies, zero steady-state allocations.
    #[default]
    ZeroCopy,
}

/// Configuration of a distributed run.
#[derive(Debug, Clone, Copy)]
pub struct DistConfig {
    /// Rotation/kernel parameters (shared with the simulated executor).
    pub exec: ExecConfig,
    /// Sweep cap.
    pub max_sweeps: usize,
    /// Column-exchange transport.
    pub transport: Transport,
    /// Communication/computation overlap (send-ahead + deferred receives).
    /// Only effective with [`Transport::ZeroCopy`], and only after the
    /// analyzer proves the overlapped plan deadlock-free for the ordering.
    pub overlap: bool,
}

impl Default for DistConfig {
    fn default() -> Self {
        Self {
            exec: ExecConfig::default(),
            max_sweeps: 64,
            transport: Transport::ZeroCopy,
            overlap: true,
        }
    }
}

/// Result of a distributed run.
#[derive(Debug)]
pub struct DistributedOutcome {
    /// Slot contents at termination, indexed by slot.
    pub slots: Vec<SlotData>,
    /// Final slot→index layout.
    pub layout: Vec<ColIndex>,
    /// Sweeps executed.
    pub sweeps: usize,
    /// Whether the termination criterion (no rotations, no swaps in a full
    /// sweep) was reached.
    pub converged: bool,
    /// Total rotations across all ranks and sweeps.
    pub total_rotations: usize,
    /// Whether the overlapped (send-ahead) schedule actually ran — i.e.
    /// it was requested *and* the analyzer proved it safe.
    pub overlap: bool,
    /// Payload allocation events during the warm-up sweep, summed over all
    /// ranks' buffer pools.
    pub warm_payload_allocs: u64,
    /// Payload allocation events *after* the warm-up sweep, summed over
    /// all ranks. Zero for a zero-copy run (the smoke-benchmark gate).
    pub steady_payload_allocs: u64,
}

/// Everything a per-rank worker owns besides its communicator: the shared
/// schedule, its two resident columns, and the execution parameters.
struct WorkerTask<'a> {
    programs: &'a [Program],
    left: SlotData,
    right: SlotData,
    config: ExecConfig,
    transport: Transport,
    overlap: bool,
    vectors: bool,
}

/// What a per-rank worker reports back.
struct WorkerOut {
    left: SlotData,
    right: SlotData,
    sweeps: usize,
    rotations: usize,
    converged: bool,
    warm_allocs: u64,
    steady_allocs: u64,
}

/// Per-rank worker: executes its two slots across all sweeps.
fn worker(comm: &mut Communicator, task: WorkerTask<'_>) -> Result<WorkerOut, RecvError> {
    match (task.transport, task.overlap) {
        (Transport::Legacy, _) => worker_legacy(comm, task),
        (Transport::ZeroCopy, false) => worker_zero_copy(comm, task),
        (Transport::ZeroCopy, true) => worker_overlapped(comm, task),
    }
}

/// The original executor loop: encode/decode copies, blocking receives at
/// the end of every step. Kept verbatim as the oracle and baseline.
fn worker_legacy(comm: &mut Communicator, task: WorkerTask<'_>) -> Result<WorkerOut, RecvError> {
    let WorkerTask { programs, mut left, mut right, config, .. } = task;
    let rank = comm.rank();
    let my_slots = [2 * rank, 2 * rank + 1];
    let mut total_rotations = 0usize;
    let mut sweeps = 0usize;
    let mut converged = false;
    let mut global_step: u64 = 0;
    let mut warm_allocs = 0u64;

    'sweeps: for (sweep_no, program) in programs.iter().enumerate() {
        let layouts = program.layouts();
        let mut rotations = 0usize;
        let mut swaps = 0usize;
        for (step_no, step) in program.steps.iter().enumerate() {
            // --- rotate the resident pair ---
            let layout = &layouts[step_no];
            let small_on_left = layout[my_slots[0]] < layout[my_slots[1]];
            let report =
                rotate_pair(&mut left, &mut right, config.threshold, config.sort, small_on_left);
            if report.rotated {
                rotations += 1;
            }
            if report.swapped {
                swaps += 1;
            }

            // --- communication: route this step's movement ---
            let perm = &step.move_after;
            let inv = perm.inverse();
            // send departing columns; tag identifies (global step, dest slot)
            for (i, &s) in my_slots.iter().enumerate() {
                let d = perm.dest_of(s);
                if d / 2 != rank {
                    let data =
                        if i == 0 { std::mem::take(&mut left) } else { std::mem::take(&mut right) };
                    let tag = global_step << 1 | (d % 2) as u64;
                    comm.send(d / 2, tag, encode(&data));
                }
            }
            // local shuffles (within this rank)
            let mut next: [Option<SlotData>; 2] = [None, None];
            for (i, &s) in my_slots.iter().enumerate() {
                let d = perm.dest_of(s);
                if d / 2 == rank {
                    let data =
                        if i == 0 { std::mem::take(&mut left) } else { std::mem::take(&mut right) };
                    next[d % 2] = Some(data);
                }
            }
            // receive arrivals into the still-empty slots
            for local in 0..2usize {
                if next[local].is_none() {
                    let dest_slot = my_slots[local];
                    let src_slot = inv.dest_of(dest_slot);
                    if src_slot / 2 == rank {
                        // already handled as a local shuffle above
                        continue;
                    }
                    let tag = global_step << 1 | (dest_slot % 2) as u64;
                    let payload = comm.recv(src_slot / 2, tag)?;
                    next[local] = Some(decode(payload));
                }
            }
            left = next[0].take().expect("slot 0 filled");
            right = next[1].take().expect("slot 1 filled");
            global_step += 1;
        }

        // --- global convergence test ---
        let sums = allreduce_sum(comm, sweep_no as u64, vec![rotations as f64, swaps as f64])?;
        total_rotations += rotations;
        sweeps = sweep_no + 1;
        if sweep_no == 0 {
            warm_allocs = comm.payload_allocations();
        }
        if sums[0] == 0.0 && sums[1] == 0.0 {
            converged = true;
            break 'sweeps;
        }
    }
    let steady_allocs = comm.payload_allocations() - warm_allocs;
    Ok(WorkerOut {
        left,
        right,
        sweeps,
        rotations: total_rotations,
        converged,
        warm_allocs,
        steady_allocs,
    })
}

/// Zero-copy transport without overlap: the full pair rotation runs, then
/// departing columns leave as two detached messages (A phase: the data
/// column; V phase: the vector column) whose storage the receiver adopts,
/// and the step blocks on its arrivals like the legacy loop.
fn worker_zero_copy(comm: &mut Communicator, task: WorkerTask<'_>) -> Result<WorkerOut, RecvError> {
    let WorkerTask { programs, mut left, mut right, config, vectors, .. } = task;
    let rank = comm.rank();
    let my_slots = [2 * rank, 2 * rank + 1];
    let mut total_rotations = 0usize;
    let mut sweeps = 0usize;
    let mut converged = false;
    let mut global_step = 0usize;
    let mut warm_allocs = 0u64;

    'sweeps: for (sweep_no, program) in programs.iter().enumerate() {
        let layouts = program.layouts();
        let mut rotations = 0usize;
        let mut swaps = 0usize;
        for (step_no, step) in program.steps.iter().enumerate() {
            let layout = &layouts[step_no];
            let small_on_left = layout[my_slots[0]] < layout[my_slots[1]];
            let report =
                rotate_pair(&mut left, &mut right, config.threshold, config.sort, small_on_left);
            rotations += report.rotated as usize;
            swaps += report.swapped as usize;

            let perm = &step.move_after;
            let inv = perm.inverse();
            // departures: the column's storage is the message
            for (i, &s) in my_slots.iter().enumerate() {
                let d = perm.dest_of(s);
                if d / 2 != rank {
                    let slot = if i == 0 { &mut left } else { &mut right };
                    let a = std::mem::take(&mut slot.a);
                    comm.send_buf(d / 2, overlap_tag_a(global_step, d), MsgBuf::detached(a));
                    if vectors {
                        let v = std::mem::take(&mut slot.v);
                        comm.send_buf(d / 2, overlap_tag_v(global_step, d), MsgBuf::detached(v));
                    }
                }
            }
            // local shuffle: a stay crossing slots is a plain swap of the
            // resident pair (departed columns left empty shells behind)
            if crosses_locally(perm, rank) {
                std::mem::swap(&mut left, &mut right);
            }
            // arrivals: adopt the sender's storage into the vacated shells
            for (local, &dest_slot) in my_slots.iter().enumerate() {
                let src_slot = inv.dest_of(dest_slot);
                if src_slot / 2 != rank {
                    let slot = if local == 0 { &mut left } else { &mut right };
                    slot.a = comm.recv(src_slot / 2, overlap_tag_a(global_step, dest_slot))?;
                    if vectors {
                        slot.v = comm.recv(src_slot / 2, overlap_tag_v(global_step, dest_slot))?;
                    }
                }
            }
            global_step += 1;
        }

        let mut sums = [rotations as f64, swaps as f64];
        allreduce_sum_in_place(comm, sweep_no as u64, &mut sums)?;
        total_rotations += rotations;
        sweeps = sweep_no + 1;
        if sweep_no == 0 {
            warm_allocs = comm.payload_allocations();
        }
        if sums[0] == 0.0 && sums[1] == 0.0 {
            converged = true;
            break 'sweeps;
        }
    }
    let steady_allocs = comm.payload_allocations() - warm_allocs;
    Ok(WorkerOut {
        left,
        right,
        sweeps,
        rotations: total_rotations,
        converged,
        warm_allocs,
        steady_allocs,
    })
}

/// An arrival deferred to its point of use: the column headed for local
/// slot `local`, sent by `src` during movement `step`. `v_done` marks a
/// vector payload that was opportunistically completed at the top of the
/// step (it had already been delivered), skipping the deferred blocking
/// receive.
#[derive(Clone, Copy)]
struct PendingArrival {
    local: usize,
    src: usize,
    step: usize,
    v_done: bool,
}

/// Zero-copy transport with communication/computation overlap, mirroring
/// the analyzer's overlapped `CommPlan` op for op. Per step `s`: post the
/// movement-`s` arrival set (the double buffer — computable ahead of time
/// because next destinations are static), complete the movement-`s−1` A
/// arrivals at their point of use, rotate the data columns, ship the
/// departing A phase, then do the same for the V phase, and finally
/// shuffle locally. Arrivals of the last movement drain after the loop.
fn worker_overlapped(
    comm: &mut Communicator,
    task: WorkerTask<'_>,
) -> Result<WorkerOut, RecvError> {
    let WorkerTask { programs, mut left, mut right, config, vectors, .. } = task;
    let rank = comm.rank();
    let my_slots = [2 * rank, 2 * rank + 1];
    let mut total_rotations = 0usize;
    let mut sweeps = 0usize;
    let mut converged = false;
    let mut global_step = 0usize;
    let mut warm_allocs = 0u64;
    let mut pending: Vec<PendingArrival> = Vec::with_capacity(2);
    let mut posted: Vec<PendingArrival> = Vec::with_capacity(2);

    'sweeps: for (sweep_no, program) in programs.iter().enumerate() {
        let layouts = program.layouts();
        let mut rotations = 0usize;
        let mut swaps = 0usize;
        for (step_no, step) in program.steps.iter().enumerate() {
            let perm = &step.move_after;
            let inv = perm.inverse();

            // 1. prefetch post: register this movement's arrivals before
            //    any compute (the PostRecv ops of the overlapped plan)
            posted.clear();
            for (local, &dest_slot) in my_slots.iter().enumerate() {
                let src_slot = inv.dest_of(dest_slot);
                if src_slot / 2 != rank {
                    posted.push(PendingArrival {
                        local,
                        src: src_slot / 2,
                        step: global_step,
                        v_done: false,
                    });
                }
            }

            // 2. complete the previous movement's A arrivals at their
            //    point of use, adopting the sender's storage; piggyback
            //    any vector payload that is already in (one parking point
            //    per step instead of two when the sender runs ahead)
            for p in &mut pending {
                let slot = if p.local == 0 { &mut left } else { &mut right };
                slot.a = comm.recv(p.src, overlap_tag_a(p.step, my_slots[p.local]))?;
                if vectors {
                    if let Some(v) = comm.try_recv(p.src, overlap_tag_v(p.step, my_slots[p.local]))
                    {
                        slot.v = v;
                        p.v_done = true;
                    }
                }
            }

            // 3. A-phase rotation (Gram + data columns)
            let layout = &layouts[step_no];
            let small_on_left = layout[my_slots[0]] < layout[my_slots[1]];
            let (rot, report) =
                rotate_pair_a(&mut left, &mut right, config.threshold, config.sort, small_on_left);
            rotations += report.rotated as usize;
            swaps += report.swapped as usize;

            // 4. ship departing data columns immediately — the receiver is
            //    still mid-step; its vector work and ours overlap the wire
            for (i, &s) in my_slots.iter().enumerate() {
                let d = perm.dest_of(s);
                if d / 2 != rank {
                    let slot = if i == 0 { &mut left } else { &mut right };
                    let a = std::mem::take(&mut slot.a);
                    comm.send_buf(d / 2, overlap_tag_a(global_step, d), MsgBuf::detached(a));
                }
            }

            if vectors {
                // 5. complete the previous movement's V arrivals (unless
                //    already piggybacked at the top of the step)
                for p in &pending {
                    if p.v_done {
                        continue;
                    }
                    let slot = if p.local == 0 { &mut left } else { &mut right };
                    slot.v = comm.recv(p.src, overlap_tag_v(p.step, my_slots[p.local]))?;
                }
                // 6. V-phase rotation
                rotate_pair_v(rot, &report, &mut left, &mut right);
                // 7. ship departing vector columns
                for (i, &s) in my_slots.iter().enumerate() {
                    let d = perm.dest_of(s);
                    if d / 2 != rank {
                        let slot = if i == 0 { &mut left } else { &mut right };
                        let v = std::mem::take(&mut slot.v);
                        comm.send_buf(d / 2, overlap_tag_v(global_step, d), MsgBuf::detached(v));
                    }
                }
            }

            // 8. local shuffle; the posted arrivals become pending
            if crosses_locally(perm, rank) {
                std::mem::swap(&mut left, &mut right);
            }
            std::mem::swap(&mut pending, &mut posted);
            global_step += 1;
        }

        let mut sums = [rotations as f64, swaps as f64];
        allreduce_sum_in_place(comm, sweep_no as u64, &mut sums)?;
        total_rotations += rotations;
        sweeps = sweep_no + 1;
        if sweep_no == 0 {
            warm_allocs = comm.payload_allocations();
        }
        if sums[0] == 0.0 && sums[1] == 0.0 {
            converged = true;
            break 'sweeps;
        }
    }

    // drain: the final movement's arrivals complete after the sweep loop
    for p in &pending {
        let slot = if p.local == 0 { &mut left } else { &mut right };
        slot.a = comm.recv(p.src, overlap_tag_a(p.step, my_slots[p.local]))?;
        if vectors {
            slot.v = comm.recv(p.src, overlap_tag_v(p.step, my_slots[p.local]))?;
        }
    }

    let steady_allocs = comm.payload_allocations() - warm_allocs;
    Ok(WorkerOut {
        left,
        right,
        sweeps,
        rotations: total_rotations,
        converged,
        warm_allocs,
        steady_allocs,
    })
}

/// Whether this step's movement keeps a column on `rank` but moves it to
/// the other local slot — the only intra-rank shuffle two slots allow.
fn crosses_locally(perm: &treesvd_orderings::schedule::Permutation, rank: usize) -> bool {
    for (i, s) in [2 * rank, 2 * rank + 1].into_iter().enumerate() {
        let d = perm.dest_of(s);
        if d / 2 == rank && d % 2 != i {
            return true;
        }
    }
    false
}

fn encode(d: &SlotData) -> Vec<f64> {
    let mut out = Vec::with_capacity(d.a.len() + d.v.len() + 1);
    out.push(d.a.len() as f64);
    out.extend_from_slice(&d.a);
    out.extend_from_slice(&d.v);
    out
}

fn decode(payload: Vec<f64>) -> SlotData {
    let m = payload[0] as usize;
    let a = payload[1..1 + m].to_vec();
    let v = payload[1 + m..].to_vec();
    SlotData { a, v }
}

/// Run the ordering to convergence with one thread per processor, using
/// the default [`DistConfig`] (zero-copy transport with overlap).
///
/// `columns[j]` is column `j`; `accumulate_v` attaches identity `V`
/// columns. Returns the final slots, layout, and counters.
///
/// # Errors
/// Returns a [`RecvError`] if a rank times out (schedule bug) or the world
/// is torn down.
///
/// # Panics
/// Panics if `columns.len()` is odd or disagrees with the ordering.
pub fn distributed_svd(
    ordering: &dyn JacobiOrdering,
    columns: Vec<Vec<f64>>,
    accumulate_v: bool,
    config: ExecConfig,
    max_sweeps: usize,
) -> Result<DistributedOutcome, RecvError> {
    let cfg = DistConfig { exec: config, max_sweeps, ..DistConfig::default() };
    distributed_svd_with(ordering, columns, accumulate_v, &cfg)
}

/// [`distributed_svd`] with full control over transport and overlap.
///
/// # Errors
/// Returns a [`RecvError`] if a rank times out (schedule bug) or the world
/// is torn down.
///
/// # Panics
/// Panics if `columns.len()` is odd or disagrees with the ordering.
pub fn distributed_svd_with(
    ordering: &dyn JacobiOrdering,
    columns: Vec<Vec<f64>>,
    accumulate_v: bool,
    cfg: &DistConfig,
) -> Result<DistributedOutcome, RecvError> {
    let n = columns.len();
    assert_eq!(n, ordering.n(), "column count disagrees with the ordering");
    assert_eq!(n % 2, 0, "need an even column count");
    let procs = n / 2;

    // programs are precomputed (they are deterministic) and shared read-only
    let programs: Arc<Vec<Program>> = Arc::new(ordering.programs(cfg.max_sweeps));

    // overlap only runs on the zero-copy transport, and only once the
    // analyzer has proved the send-ahead plan deadlock-free under both
    // buffered and rendezvous semantics; one restore period covers every
    // distinct per-sweep program the ordering generates
    let period = ordering.restore_period().max(1).min(programs.len());
    let overlap = cfg.overlap
        && cfg.transport == Transport::ZeroCopy
        && programs[..period].iter().all(|p| verify_overlap_freedom(p, accumulate_v).is_ok());

    let store = crate::exec::ColumnStore::from_columns(columns, accumulate_v);
    let mut slot_data: Vec<SlotData> = store.slots;

    let world = ThreadWorld::new(procs);
    let comms = world.into_communicators();

    let config = cfg.exec;
    let transport = cfg.transport;
    let mut handles = Vec::with_capacity(procs);
    for (rank, mut comm) in comms.into_iter().enumerate() {
        let left = std::mem::take(&mut slot_data[2 * rank]);
        let right = std::mem::take(&mut slot_data[2 * rank + 1]);
        let programs = Arc::clone(&programs);
        handles.push(std::thread::spawn(move || {
            worker(
                &mut comm,
                WorkerTask {
                    programs: &programs,
                    left,
                    right,
                    config,
                    transport,
                    overlap,
                    vectors: accumulate_v,
                },
            )
        }));
    }

    let mut slots: Vec<SlotData> = (0..n).map(|_| SlotData::default()).collect();
    let mut sweeps = 0usize;
    let mut total_rotations = 0usize;
    let mut converged = false;
    let mut warm_payload_allocs = 0u64;
    let mut steady_payload_allocs = 0u64;
    for (rank, h) in handles.into_iter().enumerate() {
        let out = h.join().expect("worker panicked")?;
        slots[2 * rank] = out.left;
        slots[2 * rank + 1] = out.right;
        sweeps = out.sweeps; // identical on all ranks by the allreduce
        converged = out.converged;
        total_rotations += out.rotations;
        warm_payload_allocs += out.warm_allocs;
        steady_payload_allocs += out.steady_allocs;
    }

    // final layout: replay the programs that actually ran
    let mut layout: Vec<ColIndex> = (0..n).collect();
    for program in programs.iter().take(sweeps) {
        layout = program.final_layout();
    }

    Ok(DistributedOutcome {
        slots,
        layout,
        sweeps,
        converged,
        total_rotations,
        overlap,
        warm_payload_allocs,
        steady_payload_allocs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_program, ColumnStore, ExecConfig};
    use crate::machine::Machine;
    use treesvd_matrix::generate;
    use treesvd_net::TopologyKind;
    use treesvd_orderings::OrderingKind;

    fn reference_run(
        kind: OrderingKind,
        a: &treesvd_matrix::Matrix,
        accumulate_v: bool,
        max_sweeps: usize,
    ) -> (Vec<SlotData>, Vec<usize>, usize) {
        let n = a.cols();
        let ord = kind.build(n).unwrap();
        let mac = Machine::with_kind(TopologyKind::PerfectFatTree, (n / 2).next_power_of_two());
        let mut store = ColumnStore::from_columns(a.clone().into_columns(), accumulate_v);
        let mut layout = ord.initial_layout();
        let mut sweeps = 0;
        for k in 0..max_sweeps {
            let prog = ord.sweep_program(k, &layout);
            let stats = execute_program(&mac, &prog, &mut store, &ExecConfig::default());
            layout = prog.final_layout();
            sweeps = k + 1;
            if stats.is_converged() {
                break;
            }
        }
        (store.slots, store.layout, sweeps)
    }

    #[test]
    fn distributed_matches_synchronous_bitwise() {
        for kind in [OrderingKind::RoundRobin, OrderingKind::FatTree, OrderingKind::NewRing] {
            let n = 8;
            let a = generate::random_uniform(12, n, 3);
            let ord = kind.build(n).unwrap();
            let dist = distributed_svd(
                ord.as_ref(),
                a.clone().into_columns(),
                false,
                ExecConfig::default(),
                40,
            )
            .unwrap();
            let (ref_slots, ref_layout, ref_sweeps) = reference_run(kind, &a, false, 40);
            assert_eq!(dist.sweeps, ref_sweeps, "{kind}");
            assert_eq!(dist.layout, ref_layout, "{kind}");
            for (s, (d, r)) in dist.slots.iter().zip(ref_slots.iter()).enumerate() {
                assert_eq!(d.a, r.a, "{kind}: slot {s} differs");
            }
        }
    }

    #[test]
    fn distributed_with_v_accumulation() {
        let n = 8;
        let a = generate::random_uniform(10, n, 5);
        let ord = OrderingKind::FatTree.build(n).unwrap();
        let dist = distributed_svd(
            ord.as_ref(),
            a.clone().into_columns(),
            true,
            ExecConfig::default(),
            40,
        )
        .unwrap();
        let (ref_slots, _, _) = reference_run(OrderingKind::FatTree, &a, true, 40);
        for (d, r) in dist.slots.iter().zip(ref_slots.iter()) {
            assert_eq!(d.a, r.a);
            assert_eq!(d.v, r.v);
        }
        assert!(dist.converged);
    }

    #[test]
    fn transports_and_overlap_are_bitwise_identical() {
        for kind in [OrderingKind::NewRing, OrderingKind::FatTree, OrderingKind::Hybrid] {
            let n = 8;
            let a = generate::random_uniform(12, n, 11);
            let ord = kind.build(n).unwrap();
            let mut runs = Vec::new();
            for (transport, overlap) in [
                (Transport::Legacy, false),
                (Transport::ZeroCopy, false),
                (Transport::ZeroCopy, true),
            ] {
                let cfg = DistConfig { transport, overlap, ..DistConfig::default() };
                let run = distributed_svd_with(ord.as_ref(), a.clone().into_columns(), true, &cfg)
                    .unwrap();
                assert_eq!(run.overlap, overlap, "{kind}: overlap gate disagreed");
                runs.push(run);
            }
            let base = &runs[0];
            for run in &runs[1..] {
                assert_eq!(run.sweeps, base.sweeps, "{kind}");
                assert_eq!(run.total_rotations, base.total_rotations, "{kind}");
                assert_eq!(run.layout, base.layout, "{kind}");
                for (s, (d, r)) in run.slots.iter().zip(base.slots.iter()).enumerate() {
                    assert_eq!(d.a, r.a, "{kind}: slot {s} data differs");
                    assert_eq!(d.v, r.v, "{kind}: slot {s} vectors differ");
                }
            }
        }
    }

    #[test]
    fn zero_copy_steady_state_makes_no_payload_allocations() {
        for overlap in [false, true] {
            let n = 16;
            let a = generate::random_uniform(24, n, 13);
            let ord = OrderingKind::NewRing.build(n).unwrap();
            let cfg =
                DistConfig { transport: Transport::ZeroCopy, overlap, ..DistConfig::default() };
            let run = distributed_svd_with(ord.as_ref(), a.into_columns(), true, &cfg).unwrap();
            assert!(run.converged);
            assert!(run.sweeps > 2, "need a steady state to measure");
            assert!(run.warm_payload_allocs > 0, "warm-up must populate the pools");
            assert_eq!(
                run.steady_payload_allocs, 0,
                "overlap={overlap}: steady state allocated payload buffers"
            );
        }
    }

    #[test]
    fn legacy_transport_never_overlaps() {
        let n = 8;
        let a = generate::random_uniform(16, n, 17);
        let ord = OrderingKind::NewRing.build(n).unwrap();
        // even with overlap requested, the legacy transport must refuse it:
        // its blocking plan cycles under rendezvous semantics (PR 2)
        let cfg =
            DistConfig { transport: Transport::Legacy, overlap: true, ..DistConfig::default() };
        let run = distributed_svd_with(ord.as_ref(), a.into_columns(), true, &cfg).unwrap();
        assert!(run.converged);
        assert!(!run.overlap, "legacy transport must never overlap");
    }

    #[test]
    fn distributed_converges_and_orthogonalizes() {
        let n = 16;
        let a = generate::random_uniform(20, n, 7);
        let ord = OrderingKind::Hybrid.build(n).unwrap();
        let dist =
            distributed_svd(ord.as_ref(), a.into_columns(), false, ExecConfig::default(), 40)
                .unwrap();
        assert!(dist.converged);
        assert!(dist.total_rotations > 0);
        // all pairs orthogonal
        for i in 0..n {
            for j in (i + 1)..n {
                let d = treesvd_matrix::ops::dot(&dist.slots[i].a, &dist.slots[j].a).abs();
                let ni = treesvd_matrix::ops::norm2(&dist.slots[i].a);
                let nj = treesvd_matrix::ops::norm2(&dist.slots[j].a);
                assert!(d <= 1e-10 * ni * nj, "columns in slots {i},{j} coupled");
            }
        }
    }
}
