//! The simulated machine: a topology plus a cost model.

use treesvd_net::{CostModel, Topology, TopologyKind};

/// A tree-connected multiprocessor: `topology.leaves()` processors, each
/// with two column slots, timed by `cost`.
#[derive(Debug, Clone)]
pub struct Machine {
    topology: Topology,
    cost: CostModel,
}

impl Machine {
    /// Build a machine from a topology and cost model.
    pub fn new(topology: Topology, cost: CostModel) -> Self {
        Self { topology, cost }
    }

    /// A machine with `leaves` processors of the given kind and the default
    /// cost model.
    ///
    /// # Panics
    /// Panics if `leaves` is not a power of two ≥ 2.
    pub fn with_kind(kind: TopologyKind, leaves: usize) -> Self {
        Self::new(Topology::new(kind, leaves), CostModel::default())
    }

    /// The machine's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The machine's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Number of leaf processors.
    pub fn processors(&self) -> usize {
        self.topology.leaves()
    }

    /// Number of column slots (`2 × processors`).
    pub fn slots(&self) -> usize {
        2 * self.processors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_shape() {
        let m = Machine::with_kind(TopologyKind::PerfectFatTree, 8);
        assert_eq!(m.processors(), 8);
        assert_eq!(m.slots(), 16);
        assert_eq!(m.topology().levels(), 3);
    }
}
