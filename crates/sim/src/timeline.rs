//! Per-step execution timelines: where a sweep's simulated time goes.
//!
//! A [`Timeline`] records, for every step of a sweep, the compute time and
//! the communication cost breakdown (serialization vs latency, level,
//! contention), and renders a text profile — the tool used to eyeball *why*
//! one ordering beats another on a given topology.

use crate::analyze::CommReport;
use crate::machine::Machine;
use treesvd_orderings::Program;

/// One step's time breakdown.
#[derive(Debug, Clone, Copy)]
pub struct StepTiming {
    /// Compute (rotation) time.
    pub compute: f64,
    /// Communication serialization component.
    pub serialization: f64,
    /// Communication latency component.
    pub latency: f64,
    /// Highest tree level the step's messages ascend.
    pub level: usize,
    /// Contention factor of the phase.
    pub contention: f64,
}

impl StepTiming {
    /// Total step time.
    pub fn total(&self) -> f64 {
        self.compute + self.serialization + self.latency
    }
}

/// A sweep's timeline.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Per-step timings, in step order.
    pub steps: Vec<StepTiming>,
}

impl Timeline {
    /// Build the timeline of one sweep program on a machine with
    /// `words`-word columns (data-free, like
    /// [`analyze_program`](crate::analyze::analyze_program)).
    pub fn of(machine: &Machine, program: &Program, words: u64) -> Self {
        let rep: CommReport = crate::analyze::analyze_program(machine, program, words);
        let per_step_compute = machine.cost().rotation_cost(words as usize);
        let steps = rep
            .phases
            .iter()
            .map(|p| StepTiming {
                compute: per_step_compute,
                serialization: p.serialization,
                latency: p.latency,
                level: p.max_level,
                contention: p.contention,
            })
            .collect();
        Self { steps }
    }

    /// Total sweep time.
    pub fn total(&self) -> f64 {
        self.steps.iter().map(StepTiming::total).sum()
    }

    /// Fraction of the sweep spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            return 0.0;
        }
        let comm: f64 = self.steps.iter().map(|s| s.serialization + s.latency).sum();
        comm / total
    }

    /// The slowest step's index and timing.
    pub fn bottleneck(&self) -> Option<(usize, StepTiming)> {
        self.steps
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total().partial_cmp(&b.1.total()).expect("finite times"))
    }

    /// Render a text profile: one row per step with a bar proportional to
    /// its time, split into compute (`#`), serialization (`=`), and
    /// latency (`-`) segments.
    pub fn render(&self, width: usize) -> String {
        let max =
            self.steps.iter().map(StepTiming::total).fold(0.0_f64, f64::max).max(f64::MIN_POSITIVE);
        let mut out = String::new();
        out.push_str("step  lvl  cont  time       profile (#=compute ==serialize --latency)\n");
        for (i, s) in self.steps.iter().enumerate() {
            let scale = width as f64 / max;
            let c = (s.compute * scale).round() as usize;
            let z = (s.serialization * scale).round() as usize;
            let l = (s.latency * scale).round() as usize;
            out.push_str(&format!(
                "{:>4}  {:>3}  {:>4.1}  {:>9.1}  {}{}{}\n",
                i + 1,
                s.level,
                s.contention,
                s.total(),
                "#".repeat(c),
                "=".repeat(z),
                "-".repeat(l)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_net::TopologyKind;
    use treesvd_orderings::OrderingKind;

    fn timeline(kind: OrderingKind, topo: TopologyKind, n: usize, words: u64) -> Timeline {
        let ord = kind.build(n).unwrap();
        let machine = Machine::with_kind(topo, n / 2);
        let prog = ord.sweep_program(0, &ord.initial_layout());
        Timeline::of(&machine, &prog, words)
    }

    #[test]
    fn totals_match_analysis() {
        let tl = timeline(OrderingKind::FatTree, TopologyKind::PerfectFatTree, 16, 64);
        assert_eq!(tl.steps.len(), 15);
        assert!(tl.total() > 0.0);
        assert!(tl.comm_fraction() > 0.0 && tl.comm_fraction() < 1.0);
    }

    #[test]
    fn bottleneck_is_a_global_step_for_fat_tree_on_binary() {
        let tl = timeline(OrderingKind::FatTree, TopologyKind::BinaryTree, 32, 256);
        let (_, worst) = tl.bottleneck().unwrap();
        // the slowest step must be one of the high-level merge exchanges
        assert!(worst.level >= 3, "bottleneck level {}", worst.level);
        assert!(worst.contention > 1.0);
    }

    #[test]
    fn render_produces_one_row_per_step() {
        let tl = timeline(OrderingKind::NewRing, TopologyKind::PerfectFatTree, 8, 32);
        let text = tl.render(40);
        assert_eq!(text.lines().count(), 1 + 7);
        assert!(text.contains('#'));
    }

    #[test]
    fn ring_timeline_is_flat() {
        // every step of the new ring ordering costs the same (uniform
        // traffic) — the timeline must be constant
        let tl = timeline(OrderingKind::NewRing, TopologyKind::PerfectFatTree, 16, 64);
        let first = tl.steps[0].total();
        for s in &tl.steps {
            assert!((s.total() - first).abs() < 1e-9, "non-uniform ring step");
        }
    }
}
