//! Recovery policy, health reporting, checkpoints, and the error taxonomy
//! of the fault-tolerant distributed executor.
//!
//! The executor ([`distributed_svd_with`](crate::distributed_svd_with))
//! composes three mechanisms, each individually proved or tested
//! bitwise-invisible when no fault fires:
//!
//! * **Bounded receives with retry** — every blocking receive gets a
//!   timeout window; on expiry the communicator redelivers from the
//!   retransmission store and retries with exponential backoff
//!   ([`FaultPolicy::max_retries`], [`FaultPolicy::backoff`]). Proven
//!   deadlock-free by `treesvd_analyze::verify_recovery_freedom`.
//! * **Sweep-boundary checkpoints** — every [`FaultPolicy::checkpoint_every`]
//!   sweeps each rank deposits its two columns into a shared
//!   [`CheckpointStore`]; after a crash the whole world restarts from the
//!   last sweep *all* ranks completed.
//! * **A degradation ladder** — if restarts are exhausted on one transport
//!   the executor descends: overlapped → synchronous zero-copy → legacy →
//!   a single-rank sequential fallback that needs no network at all and
//!   therefore absorbs even a fully poisoned link.
//!
//! What the run actually needed is reported in a [`HealthReport`]; what it
//! could not absorb becomes a [`DistError::Unrecoverable`] carrying the
//! final failure plus the restart/ladder history — the executor fails
//! fast with a precise diagnostic, never hangs.

use crate::exec::SlotData;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use std::time::Duration;
use treesvd_comm::{FaultSnapshot, RecvError};

/// Recovery knobs of a distributed run: how hard to try before giving up,
/// and how much state to keep for restarts.
///
/// The default policy reproduces the pre-recovery executor exactly: a
/// generous 5 s receive window, no retries, no checkpoints, no
/// degradation — a timeout is a schedule bug and should fail loudly.
/// [`FaultPolicy::chaos`] is the tuned-for-fault-injection profile the
/// chaos tests and the `--chaos` CLI flag use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// Initial window of every blocking receive.
    pub recv_timeout: Duration,
    /// Additional receive attempts after the first timeout (each attempt
    /// first asks the retransmission store for a redelivery).
    pub max_retries: u32,
    /// Window multiplier between attempts (exponential backoff).
    pub backoff: f64,
    /// Deposit a checkpoint every this many sweeps; `0` disables
    /// checkpointing (a crash then restarts from the initial columns).
    pub checkpoint_every: usize,
    /// Whole-world restarts allowed per ladder rung before descending.
    pub max_restarts: u32,
    /// Whether to descend the transport ladder (overlapped → zero-copy →
    /// legacy → sequential) once restarts are exhausted. `false` turns the
    /// last restart failure into [`DistError::Unrecoverable`] directly.
    pub degrade: bool,
    /// Screen every received payload for NaN/Inf at the communicator seam.
    pub check_finite: bool,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self {
            recv_timeout: Duration::from_secs(5),
            max_retries: 0,
            backoff: 2.0,
            checkpoint_every: 0,
            max_restarts: 0,
            degrade: false,
            check_finite: false,
        }
    }
}

impl FaultPolicy {
    /// The profile tuned for seeded fault injection: tight 20 ms windows
    /// so drops are detected quickly, six retries with doubling backoff
    /// (absorbs several consecutive losses on one edge), a checkpoint
    /// every sweep, two restarts per rung, the full degradation ladder,
    /// and the finite screen armed.
    pub fn chaos() -> Self {
        Self {
            recv_timeout: Duration::from_millis(20),
            max_retries: 6,
            backoff: 2.0,
            checkpoint_every: 1,
            max_restarts: 2,
            degrade: true,
            check_finite: true,
        }
    }

    /// Whether any recovery mechanism is armed (used to pick the stricter
    /// analyzer proof for the overlap gate).
    pub fn is_armed(&self) -> bool {
        self.max_retries > 0
            || self.checkpoint_every > 0
            || self.max_restarts > 0
            || self.degrade
            || self.check_finite
    }
}

/// What a completed distributed run actually went through: injected
/// faults, receiver retries, whole-world restarts, and any ladder
/// descents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Injected-fault counters from the armed [`FaultInjector`]
    /// (all zero when no injector was armed).
    ///
    /// [`FaultInjector`]: treesvd_comm::FaultInjector
    pub faults: FaultSnapshot,
    /// Receive attempts beyond the first, summed over the ranks of the
    /// attempt that completed.
    pub retries: u64,
    /// Whole-world restarts consumed across all ladder rungs.
    pub restarts: u32,
    /// Ladder rungs abandoned, in descent order (empty when the first
    /// rung finished the run).
    pub fallbacks: Vec<&'static str>,
}

impl HealthReport {
    /// Whether the run needed any recovery at all.
    pub fn degraded(&self) -> bool {
        self.retries > 0 || self.restarts > 0 || !self.fallbacks.is_empty()
    }
}

/// Why a distributed run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A rank's receive failed (timeout after exhausting its retry
    /// budget, or unrecoverably poisoned data).
    Recv {
        /// The rank whose receive failed.
        rank: usize,
        /// The sweep it was executing.
        sweep: usize,
        /// The global step counter at the failure.
        step: u64,
        /// The underlying communicator error (source, tag, wait time).
        err: RecvError,
    },
    /// A rank crashed (fault-injected [`StallKind::Crash`]).
    ///
    /// [`StallKind::Crash`]: treesvd_comm::StallKind::Crash
    Crashed {
        /// The rank that died.
        rank: usize,
        /// The sweep at whose start it died.
        sweep: usize,
    },
    /// Every restart and every ladder rung failed. Carries the last
    /// failure plus the recovery history so the diagnostic is precise.
    Unrecoverable {
        /// The failure that exhausted the ladder.
        last: Box<DistError>,
        /// Whole-world restarts consumed before giving up.
        restarts: u32,
        /// Ladder rungs attempted, in order.
        rungs: Vec<&'static str>,
    },
    /// A cached proof certificate whose key matches this exact run failed
    /// witness validation. Hard error by design: the artifact claims to
    /// certify this schedule and does not, so it is tampered with or
    /// stale in a way the analyzer version did not catch — never silently
    /// re-prove over it.
    BadCertificate {
        /// The analyzer's step-precise diagnostic.
        detail: String,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Recv { rank, sweep, step, err } => {
                write!(f, "rank {rank} failed in sweep {sweep} at global step {step}: {err}")
            }
            Self::Crashed { rank, sweep } => {
                write!(f, "rank {rank} crashed at the start of sweep {sweep}")
            }
            Self::BadCertificate { detail } => {
                write!(f, "proof certificate rejected: {detail}")
            }
            Self::Unrecoverable { last, restarts, rungs } => {
                write!(
                    f,
                    "unrecoverable after {restarts} restart(s) across {} rung(s) [{}]: {last}",
                    rungs.len(),
                    rungs.join(" → ")
                )
            }
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Recv { err, .. } => Some(err),
            Self::Crashed { .. } | Self::BadCertificate { .. } => None,
            Self::Unrecoverable { last, .. } => Some(last),
        }
    }
}

/// One rank's sweep-boundary snapshot: its two resident columns and its
/// cumulative rotation count up to and including the checkpointed sweep.
#[derive(Debug, Clone)]
pub(crate) struct RankCkpt {
    pub(crate) left: SlotData,
    pub(crate) right: SlotData,
    pub(crate) rotations: usize,
}

/// Shared sweep-boundary checkpoint store: each rank deposits its
/// [`RankCkpt`] after finishing a checkpointed sweep; the supervisor
/// restarts a crashed world from the newest sweep *every* rank completed
/// (a partial row — some ranks died before depositing — is ignored).
#[derive(Debug)]
pub(crate) struct CheckpointStore {
    ranks: usize,
    /// completed sweep count → per-rank deposits.
    rows: Mutex<HashMap<usize, Vec<Option<RankCkpt>>>>,
}

impl CheckpointStore {
    pub(crate) fn new(ranks: usize) -> Self {
        Self { ranks, rows: Mutex::new(HashMap::new()) }
    }

    /// Deposit rank `rank`'s state after completing `sweeps` sweeps.
    pub(crate) fn deposit(&self, sweeps: usize, rank: usize, ckpt: RankCkpt) {
        let mut rows = self.rows.lock().expect("checkpoint store");
        let row = rows.entry(sweeps).or_insert_with(|| vec![None; self.ranks]);
        row[rank] = Some(ckpt);
    }

    /// The newest complete checkpoint: `(sweeps_completed, per-rank
    /// state)`, or `None` if no sweep has a deposit from every rank.
    pub(crate) fn latest_complete(&self) -> Option<(usize, Vec<RankCkpt>)> {
        let rows = self.rows.lock().expect("checkpoint store");
        rows.iter()
            .filter(|(_, row)| row.iter().all(Option::is_some))
            .max_by_key(|(sweeps, _)| **sweeps)
            .map(|(sweeps, row)| {
                (*sweeps, row.iter().map(|c| c.clone().expect("complete row")).collect())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(x: f64) -> SlotData {
        SlotData { a: vec![x], v: vec![] }
    }

    #[test]
    fn default_policy_is_pre_recovery_behavior() {
        let p = FaultPolicy::default();
        assert_eq!(p.recv_timeout, Duration::from_secs(5));
        assert_eq!(p.max_retries, 0);
        assert!(!p.degrade && !p.check_finite && p.checkpoint_every == 0);
        assert!(!p.is_armed());
        assert!(FaultPolicy::chaos().is_armed());
    }

    #[test]
    fn checkpoint_store_returns_newest_complete_row() {
        let store = CheckpointStore::new(2);
        store.deposit(1, 0, RankCkpt { left: slot(1.0), right: slot(2.0), rotations: 3 });
        store.deposit(1, 1, RankCkpt { left: slot(3.0), right: slot(4.0), rotations: 5 });
        // sweep 2 is partial: rank 1 crashed before depositing
        store.deposit(2, 0, RankCkpt { left: slot(9.0), right: slot(9.0), rotations: 9 });
        let (sweeps, row) = store.latest_complete().expect("sweep 1 is complete");
        assert_eq!(sweeps, 1);
        assert_eq!(row[0].left.a, [1.0]);
        assert_eq!(row[1].rotations, 5);
    }

    #[test]
    fn empty_or_partial_store_has_no_checkpoint() {
        let store = CheckpointStore::new(2);
        assert!(store.latest_complete().is_none());
        store.deposit(1, 0, RankCkpt { left: slot(1.0), right: slot(1.0), rotations: 0 });
        assert!(store.latest_complete().is_none());
    }

    #[test]
    fn unrecoverable_display_carries_the_history() {
        let last = DistError::Crashed { rank: 2, sweep: 4 };
        let err = DistError::Unrecoverable {
            last: Box::new(last),
            restarts: 3,
            rungs: vec!["overlapped", "zero-copy", "legacy"],
        };
        let s = err.to_string();
        assert!(s.contains("3 restart(s)"), "{s}");
        assert!(s.contains("overlapped → zero-copy → legacy"), "{s}");
        assert!(s.contains("rank 2 crashed at the start of sweep 4"), "{s}");
        assert!(std::error::Error::source(&err).is_some());
    }
}
