//! Simulated tree-connected multiprocessor executing Jacobi sweep programs.
//!
//! This crate is the "machine" of the reproduction: `P = n/2` leaf
//! processors, each holding two matrix columns (and, optionally, the
//! matching columns of the accumulated `V`), connected by a
//! [`treesvd_net::Topology`]. A [`Program`](treesvd_orderings::Program)
//! from `treesvd-orderings` is executed step by step:
//!
//! 1. every processor orthogonalizes its resident column pair (a real
//!    Hestenes rotation on real data — the simulator *is* the parallel
//!    machine, not a trace replayer); the per-step rotations run on real
//!    host cores via a persistent worker pool ([`par`]), since pairs touch
//!    disjoint columns — with an adaptive serial cutoff for small steps;
//! 2. the step's `move_after` permutation becomes a communication phase:
//!    inter-leaf column movements are routed through the tree and costed
//!    by the [`CostModel`](treesvd_net::CostModel).
//!
//! [`exec::execute_program`] returns both the numerical outcome (rotation
//! counts, convergence measures) and the simulated time breakdown;
//! [`analyze::analyze_program`] is the data-free variant used by the
//! communication benchmarks.
//!
//! ```
//! use treesvd_sim::{analyze_program, Machine};
//! use treesvd_net::TopologyKind;
//! use treesvd_orderings::{FatTreeOrdering, RoundRobinOrdering, JacobiOrdering};
//!
//! let machine = Machine::with_kind(TopologyKind::PerfectFatTree, 16);
//! let ft = FatTreeOrdering::new(32).unwrap();
//! let rr = RoundRobinOrdering::new(32).unwrap();
//! let ft_rep = analyze_program(&machine, &ft.sweep_program(0, &ft.initial_layout()), 64);
//! let rr_rep = analyze_program(&machine, &rr.sweep_program(0, &rr.initial_layout()), 64);
//! // the paper's C1 claim in two lines:
//! assert!(ft_rep.global_steps < rr_rep.global_steps);
//! assert!(ft_rep.comm_time < rr_rep.comm_time);
//! ```

#![deny(missing_docs)]

pub mod analyze;
pub mod distributed;
pub mod exec;
pub mod machine;
pub mod par;
pub mod recovery;
pub mod timeline;

pub use analyze::{analyze_program, CommReport};
pub use distributed::{
    distributed_svd, distributed_svd_with, DistConfig, DistributedOutcome, Transport,
};
pub use recovery::{DistError, FaultPolicy, HealthReport};
// the fault-injection vocabulary, re-exported so downstream crates (core,
// cli, bench) can arm chaos without a direct treesvd-comm dependency
pub use exec::{
    execute_program, execute_program_with_scratch, off_measure, off_measure_limited, ColumnStore,
    ExecConfig, ExecScratch, SortMode, SweepStats,
};
pub use machine::Machine;
pub use timeline::{StepTiming, Timeline};
pub use treesvd_comm::{FaultPlan, FaultSnapshot, StallEvent, StallKind};
