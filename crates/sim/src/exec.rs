//! Executing a sweep program on real column data.
//!
//! The hot path is allocation-free after warm-up: all per-step buffers
//! (permuted slots/layout/norms, pair reports, phase messages) live in a
//! reusable [`ExecScratch`], and the rotation kernel is the fused
//! rotate-and-measure pass from `treesvd-matrix`. Steps whose work is
//! below [`ExecConfig::serial_cutoff`] run serially; larger steps fork
//! across host cores with [`crate::par::join`].

use crate::machine::Machine;
use crate::par;
use treesvd_matrix::ops;
use treesvd_matrix::rotation::{
    apply_rotation, apply_rotation_swapped, compute_rotation, orthogonalize_pair, rotate_pair_fused,
};
use treesvd_net::routing::comm_level;
use treesvd_net::{Message, Phase, PhaseCost};
use treesvd_orderings::{ColIndex, Program};

/// Whether (and how) the executor keeps singular values ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortMode {
    /// Plain Hestenes: columns keep their slots.
    None,
    /// Store the larger-norm column in the slot holding the *smaller*
    /// index label (paper §3.2.1 / §4), so the singular values emerge
    /// sorted once the iteration converges.
    Descending,
}

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Threshold for skipping nearly-orthogonal pairs:
    /// skip when `|a·b| <= threshold * |a||b|`.
    pub threshold: f64,
    /// Sorting behaviour.
    pub sort: SortMode,
    /// Cache column squared norms across steps, updating them from the
    /// rotation algebra instead of recomputing — the classical Hestenes
    /// optimization (saves the `a·a` and `b·b` dot products per pair,
    /// roughly 30% of the rotation flops). Norms are recomputed exactly at
    /// the start of every sweep, so drift stays bounded; results may differ
    /// from the uncached path in the last ulp. With the fused rotation
    /// kernel the cache is refreshed from the *measured* norms of each
    /// rotated pair (free — the fused pass produces them anyway), so only
    /// skipped pairs carry the cached value forward.
    pub cached_norms: bool,
    /// Adaptive dispatch cutoff: when a step's work — `n · m` data words,
    /// plus `n · n` when `V` is accumulated — is below this, the rotation
    /// phase runs serially on the calling thread instead of forking scoped
    /// threads. Forking costs tens of microseconds per step; small problems
    /// are faster without it. Set to `0` to always fork, `usize::MAX` to
    /// always run serially.
    pub serial_cutoff: usize,
    /// Maximum fork lanes for a parallel step; `0` means use
    /// [`par::num_threads`] (which itself honors `TREESVD_THREADS`). The
    /// effective lane count is still capped by the machine size (`n / 2`).
    pub threads: usize,
}

impl ExecConfig {
    /// Default [`serial_cutoff`](Self::serial_cutoff): roughly the
    /// per-step word count where forking starts to pay for itself.
    pub const DEFAULT_SERIAL_CUTOFF: usize = 1 << 16;
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            threshold: 1e-14,
            sort: SortMode::Descending,
            cached_norms: false,
            serial_cutoff: Self::DEFAULT_SERIAL_CUTOFF,
            threads: 0,
        }
    }
}

/// One processor slot's payload: a matrix column and (optionally) the
/// matching column of the accumulated right-singular-vector matrix `V`.
#[derive(Debug, Clone, Default)]
pub struct SlotData {
    /// The `A` column (length `m`).
    pub a: Vec<f64>,
    /// The `V` column (length `n`), empty when `V` is not accumulated.
    pub v: Vec<f64>,
}

/// The machine's memory: one [`SlotData`] per slot plus the slot→index
/// layout.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    /// Slot payloads, indexed by slot.
    pub slots: Vec<SlotData>,
    /// Current layout: `layout[slot] = column index`.
    pub layout: Vec<ColIndex>,
}

impl ColumnStore {
    /// Distribute the columns of an `m × n` matrix (given as owned column
    /// vectors) over `n` slots in index order, optionally accumulating `V`
    /// (initialized to the identity).
    ///
    /// # Panics
    /// Panics if `columns` is empty or ragged.
    pub fn from_columns(columns: Vec<Vec<f64>>, accumulate_v: bool) -> Self {
        let n = columns.len();
        assert!(n > 0, "no columns");
        let m = columns[0].len();
        let slots = columns
            .into_iter()
            .enumerate()
            .map(|(j, a)| {
                assert_eq!(a.len(), m, "ragged columns");
                let v = if accumulate_v {
                    let mut e = vec![0.0; n];
                    e[j] = 1.0;
                    e
                } else {
                    Vec::new()
                };
                SlotData { a, v }
            })
            .collect();
        Self { slots, layout: (0..n).collect() }
    }

    /// Number of slots.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Row count of the stored columns.
    pub fn m(&self) -> usize {
        self.slots.first().map_or(0, |s| s.a.len())
    }

    /// Extract the columns in *index* order (undoing the slot layout):
    /// `result[i]` is the column labelled `i`.
    pub fn columns_in_index_order(&self) -> Vec<&SlotData> {
        let mut out: Vec<Option<&SlotData>> = vec![None; self.n()];
        for (slot, &idx) in self.layout.iter().enumerate() {
            out[idx] = Some(&self.slots[slot]);
        }
        out.into_iter().map(|o| o.expect("layout is a permutation")).collect()
    }
}

/// Statistics and simulated cost of one executed sweep.
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Rotations actually applied (pairs above the threshold).
    pub rotations: usize,
    /// Pairs skipped as already orthogonal.
    pub skips: usize,
    /// Column interchanges performed for sorting (equation (3) applications
    /// beyond what the rotation itself needed).
    pub swaps: usize,
    /// Largest `|a·b| / (|a||b|)` seen before rotation over the sweep — the
    /// convergence measure.
    pub max_coupling: f64,
    /// Simulated compute time.
    pub compute_time: f64,
    /// Simulated communication time.
    pub comm_time: f64,
    /// Per-step communication cost breakdowns.
    pub phases: Vec<PhaseCost>,
    /// Message-count histogram by communication level (index = level).
    pub level_histogram: Vec<usize>,
}

impl SweepStats {
    /// Total simulated time of the sweep.
    pub fn total_time(&self) -> f64 {
        self.compute_time + self.comm_time
    }

    /// Worst per-phase contention factor.
    pub fn max_contention(&self) -> f64 {
        self.phases.iter().map(|p| p.contention).fold(0.0, f64::max)
    }

    /// Whether the sweep changed nothing: no rotations and no swaps — the
    /// paper's termination criterion (§1).
    pub fn is_converged(&self) -> bool {
        self.rotations == 0 && self.swaps == 0
    }
}

/// Outcome of one pair orthogonalization (fed back from the parallel loop).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PairReport {
    pub(crate) rotated: bool,
    pub(crate) swapped: bool,
    pub(crate) coupling: f64,
}

/// Reusable per-sweep working memory for [`execute_program_with_scratch`].
///
/// The executor permutes columns, refreshes norm caches, collects pair
/// reports and builds communication phases on every step; doing that with
/// fresh `Vec`s is pure allocator churn. A scratch owns all of those
/// buffers and hands them back after each step, so after the first step of
/// the first sweep (the warm-up) the executor performs **zero heap
/// allocations per step** — asserted by [`alloc_events`](Self::alloc_events),
/// which counts every time a scratch buffer had to grow.
#[derive(Debug, Default)]
pub struct ExecScratch {
    new_slots: Vec<SlotData>,
    new_layout: Vec<ColIndex>,
    norm_cache: Vec<f64>,
    new_norms: Vec<f64>,
    reports: Vec<PairReport>,
    messages: Vec<Message>,
    alloc_events: u64,
}

impl ExecScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many times any scratch buffer has had to (re)allocate since
    /// creation. Stable across repeated same-shape executions after the
    /// first — the executor's zero-alloc-per-step guarantee.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    fn grow<T: Clone + Default>(v: &mut Vec<T>, len: usize, events: &mut u64) {
        if v.capacity() < len {
            *events += 1;
        }
        v.resize(len, T::default());
    }

    /// Size every buffer for an `n`-column program.
    fn ensure(&mut self, n: usize, cached: bool) {
        Self::grow(&mut self.new_slots, n, &mut self.alloc_events);
        Self::grow(&mut self.new_layout, n, &mut self.alloc_events);
        Self::grow(&mut self.reports, n / 2, &mut self.alloc_events);
        if cached {
            Self::grow(&mut self.norm_cache, n, &mut self.alloc_events);
            Self::grow(&mut self.new_norms, n, &mut self.alloc_events);
        } else {
            self.norm_cache.clear();
        }
    }
}

/// Execute one sweep program against the column store.
///
/// Convenience wrapper around [`execute_program_with_scratch`] that pays
/// for a fresh [`ExecScratch`] every call; drivers executing many sweeps
/// should hold a scratch and call the explicit variant.
///
/// # Panics
/// Panics if the program's size disagrees with the store or machine.
pub fn execute_program(
    machine: &Machine,
    program: &Program,
    store: &mut ColumnStore,
    config: &ExecConfig,
) -> SweepStats {
    let mut scratch = ExecScratch::new();
    execute_program_with_scratch(machine, program, store, config, &mut scratch)
}

/// Execute one sweep program against the column store, reusing `scratch`
/// for all per-step working memory.
///
/// Rotations of a step run in parallel over processors (each processor's
/// pair occupies two adjacent slots, so a recursive split at even offsets
/// gives data-race-free disjoint access); steps below
/// [`ExecConfig::serial_cutoff`] run serially. Movement is applied between
/// steps and costed on the machine's topology.
///
/// # Panics
/// Panics if the program's size disagrees with the store or machine.
pub fn execute_program_with_scratch(
    machine: &Machine,
    program: &Program,
    store: &mut ColumnStore,
    config: &ExecConfig,
    scratch: &mut ExecScratch,
) -> SweepStats {
    let n = program.n;
    assert_eq!(store.n(), n, "store/program size mismatch");
    assert!(machine.slots() >= n, "machine too small for the program");
    assert_eq!(store.layout, program.initial_layout, "layout disagrees with program");

    let m = store.m();
    let accumulate_v = !store.slots[0].v.is_empty();
    let column_words = m + if accumulate_v { n } else { 0 };
    let words_per_column = column_words as u64;

    let mut stats = SweepStats {
        rotations: 0,
        skips: 0,
        swaps: 0,
        max_coupling: 0.0,
        compute_time: 0.0,
        comm_time: 0.0,
        phases: Vec::with_capacity(program.steps.len()),
        level_histogram: vec![0; machine.topology().levels() + 1],
    };

    scratch.ensure(n, config.cached_norms);
    if config.cached_norms {
        // exact norms at sweep start
        for (c, s) in scratch.norm_cache.iter_mut().zip(store.slots.iter()) {
            *c = ops::norm2_sq(&s.a);
        }
    }

    // Adaptive dispatch: fork only when a step moves enough data to
    // amortize the queue handoff to the worker pool.
    let step_work = n * column_words;
    let lanes = if config.threads == 0 { par::num_threads() } else { config.threads };
    let tasks = if step_work < config.serial_cutoff { 1 } else { lanes.min(n / 2).max(1) };
    let ctx = RotCtx { threshold: config.threshold, sort: config.sort };

    for step in &program.steps {
        // --- compute phase: rotate every processor's pair ---
        let ColumnStore { slots, layout } = &mut *store;
        rotate_pairs(slots, &mut scratch.norm_cache, &mut scratch.reports, layout, 0, tasks, &ctx);
        for r in &scratch.reports {
            if r.rotated {
                stats.rotations += 1;
            } else {
                stats.skips += 1;
            }
            if r.swapped {
                stats.swaps += 1;
            }
            stats.max_coupling = stats.max_coupling.max(r.coupling);
        }
        stats.compute_time += machine.cost().rotation_cost(column_words);

        // --- communication phase: apply move_after ---
        let cap_before = scratch.messages.capacity();
        scratch.messages.clear();
        for (s, &d) in step.move_after.as_dest_slice().iter().enumerate() {
            if s / 2 != d / 2 {
                scratch.messages.push(Message { src: s / 2, dst: d / 2, words: words_per_column });
            }
        }
        if scratch.messages.capacity() > cap_before {
            scratch.alloc_events += 1;
        }
        for msg in &scratch.messages {
            stats.level_histogram[comm_level(msg.src, msg.dst)] += 1;
        }
        let phase = Phase::new(machine.topology(), std::mem::take(&mut scratch.messages));
        let cost = machine.cost().phase_cost(machine.topology(), &phase);
        stats.comm_time += cost.time;
        stats.phases.push(cost);
        scratch.messages = phase.into_messages();

        // physically move the columns (and the layout labels, and the
        // cached norms when enabled)
        apply_movement(store, &step.move_after, scratch);
    }
    stats
}

/// Per-pair rotation parameters shared across the fork tree.
#[derive(Clone, Copy)]
struct RotCtx {
    threshold: f64,
    sort: SortMode,
}

/// Rotate the pairs covered by `slots`/`reports` (pair `p` of this chunk is
/// global pair `base + p`), forking into at most `tasks` leaves. `norms` is
/// the matching chunk of the norm cache, or empty when caching is off.
fn rotate_pairs(
    slots: &mut [SlotData],
    norms: &mut [f64],
    reports: &mut [PairReport],
    layout: &[ColIndex],
    base: usize,
    tasks: usize,
    ctx: &RotCtx,
) {
    let pairs = reports.len();
    if tasks > 1 && pairs > 1 {
        let mid = pairs / 2;
        let (sl, sr) = slots.split_at_mut(2 * mid);
        let (rl, rr) = reports.split_at_mut(mid);
        let (nl, nr) = norms.split_at_mut(if norms.is_empty() { 0 } else { 2 * mid });
        par::join(
            || rotate_pairs(sl, nl, rl, layout, base, tasks / 2, ctx),
            || rotate_pairs(sr, nr, rr, layout, base + mid, tasks - tasks / 2, ctx),
        );
        return;
    }
    let cached = !norms.is_empty();
    for (p, (pair, rep)) in slots.chunks_exact_mut(2).zip(reports.iter_mut()).enumerate() {
        let (left, right) = pair.split_at_mut(1);
        // sorting rule: the larger-norm column must end in the slot holding
        // the smaller index label
        let g = base + p;
        let small_label_on_left = layout[2 * g] < layout[2 * g + 1];
        *rep = if cached {
            let (nl, nr) = norms[2 * p..2 * p + 2].split_at_mut(1);
            rotate_pair_cached(
                &mut left[0],
                &mut right[0],
                &mut nl[0],
                &mut nr[0],
                ctx.threshold,
                ctx.sort,
                small_label_on_left,
            )
        } else {
            rotate_pair(&mut left[0], &mut right[0], ctx.threshold, ctx.sort, small_label_on_left)
        };
    }
}

/// The cached-norms variant of [`rotate_pair`]: `alpha` and `beta` come
/// from the cache; only `gamma = a·b` is computed. The cache is refreshed
/// with the *measured* norms the fused kernel produces, so (unlike the
/// classical rotation-algebra update) cached values do not drift between
/// the per-sweep exact recomputations.
fn rotate_pair_cached(
    left: &mut SlotData,
    right: &mut SlotData,
    left_norm_sq: &mut f64,
    right_norm_sq: &mut f64,
    threshold: f64,
    sort: SortMode,
    small_label_on_left: bool,
) -> PairReport {
    let alpha = *left_norm_sq;
    let beta = *right_norm_sq;
    let gamma = ops::dot(&left.a, &right.a);
    let coupling =
        if alpha > 0.0 && beta > 0.0 { gamma.abs() / (alpha.sqrt() * beta.sqrt()) } else { 0.0 };
    let rot = compute_rotation(alpha, beta, gamma, threshold);
    let need_swap = need_swap(rot, alpha, beta, gamma, sort, small_label_on_left);
    if rot.skipped && !need_swap {
        return PairReport { rotated: false, swapped: false, coupling };
    }
    let (na, nb) = rotate_pair_fused(rot, &mut left.a, &mut right.a, need_swap);
    *left_norm_sq = na;
    *right_norm_sq = nb;
    if !left.v.is_empty() {
        if need_swap {
            apply_rotation_swapped(rot, &mut left.v, &mut right.v);
        } else {
            apply_rotation(rot, &mut left.v, &mut right.v);
        }
    }
    PairReport { rotated: !rot.skipped, swapped: need_swap, coupling }
}

/// The A phase of [`rotate_pair`]: Gram accumulation, rotation decision,
/// and the fused data-column update. The returned rotation feeds
/// [`rotate_pair_v`]; splitting the two lets the distributed executor ship
/// the data columns while the vector update (and its messages) are still
/// pending — without perturbing a single bit of the arithmetic.
pub(crate) fn rotate_pair_a(
    left: &mut SlotData,
    right: &mut SlotData,
    threshold: f64,
    sort: SortMode,
    small_label_on_left: bool,
) -> (treesvd_matrix::rotation::Rotation, PairReport) {
    let (alpha, beta, gamma) = ops::gram3(&left.a, &right.a);
    let coupling =
        if alpha > 0.0 && beta > 0.0 { gamma.abs() / (alpha.sqrt() * beta.sqrt()) } else { 0.0 };
    let rot = compute_rotation(alpha, beta, gamma, threshold);
    let need_swap = need_swap(rot, alpha, beta, gamma, sort, small_label_on_left);
    if rot.skipped && !need_swap {
        return (rot, PairReport { rotated: false, swapped: false, coupling });
    }
    let _ = rotate_pair_fused(rot, &mut left.a, &mut right.a, need_swap);
    (rot, PairReport { rotated: !rot.skipped, swapped: need_swap, coupling })
}

/// The V phase of [`rotate_pair`]: apply the A phase's rotation to the
/// accumulated right-singular-vector columns (no-op when the pair was
/// skipped unswapped, or when no vectors are carried).
pub(crate) fn rotate_pair_v(
    rot: treesvd_matrix::rotation::Rotation,
    report: &PairReport,
    left: &mut SlotData,
    right: &mut SlotData,
) {
    if (report.rotated || report.swapped) && !left.v.is_empty() {
        if report.swapped {
            apply_rotation_swapped(rot, &mut left.v, &mut right.v);
        } else {
            apply_rotation(rot, &mut left.v, &mut right.v);
        }
    }
}

/// Orthogonalize one resident pair, honouring the sorting rule, with the
/// fused rotate-and-measure kernel (one pass instead of rotate + two norm
/// re-measurements).
pub(crate) fn rotate_pair(
    left: &mut SlotData,
    right: &mut SlotData,
    threshold: f64,
    sort: SortMode,
    small_label_on_left: bool,
) -> PairReport {
    let (rot, report) = rotate_pair_a(left, right, threshold, sort, small_label_on_left);
    rotate_pair_v(rot, &report, left, right);
    report
}

/// Decide whether the swapped update (equation (3)) is required: under
/// [`SortMode::Descending`] the larger-norm column must end up in the slot
/// holding the smaller index label. Uses the rotation-algebra predicted
/// norms so the decision is made before touching the column data.
fn need_swap(
    rot: treesvd_matrix::rotation::Rotation,
    alpha: f64,
    beta: f64,
    gamma: f64,
    sort: SortMode,
    small_label_on_left: bool,
) -> bool {
    match sort {
        SortMode::None => false,
        SortMode::Descending => {
            let (alpha_new, beta_new) = if rot.skipped {
                (alpha, beta)
            } else {
                let (c, s) = (rot.c, rot.s);
                (
                    c * c * alpha - 2.0 * c * s * gamma + s * s * beta,
                    s * s * alpha + 2.0 * c * s * gamma + c * c * beta,
                )
            };
            let larger_on_left_wanted = small_label_on_left;
            let larger_ends_left = alpha_new >= beta_new;
            larger_on_left_wanted != larger_ends_left
        }
    }
}

/// Apply a slot permutation to the store (columns, layout labels, and the
/// cached norms when enabled), recycling the scratch's buffers.
fn apply_movement(
    store: &mut ColumnStore,
    perm: &treesvd_orderings::schedule::Permutation,
    scratch: &mut ExecScratch,
) {
    let n = store.n();
    for s in 0..n {
        let d = perm.dest_of(s);
        scratch.new_slots[d] = std::mem::take(&mut store.slots[s]);
        scratch.new_layout[d] = store.layout[s];
    }
    std::mem::swap(&mut store.slots, &mut scratch.new_slots);
    std::mem::swap(&mut store.layout, &mut scratch.new_layout);
    if !scratch.norm_cache.is_empty() {
        for s in 0..n {
            scratch.new_norms[perm.dest_of(s)] = scratch.norm_cache[s];
        }
        std::mem::swap(&mut scratch.norm_cache, &mut scratch.new_norms);
    }
}

/// Work threshold (in multiply-adds) below which [`off_measure`] stays
/// serial.
const OFF_MEASURE_SERIAL_CUTOFF: usize = 1 << 17;

/// The exact off-diagonal measure of the store's columns:
/// `off = sqrt(sum_{i<j} (a_i . a_j)^2)` — the quantity whose per-sweep
/// decay is ultimately quadratic (paper §1). O(n² m): use for
/// instrumentation, not in the hot path. Large stores are measured in
/// parallel (strided over `i` to balance the triangular loop).
pub fn off_measure(store: &ColumnStore) -> f64 {
    off_measure_limited(store, 0)
}

/// [`off_measure`] with an explicit lane cap: `threads == 0` means use
/// [`par::num_threads`]. Lets callers honor a configured thread budget.
pub fn off_measure_limited(store: &ColumnStore, threads: usize) -> f64 {
    let n = store.n();
    let work = n * n * store.m() / 2;
    let lanes = if threads == 0 { par::num_threads() } else { threads };
    let tasks = if work < OFF_MEASURE_SERIAL_CUTOFF { 1 } else { lanes };
    par::par_sum_indexed(n, tasks, |i| {
        let mut acc = 0.0;
        for j in (i + 1)..n {
            let d = ops::dot(&store.slots[i].a, &store.slots[j].a);
            acc += d * d;
        }
        acc
    })
    .sqrt()
}

/// Orthogonalize a free-standing column pair (utility shared with the
/// sequential reference in `treesvd-core`).
pub fn orthogonalize_free(
    a: &mut [f64],
    b: &mut [f64],
    threshold: f64,
    sort_descending: bool,
) -> treesvd_matrix::rotation::PairOutcome {
    orthogonalize_pair(a, b, threshold, sort_descending)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_net::TopologyKind;
    use treesvd_orderings::{FatTreeOrdering, JacobiOrdering, RoundRobinOrdering};

    fn store_from(m: usize, n: usize, seed: u64, v: bool) -> ColumnStore {
        let mat = treesvd_matrix::generate::random_uniform(m, n, seed);
        ColumnStore::from_columns(mat.into_columns(), v)
    }

    fn machine(n: usize) -> Machine {
        Machine::with_kind(TopologyKind::PerfectFatTree, n / 2)
    }

    #[test]
    fn one_sweep_reduces_coupling() {
        let n = 8;
        let ord = RoundRobinOrdering::new(n).unwrap();
        let mut store = store_from(12, n, 1, false);
        let mac = machine(n);
        let mut layout = ord.initial_layout();
        let mut couplings = Vec::new();
        for k in 0..8 {
            let prog = ord.sweep_program(k, &layout);
            let stats = execute_program(&mac, &prog, &mut store, &ExecConfig::default());
            layout = prog.final_layout();
            couplings.push(stats.max_coupling);
            if stats.is_converged() {
                break;
            }
        }
        assert!(couplings.len() >= 2);
        assert!(couplings.last().unwrap() < &1e-8, "did not converge: {couplings:?}");
    }

    #[test]
    fn sweep_preserves_frobenius_mass() {
        let n = 8;
        let ord = FatTreeOrdering::new(n).unwrap();
        let mut store = store_from(10, n, 2, false);
        let before: f64 = store.slots.iter().map(|s| treesvd_matrix::ops::norm2_sq(&s.a)).sum();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let mac = machine(n);
        execute_program(&mac, &prog, &mut store, &ExecConfig::default());
        let after: f64 = store.slots.iter().map(|s| treesvd_matrix::ops::norm2_sq(&s.a)).sum();
        assert!((before - after).abs() < 1e-10 * before);
    }

    #[test]
    fn layout_tracking_matches_program() {
        let n = 8;
        let ord = FatTreeOrdering::new(n).unwrap();
        let mut store = store_from(6, n, 3, false);
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let mac = machine(n);
        execute_program(&mac, &prog, &mut store, &ExecConfig::default());
        assert_eq!(store.layout, prog.final_layout());
    }

    #[test]
    fn v_accumulation_tracks_rotations() {
        // A V = H must hold after any number of sweeps
        let n = 8;
        let m = 10;
        let mat = treesvd_matrix::generate::random_uniform(m, n, 4);
        let mut store = ColumnStore::from_columns(mat.clone().into_columns(), true);
        let ord = RoundRobinOrdering::new(n).unwrap();
        let mac = machine(n);
        let mut layout = ord.initial_layout();
        for k in 0..3 {
            let prog = ord.sweep_program(k, &layout);
            execute_program(&mac, &prog, &mut store, &ExecConfig::default());
            layout = prog.final_layout();
        }
        // check A * v_j == h_j for each column (in index order)
        let cols = store.columns_in_index_order();
        for col in cols {
            let mut av = vec![0.0; m];
            for (j, &vj) in col.v.iter().enumerate() {
                for (r, avr) in av.iter_mut().enumerate() {
                    *avr += mat.get(r, j) * vj;
                }
            }
            for (r, &h) in col.a.iter().enumerate() {
                assert!((av[r] - h).abs() < 1e-10, "A·v != h at row {r}");
            }
        }
    }

    #[test]
    fn stats_add_up() {
        let n = 8;
        let ord = RoundRobinOrdering::new(n).unwrap();
        let mut store = store_from(6, n, 5, false);
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let mac = machine(n);
        let stats = execute_program(&mac, &prog, &mut store, &ExecConfig::default());
        assert_eq!(stats.rotations + stats.skips, (n / 2) * (n - 1));
        assert_eq!(stats.phases.len(), n - 1);
        assert!(stats.total_time() > 0.0);
        assert!(stats.max_coupling > 0.0);
    }

    #[test]
    fn orthogonal_input_converges_immediately_without_sort() {
        let n = 8;
        let mat = treesvd_matrix::generate::already_orthogonal(10, n, 6);
        let mut store = ColumnStore::from_columns(mat.into_columns(), false);
        let ord = RoundRobinOrdering::new(n).unwrap();
        let mac = machine(n);
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let cfg = ExecConfig { threshold: 1e-12, sort: SortMode::None, ..ExecConfig::default() };
        let stats = execute_program(&mac, &prog, &mut store, &cfg);
        assert!(stats.is_converged(), "{stats:?}");
    }

    #[test]
    fn scratch_reuse_is_zero_alloc_after_warmup() {
        // after one sweep warms the scratch up, further sweeps of the same
        // shape must not grow any scratch buffer — the zero-alloc-per-step
        // acceptance criterion.
        for cached in [false, true] {
            let n = 8;
            let ord = RoundRobinOrdering::new(n).unwrap();
            let mut store = store_from(12, n, 21, false);
            let mac = machine(n);
            let cfg = ExecConfig { cached_norms: cached, ..ExecConfig::default() };
            let mut scratch = ExecScratch::new();
            let mut layout = ord.initial_layout();
            let prog = ord.sweep_program(0, &layout);
            execute_program_with_scratch(&mac, &prog, &mut store, &cfg, &mut scratch);
            layout = prog.final_layout();
            let warm = scratch.alloc_events();
            assert!(warm > 0, "warm-up should have populated the scratch");
            for k in 1..4 {
                let prog = ord.sweep_program(k, &layout);
                execute_program_with_scratch(&mac, &prog, &mut store, &cfg, &mut scratch);
                layout = prog.final_layout();
            }
            assert_eq!(
                scratch.alloc_events(),
                warm,
                "scratch reallocated after warm-up (cached={cached})"
            );
        }
    }

    #[test]
    fn forked_execution_matches_serial_bitwise() {
        // the fork tree partitions the same disjoint pairs, so forcing
        // parallel dispatch must give bit-identical columns to serial.
        for cached in [false, true] {
            let n = 16;
            let ord = FatTreeOrdering::new(n).unwrap();
            let mac = machine(n);
            let run = |cutoff: usize| -> ColumnStore {
                let mut store = store_from(20, n, 22, true);
                let cfg = ExecConfig {
                    cached_norms: cached,
                    serial_cutoff: cutoff,
                    ..ExecConfig::default()
                };
                let mut layout = ord.initial_layout();
                for k in 0..3 {
                    let prog = ord.sweep_program(k, &layout);
                    execute_program(&mac, &prog, &mut store, &cfg);
                    layout = prog.final_layout();
                }
                store
            };
            let serial = run(usize::MAX);
            let forked = run(0);
            assert_eq!(serial.layout, forked.layout);
            for (s, f) in serial.slots.iter().zip(forked.slots.iter()) {
                assert_eq!(s.a, f.a, "cached={cached}");
                assert_eq!(s.v, f.v, "cached={cached}");
            }
        }
    }

    #[test]
    fn off_measure_parallel_matches_serial_closely() {
        // large enough to cross OFF_MEASURE_SERIAL_CUTOFF
        let store = store_from(64, 128, 23, false);
        let par = off_measure(&store);
        let mut acc = 0.0;
        for i in 0..store.n() {
            for j in (i + 1)..store.n() {
                let d = ops::dot(&store.slots[i].a, &store.slots[j].a);
                acc += d * d;
            }
        }
        let serial = acc.sqrt();
        assert!((par - serial).abs() <= 1e-12 * serial.max(1.0), "{par} vs {serial}");
    }

    #[test]
    fn sorting_mode_moves_larger_norm_to_smaller_label() {
        // columns with increasing norms: after enough sweeps with sorting,
        // label 0 should hold the largest-norm column
        let n = 8;
        let m = 8;
        let mat = treesvd_matrix::generate::already_orthogonal(m, n, 7);
        // already_orthogonal gives norms 1..n increasing with the label
        let mut store = ColumnStore::from_columns(mat.into_columns(), false);
        let ord = RoundRobinOrdering::new(n).unwrap();
        let mac = machine(n);
        let mut layout = ord.initial_layout();
        for k in 0..6 {
            let prog = ord.sweep_program(k, &layout);
            let stats = execute_program(&mac, &prog, &mut store, &ExecConfig::default());
            layout = prog.final_layout();
            if stats.is_converged() {
                break;
            }
        }
        let cols = store.columns_in_index_order();
        let norms: Vec<f64> =
            cols.iter().map(|c| treesvd_matrix::ops::norm2_sq(&c.a).sqrt()).collect();
        assert!(treesvd_matrix::checks::is_nonincreasing(&norms), "norms not sorted: {norms:?}");
    }
}

#[cfg(test)]
mod cached_norm_tests {
    use super::*;
    use crate::machine::Machine;
    use treesvd_matrix::generate;
    use treesvd_net::TopologyKind;
    use treesvd_orderings::OrderingKind;

    #[test]
    fn cached_norms_match_reference_spectra() {
        let n = 16;
        let a = generate::random_uniform(24, n, 9);
        let ord = OrderingKind::FatTree.build(n).unwrap();
        let mac = Machine::with_kind(TopologyKind::PerfectFatTree, n / 2);

        let run = |cached: bool| -> Vec<f64> {
            let mut store = ColumnStore::from_columns(a.clone().into_columns(), false);
            let mut layout = ord.initial_layout();
            let cfg = ExecConfig { cached_norms: cached, ..ExecConfig::default() };
            for k in 0..40 {
                let prog = ord.sweep_program(k, &layout);
                let stats = execute_program(&mac, &prog, &mut store, &cfg);
                layout = prog.final_layout();
                if stats.is_converged() {
                    break;
                }
            }
            let mut norms: Vec<f64> = store
                .columns_in_index_order()
                .iter()
                .map(|c| treesvd_matrix::ops::norm2(&c.a))
                .collect();
            norms.sort_by(|x, y| y.partial_cmp(x).unwrap());
            norms
        };
        let reference = run(false);
        let cached = run(true);
        for (r, c) in reference.iter().zip(cached.iter()) {
            assert!((r - c).abs() <= 1e-10 * r.max(1.0), "{r} vs {c}");
        }
    }

    #[test]
    fn cached_norms_converge_on_every_ordering() {
        let n = 8;
        let a = generate::random_uniform(12, n, 10);
        for kind in OrderingKind::ALL {
            let ord = kind.build(n).unwrap();
            let mac = Machine::with_kind(TopologyKind::PerfectFatTree, n / 2);
            let mut store = ColumnStore::from_columns(a.clone().into_columns(), false);
            let mut layout = ord.initial_layout();
            let cfg = ExecConfig { cached_norms: true, ..ExecConfig::default() };
            let mut converged = false;
            for k in 0..40 {
                let prog = ord.sweep_program(k, &layout);
                let stats = execute_program(&mac, &prog, &mut store, &cfg);
                layout = prog.final_layout();
                if stats.is_converged() {
                    converged = true;
                    break;
                }
            }
            assert!(converged, "{kind}");
        }
    }
}
