//! Executing a sweep program on real column data.

use crate::machine::Machine;
use rayon::prelude::*;
use treesvd_matrix::rotation::orthogonalize_pair;
use treesvd_net::{Message, Phase, PhaseCost};
use treesvd_orderings::{ColIndex, Program};

/// Whether (and how) the executor keeps singular values ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortMode {
    /// Plain Hestenes: columns keep their slots.
    None,
    /// Store the larger-norm column in the slot holding the *smaller*
    /// index label (paper §3.2.1 / §4), so the singular values emerge
    /// sorted once the iteration converges.
    Descending,
}

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Threshold for skipping nearly-orthogonal pairs:
    /// skip when `|a·b| <= threshold * |a||b|`.
    pub threshold: f64,
    /// Sorting behaviour.
    pub sort: SortMode,
    /// Cache column squared norms across steps, updating them from the
    /// rotation algebra instead of recomputing — the classical Hestenes
    /// optimization (saves the `a·a` and `b·b` dot products per pair,
    /// roughly 30% of the rotation flops). Norms are recomputed exactly at
    /// the start of every sweep, so drift stays bounded; results may differ
    /// from the uncached path in the last ulp.
    pub cached_norms: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self { threshold: 1e-14, sort: SortMode::Descending, cached_norms: false }
    }
}

/// One processor slot's payload: a matrix column and (optionally) the
/// matching column of the accumulated right-singular-vector matrix `V`.
#[derive(Debug, Clone, Default)]
pub struct SlotData {
    /// The `A` column (length `m`).
    pub a: Vec<f64>,
    /// The `V` column (length `n`), empty when `V` is not accumulated.
    pub v: Vec<f64>,
}

/// The machine's memory: one [`SlotData`] per slot plus the slot→index
/// layout.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    /// Slot payloads, indexed by slot.
    pub slots: Vec<SlotData>,
    /// Current layout: `layout[slot] = column index`.
    pub layout: Vec<ColIndex>,
}

impl ColumnStore {
    /// Distribute the columns of an `m × n` matrix (given as owned column
    /// vectors) over `n` slots in index order, optionally accumulating `V`
    /// (initialized to the identity).
    ///
    /// # Panics
    /// Panics if `columns` is empty or ragged.
    pub fn from_columns(columns: Vec<Vec<f64>>, accumulate_v: bool) -> Self {
        let n = columns.len();
        assert!(n > 0, "no columns");
        let m = columns[0].len();
        let slots = columns
            .into_iter()
            .enumerate()
            .map(|(j, a)| {
                assert_eq!(a.len(), m, "ragged columns");
                let v = if accumulate_v {
                    let mut e = vec![0.0; n];
                    e[j] = 1.0;
                    e
                } else {
                    Vec::new()
                };
                SlotData { a, v }
            })
            .collect();
        Self { slots, layout: (0..n).collect() }
    }

    /// Number of slots.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Row count of the stored columns.
    pub fn m(&self) -> usize {
        self.slots.first().map_or(0, |s| s.a.len())
    }

    /// Extract the columns in *index* order (undoing the slot layout):
    /// `result[i]` is the column labelled `i`.
    pub fn columns_in_index_order(&self) -> Vec<&SlotData> {
        let mut out: Vec<Option<&SlotData>> = vec![None; self.n()];
        for (slot, &idx) in self.layout.iter().enumerate() {
            out[idx] = Some(&self.slots[slot]);
        }
        out.into_iter().map(|o| o.expect("layout is a permutation")).collect()
    }
}

/// Statistics and simulated cost of one executed sweep.
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Rotations actually applied (pairs above the threshold).
    pub rotations: usize,
    /// Pairs skipped as already orthogonal.
    pub skips: usize,
    /// Column interchanges performed for sorting (equation (3) applications
    /// beyond what the rotation itself needed).
    pub swaps: usize,
    /// Largest `|a·b| / (|a||b|)` seen before rotation over the sweep — the
    /// convergence measure.
    pub max_coupling: f64,
    /// Simulated compute time.
    pub compute_time: f64,
    /// Simulated communication time.
    pub comm_time: f64,
    /// Per-step communication cost breakdowns.
    pub phases: Vec<PhaseCost>,
    /// Message-count histogram by communication level (index = level).
    pub level_histogram: Vec<usize>,
}

impl SweepStats {
    /// Total simulated time of the sweep.
    pub fn total_time(&self) -> f64 {
        self.compute_time + self.comm_time
    }

    /// Worst per-phase contention factor.
    pub fn max_contention(&self) -> f64 {
        self.phases.iter().map(|p| p.contention).fold(0.0, f64::max)
    }

    /// Whether the sweep changed nothing: no rotations and no swaps — the
    /// paper's termination criterion (§1).
    pub fn is_converged(&self) -> bool {
        self.rotations == 0 && self.swaps == 0
    }
}

/// Outcome of one pair orthogonalization (fed back from the parallel loop).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PairReport {
    pub(crate) rotated: bool,
    pub(crate) swapped: bool,
    pub(crate) coupling: f64,
}

/// Execute one sweep program against the column store.
///
/// Rotations of a step run in parallel over processors (each processor's
/// pair occupies two adjacent slots, so `par_chunks_mut(2)` gives
/// data-race-free disjoint access); movement is applied between steps and
/// costed on the machine's topology.
///
/// # Panics
/// Panics if the program's size disagrees with the store or machine.
pub fn execute_program(
    machine: &Machine,
    program: &Program,
    store: &mut ColumnStore,
    config: &ExecConfig,
) -> SweepStats {
    let n = program.n;
    assert_eq!(store.n(), n, "store/program size mismatch");
    assert!(machine.slots() >= n, "machine too small for the program");
    assert_eq!(store.layout, program.initial_layout, "layout disagrees with program");

    let m = store.m();
    let accumulate_v = !store.slots[0].v.is_empty();
    let words_per_column = (m + if accumulate_v { n } else { 0 }) as u64;

    let mut stats = SweepStats {
        rotations: 0,
        skips: 0,
        swaps: 0,
        max_coupling: 0.0,
        compute_time: 0.0,
        comm_time: 0.0,
        phases: Vec::with_capacity(program.steps.len()),
        level_histogram: vec![0; machine.topology().levels() + 1],
    };

    // exact norms at sweep start when the cache is enabled
    let mut norm_cache: Vec<f64> = if config.cached_norms {
        store.slots.iter().map(|s| treesvd_matrix::ops::norm2_sq(&s.a)).collect()
    } else {
        Vec::new()
    };

    for step in &program.steps {
        // --- compute phase: rotate every processor's pair in parallel ---
        let sort = config.sort;
        let threshold = config.threshold;
        let cached = config.cached_norms;
        let layout = &store.layout;
        let reports: Vec<PairReport> = if cached {
            store
                .slots
                .par_chunks_mut(2)
                .zip(norm_cache.par_chunks_mut(2))
                .enumerate()
                .map(|(p, (pair, norms))| {
                    let (left, right) = pair.split_at_mut(1);
                    let (nl, nr) = norms.split_at_mut(1);
                    let small_label_on_left = layout[2 * p] < layout[2 * p + 1];
                    rotate_pair_cached(
                        &mut left[0],
                        &mut right[0],
                        &mut nl[0],
                        &mut nr[0],
                        threshold,
                        sort,
                        small_label_on_left,
                    )
                })
                .collect()
        } else {
            store
                .slots
                .par_chunks_mut(2)
                .enumerate()
                .map(|(p, pair)| {
                    let (left, right) = pair.split_at_mut(1);
                    let left = &mut left[0];
                    let right = &mut right[0];
                    // sorting rule: the larger-norm column must end in the slot
                    // holding the smaller index label
                    let small_label_on_left = layout[2 * p] < layout[2 * p + 1];
                    rotate_pair(left, right, threshold, sort, small_label_on_left)
                })
                .collect()
        };
        for r in &reports {
            if r.rotated {
                stats.rotations += 1;
            } else {
                stats.skips += 1;
            }
            if r.swapped {
                stats.swaps += 1;
            }
            stats.max_coupling = stats.max_coupling.max(r.coupling);
        }
        stats.compute_time += machine.cost().rotation_cost(m + if accumulate_v { n } else { 0 });

        // --- communication phase: apply move_after ---
        let messages: Vec<Message> = step
            .move_after
            .inter_processor_moves()
            .into_iter()
            .map(|(f, t)| Message { src: f / 2, dst: t / 2, words: words_per_column })
            .collect();
        let phase = Phase::new(machine.topology(), messages);
        for (lvl, count) in phase.level_histogram(machine.topology()).iter().enumerate() {
            stats.level_histogram[lvl] += count;
        }
        let cost = machine.cost().phase_cost(machine.topology(), &phase);
        stats.comm_time += cost.time;
        stats.phases.push(cost);

        // physically move the columns (and the layout labels)
        apply_movement(store, &step.move_after);
        if config.cached_norms {
            let mut new_norms = vec![0.0; norm_cache.len()];
            for (s, &v) in norm_cache.iter().enumerate() {
                new_norms[step.move_after.dest_of(s)] = v;
            }
            norm_cache = new_norms;
        }
    }
    stats
}

/// The cached-norms variant of [`rotate_pair`]: `alpha` and `beta` come
/// from the cache; only `gamma = a·b` is computed, and the cache is
/// updated from the rotation algebra.
fn rotate_pair_cached(
    left: &mut SlotData,
    right: &mut SlotData,
    left_norm_sq: &mut f64,
    right_norm_sq: &mut f64,
    threshold: f64,
    sort: SortMode,
    small_label_on_left: bool,
) -> PairReport {
    use treesvd_matrix::rotation::{apply_rotation, apply_rotation_swapped, compute_rotation};

    let alpha = *left_norm_sq;
    let beta = *right_norm_sq;
    let gamma = treesvd_matrix::ops::dot(&left.a, &right.a);
    let coupling = if alpha > 0.0 && beta > 0.0 {
        gamma.abs() / (alpha.sqrt() * beta.sqrt())
    } else {
        0.0
    };
    let rot = compute_rotation(alpha, beta, gamma, threshold);
    let (alpha_new, beta_new) = if rot.skipped {
        (alpha, beta)
    } else {
        let (c, s) = (rot.c, rot.s);
        (
            c * c * alpha - 2.0 * c * s * gamma + s * s * beta,
            s * s * alpha + 2.0 * c * s * gamma + c * c * beta,
        )
    };
    let need_swap = match sort {
        SortMode::None => false,
        SortMode::Descending => {
            let larger_on_left_wanted = small_label_on_left;
            let larger_ends_left = alpha_new >= beta_new;
            larger_on_left_wanted != larger_ends_left
        }
    };
    if need_swap {
        apply_rotation_swapped(rot, &mut left.a, &mut right.a);
        if !left.v.is_empty() {
            apply_rotation_swapped(rot, &mut left.v, &mut right.v);
        }
        *left_norm_sq = beta_new;
        *right_norm_sq = alpha_new;
    } else {
        apply_rotation(rot, &mut left.a, &mut right.a);
        if !left.v.is_empty() {
            apply_rotation(rot, &mut left.v, &mut right.v);
        }
        *left_norm_sq = alpha_new;
        *right_norm_sq = beta_new;
    }
    PairReport { rotated: !rot.skipped, swapped: need_swap, coupling }
}

/// Orthogonalize one resident pair, honouring the sorting rule.
pub(crate) fn rotate_pair(
    left: &mut SlotData,
    right: &mut SlotData,
    threshold: f64,
    sort: SortMode,
    small_label_on_left: bool,
) -> PairReport {
    use treesvd_matrix::ops::gram3;
    use treesvd_matrix::rotation::{apply_rotation, apply_rotation_swapped, compute_rotation};

    let (alpha, beta, gamma) = gram3(&left.a, &right.a);
    let coupling = if alpha > 0.0 && beta > 0.0 {
        gamma.abs() / (alpha.sqrt() * beta.sqrt())
    } else {
        0.0
    };

    match sort {
        SortMode::None => {
            let rot = compute_rotation(alpha, beta, gamma, threshold);
            apply_rotation(rot, &mut left.a, &mut right.a);
            if !left.v.is_empty() {
                apply_rotation(rot, &mut left.v, &mut right.v);
            }
            PairReport { rotated: !rot.skipped, swapped: false, coupling }
        }
        SortMode::Descending => {
            let rot = compute_rotation(alpha, beta, gamma, threshold);
            // norms after the rotation
            let (alpha_new, beta_new) = if rot.skipped {
                (alpha, beta)
            } else {
                let (c, s) = (rot.c, rot.s);
                (
                    c * c * alpha - 2.0 * c * s * gamma + s * s * beta,
                    s * s * alpha + 2.0 * c * s * gamma + c * c * beta,
                )
            };
            // the larger-norm column belongs in the smaller label's slot
            let larger_on_left_wanted = small_label_on_left;
            let larger_ends_left = alpha_new >= beta_new;
            let need_swap = larger_on_left_wanted != larger_ends_left;
            if need_swap {
                apply_rotation_swapped(rot, &mut left.a, &mut right.a);
                if !left.v.is_empty() {
                    apply_rotation_swapped(rot, &mut left.v, &mut right.v);
                }
            } else {
                apply_rotation(rot, &mut left.a, &mut right.a);
                if !left.v.is_empty() {
                    apply_rotation(rot, &mut left.v, &mut right.v);
                }
            }
            PairReport { rotated: !rot.skipped, swapped: need_swap, coupling }
        }
    }
}

/// Apply a slot permutation to the store (columns and layout labels).
fn apply_movement(store: &mut ColumnStore, perm: &treesvd_orderings::schedule::Permutation) {
    let n = store.n();
    let mut new_slots: Vec<SlotData> = (0..n).map(|_| SlotData::default()).collect();
    let mut new_layout = vec![0usize; n];
    let old_slots = std::mem::take(&mut store.slots);
    for (s, data) in old_slots.into_iter().enumerate() {
        let d = perm.dest_of(s);
        new_slots[d] = data;
        new_layout[d] = store.layout[s];
    }
    store.slots = new_slots;
    store.layout = new_layout;
}

/// The exact off-diagonal measure of the store's columns:
/// `off = sqrt(sum_{i<j} (a_i . a_j)^2)` — the quantity whose per-sweep
/// decay is ultimately quadratic (paper §1). O(n² m): use for
/// instrumentation, not in the hot path.
pub fn off_measure(store: &ColumnStore) -> f64 {
    let n = store.n();
    let mut acc = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = treesvd_matrix::ops::dot(&store.slots[i].a, &store.slots[j].a);
            acc += d * d;
        }
    }
    acc.sqrt()
}

/// Orthogonalize a free-standing column pair (utility shared with the
/// sequential reference in `treesvd-core`).
pub fn orthogonalize_free(
    a: &mut [f64],
    b: &mut [f64],
    threshold: f64,
    sort_descending: bool,
) -> treesvd_matrix::rotation::PairOutcome {
    orthogonalize_pair(a, b, threshold, sort_descending)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_net::TopologyKind;
    use treesvd_orderings::{FatTreeOrdering, JacobiOrdering, RoundRobinOrdering};

    fn store_from(m: usize, n: usize, seed: u64, v: bool) -> ColumnStore {
        let mat = treesvd_matrix::generate::random_uniform(m, n, seed);
        ColumnStore::from_columns(mat.into_columns(), v)
    }

    fn machine(n: usize) -> Machine {
        Machine::with_kind(TopologyKind::PerfectFatTree, n / 2)
    }

    #[test]
    fn one_sweep_reduces_coupling() {
        let n = 8;
        let ord = RoundRobinOrdering::new(n).unwrap();
        let mut store = store_from(12, n, 1, false);
        let mac = machine(n);
        let mut layout = ord.initial_layout();
        let mut couplings = Vec::new();
        for k in 0..8 {
            let prog = ord.sweep_program(k, &layout);
            let stats = execute_program(&mac, &prog, &mut store, &ExecConfig::default());
            layout = prog.final_layout();
            couplings.push(stats.max_coupling);
            if stats.is_converged() {
                break;
            }
        }
        assert!(couplings.len() >= 2);
        assert!(
            couplings.last().unwrap() < &1e-8,
            "did not converge: {couplings:?}"
        );
    }

    #[test]
    fn sweep_preserves_frobenius_mass() {
        let n = 8;
        let ord = FatTreeOrdering::new(n).unwrap();
        let mut store = store_from(10, n, 2, false);
        let before: f64 =
            store.slots.iter().map(|s| treesvd_matrix::ops::norm2_sq(&s.a)).sum();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let mac = machine(n);
        execute_program(&mac, &prog, &mut store, &ExecConfig::default());
        let after: f64 = store.slots.iter().map(|s| treesvd_matrix::ops::norm2_sq(&s.a)).sum();
        assert!((before - after).abs() < 1e-10 * before);
    }

    #[test]
    fn layout_tracking_matches_program() {
        let n = 8;
        let ord = FatTreeOrdering::new(n).unwrap();
        let mut store = store_from(6, n, 3, false);
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let mac = machine(n);
        execute_program(&mac, &prog, &mut store, &ExecConfig::default());
        assert_eq!(store.layout, prog.final_layout());
    }

    #[test]
    fn v_accumulation_tracks_rotations() {
        // A V = H must hold after any number of sweeps
        let n = 8;
        let m = 10;
        let mat = treesvd_matrix::generate::random_uniform(m, n, 4);
        let mut store = ColumnStore::from_columns(mat.clone().into_columns(), true);
        let ord = RoundRobinOrdering::new(n).unwrap();
        let mac = machine(n);
        let mut layout = ord.initial_layout();
        for k in 0..3 {
            let prog = ord.sweep_program(k, &layout);
            execute_program(&mac, &prog, &mut store, &ExecConfig::default());
            layout = prog.final_layout();
        }
        // check A * v_j == h_j for each column (in index order)
        let cols = store.columns_in_index_order();
        for col in cols {
            let mut av = vec![0.0; m];
            for (j, &vj) in col.v.iter().enumerate() {
                for (r, avr) in av.iter_mut().enumerate() {
                    *avr += mat.get(r, j) * vj;
                }
            }
            for (r, &h) in col.a.iter().enumerate() {
                assert!((av[r] - h).abs() < 1e-10, "A·v != h at row {r}");
            }
        }
    }

    #[test]
    fn stats_add_up() {
        let n = 8;
        let ord = RoundRobinOrdering::new(n).unwrap();
        let mut store = store_from(6, n, 5, false);
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let mac = machine(n);
        let stats = execute_program(&mac, &prog, &mut store, &ExecConfig::default());
        assert_eq!(stats.rotations + stats.skips, (n / 2) * (n - 1));
        assert_eq!(stats.phases.len(), n - 1);
        assert!(stats.total_time() > 0.0);
        assert!(stats.max_coupling > 0.0);
    }

    #[test]
    fn orthogonal_input_converges_immediately_without_sort() {
        let n = 8;
        let mat = treesvd_matrix::generate::already_orthogonal(10, n, 6);
        let mut store = ColumnStore::from_columns(mat.into_columns(), false);
        let ord = RoundRobinOrdering::new(n).unwrap();
        let mac = machine(n);
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let cfg = ExecConfig { threshold: 1e-12, sort: SortMode::None, ..ExecConfig::default() };
        let stats = execute_program(&mac, &prog, &mut store, &cfg);
        assert!(stats.is_converged(), "{stats:?}");
    }

    #[test]
    fn sorting_mode_moves_larger_norm_to_smaller_label() {
        // columns with increasing norms: after enough sweeps with sorting,
        // label 0 should hold the largest-norm column
        let n = 8;
        let m = 8;
        let mat = treesvd_matrix::generate::already_orthogonal(m, n, 7);
        // already_orthogonal gives norms 1..n increasing with the label
        let mut store = ColumnStore::from_columns(mat.into_columns(), false);
        let ord = RoundRobinOrdering::new(n).unwrap();
        let mac = machine(n);
        let mut layout = ord.initial_layout();
        for k in 0..6 {
            let prog = ord.sweep_program(k, &layout);
            let stats = execute_program(&mac, &prog, &mut store, &ExecConfig::default());
            layout = prog.final_layout();
            if stats.is_converged() {
                break;
            }
        }
        let cols = store.columns_in_index_order();
        let norms: Vec<f64> =
            cols.iter().map(|c| treesvd_matrix::ops::norm2_sq(&c.a).sqrt()).collect();
        assert!(
            treesvd_matrix::checks::is_nonincreasing(&norms),
            "norms not sorted: {norms:?}"
        );
    }
}

#[cfg(test)]
mod cached_norm_tests {
    use super::*;
    use crate::machine::Machine;
    use treesvd_matrix::generate;
    use treesvd_net::TopologyKind;
    use treesvd_orderings::OrderingKind;

    #[test]
    fn cached_norms_match_reference_spectra() {
        let n = 16;
        let a = generate::random_uniform(24, n, 9);
        let ord = OrderingKind::FatTree.build(n).unwrap();
        let mac = Machine::with_kind(TopologyKind::PerfectFatTree, n / 2);

        let run = |cached: bool| -> Vec<f64> {
            let mut store = ColumnStore::from_columns(a.clone().into_columns(), false);
            let mut layout = ord.initial_layout();
            let cfg = ExecConfig { cached_norms: cached, ..ExecConfig::default() };
            for k in 0..40 {
                let prog = ord.sweep_program(k, &layout);
                let stats = execute_program(&mac, &prog, &mut store, &cfg);
                layout = prog.final_layout();
                if stats.is_converged() {
                    break;
                }
            }
            let mut norms: Vec<f64> = store
                .columns_in_index_order()
                .iter()
                .map(|c| treesvd_matrix::ops::norm2(&c.a))
                .collect();
            norms.sort_by(|x, y| y.partial_cmp(x).unwrap());
            norms
        };
        let reference = run(false);
        let cached = run(true);
        for (r, c) in reference.iter().zip(cached.iter()) {
            assert!((r - c).abs() <= 1e-10 * r.max(1.0), "{r} vs {c}");
        }
    }

    #[test]
    fn cached_norms_converge_on_every_ordering() {
        let n = 8;
        let a = generate::random_uniform(12, n, 10);
        for kind in OrderingKind::ALL {
            let ord = kind.build(n).unwrap();
            let mac = Machine::with_kind(TopologyKind::PerfectFatTree, n / 2);
            let mut store = ColumnStore::from_columns(a.clone().into_columns(), false);
            let mut layout = ord.initial_layout();
            let cfg = ExecConfig { cached_norms: true, ..ExecConfig::default() };
            let mut converged = false;
            for k in 0..40 {
                let prog = ord.sweep_program(k, &layout);
                let stats = execute_program(&mac, &prog, &mut store, &cfg);
                layout = prog.final_layout();
                if stats.is_converged() {
                    converged = true;
                    break;
                }
            }
            assert!(converged, "{kind}");
        }
    }
}
