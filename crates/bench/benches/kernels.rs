//! Micro-benchmarks of the numerical kernels in the sweep's hot path,
//! in three tiers per kernel:
//!
//! * `*_naive` — the strict-order reference loops (`ops::naive`);
//! * the unrolled production kernels (`dot`, `norm2_sq`, `gram3`, `axpy`);
//! * the fused rotate-and-measure pass (`rotate_fused*`) versus the
//!   unfused rotate-then-renormalize sequence it replaces.
//!
//! The machine-readable record lives in `BENCH_kernels.json`, regenerated
//! by `cargo run --release -p treesvd-bench --bin bench_kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treesvd_matrix::ops::{self, axpy, dot, gram3, norm2_sq, rotate_fused, rotate_fused_swapped};
use treesvd_matrix::rotation::{apply_rotation, apply_rotation_swapped, compute_rotation};

fn columns(m: usize) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = (0..m).map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0).collect();
    let b: Vec<f64> = (0..m).map(|i| ((i * 40503 + 7) % 1000) as f64 / 500.0 - 1.0).collect();
    (a, b)
}

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("reductions");
    for m in [64usize, 512, 4096] {
        let (a, b) = columns(m);
        group.bench_with_input(BenchmarkId::new("dot_naive", m), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| std::hint::black_box(ops::naive::dot(a, b)))
        });
        group.bench_with_input(BenchmarkId::new("dot_unrolled", m), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| std::hint::black_box(dot(a, b)))
        });
        group.bench_with_input(BenchmarkId::new("norm2_sq_naive", m), &a, |bch, a| {
            bch.iter(|| std::hint::black_box(ops::naive::norm2_sq(a)))
        });
        group.bench_with_input(BenchmarkId::new("norm2_sq_unrolled", m), &a, |bch, a| {
            bch.iter(|| std::hint::black_box(norm2_sq(a)))
        });
        group.bench_with_input(BenchmarkId::new("gram3_naive", m), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| std::hint::black_box(ops::naive::gram3(a, b)))
        });
        group.bench_with_input(BenchmarkId::new("gram3_unrolled", m), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| std::hint::black_box(gram3(a, b)))
        });
        group.bench_with_input(BenchmarkId::new("axpy_naive", m), &(&a, &b), |bch, (a, b)| {
            let mut y = (*b).clone();
            bch.iter(|| {
                ops::naive::axpy(1.0 + 1e-12, a, &mut y);
                std::hint::black_box(y[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("axpy_unrolled", m), &(&a, &b), |bch, (a, b)| {
            let mut y = (*b).clone();
            bch.iter(|| {
                axpy(1.0 + 1e-12, a, &mut y);
                std::hint::black_box(y[0])
            })
        });
    }
    group.finish();
}

fn bench_rotations(c: &mut Criterion) {
    let mut group = c.benchmark_group("rotations");
    for m in [64usize, 512, 4096] {
        let (a, b) = columns(m);
        let (alpha, beta, gamma) = gram3(&a, &b);
        let rot = compute_rotation(alpha, beta, gamma, 0.0);

        // the seed's pattern: rotate, then re-measure both norms
        group.bench_with_input(BenchmarkId::new("rotate_then_norms", m), &m, |bch, _| {
            let (mut x, mut y) = (a.clone(), b.clone());
            bch.iter(|| {
                std::hint::black_box(ops::naive::rotate_then_norms(rot.c, rot.s, &mut x, &mut y))
            })
        });
        // the fused single-pass replacement
        group.bench_with_input(BenchmarkId::new("rotate_fused", m), &m, |bch, _| {
            let (mut x, mut y) = (a.clone(), b.clone());
            bch.iter(|| std::hint::black_box(rotate_fused(rot.c, rot.s, &mut x, &mut y)))
        });
        // equation (3) variant — the bench verifies the swap is free
        group.bench_with_input(BenchmarkId::new("rotate_fused_swapped", m), &m, |bch, _| {
            let (mut x, mut y) = (a.clone(), b.clone());
            bch.iter(|| std::hint::black_box(rotate_fused_swapped(rot.c, rot.s, &mut x, &mut y)))
        });
        // rotation apply alone (no norm production), for reference
        group.bench_with_input(BenchmarkId::new("rotate_eq1", m), &m, |bch, _| {
            let (mut x, mut y) = (a.clone(), b.clone());
            bch.iter(|| {
                apply_rotation(rot, &mut x, &mut y);
                std::hint::black_box(x[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("rotate_eq3_swapped", m), &m, |bch, _| {
            let (mut x, mut y) = (a.clone(), b.clone());
            bch.iter(|| {
                apply_rotation_swapped(rot, &mut x, &mut y);
                std::hint::black_box(x[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("compute_rotation", m), &m, |bch, _| {
            bch.iter(|| std::hint::black_box(compute_rotation(alpha, beta, gamma, 1e-14)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reductions, bench_rotations);
criterion_main!(benches);
