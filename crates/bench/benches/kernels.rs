//! Micro-benchmarks of the numerical kernels in the sweep's hot path:
//! fused Gram evaluation, plain rotation, and rotation-with-swap
//! (equation (3) — the bench verifies it costs the same as eq. (1)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treesvd_matrix::ops::gram3;
use treesvd_matrix::rotation::{apply_rotation, apply_rotation_swapped, compute_rotation};

fn columns(m: usize) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = (0..m).map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0).collect();
    let b: Vec<f64> = (0..m).map(|i| ((i * 40503 + 7) % 1000) as f64 / 500.0 - 1.0).collect();
    (a, b)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    for m in [64usize, 512, 4096] {
        let (a, b) = columns(m);
        group.bench_with_input(BenchmarkId::new("gram3", m), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| std::hint::black_box(gram3(a, b)))
        });

        let (alpha, beta, gamma) = gram3(&a, &b);
        let rot = compute_rotation(alpha, beta, gamma, 0.0);
        group.bench_with_input(BenchmarkId::new("rotate_eq1", m), &m, |bch, _| {
            let (mut x, mut y) = (a.clone(), b.clone());
            bch.iter(|| {
                apply_rotation(rot, &mut x, &mut y);
                std::hint::black_box(x[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("rotate_eq3_swapped", m), &m, |bch, _| {
            let (mut x, mut y) = (a.clone(), b.clone());
            bch.iter(|| {
                apply_rotation_swapped(rot, &mut x, &mut y);
                std::hint::black_box(x[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("compute_rotation", m), &m, |bch, _| {
            bch.iter(|| std::hint::black_box(compute_rotation(alpha, beta, gamma, 1e-14)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
