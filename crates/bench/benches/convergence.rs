//! E3/E4/E6 bench: sweeps-to-convergence per ordering, plus the quadratic
//! convergence trace (paper §1, §3, §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treesvd_core::{HestenesSvd, OrderingKind};
use treesvd_matrix::generate;

fn print_convergence_summary() {
    println!("\n== E3: sweeps to convergence (random 64x32, 3 seeds) ==");
    for kind in OrderingKind::ALL {
        let mut sweeps = Vec::new();
        for seed in [1u64, 2, 3] {
            let a = generate::random_uniform(64, 32, seed);
            let run = HestenesSvd::with_ordering(kind).compute(&a).expect("convergence");
            sweeps.push(run.sweeps);
        }
        println!("{:>14}: {:?}", kind.name(), sweeps);
    }
    println!("\n== E6: coupling per sweep (fat-tree ordering, 48x24) ==");
    let a = generate::random_uniform(48, 24, 7);
    let run = HestenesSvd::with_ordering(OrderingKind::FatTree).compute(&a).expect("convergence");
    for (k, c) in run.coupling_history().iter().enumerate() {
        println!("  sweep {:2}: {c:.3e}", k + 1);
    }
    println!();
}

fn bench_convergence(c: &mut Criterion) {
    print_convergence_summary();
    let mut group = c.benchmark_group("convergence");
    group.sample_size(10);
    let a = generate::random_uniform(48, 24, 11);
    for kind in [
        OrderingKind::RoundRobin,
        OrderingKind::FatTree,
        OrderingKind::NewRing,
        OrderingKind::Llb,
        OrderingKind::Hybrid,
    ] {
        group.bench_with_input(BenchmarkId::new(kind.name(), "48x24"), &a, |b, a| {
            b.iter(|| {
                let run = HestenesSvd::with_ordering(kind).compute(a).expect("convergence");
                std::hint::black_box(run.sweeps)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
