//! E7 bench: full-SVD end-to-end runs across orderings and machine sizes
//! (paper claim C7, §6) — real data, simulated machine, real rayon cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treesvd_core::{HestenesSvd, OrderingKind, SvdOptions, TopologyKind};
use treesvd_matrix::generate;

fn print_simulated_scaling() {
    println!("\n== E7: simulated total time for one full SVD (m = 2n) ==");
    for topo in [TopologyKind::PerfectFatTree, TopologyKind::Cm5] {
        for n in [16usize, 32, 64] {
            let a = generate::random_uniform(2 * n, n, 99);
            print!("{topo} n={n:3}:");
            for kind in [OrderingKind::RoundRobin, OrderingKind::FatTree, OrderingKind::Hybrid] {
                let run =
                    HestenesSvd::new(SvdOptions::default().with_ordering(kind).with_topology(topo))
                        .compute(&a)
                        .expect("convergence");
                print!("  {}={:.3e}({}sw)", kind.name(), run.simulated_time, run.sweeps);
            }
            println!();
        }
    }
    println!();
}

fn bench_full_svd(c: &mut Criterion) {
    print_simulated_scaling();
    let mut group = c.benchmark_group("svd_end_to_end");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let a = generate::random_uniform(2 * n, n, 5);
        for kind in [OrderingKind::RoundRobin, OrderingKind::FatTree, OrderingKind::Hybrid] {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &a, |b, a| {
                b.iter(|| {
                    let run = HestenesSvd::with_ordering(kind).compute(a).expect("convergence");
                    std::hint::black_box(run.svd.sigma[0])
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_full_svd);
criterion_main!(benches);
