//! E2 bench: contention factors on skinny trees (paper claim C5, §5) —
//! fat-tree ordering vs hybrid on the CM-5-like tree and the binary tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treesvd_core::{OrderingKind, TopologyKind};
use treesvd_orderings::{HybridOrdering, JacobiOrdering};
use treesvd_sim::{analyze_program, Machine};

fn print_contention_table() {
    println!("\n== E2: worst-phase contention factor (<= 1 means contention-free) ==");
    let n = 64;
    let mut rows: Vec<(String, Box<dyn JacobiOrdering>)> = vec![
        ("ring".into(), OrderingKind::Ring.build(n).unwrap()),
        ("round-robin".into(), OrderingKind::RoundRobin.build(n).unwrap()),
        ("fat-tree".into(), OrderingKind::FatTree.build(n).unwrap()),
        ("new-ring".into(), OrderingKind::NewRing.build(n).unwrap()),
    ];
    let hy = HybridOrdering::new(n, n / 4).unwrap();
    rows.push((hy.name(), Box::new(hy)));
    for (name, ord) in &rows {
        print!("{name:>14}:");
        for kind in [TopologyKind::PerfectFatTree, TopologyKind::Cm5, TopologyKind::BinaryTree] {
            let machine = Machine::with_kind(kind, n / 2);
            let prog = ord.sweep_program(0, &ord.initial_layout());
            let rep = analyze_program(&machine, &prog, 64);
            print!("  {kind}={:.2}", rep.max_contention);
        }
        println!();
    }
    println!();
}

fn bench_contention(c: &mut Criterion) {
    print_contention_table();
    let mut group = c.benchmark_group("contention");
    let n = 64;
    for topo in [TopologyKind::Cm5, TopologyKind::BinaryTree] {
        let machine = Machine::with_kind(topo, n / 2);
        let ft = OrderingKind::FatTree.build(n).unwrap();
        let ft_prog = ft.sweep_program(0, &ft.initial_layout());
        group.bench_with_input(
            BenchmarkId::new("fat-tree", topo.to_string()),
            &(&machine, &ft_prog),
            |b, (machine, prog)| {
                b.iter(|| std::hint::black_box(analyze_program(machine, prog, 64).max_contention))
            },
        );
        let hy = HybridOrdering::new(n, n / 4).unwrap();
        let hy_prog = hy.sweep_program(0, &hy.initial_layout());
        group.bench_with_input(
            BenchmarkId::new("hybrid", topo.to_string()),
            &(&machine, &hy_prog),
            |b, (machine, prog)| {
                b.iter(|| std::hint::black_box(analyze_program(machine, prog, 64).max_contention))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_contention);
criterion_main!(benches);
