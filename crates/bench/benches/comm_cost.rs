//! E1 bench: per-sweep communication analysis, ordering × machine size,
//! on a perfect fat-tree (paper claim C1, §3).
//!
//! Besides wall-clock timing of the analysis kernel, the bench prints the
//! simulated communication time per configuration once at startup, so the
//! "who wins" shape is visible straight from `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treesvd_core::{OrderingKind, TopologyKind};
use treesvd_sim::{analyze_program, Machine};

const KINDS: [OrderingKind; 6] = [
    OrderingKind::Ring,
    OrderingKind::RoundRobin,
    OrderingKind::FatTree,
    OrderingKind::NewRing,
    OrderingKind::Llb,
    OrderingKind::Hybrid,
];

fn print_simulated_times() {
    println!("\n== E1: simulated per-sweep comm time on a perfect fat-tree (64-word columns) ==");
    for n in [32usize, 64, 128] {
        print!("n = {n:4}:");
        for kind in KINDS {
            let ord = kind.build(n).expect("size ok");
            let machine = Machine::with_kind(TopologyKind::PerfectFatTree, n / 2);
            let prog = ord.sweep_program(0, &ord.initial_layout());
            let rep = analyze_program(&machine, &prog, 64);
            print!("  {}={:.0}", kind.name(), rep.comm_time);
        }
        println!();
    }
    println!();
}

fn bench_comm_cost(c: &mut Criterion) {
    print_simulated_times();
    let mut group = c.benchmark_group("comm_cost/perfect_fat_tree");
    for n in [32usize, 128] {
        for kind in KINDS {
            let ord = kind.build(n).expect("size ok");
            let machine = Machine::with_kind(TopologyKind::PerfectFatTree, n / 2);
            let prog = ord.sweep_program(0, &ord.initial_layout());
            group.bench_with_input(
                BenchmarkId::new(kind.name(), n),
                &(&machine, &prog),
                |b, (machine, prog)| {
                    b.iter(|| {
                        let rep = analyze_program(machine, prog, 64);
                        std::hint::black_box(rep.comm_time)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_comm_cost);
criterion_main!(benches);
