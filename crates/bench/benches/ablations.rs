//! Ablation benches (A1–A4 in `treesvd_bench::ablations`): block size,
//! intra-group ordering, threshold, and message-size sensitivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treesvd_bench::ablations;
use treesvd_core::{HestenesSvd, SvdOptions};
use treesvd_matrix::generate;

fn print_tables() {
    println!("\n== A1: hybrid block-size sweep (n = 64) ==");
    println!("{}", ablations::a1_block_size(64, 64).to_markdown());
    println!("== A2: intra-group ordering ablation ==");
    println!("{}", ablations::a2_intra_group(32, 2, 64).to_markdown());
    println!("== A4: message-size sweep on the CM-5 tree ==");
    println!("{}", ablations::a4_message_size(64).to_markdown());
}

fn bench_threshold(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("ablation/threshold");
    group.sample_size(10);
    let a = generate::random_uniform(48, 24, 5);
    // threshold 0 is excluded: rotating everything never satisfies the
    // rotation-count termination rule (see A3 in EXPERIMENTS.md)
    for (label, thr) in
        [("default", None), ("loose-1e-8", Some(1e-8)), ("tight-1e-15", Some(1e-15))]
    {
        group.bench_with_input(BenchmarkId::new("svd", label), &a, |b, a| {
            b.iter(|| {
                let opts = SvdOptions { threshold: thr, ..SvdOptions::default() };
                let run = HestenesSvd::new(opts).compute(a).expect("convergence");
                std::hint::black_box(run.sweeps)
            })
        });
    }
    group.finish();
}

fn bench_cached_norms(c: &mut Criterion) {
    // the classical Hestenes optimization: cached column norms skip the
    // a·a and b·b dot products of every pair test
    let mut group = c.benchmark_group("ablation/cached_norms");
    group.sample_size(10);
    let a = generate::random_uniform(512, 32, 6);
    for cached in [false, true] {
        let label = if cached { "cached" } else { "reference" };
        group.bench_with_input(BenchmarkId::new("svd_512x32", label), &a, |b, a| {
            b.iter(|| {
                let run = HestenesSvd::new(SvdOptions::default().with_cached_norms(cached))
                    .compute(a)
                    .expect("convergence");
                std::hint::black_box(run.svd.sigma[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threshold, bench_cached_norms);
criterion_main!(benches);
