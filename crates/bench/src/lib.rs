//! Experiment harness: regenerates every figure and quantifies every claim
//! of Zhou & Brent (ICPP 1993).
//!
//! The paper is a *concise* paper: its figures are ordering schedules
//! (Figs. 1–9) and its evaluation is the set of communication/contention/
//! convergence claims in §§3–6 (the CM-5 implementation was still in
//! progress). Correspondingly this crate provides:
//!
//! * [`figures`] — paper-style schedule tables for every figure;
//! * [`experiments`] — the claim-quantifying tables (E1–E7 in DESIGN.md);
//! * two binaries, `figures` and `experiments`, that print everything; the
//!   `experiments` output is the source of `EXPERIMENTS.md`;
//! * Criterion benches (`benches/`) timing the same experiment kernels.

#![deny(missing_docs)]

pub mod ablations;
pub mod experiments;
pub mod figures;
pub mod meta;
pub mod table;
