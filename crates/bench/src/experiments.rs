//! The claim-quantifying experiments E1–E7 (see DESIGN.md §5).
//!
//! Each function returns a markdown [`Table`] (plus, where useful, a short
//! narrative) so the `experiments` binary can assemble `EXPERIMENTS.md`.

use crate::table::{fnum, Table};
use treesvd_core::{
    sequential::sequential_svd, HestenesSvd, OrderingKind, SvdOptions, TopologyKind,
};
use treesvd_matrix::{checks, generate};
use treesvd_orderings::{HybridOrdering, JacobiOrdering};
use treesvd_sim::{analyze_program, Machine};

/// The orderings compared in the communication experiments.
pub const COMM_ORDERINGS: [OrderingKind; 5] = [
    OrderingKind::Ring,
    OrderingKind::RoundRobin,
    OrderingKind::FatTree,
    OrderingKind::NewRing,
    OrderingKind::Llb,
];

fn build(kind: OrderingKind, n: usize) -> Box<dyn JacobiOrdering> {
    kind.build(n).expect("size accepted")
}

/// A hybrid ordering with the contention-free block size for skinny trees
/// (blocks of two columns — groups of four — fit the narrowest channel).
pub fn hybrid_for(n: usize) -> HybridOrdering {
    HybridOrdering::new(n, n / 4).expect("groups of 4")
}

/// E1 — per-sweep communication on a perfect fat-tree (claim C1):
/// the fat-tree ordering localizes traffic; the Fig. 1 orderings go global
/// at every step.
pub fn e1_comm_cost(n: usize, words: u64) -> Table {
    let mut t = Table::new(vec![
        "ordering",
        "comm time",
        "global steps",
        "lvl-1 msgs",
        "lvl-2 msgs",
        "lvl>=3 msgs",
        "word-hops",
    ]);
    let machine = Machine::with_kind(TopologyKind::PerfectFatTree, n / 2);
    let mut orderings: Vec<(String, Box<dyn JacobiOrdering>)> =
        COMM_ORDERINGS.iter().map(|&k| (k.name().to_string(), build(k, n))).collect();
    let hy = hybrid_for(n);
    orderings.push((hy.name(), Box::new(hy)));
    for (name, ord) in &orderings {
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let rep = analyze_program(&machine, &prog, words);
        let h = &rep.level_histogram;
        let high: usize = h.iter().skip(3).sum();
        t.row(vec![
            name.clone(),
            fnum(rep.comm_time),
            rep.global_steps.to_string(),
            h.get(1).copied().unwrap_or(0).to_string(),
            h.get(2).copied().unwrap_or(0).to_string(),
            high.to_string(),
            rep.word_hops.to_string(),
        ]);
    }
    t
}

/// E2 — contention on skinny trees (claim C5): worst interior-vs-endpoint
/// slowdown factor per ordering per topology. ≤ 1 means contention-free.
pub fn e2_contention(n: usize, words: u64) -> Table {
    let mut t = Table::new(vec!["ordering", "perfect fat-tree", "cm5 tree", "binary tree"]);
    let kinds = [TopologyKind::PerfectFatTree, TopologyKind::Cm5, TopologyKind::BinaryTree];
    let mut orderings: Vec<(String, Box<dyn JacobiOrdering>)> =
        COMM_ORDERINGS.iter().map(|&k| (k.name().to_string(), build(k, n))).collect();
    let hy = hybrid_for(n);
    orderings.push((hy.name(), Box::new(hy)));
    for (name, ord) in &orderings {
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let mut cells = vec![name.clone()];
        for kind in kinds {
            let machine = Machine::with_kind(kind, n / 2);
            let rep = analyze_program(&machine, &prog, words);
            cells.push(fnum(rep.max_contention));
        }
        t.row(cells);
    }
    t
}

/// E3 — sweeps to convergence per ordering (claims C2/C3): the fat-tree
/// ordering restores order every sweep; the LLB baseline's forward/backward
/// alternation may converge more slowly and must finish on an even sweep.
pub fn e3_convergence(m: usize, n: usize, seeds: &[u64]) -> Table {
    let mut t = Table::new(vec!["ordering", "mean sweeps", "min", "max", "mean rotations"]);
    for kind in OrderingKind::ALL {
        let mut sweeps = Vec::new();
        let mut rots = Vec::new();
        for &seed in seeds {
            let a = generate::random_uniform(m, n, seed);
            let run = HestenesSvd::with_ordering(kind).compute(&a).expect("convergence");
            sweeps.push(run.sweeps as f64);
            rots.push(run.total_rotations() as f64);
        }
        let mean = sweeps.iter().sum::<f64>() / sweeps.len() as f64;
        let mean_r = rots.iter().sum::<f64>() / rots.len() as f64;
        t.row(vec![
            kind.name().to_string(),
            fnum(mean),
            fnum(sweeps.iter().cloned().fold(f64::INFINITY, f64::min)),
            fnum(sweeps.iter().cloned().fold(0.0, f64::max)),
            fnum(mean_r),
        ]);
    }
    // sequential reference row
    let mut sweeps = Vec::new();
    for &seed in seeds {
        let a = generate::random_uniform(m, n, seed);
        let run = sequential_svd(&a, 60).expect("convergence");
        sweeps.push(run.sweeps as f64);
    }
    let mean = sweeps.iter().sum::<f64>() / sweeps.len() as f64;
    t.row(vec![
        "sequential (cyclic)".to_string(),
        fnum(mean),
        fnum(sweeps.iter().cloned().fold(f64::INFINITY, f64::min)),
        fnum(sweeps.iter().cloned().fold(0.0, f64::max)),
        "-".to_string(),
    ]);
    t
}

/// E4 — equivalence of the new ring ordering and round-robin (claim C3):
/// the relabelling exists and the convergence traces coincide sweep by
/// sweep under it.
pub fn e4_equivalence(n: usize) -> (Table, String) {
    use treesvd_orderings::{equivalence, NewRingOrdering, RoundRobinOrdering};
    let nr = NewRingOrdering::new(n).expect("even n");
    let rr = RoundRobinOrdering::new(n).expect("even n");
    let pn = nr.sweep_program(0, &nr.initial_layout());
    let pr = rr.sweep_program(0, &rr.initial_layout());
    let pi = equivalence::find_relabelling(&pn, &pr);
    let narrative = match &pi {
        Some(p) => format!(
            "relabelling found for n = {n}: {}",
            p.iter()
                .enumerate()
                .map(|(i, &v)| format!("{}→{}", i + 1, v + 1))
                .collect::<Vec<_>>()
                .join(" ")
        ),
        None => format!("NO relabelling found for n = {n} (unexpected)"),
    };

    // convergence comparison on the same matrices
    let mut t = Table::new(vec!["seed", "new-ring sweeps", "round-robin sweeps"]);
    for seed in [1u64, 2, 3, 4, 5] {
        let a = generate::random_uniform(2 * n, n, seed);
        let r1 = HestenesSvd::with_ordering(OrderingKind::NewRing).compute(&a).expect("conv");
        let r2 = HestenesSvd::with_ordering(OrderingKind::RoundRobin).compute(&a).expect("conv");
        t.row(vec![seed.to_string(), r1.sweeps.to_string(), r2.sweeps.to_string()]);
    }
    (t, narrative)
}

/// E5 — sorted singular values (claim C4): with the Fig. 4(a)-based
/// fat-tree ordering and the §4 rings, σ comes out nonincreasing.
pub fn e5_sorted_sigma(m: usize, n: usize, seeds: &[u64]) -> Table {
    let mut t = Table::new(vec!["ordering", "runs", "sorted (desc)", "max spectrum err"]);
    for kind in OrderingKind::ALL {
        let mut sorted = 0usize;
        let mut max_err = 0.0_f64;
        for &seed in seeds {
            let sigma_true: Vec<f64> =
                (1..=n).rev().map(|k| k as f64 + 0.25 * (seed as f64 % 3.0)).collect();
            let a = generate::with_singular_values(m, &sigma_true, seed);
            let run = HestenesSvd::with_ordering(kind).compute(&a).expect("convergence");
            if checks::is_nonincreasing(&run.svd.sigma) {
                sorted += 1;
            }
            max_err = max_err.max(checks::spectrum_distance(&run.svd.sigma, &sigma_true));
        }
        t.row(vec![
            kind.name().to_string(),
            seeds.len().to_string(),
            format!("{sorted}/{}", seeds.len()),
            fnum(max_err),
        ]);
    }
    t
}

/// E6 — quadratic convergence (claim C6): per-sweep maximum coupling and
/// the exact off-diagonal measure for a single representative run.
pub fn e6_quadratic(m: usize, n: usize, seed: u64) -> Table {
    let a = generate::random_uniform(m, n, seed);
    let run = HestenesSvd::new(SvdOptions::default().with_track_off(true))
        .compute(&a)
        .expect("convergence");
    let mut t = Table::new(vec!["sweep", "max coupling", "off(A)", "rotations"]);
    for (k, s) in run.sweep_stats.iter().enumerate() {
        t.row(vec![
            (k + 1).to_string(),
            format!("{:.3e}", s.max_coupling),
            format!("{:.3e}", run.off_history[k + 1]),
            s.rotations.to_string(),
        ]);
    }
    t
}

/// E7 — simulated sweep time vs machine size per topology (claim C7):
/// who wins where, as the paper's §6 predicts (hybrid on the CM-5; fat-tree
/// ordering once bandwidth is perfect).
pub fn e7_scalability(sizes: &[usize], words: u64) -> Table {
    let mut t =
        Table::new(vec!["n", "topology", "ring", "round-robin", "fat-tree", "llb", "hybrid"]);
    for &n in sizes {
        for kind in [TopologyKind::PerfectFatTree, TopologyKind::Cm5, TopologyKind::BinaryTree] {
            let machine = Machine::with_kind(kind, n / 2);
            let mut cells = vec![n.to_string(), kind.to_string()];
            for ord_kind in [
                OrderingKind::Ring,
                OrderingKind::RoundRobin,
                OrderingKind::FatTree,
                OrderingKind::Llb,
            ] {
                let ord = build(ord_kind, n);
                let prog = ord.sweep_program(0, &ord.initial_layout());
                cells.push(fnum(analyze_program(&machine, &prog, words).comm_time));
            }
            let hy = hybrid_for(n);
            let prog = hy.sweep_program(0, &hy.initial_layout());
            cells.push(fnum(analyze_program(&machine, &prog, words).comm_time));
            t.row(cells);
        }
    }
    t
}

/// E3b — the LLB half-sweep penalty (claim C2): LLB must end on an even
/// sweep count to leave vectors in place; measure how often that wastes a
/// half sweep relative to its own convergence point.
pub fn e3b_llb_parity(m: usize, n: usize, seeds: &[u64]) -> Table {
    let mut t =
        Table::new(vec!["seed", "llb sweeps", "odd (wastes half-sweep)", "fat-tree sweeps"]);
    for &seed in seeds {
        let a = generate::random_uniform(m, n, seed);
        let llb = HestenesSvd::with_ordering(OrderingKind::Llb).compute(&a).expect("conv");
        let ft = HestenesSvd::with_ordering(OrderingKind::FatTree).compute(&a).expect("conv");
        t.row(vec![
            seed.to_string(),
            llb.sweeps.to_string(),
            if llb.sweeps % 2 == 1 { "yes" } else { "no" }.to_string(),
            ft.sweeps.to_string(),
        ]);
    }
    t
}

/// E8 — undersized machines (Schreiber partitioning): the same problem on
/// fewer processors via blocked sweeps; accuracy invariant, sweeps drop as
/// blocks grow (each meeting does more local work).
pub fn e8_undersized(m: usize, n: usize, seed: u64) -> Table {
    use treesvd_core::{blocked_svd, BlockedOptions};
    let a = generate::random_uniform(m, n, seed);
    let full = HestenesSvd::new(SvdOptions::default()).compute(&a).expect("convergence");
    let mut t = Table::new(vec![
        "processors",
        "block size",
        "sweeps",
        "rotations",
        "spectrum err vs P=n/2",
    ]);
    t.row(vec![
        format!("{} (unblocked)", n / 2),
        "1".to_string(),
        full.sweeps.to_string(),
        full.total_rotations().to_string(),
        "0".to_string(),
    ]);
    let mut p = n / 4;
    while p >= 2 {
        let run = blocked_svd(&a, &BlockedOptions::for_processors(p)).expect("convergence");
        let err = checks::spectrum_distance(&run.svd.sigma, &full.svd.sigma);
        t.row(vec![
            p.to_string(),
            run.block_size.to_string(),
            run.sweeps.to_string(),
            run.total_rotations.to_string(),
            format!("{err:.1e}"),
        ]);
        p /= 2;
    }
    t
}

/// SVD accuracy summary across all orderings and matrix classes — the
/// correctness floor under every experiment.
pub fn accuracy_table(seeds: &[u64]) -> Table {
    let mut t = Table::new(vec!["ordering", "matrix class", "max residual", "max orth err"]);
    for kind in OrderingKind::ALL {
        for (class, gen) in [("random 24x16", 0usize), ("graded 1e-6", 1), ("rank-deficient", 2)] {
            let mut max_res = 0.0_f64;
            let mut max_orth = 0.0_f64;
            for &seed in seeds {
                let a = match gen {
                    0 => generate::random_uniform(24, 16, seed),
                    1 => generate::graded(24, 16, 1e-6, seed),
                    _ => generate::rank_deficient(24, 16, 10, seed),
                };
                let run = HestenesSvd::with_ordering(kind).compute(&a).expect("convergence");
                max_res = max_res.max(run.svd.residual(&a));
                max_orth = max_orth.max(run.svd.orthogonality());
            }
            t.row(vec![
                kind.name().to_string(),
                class.to_string(),
                format!("{max_res:.2e}"),
                format!("{max_orth:.2e}"),
            ]);
        }
    }
    t
}

/// Sort-mode comparison for the modified ring ordering (the §4 parity
/// claim): direction of σ after odd vs even sweep counts, observed via the
/// layout (nonincreasing after even, nondecreasing after odd).
pub fn modified_ring_parity(n: usize) -> String {
    use treesvd_orderings::ModifiedRingOrdering;
    let ord = ModifiedRingOrdering::new(n).expect("even n");
    let progs = ord.programs(2);
    let after1 = progs[0].final_layout();
    let after2 = progs[1].final_layout();
    let rev: Vec<usize> = (0..n).rev().collect();
    let id: Vec<usize> = (0..n).collect();
    format!(
        "modified ring, n = {n}: layout after sweep 1 {} full reversal; after sweep 2 {} identity\n\
         => a column sorted descending by label reads nondecreasing after odd sweeps (claim holds)",
        if after1 == rev { "IS" } else { "IS NOT" },
        if after2 == id { "IS" } else { "IS NOT" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shapes_hold() {
        let t = e1_comm_cost(32, 64);
        assert_eq!(t.len(), 6);
        let md = t.to_markdown();
        assert!(md.contains("fat-tree"));
        assert!(md.contains("round-robin"));
    }

    #[test]
    fn e2_hybrid_contention_free_on_cm5() {
        let t = e2_contention(32, 64);
        let md = t.to_markdown();
        // the hybrid row ends with contention values; just check presence
        assert!(md.contains("hybrid"));
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn e4_finds_relabelling() {
        let (t, narrative) = e4_equivalence(8);
        assert!(narrative.contains("relabelling found"));
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn e6_couplings_decay() {
        let t = e6_quadratic(24, 16, 3);
        assert!(t.len() >= 3);
    }

    #[test]
    fn modified_ring_parity_claim() {
        let s = modified_ring_parity(16);
        assert!(s.contains("IS full reversal"));
        assert!(s.contains("IS identity"));
    }

    #[test]
    fn e3_small_run() {
        let t = e3_convergence(16, 8, &[1, 2]);
        assert_eq!(t.len(), OrderingKind::ALL.len() + 1);
    }
}
