//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * **A1 — hybrid block size** (§5's "properly choose the block size"):
//!   sweep the group count and watch contention and simulated comm time on
//!   each topology;
//! * **A2 — intra-group ordering**: the hybrid with fat-tree-in-groups vs
//!   round-robin-in-groups (the "block ring" variant) — how much the
//!   fat-tree ordering's intra-group locality matters;
//! * **A3 — threshold strategy** (§1, Wilkinson): sweep the rotation
//!   threshold and watch sweeps-to-convergence, total rotations, and final
//!   accuracy;
//! * **A4 — cost-model sensitivity**: sweep the message size and report
//!   where the fat-tree-vs-hybrid crossover on the CM-5 tree sits, showing
//!   the conclusion is not an artifact of one parameter point.

use crate::table::{fnum, Table};
use treesvd_core::{HestenesSvd, Matrix, OrderingKind, SvdOptions, TopologyKind};
use treesvd_matrix::generate;
use treesvd_orderings::{HybridOrdering, IntraGroupOrdering, JacobiOrdering};
use treesvd_sim::{analyze_program, Machine};

/// A1 — block-size sweep for the hybrid ordering.
pub fn a1_block_size(n: usize, words: u64) -> Table {
    let mut t = Table::new(vec![
        "groups",
        "block size",
        "cm5 contention",
        "cm5 comm time",
        "binary contention",
        "binary comm time",
    ]);
    let mut m = 2;
    while n.is_multiple_of(m) && n / m >= 4 {
        let w = n / m;
        if !w.is_power_of_two() {
            m *= 2;
            continue;
        }
        if let Ok(hy) = HybridOrdering::new(n, m) {
            let prog = hy.sweep_program(0, &hy.initial_layout());
            let mut cells = vec![m.to_string(), (w / 2).to_string()];
            for kind in [TopologyKind::Cm5, TopologyKind::BinaryTree] {
                let machine = Machine::with_kind(kind, n / 2);
                let rep = analyze_program(&machine, &prog, words);
                cells.push(fnum(rep.max_contention));
                cells.push(fnum(rep.comm_time));
            }
            t.row(cells);
        }
        m *= 2;
    }
    t
}

/// A2 — intra-group ordering ablation: hybrid vs the round-robin-in-groups
/// "block ring" variant.
pub fn a2_intra_group(n: usize, groups: usize, words: u64) -> Table {
    let mut t = Table::new(vec![
        "variant",
        "fat-tree comm",
        "cm5 comm",
        "levels ascended",
        "sweeps (random 2n x n)",
    ]);
    for intra in [IntraGroupOrdering::FatTree, IntraGroupOrdering::RoundRobin] {
        let ord = HybridOrdering::with_intra(n, groups, intra).expect("valid shape");
        let prog = ord.sweep_program(0, &ord.initial_layout());
        let levels: usize = prog
            .steps
            .iter()
            .flat_map(|s| s.move_after.inter_processor_moves())
            .map(|(f, d)| treesvd_orderings::render::comm_level(f / 2, d / 2))
            .sum();
        let fat =
            analyze_program(&Machine::with_kind(TopologyKind::PerfectFatTree, n / 2), &prog, words);
        let cm5 = analyze_program(&Machine::with_kind(TopologyKind::Cm5, n / 2), &prog, words);

        // convergence with this exact ordering through a custom factory
        let a = generate::random_uniform(2 * n, n, 77);
        let opts = SvdOptions {
            ordering: treesvd_core::OrderingChoice::Custom(Box::new(move |size| {
                Ok(Box::new(HybridOrdering::with_intra(size, groups, intra)?)
                    as Box<dyn JacobiOrdering>)
            })),
            ..SvdOptions::default()
        };
        let run = HestenesSvd::new(opts).compute(&a).expect("convergence");

        t.row(vec![
            ord.name(),
            fnum(fat.comm_time),
            fnum(cm5.comm_time),
            levels.to_string(),
            run.sweeps.to_string(),
        ]);
    }
    t
}

/// A3 — threshold-strategy ablation.
pub fn a3_threshold(m: usize, n: usize, seed: u64) -> Table {
    let mut t =
        Table::new(vec!["threshold", "sweeps", "total rotations", "residual", "orthogonality"]);
    let a = generate::random_uniform(m, n, seed);
    for (label, thr) in [
        ("0 (rotate everything)", Some(0.0)),
        ("n*eps (default)", None),
        ("1e-12", Some(1e-12)),
        ("1e-8", Some(1e-8)),
        ("1e-4", Some(1e-4)),
    ] {
        let opts = SvdOptions { threshold: thr, ..SvdOptions::default() };
        match HestenesSvd::new(opts).compute(&a) {
            Ok(run) => {
                t.row(vec![
                    label.to_string(),
                    run.sweeps.to_string(),
                    run.total_rotations().to_string(),
                    format!("{:.2e}", run.svd.residual(&a)),
                    format!("{:.2e}", run.svd.orthogonality()),
                ]);
            }
            Err(e) => {
                t.row(vec![
                    label.to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    format!("{e}"),
                    "-".to_string(),
                ]);
            }
        }
    }
    t
}

/// A4 — message-size sweep: simulated comm time of fat-tree vs hybrid on
/// the CM-5 tree as columns grow (the contention penalty scales with the
/// payload, the latency penalty does not).
pub fn a4_message_size(n: usize) -> Table {
    let mut t = Table::new(vec!["words/column", "fat-tree cm5", "hybrid cm5", "hybrid wins"]);
    let ft = OrderingKind::FatTree.build(n).expect("power of two");
    let hy = HybridOrdering::new(n, n / 4).expect("groups of 4");
    let machine = Machine::with_kind(TopologyKind::Cm5, n / 2);
    let ft_prog = ft.sweep_program(0, &ft.initial_layout());
    let hy_prog = hy.sweep_program(0, &hy.initial_layout());
    for words in [8u64, 32, 128, 512, 2048] {
        let ft_time = analyze_program(&machine, &ft_prog, words).comm_time;
        let hy_time = analyze_program(&machine, &hy_prog, words).comm_time;
        t.row(vec![
            words.to_string(),
            fnum(ft_time),
            fnum(hy_time),
            if hy_time < ft_time { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

/// The accuracy invariance check behind A3: sloppy thresholds may converge
/// in fewer rotations but must not silently lose accuracy beyond their
/// advertised level.
pub fn a3_accuracy_statement(m: usize, n: usize, seed: u64) -> String {
    let a: Matrix = generate::random_uniform(m, n, seed);
    let tight = HestenesSvd::new(SvdOptions::default()).compute(&a).expect("conv");
    let loose = HestenesSvd::new(SvdOptions { threshold: Some(1e-8), ..SvdOptions::default() })
        .compute(&a)
        .expect("conv");
    let d = treesvd_matrix::checks::spectrum_distance(&loose.svd.sigma, &tight.svd.sigma);
    format!(
        "spectrum distance between threshold 1e-8 and n*eps runs: {d:.2e} \
         (bounded by the loose threshold, as expected)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_has_rows_and_smallest_blocks_fit_cm5() {
        let t = a1_block_size(64, 64);
        assert!(t.len() >= 3);
        let md = t.to_markdown();
        assert!(md.contains("groups"));
    }

    #[test]
    fn a2_compares_two_variants() {
        let t = a2_intra_group(32, 2, 64);
        assert_eq!(t.len(), 2);
        let md = t.to_markdown();
        assert!(md.contains("hybrid"));
        assert!(md.contains("block-ring"));
    }

    #[test]
    fn a3_threshold_rows() {
        let t = a3_threshold(24, 12, 5);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn a4_crossover_reported() {
        let t = a4_message_size(64);
        assert_eq!(t.len(), 5);
        // large messages: hybrid must win on cm5
        assert!(t.to_markdown().lines().last().unwrap().contains("yes"));
    }

    #[test]
    fn a3_accuracy_statement_runs() {
        let s = a3_accuracy_statement(24, 12, 6);
        assert!(s.contains("spectrum distance"));
    }
}
