//! Machine-readable distributed-executor benchmarks: legacy copying
//! transport vs zero-copy pooled messaging, with and without
//! comm/compute overlap.
//!
//! ```text
//! cargo run --release -p treesvd-bench --bin bench_distributed            # full run,
//!                                                                         # writes BENCH_distributed.json
//! cargo run --release -p treesvd-bench --bin bench_distributed -- --smoke # quick gate, no file
//! ```
//!
//! The full run times `distributed_svd_with` end to end (one thread per
//! processor, vectors accumulated) over three orderings and two problem
//! sizes, for three executor configurations: the legacy encode/decode
//! transport (the baseline this PR replaces), the zero-copy transport with
//! overlap off, and the zero-copy transport with send-ahead overlap. It
//! writes median wall-clock seconds plus derived speedups to
//! `BENCH_distributed.json` at the repository root. The smoke run is the
//! regression gate wired into `scripts/verify.sh`: overlap + pool must not
//! lose to the legacy executor, the overlapped schedule must actually
//! engage, and the steady state must make zero payload allocations.

use std::fmt::Write as _;
use std::time::Instant;
use treesvd_matrix::generate;
use treesvd_orderings::OrderingKind;
use treesvd_sim::{distributed_svd_with, DistConfig, DistributedOutcome, ExecConfig, Transport};

/// Timed samples per configuration; the median is reported.
const SAMPLES: usize = 5;

/// The three executor configurations under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Config {
    Legacy,
    ZeroCopy,
    ZeroCopyOverlap,
}

impl Config {
    const ALL: [Config; 3] = [Config::Legacy, Config::ZeroCopy, Config::ZeroCopyOverlap];

    fn label(self) -> &'static str {
        match self {
            Config::Legacy => "legacy",
            Config::ZeroCopy => "zero-copy",
            Config::ZeroCopyOverlap => "zero-copy+overlap",
        }
    }

    fn dist(self) -> DistConfig {
        let (transport, overlap) = match self {
            Config::Legacy => (Transport::Legacy, false),
            Config::ZeroCopy => (Transport::ZeroCopy, false),
            Config::ZeroCopyOverlap => (Transport::ZeroCopy, true),
        };
        DistConfig {
            exec: ExecConfig::default(),
            max_sweeps: 64,
            transport,
            overlap,
            ..DistConfig::default()
        }
    }
}

/// Median wall-clock seconds of a full distributed run, plus the outcome
/// of the final sample for sweep/allocation introspection.
fn time_distributed(
    kind: OrderingKind,
    m: usize,
    n: usize,
    config: Config,
    seed: u64,
) -> (f64, DistributedOutcome) {
    let a = generate::random_uniform(m, n, seed);
    let ord = kind.build(n).expect("ordering");
    let cfg = config.dist();
    let mut samples = [0.0f64; SAMPLES];
    let mut last = None;
    for s in &mut samples {
        let columns = a.clone().into_columns();
        let t = Instant::now();
        let run = distributed_svd_with(ord.as_ref(), columns, true, &cfg).expect("distributed_svd");
        *s = t.elapsed().as_secs_f64();
        last = Some(run);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (samples[SAMPLES / 2], last.unwrap())
}

struct Record {
    ordering: OrderingKind,
    n: usize,
    config: Config,
    seconds: f64,
    sweeps: usize,
    overlap: bool,
    steady_allocs: u64,
}

fn find(records: &[Record], ordering: OrderingKind, n: usize, config: Config) -> f64 {
    records
        .iter()
        .find(|r| r.ordering == ordering && r.n == n && r.config == config)
        .map(|r| r.seconds)
        .unwrap_or(f64::NAN)
}

fn full_run(seed: u64) {
    const M: usize = 4096;
    let orderings = [OrderingKind::NewRing, OrderingKind::FatTree, OrderingKind::Hybrid];
    let sizes = [16usize, 32];
    let mut records = Vec::new();

    for &kind in &orderings {
        for &n in &sizes {
            for config in Config::ALL {
                let (seconds, run) = time_distributed(kind, M, n, config, seed);
                eprintln!(
                    "{} n={n:2} P={:2} {}: {seconds:.4} s over {} sweeps \
                     (overlap {}, steady payload allocs {})",
                    kind.name(),
                    n / 2,
                    config.label(),
                    run.sweeps,
                    run.overlap,
                    run.steady_payload_allocs
                );
                records.push(Record {
                    ordering: kind,
                    n,
                    config,
                    seconds,
                    sweeps: run.sweeps,
                    overlap: run.overlap,
                    steady_allocs: run.steady_payload_allocs,
                });
            }
        }
    }

    // The per-step price of the overlapped schedule, observed as the
    // median (overlap − zero-copy) wall-clock delta per schedule step —
    // the one tuner constant a microprobe cannot reach. Steps per sweep
    // ≈ n rounds for these orderings.
    let mut step_deltas: Vec<f64> = Vec::new();
    for &kind in &orderings {
        for &n in &sizes {
            let zc = find(&records, kind, n, Config::ZeroCopy);
            let ov = find(&records, kind, n, Config::ZeroCopyOverlap);
            let sweeps = records
                .iter()
                .find(|r| r.ordering == kind && r.n == n && r.config == Config::ZeroCopyOverlap)
                .map_or(0, |r| r.sweeps);
            let steps = (sweeps * n) as f64;
            if ov.is_finite() && zc.is_finite() && ov > zc && steps > 0.0 {
                step_deltas.push((ov - zc) * 1e9 / steps);
            }
        }
    }
    step_deltas.sort_by(f64::total_cmp);
    let overlap_step_ns = step_deltas.get(step_deltas.len() / 2).copied();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p treesvd-bench --bin bench_distributed\",\n",
    );
    let _ = writeln!(
        json,
        "  \"meta\": {},",
        treesvd_bench::meta::meta_json_calibrated(seed, overlap_step_ns)
    );
    let _ = writeln!(json, "  \"matrix_rows\": {M},");
    json.push_str(
        "  \"unit\": \"seconds (median wall-clock, full distributed_svd, vectors on)\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"ordering\": \"{}\", \"n\": {}, \"processors\": {}, \
             \"config\": \"{}\", \"seconds\": {:.6}, \"sweeps\": {}, \
             \"overlap\": {}, \"steady_payload_allocs\": {}}}{comma}",
            r.ordering.name(),
            r.n,
            r.n / 2,
            r.config.label(),
            r.seconds,
            r.sweeps,
            r.overlap,
            r.steady_allocs
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"overlap_speedup_over_legacy\": {\n");
    for (i, &kind) in orderings.iter().enumerate() {
        let mut entries = String::new();
        for (j, &n) in sizes.iter().enumerate() {
            let sep = if j + 1 < sizes.len() { ", " } else { "" };
            let s = find(&records, kind, n, Config::Legacy)
                / find(&records, kind, n, Config::ZeroCopyOverlap);
            let _ = write!(entries, "\"{n}\": {s:.2}{sep}");
        }
        let comma = if i + 1 < orderings.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{}\": {{{entries}}}{comma}", kind.name());
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_distributed.json");
    std::fs::write(out, &json).expect("write BENCH_distributed.json");
    println!("{json}");
    eprintln!("wrote {out}");
}

/// Quick gate: zero-copy + overlap must not lose to the legacy executor,
/// the overlapped schedule must actually engage, and the steady state must
/// make zero payload allocations.
fn smoke_run(seed: u64) -> bool {
    const M: usize = 4096;
    const N: usize = 16;
    let kind = OrderingKind::NewRing;

    let (legacy, _) = time_distributed(kind, M, N, Config::Legacy, seed);
    let (overlapped, run) = time_distributed(kind, M, N, Config::ZeroCopyOverlap, seed);

    // generous 10% slack: the gate guards against regressions, not noise
    let fast_enough = overlapped <= legacy * 1.10;
    let engaged = run.overlap;
    let zero_alloc = run.steady_payload_allocs == 0;
    println!(
        "smoke {M}x{N} {}: overlap {:.1} ms vs legacy {:.1} ms ({:.2}x), \
         overlap engaged {engaged}, steady payload allocations {} — {}",
        kind.name(),
        overlapped * 1e3,
        legacy * 1e3,
        legacy / overlapped,
        run.steady_payload_allocs,
        if fast_enough && engaged && zero_alloc { "PASS" } else { "FAIL" }
    );
    fast_enough && engaged && zero_alloc
}

fn main() {
    let seed = treesvd_bench::meta::seed_from_args();
    if std::env::args().any(|a| a == "--smoke") {
        if !smoke_run(seed) {
            std::process::exit(1);
        }
    } else {
        full_run(seed);
    }
}
