//! Machine-readable tall-skinny benchmarks: QR front-end vs direct Jacobi.
//!
//! ```text
//! cargo run --release -p treesvd-bench --bin bench_tall            # full run,
//!                                                                  # writes BENCH_tall.json
//! cargo run --release -p treesvd-bench --bin bench_tall -- --smoke # quick gate, no file
//! ```
//!
//! The full run times `blocked_svd` (Gram kernel, `P = 4`, vectors on) on
//! extreme-aspect matrices twice per shape: directly, and with the
//! tall-skinny QR front-end engaged (`A = QR`, Jacobi sweeps on the `n×n`
//! factor `R`, `U ← Q·U_R`). Direct Jacobi pays `O(m·n²)` per sweep on the
//! full column height; the front-end pays the `O(m·n²)` factorization once
//! and then sweeps on `n`-row columns, so the gap widens with `m/n` and
//! with the sweep count. Median wall-clock seconds and the derived
//! speedups go to `BENCH_tall.json` at the repository root.
//!
//! The smoke run is the regression gate wired into `scripts/verify.sh`:
//! at `m/n = 128` the front-end must beat direct Jacobi outright, the
//! whole pipeline (TSQR + sweeps + back-transform) must be
//! allocation-free after warm-up, and both paths must agree on the
//! spectrum.

use std::fmt::Write as _;
use std::time::Instant;
use treesvd_core::{blocked_svd, BlockKernel, BlockedOptions, BlockedRun, SvdOptions};
use treesvd_matrix::{generate, Matrix};

/// Processors for the blocked driver (`2P` block slots, `n = 8c`).
const PROCESSORS: usize = 4;

fn opts_for(frontend: bool) -> BlockedOptions {
    let mut svd = SvdOptions::default().with_block_kernel(BlockKernel::Gram).with_vectors(true);
    if frontend {
        svd = svd.with_qr_frontend(true);
    }
    BlockedOptions { processors: PROCESSORS, svd }
}

/// Median wall-clock seconds over `samples` runs, plus the final run for
/// sweep/allocation/engagement introspection.
fn time_blocked(a: &Matrix, opts: &BlockedOptions, samples: usize) -> (f64, BlockedRun) {
    let mut times = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let t = Instant::now();
        let run = blocked_svd(a, opts).expect("blocked_svd");
        times.push(t.elapsed().as_secs_f64());
        last = Some(run);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], last.unwrap())
}

/// Largest relative disagreement between two sigma vectors.
fn sigma_gap(a: &[f64], b: &[f64]) -> f64 {
    let scale = a.first().copied().unwrap_or(1.0).max(1e-300);
    a.iter().zip(b).map(|(x, y)| (x - y).abs() / scale).fold(0.0, f64::max)
}

struct Record {
    m: usize,
    n: usize,
    direct_s: f64,
    frontend_s: f64,
    direct_sweeps: usize,
    frontend_sweeps: usize,
    sigma_gap: f64,
}

fn run_shape(m: usize, n: usize, samples: usize, seed: u64) -> Record {
    let a = generate::random_uniform(m, n, seed);
    let (direct_s, direct) = time_blocked(&a, &opts_for(false), samples);
    let (frontend_s, fe) = time_blocked(&a, &opts_for(true), samples);
    assert!(!direct.qr_frontend, "direct path must not engage the front-end");
    assert!(fe.qr_frontend, "front-end must engage at m/n = {}", m / n);
    assert_eq!(fe.steady_alloc_events, 0, "front-end pipeline allocated in steady state");
    Record {
        m,
        n,
        direct_s,
        frontend_s,
        direct_sweeps: direct.sweeps,
        frontend_sweeps: fe.sweeps,
        sigma_gap: sigma_gap(&direct.svd.sigma, &fe.svd.sigma),
    }
}

fn full_run(seed: u64) {
    // (rows, cols, timed samples): one sample at the largest shape, where a
    // single direct run is already minutes of wall-clock.
    let shapes = [(16384usize, 128usize, 3usize), (65536, 256, 1), (262144, 256, 1)];
    let mut records = Vec::new();

    for &(m, n, samples) in &shapes {
        let r = run_shape(m, n, samples, seed);
        eprintln!(
            "{m:6}x{n}: direct {:.3} s ({} sweeps) vs qr front-end {:.3} s ({} sweeps) \
             = {:.2}x, sigma gap {:.1e}",
            r.direct_s,
            r.direct_sweeps,
            r.frontend_s,
            r.frontend_sweeps,
            r.direct_s / r.frontend_s,
            r.sigma_gap
        );
        records.push(r);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p treesvd-bench --bin bench_tall\",\n",
    );
    let _ = writeln!(json, "  \"meta\": {},", treesvd_bench::meta::meta_json(seed));
    let _ = writeln!(json, "  \"processors\": {PROCESSORS},");
    json.push_str("  \"unit\": \"seconds (median wall-clock, full blocked_svd, vectors on)\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"m\": {}, \"n\": {}, \"aspect\": {}, \"direct_seconds\": {:.6}, \
             \"frontend_seconds\": {:.6}, \"direct_sweeps\": {}, \"frontend_sweeps\": {}, \
             \"sigma_gap\": {:.3e}}}{comma}",
            r.m,
            r.n,
            r.m / r.n,
            r.direct_s,
            r.frontend_s,
            r.direct_sweeps,
            r.frontend_sweeps,
            r.sigma_gap
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"frontend_speedup_over_direct\": {\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{}x{}\": {:.2}{comma}", r.m, r.n, r.direct_s / r.frontend_s);
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tall.json");
    std::fs::write(out, &json).expect("write BENCH_tall.json");
    println!("{json}");
    eprintln!("wrote {out}");

    let headline = records.last().map(|r| r.direct_s / r.frontend_s).unwrap_or(f64::NAN);
    eprintln!("front-end speedup at 262144x256: {headline:.2}x");
}

/// Quick gate at `m/n = 128`: the QR front-end must beat direct Jacobi
/// outright, stay allocation-free in steady state, and agree with the
/// direct spectrum to near machine precision.
fn smoke_run(seed: u64) -> bool {
    const M: usize = 8192;
    const N: usize = 64; // c = 8 at P = 4
    let r = run_shape(M, N, 1, seed);

    let fast_enough = r.frontend_s < r.direct_s;
    let accurate = r.sigma_gap < 1e-10;
    println!(
        "smoke {M}x{N} (m/n = {}): qr front-end {:.1} ms vs direct {:.1} ms ({:.2}x), \
         sigma gap {:.1e} — {}",
        M / N,
        r.frontend_s * 1e3,
        r.direct_s * 1e3,
        r.direct_s / r.frontend_s,
        r.sigma_gap,
        if fast_enough && accurate { "PASS" } else { "FAIL" }
    );
    fast_enough && accurate
}

fn main() {
    let seed = treesvd_bench::meta::seed_from_args();
    if std::env::args().any(|a| a == "--smoke") {
        if !smoke_run(seed) {
            std::process::exit(1);
        }
    } else {
        full_run(seed);
    }
}
