//! Machine-readable kernel benchmarks: naive vs unrolled vs fused.
//!
//! ```text
//! cargo run --release -p treesvd-bench --bin bench_kernels            # full run,
//!                                                                     # writes BENCH_kernels.json
//! cargo run --release -p treesvd-bench --bin bench_kernels -- --smoke # quick gate, no file:
//!                                                                     # fused must beat unfused
//! ```
//!
//! The full run times every hot-path kernel at several column lengths
//! (median ns/iter over repeated samples) and writes the results — plus
//! the derived unrolled-over-naive and fused-over-unfused speedups and a
//! `meta` provenance block (SIMD tier, lane width, thread budget, seed;
//! `--seed N` overrides the default 42) — to
//! `BENCH_kernels.json` at the repository root. The smoke run is the
//! cheap regression gate used by `scripts/verify.sh`: on 64 column pairs
//! of length 512 the fused rotate-and-measure kernel must not be slower
//! than the unfused rotate-then-renormalize sequence it replaced.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use treesvd_matrix::ops::{self, axpy, dot, gram3, norm2_sq, rotate_fused, rotate_fused_swapped};
use treesvd_matrix::rotation::compute_rotation;

/// Target wall-clock time for one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(4);
/// Timed samples per kernel; the median is reported.
const SAMPLES: usize = 9;

/// Median ns/iter of `routine`, batched so each sample runs a few ms.
fn time_ns<F: FnMut() -> f64>(mut routine: F) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(routine());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let batch = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 4_000_000) as usize;
    for _ in 0..batch.min(1000) {
        std::hint::black_box(routine());
    }
    let mut samples = [0.0f64; SAMPLES];
    for s in &mut samples {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        *s = t.elapsed().as_secs_f64() * 1e9 / batch as f64;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[SAMPLES / 2]
}

fn columns(m: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = treesvd_matrix::rng::Rng::seed_from_u64(seed);
    let a: Vec<f64> = (0..m).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let b: Vec<f64> = (0..m).map(|_| rng.uniform(-1.0, 1.0)).collect();
    (a, b)
}

struct Record {
    kernel: &'static str,
    len: usize,
    ns_per_iter: f64,
}

/// Benchmark every kernel tier at `len`, appending to `records`.
fn bench_len(len: usize, seed: u64, records: &mut Vec<Record>) {
    let (a, b) = columns(len, seed);
    let (alpha, beta, gamma) = gram3(&a, &b);
    let rot = compute_rotation(alpha, beta, gamma, 0.0);
    let mut push = |kernel, ns| records.push(Record { kernel, len, ns_per_iter: ns });

    push("dot_naive", time_ns(|| ops::naive::dot(&a, &b)));
    push("dot_unrolled", time_ns(|| dot(&a, &b)));
    push("norm2_sq_naive", time_ns(|| ops::naive::norm2_sq(&a)));
    push("norm2_sq_unrolled", time_ns(|| norm2_sq(&a)));
    push("gram3_naive", time_ns(|| ops::naive::gram3(&a, &b).2));
    push("gram3_unrolled", time_ns(|| gram3(&a, &b).2));
    {
        let mut y = b.clone();
        push(
            "axpy_naive",
            time_ns(|| {
                ops::naive::axpy(1.0 + 1e-12, &a, &mut y);
                y[0]
            }),
        );
    }
    {
        let mut y = b.clone();
        push(
            "axpy_unrolled",
            time_ns(|| {
                axpy(1.0 + 1e-12, &a, &mut y);
                y[0]
            }),
        );
    }
    {
        let (mut x, mut y) = (a.clone(), b.clone());
        push(
            "rotate_then_norms",
            time_ns(|| ops::naive::rotate_then_norms(rot.c, rot.s, &mut x, &mut y).0),
        );
    }
    {
        let (mut x, mut y) = (a.clone(), b.clone());
        push("rotate_fused", time_ns(|| rotate_fused(rot.c, rot.s, &mut x, &mut y).0));
    }
    {
        let (mut x, mut y) = (a.clone(), b.clone());
        push(
            "rotate_fused_swapped",
            time_ns(|| rotate_fused_swapped(rot.c, rot.s, &mut x, &mut y).0),
        );
    }
}

fn find(records: &[Record], kernel: &str, len: usize) -> f64 {
    records
        .iter()
        .find(|r| r.kernel == kernel && r.len == len)
        .map(|r| r.ns_per_iter)
        .unwrap_or(f64::NAN)
}

fn full_run(seed: u64) {
    let lens = [64usize, 256, 1024, 4096];
    let mut records = Vec::new();
    for &len in &lens {
        eprintln!("benchmarking len {len} ...");
        bench_len(len, seed, &mut records);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p treesvd-bench --bin bench_kernels\",\n",
    );
    let _ = writeln!(json, "  \"meta\": {},", treesvd_bench::meta::meta_json(seed));
    json.push_str("  \"unit\": \"ns_per_iter (median)\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"len\": {}, \"ns_per_iter\": {:.2}}}{comma}",
            r.kernel, r.len, r.ns_per_iter
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedups\": {\n");
    let pairs: [(&str, &str, &str); 5] = [
        ("dot_unrolled_vs_naive", "dot_naive", "dot_unrolled"),
        ("norm2_sq_unrolled_vs_naive", "norm2_sq_naive", "norm2_sq_unrolled"),
        ("gram3_unrolled_vs_naive", "gram3_naive", "gram3_unrolled"),
        ("axpy_unrolled_vs_naive", "axpy_naive", "axpy_unrolled"),
        ("rotate_fused_vs_then_norms", "rotate_then_norms", "rotate_fused"),
    ];
    for (i, (label, base, opt)) in pairs.iter().enumerate() {
        let comma = if i + 1 < pairs.len() { "," } else { "" };
        let mut entries = String::new();
        for (j, &len) in lens.iter().enumerate() {
            let c = if j + 1 < lens.len() { ", " } else { "" };
            let s = find(&records, base, len) / find(&records, opt, len);
            let _ = write!(entries, "\"{len}\": {s:.2}{c}");
        }
        let _ = writeln!(json, "    \"{label}\": {{{entries}}}{comma}");
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(out, &json).expect("write BENCH_kernels.json");
    println!("{json}");
    eprintln!("wrote {out}");

    let g = find(&records, "gram3_naive", 1024) / find(&records, "gram3_unrolled", 1024);
    eprintln!("gram3 unrolled speedup at 1024: {g:.2}x");
}

/// Quick gate: fused rotate-and-measure must not lose to the unfused
/// rotate + two-norm sequence on 64 pairs of length-512 columns.
fn smoke_run(seed: u64) -> bool {
    const M: usize = 512;
    const PAIRS: usize = 64;
    let cols: Vec<(Vec<f64>, Vec<f64>)> =
        (0..PAIRS).map(|p| columns(M, seed.wrapping_add(p as u64))).collect();
    let (alpha, beta, gamma) = gram3(&cols[0].0, &cols[0].1);
    let rot = compute_rotation(alpha, beta, gamma, 0.0);

    let mut work = cols.clone();
    let unfused = time_ns(|| {
        let mut acc = 0.0;
        for (x, y) in &mut work {
            acc += ops::naive::rotate_then_norms(rot.c, rot.s, x, y).0;
        }
        acc
    });
    let mut work = cols;
    let fused = time_ns(|| {
        let mut acc = 0.0;
        for (x, y) in &mut work {
            acc += rotate_fused(rot.c, rot.s, x, y).0;
        }
        acc
    });

    // generous 10% slack: the gate guards against regressions, not noise
    let ok = fused <= unfused * 1.10;
    println!(
        "smoke {M}x{PAIRS}: fused {fused:.0} ns vs unfused {unfused:.0} ns ({:.2}x) — {}",
        unfused / fused,
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

fn main() {
    let seed = treesvd_bench::meta::seed_from_args();
    if std::env::args().any(|a| a == "--smoke") {
        if !smoke_run(seed) {
            std::process::exit(1);
        }
    } else {
        full_run(seed);
    }
}
