//! Seeded chaos soak for the distributed executor's recovery layer.
//!
//! ```text
//! cargo run --release -p treesvd-bench --bin chaos_soak
//! ```
//!
//! The gate wired into `scripts/verify.sh`. For a fixed list of chaos
//! seeds it runs the distributed SVD under the canonical seeded fault
//! plan ([`FaultPlan::chaos`]) with the chaos recovery policy and checks,
//! per seed, that
//!
//! 1. the run converges,
//! 2. the surviving columns are **bitwise identical** to the fault-free
//!    oracle (recovery must be numerically invisible, not just accurate),
//! 3. faults were actually injected (the plan is not vacuous).
//!
//! A final run arms an *inert* plan (all probabilities zero) and checks
//! the interposition itself stays out of the steady-state payload-pool
//! accounting: `steady_payload_allocs` must remain 0 and no fault may
//! fire. Everything is deterministic and bounded: small problem, fixed
//! seeds, millisecond receive windows.

use std::time::Instant;
use treesvd_matrix::generate;
use treesvd_orderings::OrderingKind;
use treesvd_sim::{distributed_svd_with, DistConfig, DistributedOutcome, FaultPlan, FaultPolicy};

/// Chaos seeds exercised by the soak; each drives an independent plan.
const SEEDS: [u64; 6] = [2, 3, 5, 8, 13, 21];
/// Problem shape: small enough to stay fast, large enough that every
/// sweep moves real traffic over all P = 8 ranks.
const M: usize = 96;
const N: usize = 16;

fn run_with(a_seed: u64, cfg: &DistConfig) -> DistributedOutcome {
    let a = generate::random_uniform(M, N, a_seed);
    let ord = OrderingKind::NewRing.build(N).expect("ordering");
    distributed_svd_with(ord.as_ref(), a.into_columns(), true, cfg).expect("distributed_svd")
}

/// Bitwise comparison of the surviving slot contents, in layout order.
fn bitwise_equal(x: &DistributedOutcome, y: &DistributedOutcome) -> bool {
    x.layout == y.layout
        && x.slots.len() == y.slots.len()
        && x.slots.iter().zip(&y.slots).all(|(s, t)| {
            s.a.iter().zip(&t.a).all(|(p, q)| p.to_bits() == q.to_bits())
                && s.v.iter().zip(&t.v).all(|(p, q)| p.to_bits() == q.to_bits())
                && s.a.len() == t.a.len()
                && s.v.len() == t.v.len()
        })
}

fn main() {
    let matrix_seed = treesvd_bench::meta::seed_from_args();
    let start = Instant::now();
    let mut failures = 0usize;

    let oracle = run_with(matrix_seed, &DistConfig::default());
    assert!(oracle.converged, "fault-free oracle must converge");

    let mut policy = FaultPolicy::chaos();
    policy.recv_timeout = std::time::Duration::from_millis(10);
    for seed in SEEDS {
        let cfg =
            DistConfig { policy, fault: Some(FaultPlan::chaos(seed)), ..DistConfig::default() };
        let run = run_with(matrix_seed, &cfg);
        let h = &run.health;
        let bitwise = bitwise_equal(&oracle, &run);
        let injected = h.faults.injected() > 0;
        let ok = run.converged && bitwise && injected;
        println!(
            "chaos seed {seed:2}: {} faults ({} drops, {} dups, {} corruptions, {} stalls), \
             {} redeliveries, {} retries, {} restarts, fallbacks [{}] — {}",
            h.faults.injected(),
            h.faults.drops,
            h.faults.duplicates,
            h.faults.corruptions,
            h.faults.stalls,
            h.faults.redeliveries,
            h.retries,
            h.restarts,
            h.fallbacks.join(" → "),
            if ok { "PASS" } else { "FAIL" }
        );
        if !ok {
            if !run.converged {
                eprintln!("  seed {seed}: did not converge");
            }
            if !bitwise {
                eprintln!("  seed {seed}: recovered result is not bitwise-identical to the oracle");
            }
            if !injected {
                eprintln!("  seed {seed}: plan injected no faults — the soak is vacuous");
            }
            failures += 1;
        }
    }

    // armed-but-inert plan: interposition must be invisible to the pools
    let inert = DistConfig {
        policy,
        fault: Some(FaultPlan { seed: 99, ..FaultPlan::default() }),
        ..DistConfig::default()
    };
    let run = run_with(matrix_seed, &inert);
    let inert_ok = run.converged
        && bitwise_equal(&oracle, &run)
        && run.health.faults.injected() == 0
        && run.steady_payload_allocs == 0;
    println!(
        "inert plan: {} faults, steady payload allocs {} — {}",
        run.health.faults.injected(),
        run.steady_payload_allocs,
        if inert_ok { "PASS" } else { "FAIL" }
    );
    if !inert_ok {
        failures += 1;
    }

    println!(
        "chaos soak: {} seeds + inert in {:.2} s — {}",
        SEEDS.len(),
        start.elapsed().as_secs_f64(),
        if failures == 0 { "PASS" } else { "FAIL" }
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
