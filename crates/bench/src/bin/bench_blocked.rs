//! Machine-readable blocked-meeting benchmarks: pairwise oracle vs Gram kernel.
//!
//! ```text
//! cargo run --release -p treesvd-bench --bin bench_blocked            # full run,
//!                                                                     # writes BENCH_blocked.json
//! cargo run --release -p treesvd-bench --bin bench_blocked -- --smoke # quick gate, no file
//! ```
//!
//! The full run times `blocked_svd` end to end on an `m × n` matrix at
//! several block widths `c` (with `n = 8c`, i.e. `P = 4` processors and
//! eight block slots), for both meeting kernels, with and without singular
//! vectors, and writes median wall-clock seconds plus the derived
//! Gram-over-pairwise speedups to `BENCH_blocked.json` at the repository
//! root. The smoke run is the regression gate wired into
//! `scripts/verify.sh`: at `c = 16` the Gram kernel must not lose to the
//! pairwise oracle, and the Gram run must be allocation-free after the
//! first sweep warms its scratch buffers.

use std::fmt::Write as _;
use std::time::Instant;
use treesvd_core::{blocked_svd, BlockKernel, BlockedOptions, BlockedRun, SvdOptions};
use treesvd_matrix::{generate, Matrix};

/// Timed samples per configuration; the median is reported.
const SAMPLES: usize = 5;

fn opts_for(kernel: BlockKernel, vectors: bool, processors: usize) -> BlockedOptions {
    BlockedOptions {
        processors,
        svd: SvdOptions::default().with_block_kernel(kernel).with_vectors(vectors),
    }
}

/// Median wall-clock seconds of a full `blocked_svd` run, plus the run
/// itself (from the final sample) for sweep/allocation introspection.
fn time_blocked(a: &Matrix, opts: &BlockedOptions) -> (f64, BlockedRun) {
    let mut samples = [0.0f64; SAMPLES];
    let mut last = None;
    for s in &mut samples {
        let t = Instant::now();
        let run = blocked_svd(a, opts).expect("blocked_svd");
        *s = t.elapsed().as_secs_f64();
        last = Some(run);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (samples[SAMPLES / 2], last.unwrap())
}

struct Record {
    kernel: BlockKernel,
    vectors: bool,
    c: usize,
    seconds: f64,
    sweeps: usize,
}

fn find(records: &[Record], kernel: BlockKernel, vectors: bool, c: usize) -> f64 {
    records
        .iter()
        .find(|r| r.kernel == kernel && r.vectors == vectors && r.c == c)
        .map(|r| r.seconds)
        .unwrap_or(f64::NAN)
}

fn full_run(seed: u64) {
    const M: usize = 1024;
    const PROCESSORS: usize = 4; // 8 block slots, n = 8c
    let block_widths = [4usize, 8, 16, 32];
    let mut records = Vec::new();

    for &c in &block_widths {
        let n = 2 * PROCESSORS * c;
        let a = generate::random_uniform(M, n, seed);
        for vectors in [true, false] {
            for kernel in [BlockKernel::Pairwise, BlockKernel::Gram] {
                let (seconds, run) = time_blocked(&a, &opts_for(kernel, vectors, PROCESSORS));
                eprintln!(
                    "c={c:2} n={n:3} kernel={kernel} vectors={vectors}: \
                     {seconds:.4} s over {} sweeps",
                    run.sweeps
                );
                records.push(Record { kernel, vectors, c, seconds, sweeps: run.sweeps });
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p treesvd-bench --bin bench_blocked\",\n",
    );
    let _ = writeln!(json, "  \"meta\": {},", treesvd_bench::meta::meta_json(seed));
    let _ = writeln!(json, "  \"matrix_rows\": {M},");
    let _ = writeln!(json, "  \"processors\": {PROCESSORS},");
    json.push_str("  \"unit\": \"seconds (median wall-clock, full blocked_svd)\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"vectors\": {}, \"c\": {}, \
             \"seconds\": {:.6}, \"sweeps\": {}}}{comma}",
            r.kernel, r.vectors, r.c, r.seconds, r.sweeps
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"gram_speedup_over_pairwise\": {\n");
    for (i, &vectors) in [true, false].iter().enumerate() {
        let label = if vectors { "with_vectors" } else { "no_vectors" };
        let mut entries = String::new();
        for (j, &c) in block_widths.iter().enumerate() {
            let sep = if j + 1 < block_widths.len() { ", " } else { "" };
            let s = find(&records, BlockKernel::Pairwise, vectors, c)
                / find(&records, BlockKernel::Gram, vectors, c);
            let _ = write!(entries, "\"{c}\": {s:.2}{sep}");
        }
        let comma = if i == 0 { "," } else { "" };
        let _ = writeln!(json, "    \"{label}\": {{{entries}}}{comma}");
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_blocked.json");
    std::fs::write(out, &json).expect("write BENCH_blocked.json");
    println!("{json}");
    eprintln!("wrote {out}");

    let headline = find(&records, BlockKernel::Pairwise, true, 32)
        / find(&records, BlockKernel::Gram, true, 32);
    eprintln!("gram speedup at c=32 (with vectors): {headline:.2}x");
}

/// Quick gate: at block width 16 the Gram kernel must not lose to the
/// pairwise oracle, and its scratch buffers must stop growing after the
/// warm-up sweep.
fn smoke_run(seed: u64) -> bool {
    const M: usize = 512;
    const C: usize = 16;
    const PROCESSORS: usize = 4;
    let n = 2 * PROCESSORS * C;
    let a = generate::random_uniform(M, n, seed);

    let (pairwise, _) = time_blocked(&a, &opts_for(BlockKernel::Pairwise, true, PROCESSORS));
    let (gram, run) = time_blocked(&a, &opts_for(BlockKernel::Gram, true, PROCESSORS));

    // generous 10% slack: the gate guards against regressions, not noise
    let fast_enough = gram <= pairwise * 1.10;
    let zero_alloc = run.steady_alloc_events == 0;
    println!(
        "smoke {M}x{n} c={C}: gram {:.1} ms vs pairwise {:.1} ms ({:.2}x), \
         steady allocations {} — {}",
        gram * 1e3,
        pairwise * 1e3,
        pairwise / gram,
        run.steady_alloc_events,
        if fast_enough && zero_alloc { "PASS" } else { "FAIL" }
    );
    fast_enough && zero_alloc
}

fn main() {
    let seed = treesvd_bench::meta::seed_from_args();
    if std::env::args().any(|a| a == "--smoke") {
        if !smoke_run(seed) {
            std::process::exit(1);
        }
    } else {
        full_run(seed);
    }
}
