//! Machine-readable auto-tuner benchmarks: `SvdOptions::auto()` against
//! fixed hand-picked configs and against the untuned defaults.
//!
//! ```text
//! cargo run --release -p treesvd-bench --bin bench_auto            # full run,
//!                                                                  # writes BENCH_auto.json
//! cargo run --release -p treesvd-bench --bin bench_auto -- --smoke # quick gate, no file
//! ```
//!
//! The full run walks a (shape × P) grid of nine points in three
//! families and, at every point, times the auto-tuned path against that
//! point's fixed candidate set and against the untuned default:
//!
//! - **blocked** points: fixed = the blocked driver with the Gram and the
//!   pairwise meeting kernels; default = the simulated driver with stock
//!   options (what an untuned caller gets).
//! - **tall** points: fixed = the direct path and the QR front-end at
//!   crossover 4; default = the direct path (the front-end is opt-in
//!   without the tuner).
//! - **distributed-pinned** points: the driver is pinned to the
//!   distributed executor and only the overlap decision is tuned
//!   (`overlap` left unset, so the executor consults the cost model);
//!   fixed = overlap pinned on / pinned off; default = overlap on (the
//!   pre-tuner default that lost to zero-copy at small P).
//!
//! Gates, asserted by the full run and the `--smoke` subset alike:
//! auto within 5% of the best fixed config at every point; auto strictly
//! faster than the untuned default on ≥ 2 points, among them a small-P
//! distributed point where the tuner correctly disables overlap; and the
//! warm tuning path (second `plan_for` on a cached key) makes zero heap
//! allocations and re-runs no calibration probe.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use treesvd_core::{
    auto_svd_for, blocked_svd, BlockKernel, BlockedOptions, HestenesSvd, OrderingKind, SvdOptions,
    TuneProblem,
};
use treesvd_matrix::{generate, Matrix};

/// Heap-allocation counter wrapped around the system allocator, so the
/// smoke gate can prove the warm tuning path touches the heap zero times.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method defers verbatim to `System` after bumping an
// atomic counter — the counter has no effect on the allocator contract,
// so `System`'s own guarantees (validity of returned pointers, layout
// handling) carry over unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: defers verbatim to `System` after bumping an atomic counter
    // (no effect on the allocator contract), so the caller's obligations
    // and `System`'s guarantees pass through unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; passed
        // through to `System` unchanged.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: as `alloc` — counter bump, then `System` verbatim.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: as `alloc` — same layout, same contract, `System` does
        // the zeroing.
        unsafe { System.alloc_zeroed(layout) }
    }
    // SAFETY: as `alloc` — counter bump, then `System` verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` come from a prior allocation through
        // this same wrapper, i.e. from `System`, which `realloc` requires.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    // SAFETY: uncounted pass-through — frees are not allocation events.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` via this wrapper with
        // the same `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Which comparison family a grid point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Blocked,
    Tall,
    DistributedPinned,
}

impl Family {
    fn label(self) -> &'static str {
        match self {
            Family::Blocked => "blocked",
            Family::Tall => "tall",
            Family::DistributedPinned => "distributed-pinned",
        }
    }
}

struct Point {
    family: Family,
    m: usize,
    n: usize,
    processors: usize,
}

struct PointResult {
    family: Family,
    m: usize,
    n: usize,
    processors: usize,
    auto_seconds: f64,
    auto_driver: &'static str,
    auto_kernel: &'static str,
    auto_overlap: bool,
    fixed: Vec<(&'static str, f64)>,
    default_seconds: f64,
    best_fixed: &'static str,
    best_fixed_seconds: f64,
    within_5pct: bool,
    beats_default: bool,
}

/// A named, repeatable solver configuration to be timed.
type Config<'a> = (&'static str, Box<dyn FnMut() + 'a>);

/// Median wall-clock seconds per configuration, with the samples
/// interleaved round-robin across the configs (and one warm-up pass
/// first): sequential per-config blocks let scheduler/thermal drift pull
/// two *identical* code paths several percent apart, which a 5% gate
/// cannot tolerate.
fn time_round_robin(configs: &mut [Config<'_>], samples: usize) -> Vec<f64> {
    for (_, f) in configs.iter_mut() {
        f();
    }
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); configs.len()];
    for _ in 0..samples {
        for (i, (_, f)) in configs.iter_mut().enumerate() {
            let t = Instant::now();
            f();
            times[i].push(t.elapsed().as_secs_f64());
        }
    }
    times
        .into_iter()
        .map(|mut t| {
            t.sort_by(f64::total_cmp);
            t[samples / 2]
        })
        .collect()
}

fn run_blocked(a: &Matrix, p: usize, kernel: BlockKernel) {
    let opts =
        BlockedOptions { processors: p, svd: SvdOptions::default().with_block_kernel(kernel) };
    let run = blocked_svd(a, &opts).expect("blocked_svd");
    std::hint::black_box(run.sweeps);
}

fn run_default(a: &Matrix) {
    let run = HestenesSvd::new(SvdOptions::default()).compute(a).expect("compute");
    std::hint::black_box(run.sweeps);
}

fn run_frontend(a: &Matrix) {
    let opts = SvdOptions::default().with_qr_frontend(true).with_qr_crossover(4.0);
    let run = HestenesSvd::new(opts).compute(a).expect("compute");
    std::hint::black_box(run.sweeps);
}

fn run_distributed(a: &Matrix, overlap: Option<bool>) {
    let mut opts = SvdOptions::default().with_ordering(OrderingKind::NewRing);
    if let Some(ov) = overlap {
        opts = opts.with_overlap(ov);
    }
    let run = HestenesSvd::new(opts).compute_distributed(a).expect("compute_distributed");
    std::hint::black_box(run.sweeps);
}

fn run_auto(a: &Matrix, problem: &TuneProblem) {
    let run = auto_svd_for(a, problem).expect("auto_svd_for");
    std::hint::black_box(run.sweeps);
}

/// Time every configuration at one grid point and judge the gates.
fn measure_point(pt: &Point, samples: usize, seed: u64) -> PointResult {
    let a = generate::random_uniform(pt.m, pt.n, seed);
    let problem = TuneProblem::new(pt.m, pt.n).with_processors(pt.processors);
    // warm the decision cache so the timed auto runs exercise the steady
    // state (first call pays the one-shot probes + model)
    let plan = treesvd_tune::plan_for(&problem);

    let kernel_name = match plan.kernel {
        treesvd_core::KernelSel::Gram => "gram",
        treesvd_core::KernelSel::Pairwise => "pairwise",
    };
    // config 0 is always the auto path; the last index named here is the
    // untuned default (it may alias a fixed config, timed once)
    let (auto_seconds, auto_driver, auto_kernel, auto_overlap, fixed, default_seconds) = match pt
        .family
    {
        Family::Blocked => {
            let mut configs: Vec<Config<'_>> = vec![
                ("auto", Box::new(|| run_auto(&a, &problem))),
                ("blocked-gram", Box::new(|| run_blocked(&a, pt.processors, BlockKernel::Gram))),
                (
                    "blocked-pairwise",
                    Box::new(|| run_blocked(&a, pt.processors, BlockKernel::Pairwise)),
                ),
                ("default", Box::new(|| run_default(&a))),
            ];
            let t = time_round_robin(&mut configs, samples);
            (
                t[0],
                plan.driver.name(),
                kernel_name,
                plan.overlap,
                vec![("blocked-gram", t[1]), ("blocked-pairwise", t[2])],
                t[3],
            )
        }
        Family::Tall => {
            let mut configs: Vec<Config<'_>> = vec![
                ("auto", Box::new(|| run_auto(&a, &problem))),
                ("direct", Box::new(|| run_default(&a))),
                ("qr-frontend", Box::new(|| run_frontend(&a))),
            ];
            let t = time_round_robin(&mut configs, samples);
            // the direct path IS the untuned default (front-end is
            // opt-in without the tuner)
            (
                t[0],
                plan.driver.name(),
                kernel_name,
                plan.overlap,
                vec![("direct", t[1]), ("qr-frontend", t[2])],
                t[1],
            )
        }
        Family::DistributedPinned => {
            // driver pinned; only the overlap policy is under test —
            // `overlap: None` is what the tuner-advised path runs,
            // and overlap-on is the pre-tuner default
            let mut configs: Vec<Config<'_>> = vec![
                ("auto", Box::new(|| run_distributed(&a, None))),
                ("overlap-on", Box::new(|| run_distributed(&a, Some(true)))),
                ("overlap-off", Box::new(|| run_distributed(&a, Some(false)))),
            ];
            let t = time_round_robin(&mut configs, samples);
            let advised = treesvd_tune::advise_overlap(
                pt.m,
                pt.n,
                true,
                treesvd_core::TopologyKind::PerfectFatTree,
            );
            (
                t[0],
                "distributed",
                "-",
                advised,
                vec![("overlap-on", t[1]), ("overlap-off", t[2])],
                t[1],
            )
        }
    };

    let (best_fixed, best_fixed_seconds) =
        fixed.iter().copied().min_by(|x, y| x.1.total_cmp(&y.1)).expect("fixed set is non-empty");
    PointResult {
        family: pt.family,
        m: pt.m,
        n: pt.n,
        processors: pt.processors,
        auto_seconds,
        auto_driver,
        auto_kernel,
        auto_overlap,
        fixed,
        default_seconds,
        best_fixed,
        best_fixed_seconds,
        within_5pct: auto_seconds <= best_fixed_seconds * 1.05,
        beats_default: auto_seconds < default_seconds,
    }
}

fn report(r: &PointResult) {
    let fixed: Vec<String> =
        r.fixed.iter().map(|(l, s)| format!("{l} {:.1} ms", s * 1e3)).collect();
    eprintln!(
        "{:<18} {:>5}x{:<3} P={:<2} auto {:.1} ms ({}, {}, overlap {}) vs [{}] \
         default {:.1} ms — {}{}",
        r.family.label(),
        r.m,
        r.n,
        r.processors,
        r.auto_seconds * 1e3,
        r.auto_driver,
        r.auto_kernel,
        r.auto_overlap,
        fixed.join(", "),
        r.default_seconds * 1e3,
        if r.within_5pct { "within 5% of best fixed" } else { "SLOWER than best fixed +5%" },
        if r.beats_default { ", beats default" } else { "" },
    );
}

/// Judge the cross-point gates over a measured grid.
fn grid_gates(results: &[PointResult]) -> (bool, usize, bool) {
    let within_everywhere = results.iter().all(|r| r.within_5pct);
    let strict_wins = results.iter().filter(|r| r.beats_default).count();
    let small_p_dist_off = results.iter().any(|r| {
        r.family == Family::DistributedPinned
            && r.processors <= 8
            && !r.auto_overlap
            && r.beats_default
    });
    (within_everywhere, strict_wins, small_p_dist_off)
}

/// Warm-path gate: a second `plan_for` on an already-planned key must hit
/// the cache, re-run no probe, and make zero heap allocations.
fn warm_path_gate() -> bool {
    let problem = TuneProblem::new(3000, 40).with_processors(4);
    let cold = treesvd_tune::plan_for(&problem); // plan + (at most once) probes
    let probes_before = treesvd_tune::calib::probe_runs();
    let hits_before = treesvd_tune::cache::global().hits();
    let allocs_before = ALLOC_CALLS.load(Ordering::Relaxed);
    let warm = treesvd_tune::plan_for(&problem);
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - allocs_before;
    let hit = treesvd_tune::cache::global().hits() > hits_before;
    let no_reprobe = treesvd_tune::calib::probe_runs() == probes_before;
    let identical = cold == warm;
    println!(
        "warm tuning path: {allocs} heap allocations, cache hit {hit}, \
         probe re-runs {} , plan identical {identical} — {}",
        !no_reprobe,
        if allocs == 0 && hit && no_reprobe && identical { "PASS" } else { "FAIL" }
    );
    allocs == 0 && hit && no_reprobe && identical
}

fn full_grid() -> Vec<Point> {
    vec![
        Point { family: Family::Blocked, m: 256, n: 64, processors: 4 },
        Point { family: Family::Blocked, m: 512, n: 48, processors: 4 },
        Point { family: Family::Blocked, m: 1024, n: 64, processors: 8 },
        Point { family: Family::Blocked, m: 512, n: 96, processors: 8 },
        Point { family: Family::Tall, m: 4096, n: 16, processors: 4 },
        Point { family: Family::Tall, m: 2048, n: 12, processors: 4 },
        Point { family: Family::DistributedPinned, m: 4096, n: 16, processors: 8 },
        Point { family: Family::DistributedPinned, m: 2048, n: 16, processors: 8 },
        Point { family: Family::DistributedPinned, m: 2048, n: 32, processors: 16 },
    ]
}

fn full_run(seed: u64) -> bool {
    let mut results = Vec::new();
    for pt in &full_grid() {
        // the distributed deltas are the tightest margins on the grid
        // (overlap bookkeeping is microseconds per step); extra samples
        // keep the medians out of scheduler noise
        let samples = if pt.family == Family::DistributedPinned { 9 } else { 5 };
        let r = measure_point(pt, samples, seed);
        report(&r);
        results.push(r);
    }
    let (within, wins, small_p) = grid_gates(&results);
    let warm_ok = warm_path_gate();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p treesvd-bench --bin bench_auto\",\n",
    );
    let _ =
        writeln!(json, "  \"meta\": {},", treesvd_bench::meta::meta_json_calibrated(seed, None));
    json.push_str("  \"unit\": \"seconds (median wall-clock, full solve, vectors on)\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let mut fixed = String::new();
        for (j, (label, s)) in r.fixed.iter().enumerate() {
            let sep = if j + 1 < r.fixed.len() { ", " } else { "" };
            let _ = write!(fixed, "\"{label}\": {s:.6}{sep}");
        }
        let _ = writeln!(
            json,
            "    {{\"family\": \"{}\", \"m\": {}, \"n\": {}, \"processors\": {}, \
             \"auto_seconds\": {:.6}, \"auto_driver\": \"{}\", \"auto_kernel\": \"{}\", \
             \"auto_overlap\": {}, \"fixed\": {{{fixed}}}, \
             \"best_fixed\": \"{}\", \"best_fixed_seconds\": {:.6}, \
             \"default_seconds\": {:.6}, \"auto_within_5pct\": {}, \
             \"auto_beats_default\": {}}}{comma}",
            r.family.label(),
            r.m,
            r.n,
            r.processors,
            r.auto_seconds,
            r.auto_driver,
            r.auto_kernel,
            r.auto_overlap,
            r.best_fixed,
            r.best_fixed_seconds,
            r.default_seconds,
            r.within_5pct,
            r.beats_default,
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"gates\": {{\"auto_within_5pct_everywhere\": {within}, \
         \"strict_wins_vs_default\": {wins}, \
         \"small_p_distributed_overlap_off_win\": {small_p}, \
         \"warm_path_zero_alloc_probe_free\": {warm_ok}}}\n"
    );
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_auto.json");
    std::fs::write(out, &json).expect("write BENCH_auto.json");
    println!("{json}");
    eprintln!("wrote {out}");

    let pass = within && wins >= 2 && small_p && warm_ok;
    println!(
        "gates: within-5%-everywhere {within}, strict wins vs default {wins} (need ≥ 2), \
         small-P distributed overlap-off win {small_p}, warm path {warm_ok} — {}",
        if pass { "PASS" } else { "FAIL" }
    );
    pass
}

/// Quick gate for `scripts/verify.sh`: a three-point sub-grid (one per
/// family, shrunk shapes) plus the warm-path gate.
fn smoke_run(seed: u64) -> bool {
    let grid = [
        Point { family: Family::Blocked, m: 256, n: 64, processors: 4 },
        Point { family: Family::Tall, m: 2048, n: 12, processors: 4 },
        // the recorded regression point: new-ring P=8 at m=4096, where
        // unconditional overlap lost ~15% to plain zero-copy
        Point { family: Family::DistributedPinned, m: 4096, n: 16, processors: 8 },
    ];
    let mut results = Vec::new();
    for pt in &grid {
        let samples = if pt.family == Family::DistributedPinned { 7 } else { 3 };
        let r = measure_point(pt, samples, seed);
        report(&r);
        results.push(r);
    }
    let (within, wins, small_p) = grid_gates(&results);
    let warm_ok = warm_path_gate();
    let pass = within && wins >= 1 && small_p && warm_ok;
    println!(
        "smoke gates: within-5%-of-best-fixed {within}, strict wins vs default {wins} \
         (need ≥ 1), small-P distributed overlap-off win {small_p}, \
         warm path zero-alloc + probe-free {warm_ok} — {}",
        if pass { "PASS" } else { "FAIL" }
    );
    pass
}

fn main() {
    let seed = treesvd_bench::meta::seed_from_args();
    let ok =
        if std::env::args().any(|a| a == "--smoke") { smoke_run(seed) } else { full_run(seed) };
    if !ok {
        std::process::exit(1);
    }
}
