//! Machine-readable batched small-SVD benchmarks: SoA lane engine vs a
//! per-problem sequential loop.
//!
//! ```text
//! cargo run --release -p treesvd-bench --bin bench_batched             # full run,
//!                                                                      # writes BENCH_batched.json
//! cargo run --release -p treesvd-bench --bin bench_batched -- --smoke  # quick gate, no file
//! ```
//!
//! The full run times the batched engine (both the `Auto` SIMD path and
//! the forced `Scalar` path) on square problems of order
//! {2, 4, 8, 16, 32, 64} at requested batch sizes {1k, 100k, 1M}, against
//! a per-problem `sequential_svd` loop as the baseline. Large
//! configurations are honestly capped — by memory (the SoA planes plus V)
//! and by estimated work — and the JSON records both the requested batch
//! and the `problems_timed` actually run, never silently truncating. The
//! sequential baseline is timed on a subsample and extrapolated
//! per-problem. A `meta` block records SIMD tier, lane width, thread
//! budget, and the `--seed` (default 42).
//!
//! The smoke run is the regression gate wired into `scripts/verify.sh`:
//! at order 8 × batch 100k the SoA engine must beat the per-problem
//! sequential loop by ≥ 2× on **both** kernel paths, and the second
//! same-shape engine run must report zero allocation events.

use std::fmt::Write as _;
use std::time::Instant;
use treesvd_batch::{BatchEngine, BatchOptions, BatchSoA, BatchStats, LanePath};
use treesvd_core::sequential::sequential_svd;
use treesvd_matrix::generate;

/// Timed samples per configuration; the best (minimum) is reported.
const SAMPLES: usize = 3;
/// Cap on the SoA working set (A plus V) per configuration, in bytes.
const BYTE_CAP: usize = 4 << 30;
/// Cap on estimated flops per timed configuration.
const FLOP_CAP: f64 = 1e10;
/// Sequential-baseline subsample size.
const SEQ_SAMPLE: usize = 512;

/// Rough per-configuration work estimate: `count` problems × ~10 sweeps ×
/// `n²/2` pairs × `9·rows` flops per pair (Gram + two rotates).
fn estimated_flops(rows: usize, cols: usize, count: usize) -> f64 {
    count as f64 * 10.0 * (cols * cols) as f64 / 2.0 * rows as f64 * 9.0
}

/// Shrink `requested` to honor the memory and work caps.
fn capped_count(rows: usize, cols: usize, requested: usize) -> usize {
    let per_problem_bytes = 2 * rows * cols * std::mem::size_of::<f64>();
    let mem_cap = BYTE_CAP / per_problem_bytes;
    let per_problem_flops = estimated_flops(rows, cols, 1);
    let flop_cap = (FLOP_CAP / per_problem_flops) as usize;
    requested.min(mem_cap).min(flop_cap).max(1)
}

fn fill_batch(rows: usize, cols: usize, count: usize, seed: u64) -> BatchSoA {
    let mut batch = BatchSoA::new(rows, cols, count, treesvd_batch::LANES).expect("batch shape");
    for i in 0..count {
        let m = generate::random_uniform(rows, cols, seed.wrapping_add(i as u64));
        batch.set_problem(i, &m).expect("in range");
    }
    batch
}

/// Best (minimum) wall-clock seconds of a full engine run over clones of
/// `pristine`, plus the stats of the final (steady-state) sample. Minimum,
/// not median: scheduler noise on a shared box is strictly additive, and
/// the same estimator is used for the sequential baseline, so the
/// comparison stays symmetric.
fn time_batched(pristine: &BatchSoA, engine: &mut BatchEngine) -> (f64, BatchStats) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..SAMPLES {
        let mut a = pristine.clone();
        let t = Instant::now();
        let stats = engine.run(&mut a).expect("batched svd");
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(engine.sigmas());
        last = Some(stats);
    }
    (best, last.unwrap())
}

/// Per-problem seconds of the sequential loop over a subsample of the
/// batch — best of [`SAMPLES`] passes, the same estimator as
/// [`time_batched`].
fn time_sequential(pristine: &BatchSoA) -> f64 {
    let n = pristine.count().min(SEQ_SAMPLE);
    let problems: Vec<_> = (0..n).map(|i| pristine.problem(i)).collect();
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for m in &problems {
            let run = sequential_svd(m, 60).expect("sequential svd");
            std::hint::black_box(run.svd.sigma[0]);
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    best / n as f64
}

struct Record {
    order: usize,
    requested: usize,
    timed: usize,
    path: &'static str,
    seconds: f64,
    per_problem_ns: f64,
    seq_per_problem_ns: f64,
    speedup: f64,
    max_sweeps: u32,
    steady_allocs: u64,
}

fn full_run(seed: u64) {
    let orders = [2usize, 4, 8, 16, 32, 64];
    let batches = [1_000usize, 100_000, 1_000_000];
    let mut records = Vec::new();

    for &order in &orders {
        for &requested in &batches {
            let timed = capped_count(order, order, requested);
            if timed < requested {
                eprintln!(
                    "order {order} batch {requested}: capped to {timed} problems \
                     (memory/work caps)"
                );
            }
            let pristine = fill_batch(order, order, timed, seed);
            let seq = time_sequential(&pristine);
            for (path, label) in [(LanePath::Auto, "auto"), (LanePath::Scalar, "scalar")] {
                let mut engine = BatchEngine::new(BatchOptions::default().with_path(path));
                let (seconds, stats) = time_batched(&pristine, &mut engine);
                let per_problem = seconds / timed as f64;
                let speedup = seq / per_problem;
                eprintln!(
                    "order {order:2} batch {requested:7} ({timed:7} timed) {label:6}: \
                     {:.1} ns/problem vs sequential {:.1} ns ({speedup:.2}x), \
                     max {} sweeps, steady allocs {}",
                    per_problem * 1e9,
                    seq * 1e9,
                    stats.max_sweeps_used,
                    stats.alloc_events
                );
                records.push(Record {
                    order,
                    requested,
                    timed,
                    path: label,
                    seconds,
                    per_problem_ns: per_problem * 1e9,
                    seq_per_problem_ns: seq * 1e9,
                    speedup,
                    max_sweeps: stats.max_sweeps_used,
                    steady_allocs: stats.alloc_events,
                });
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p treesvd-bench --bin bench_batched\",\n",
    );
    let _ = writeln!(json, "  \"meta\": {},", treesvd_bench::meta::meta_json(seed));
    json.push_str(
        "  \"unit\": \"seconds (best-of-samples wall-clock, full batch_svd, vectors on)\",\n",
    );
    let _ = writeln!(
        json,
        "  \"caps\": {{\"bytes\": {BYTE_CAP}, \"flops\": {FLOP_CAP:.0}, \
         \"sequential_subsample\": {SEQ_SAMPLE}}},"
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"order\": {}, \"requested\": {}, \"problems_timed\": {}, \
             \"path\": \"{}\", \"seconds\": {:.6}, \"per_problem_ns\": {:.1}, \
             \"seq_per_problem_ns\": {:.1}, \"speedup_vs_sequential\": {:.2}, \
             \"max_sweeps\": {}, \"steady_alloc_events\": {}}}{comma}",
            r.order,
            r.requested,
            r.timed,
            r.path,
            r.seconds,
            r.per_problem_ns,
            r.seq_per_problem_ns,
            r.speedup,
            r.max_sweeps,
            r.steady_allocs
        );
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batched.json");
    std::fs::write(out, &json).expect("write BENCH_batched.json");
    println!("{json}");
    eprintln!("wrote {out}");

    if let Some(r) = records.iter().find(|r| r.order == 8 && r.requested == 100_000) {
        eprintln!("headline: order 8 batch 100k {} — {:.2}x over sequential", r.path, r.speedup);
    }
}

/// Quick gate: at order 8 × batch 100k the SoA engine must beat the
/// per-problem sequential loop ≥ 2× on both kernel paths, allocation-free
/// from the second same-shape run on.
fn smoke_run(seed: u64) -> bool {
    const ORDER: usize = 8;
    const BATCH: usize = 100_000;
    let pristine = fill_batch(ORDER, ORDER, BATCH, seed);
    let seq = time_sequential(&pristine);

    let mut ok = true;
    for (path, label) in [(LanePath::Auto, "auto"), (LanePath::Scalar, "scalar")] {
        let mut engine = BatchEngine::new(BatchOptions::default().with_path(path));
        let (seconds, stats) = time_batched(&pristine, &mut engine);
        let per_problem = seconds / BATCH as f64;
        let speedup = seq / per_problem;
        let fast_enough = speedup >= 2.0;
        let zero_alloc = stats.alloc_events == 0;
        println!(
            "smoke {ORDER}x{ORDER} batch {BATCH} {label}: {:.0} ns/problem vs \
             sequential {:.0} ns ({speedup:.2}x), steady allocations {} — {}",
            per_problem * 1e9,
            seq * 1e9,
            stats.alloc_events,
            if fast_enough && zero_alloc { "PASS" } else { "FAIL" }
        );
        ok &= fast_enough && zero_alloc;
    }
    ok
}

fn main() {
    let seed = treesvd_bench::meta::seed_from_args();
    if std::env::args().any(|a| a == "--smoke") {
        if !smoke_run(seed) {
            std::process::exit(1);
        }
    } else {
        full_run(seed);
    }
}
