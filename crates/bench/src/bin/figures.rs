//! Print every paper figure's regenerated schedule table.
//!
//! ```text
//! cargo run -p treesvd-bench --bin figures
//! ```

fn main() {
    println!("{}", treesvd_bench::figures::all_figures());
}
