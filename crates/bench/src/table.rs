//! Minimal markdown table builder for the experiment reports.

/// A markdown table under construction.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append one row (must match the header width).
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> =
                cells.iter().zip(widths.iter()).map(|(c, w)| format!("{c:<w$}")).collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", dashes.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float compactly for a table cell.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["33", "4"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a "));
        assert!(md.contains("| -"));
        assert!(md.contains("| 33 | 4 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.2345), "1.23");
        assert!(fnum(12345.0).contains('e'));
        assert!(fnum(0.0001).contains('e'));
    }
}
