//! Shared provenance metadata for the machine-readable bench bins.
//!
//! Every `BENCH_*.json` file embeds one `"meta"` object recording the
//! SIMD tier the binary was compiled for, the f64 lane width that tier
//! implies, the host-thread budget in effect (after `TREESVD_THREADS`),
//! and the RNG seed of the run — without these, numbers from two machines
//! (or two thread caps) are not comparable.

use std::fmt::Write as _;

/// The widest f64 SIMD tier this binary was compiled with
/// (`-C target-cpu` at build time decides; runtime dispatch never
/// exceeds it).
#[must_use]
pub fn simd_tier() -> &'static str {
    if cfg!(target_feature = "avx512f") {
        "avx512f"
    } else if cfg!(target_feature = "avx2") {
        "avx2"
    } else if cfg!(target_feature = "avx") {
        "avx"
    } else if cfg!(target_feature = "sse2") {
        "sse2"
    } else {
        "scalar"
    }
}

/// f64 lanes per register at the compiled SIMD tier.
#[must_use]
pub fn lane_width() -> usize {
    if cfg!(target_feature = "avx512f") {
        8
    } else if cfg!(target_feature = "avx") {
        4
    } else if cfg!(target_feature = "sse2") {
        2
    } else {
        1
    }
}

/// The `"meta"` JSON object (no trailing comma/newline) for a run with
/// the given RNG seed.
#[must_use]
pub fn meta_json(seed: u64) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"target_arch\": \"{}\", \"simd_tier\": \"{}\", \"f64_lanes\": {}, \
         \"threads\": {}, \"seed\": {seed}}}",
        std::env::consts::ARCH,
        simd_tier(),
        lane_width(),
        treesvd_sim::par::num_threads(),
    );
    s
}

/// The `"calibration"` JSON object: this host's probed machine constants
/// (the [`treesvd_tune::Calibration`] microprobe battery), plus the
/// executor-measured per-step overlap cost when the caller has one — it
/// needs a full distributed run to observe and cannot be microprobed, so
/// only `bench_distributed` supplies it. These are exactly the keys the
/// tuner's *Recorded* calibration layer reads back out of the committed
/// `BENCH_distributed.json`.
#[must_use]
pub fn calibration_json(overlap_step_ns: Option<f64>) -> String {
    let c = treesvd_tune::Calibration::probed();
    let overlap =
        overlap_step_ns.filter(|v| v.is_finite() && *v > 0.0).unwrap_or(c.overlap_step_ns);
    format!(
        "{{\"flop_ns\": {:.6}, \"panel_flop_ns\": {:.6}, \"word_ns\": {:.6}, \
         \"msg_ns\": {:.1}, \"overlap_step_ns\": {:.1}, \"l2_bytes\": {}}}",
        c.flop_ns, c.panel_flop_ns, c.word_ns, c.msg_ns, overlap, c.l2_bytes
    )
}

/// [`meta_json`] extended with the [`calibration_json`] block — what the
/// calibration-bearing bench files (`BENCH_distributed.json`,
/// `BENCH_auto.json`) embed so runs double as tuner seed data.
#[must_use]
pub fn meta_json_calibrated(seed: u64, overlap_step_ns: Option<f64>) -> String {
    let mut s = meta_json(seed);
    s.truncate(s.len() - 1); // re-open the object
    let _ = write!(s, ", \"calibration\": {}}}", calibration_json(overlap_step_ns));
    s
}

/// Parse `--seed N` from the process arguments (default 42), so every
/// bench bin records and honors an explicit seed.
///
/// # Panics
/// Panics with a usage message when the value is missing or malformed.
#[must_use]
pub fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--seed") {
        Some(pos) => args
            .get(pos + 1)
            .unwrap_or_else(|| panic!("--seed needs a value"))
            .parse()
            .unwrap_or_else(|e| panic!("--seed: {e}")),
        None => 42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_and_width_are_consistent() {
        let tier = simd_tier();
        let width = lane_width();
        match tier {
            "avx512f" => assert_eq!(width, 8),
            "avx2" | "avx" => assert_eq!(width, 4),
            "sse2" => assert_eq!(width, 2),
            _ => assert_eq!(width, 1),
        }
    }

    #[test]
    fn meta_json_mentions_every_field() {
        let m = meta_json(7);
        for key in ["target_arch", "simd_tier", "f64_lanes", "threads", "\"seed\": 7"] {
            assert!(m.contains(key), "missing {key} in {m}");
        }
    }

    #[test]
    fn calibrated_meta_round_trips_through_the_tuner_parser() {
        let m = meta_json_calibrated(7, Some(6500.0));
        for key in
            ["calibration", "flop_ns", "panel_flop_ns", "word_ns", "msg_ns", "l2_bytes", "seed"]
        {
            assert!(m.contains(key), "missing {key} in {m}");
        }
        // the tuner's Recorded layer must read back what we wrote
        let c = treesvd_tune::Calibration::from_bench_meta(&m);
        assert_eq!(c.overlap_step_ns, 6500.0);
        assert_eq!(c.source, treesvd_tune::CalibSource::Recorded);
        assert!(c.flop_ns > 0.0 && c.panel_flop_ns > 0.0 && c.word_ns > 0.0);
        // with no measured overlap delta the probed carry-over is kept
        let fallback = meta_json_calibrated(7, None);
        assert!(treesvd_tune::Calibration::from_bench_meta(&fallback).overlap_step_ns > 0.0);
    }
}
