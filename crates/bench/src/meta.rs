//! Shared provenance metadata for the machine-readable bench bins.
//!
//! Every `BENCH_*.json` file embeds one `"meta"` object recording the
//! SIMD tier the binary was compiled for, the f64 lane width that tier
//! implies, the host-thread budget in effect (after `TREESVD_THREADS`),
//! and the RNG seed of the run — without these, numbers from two machines
//! (or two thread caps) are not comparable.

use std::fmt::Write as _;

/// The widest f64 SIMD tier this binary was compiled with
/// (`-C target-cpu` at build time decides; runtime dispatch never
/// exceeds it).
#[must_use]
pub fn simd_tier() -> &'static str {
    if cfg!(target_feature = "avx512f") {
        "avx512f"
    } else if cfg!(target_feature = "avx2") {
        "avx2"
    } else if cfg!(target_feature = "avx") {
        "avx"
    } else if cfg!(target_feature = "sse2") {
        "sse2"
    } else {
        "scalar"
    }
}

/// f64 lanes per register at the compiled SIMD tier.
#[must_use]
pub fn lane_width() -> usize {
    if cfg!(target_feature = "avx512f") {
        8
    } else if cfg!(target_feature = "avx") {
        4
    } else if cfg!(target_feature = "sse2") {
        2
    } else {
        1
    }
}

/// The `"meta"` JSON object (no trailing comma/newline) for a run with
/// the given RNG seed.
#[must_use]
pub fn meta_json(seed: u64) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"target_arch\": \"{}\", \"simd_tier\": \"{}\", \"f64_lanes\": {}, \
         \"threads\": {}, \"seed\": {seed}}}",
        std::env::consts::ARCH,
        simd_tier(),
        lane_width(),
        treesvd_sim::par::num_threads(),
    );
    s
}

/// Parse `--seed N` from the process arguments (default 42), so every
/// bench bin records and honors an explicit seed.
///
/// # Panics
/// Panics with a usage message when the value is missing or malformed.
#[must_use]
pub fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--seed") {
        Some(pos) => args
            .get(pos + 1)
            .unwrap_or_else(|| panic!("--seed needs a value"))
            .parse()
            .unwrap_or_else(|e| panic!("--seed: {e}")),
        None => 42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_and_width_are_consistent() {
        let tier = simd_tier();
        let width = lane_width();
        match tier {
            "avx512f" => assert_eq!(width, 8),
            "avx2" | "avx" => assert_eq!(width, 4),
            "sse2" => assert_eq!(width, 2),
            _ => assert_eq!(width, 1),
        }
    }

    #[test]
    fn meta_json_mentions_every_field() {
        let m = meta_json(7);
        for key in ["target_arch", "simd_tier", "f64_lanes", "threads", "\"seed\": 7"] {
            assert!(m.contains(key), "missing {key} in {m}");
        }
    }
}
