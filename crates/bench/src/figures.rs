//! Paper-figure regeneration: the schedule tables of Figs. 1–9.

use treesvd_orderings::render::render_sweep;
use treesvd_orderings::{
    two_block::{two_block_movements, RotatingSide},
    FatTreeOrdering, HybridOrdering, JacobiOrdering, ModifiedRingOrdering, NewRingOrdering,
    PairStep, Program, RingOrdering, RoundRobinOrdering,
};

fn sweep(ord: &dyn JacobiOrdering) -> Program {
    ord.sweep_program(0, &ord.initial_layout())
}

/// Fig. 1(a): the baseline ring ordering, n = 8.
pub fn fig1a() -> String {
    let ord = RingOrdering::new(8).expect("n = 8 valid");
    format!("Figure 1(a) — ring ordering, n = 8\n{}", render_sweep(&sweep(&ord), None))
}

/// Fig. 1(b): the Brent–Luk round-robin ordering, n = 8.
pub fn fig1b() -> String {
    let ord = RoundRobinOrdering::new(8).expect("n = 8 valid");
    format!("Figure 1(b) — round-robin ordering, n = 8\n{}", render_sweep(&sweep(&ord), None))
}

/// Fig. 2: the two-block basic module (block size 2).
pub fn fig2() -> String {
    let movements = two_block_movements(4, 0, 2, RotatingSide::Odd);
    let prog = Program {
        n: 4,
        initial_layout: vec![0, 1, 2, 3],
        steps: movements.into_iter().map(|move_after| PairStep { move_after }).collect(),
    };
    format!(
        "Figure 2 — two-block basic module: block 1 = {{1, 3}} in the even slots,\n\
         block 2 = {{2, 4}} in the odd slots (interleaved); pairs are cross-block.\n{}",
        render_sweep(&prog, None)
    )
}

/// Fig. 3: the two-block ordering of size 4.
pub fn fig3() -> String {
    let movements = two_block_movements(8, 0, 4, RotatingSide::Odd);
    let prog = Program {
        n: 8,
        initial_layout: (0..8).collect(),
        steps: movements.into_iter().map(|move_after| PairStep { move_after }).collect(),
    };
    format!(
        "Figure 3 — two-block ordering of size 4 (even slots = block 1, odd = block 2)\n{}",
        render_sweep(&prog, None)
    )
}

/// Fig. 4(a) and 4(b): the four-block basic modules.
pub fn fig4() -> String {
    let build = |ms: [treesvd_orderings::schedule::Permutation; 3]| Program {
        n: 4,
        initial_layout: vec![0, 1, 2, 3],
        steps: ms.into_iter().map(|move_after| PairStep { move_after }).collect(),
    };
    let a = build(treesvd_orderings::four_block::module_a_movements(4, 0));
    let b = build(treesvd_orderings::four_block::module_b_movements(4, 0));
    format!(
        "Figure 4(a) — four-block basic module A (order restored every sweep,\n\
         smaller index always left; the step-3 in-pair swap uses eq. (3))\n{}\n\
         Figure 4(b) — module B (indices 3,4 reversed after one sweep)\n{}",
        render_sweep(&a, None),
        render_sweep(&b, None)
    )
}

/// Fig. 5: the merge-procedure scheme (stages of the fat-tree ordering).
pub fn fig5() -> String {
    let mut out = String::from("Figure 5 — the merge procedure for n = 16\n");
    let mut size = 4;
    let mut stage = 1;
    while size <= 16 {
        let groups: Vec<String> = (0..16 / size)
            .map(|g| {
                let lo = g * size + 1;
                let hi = (g + 1) * size;
                format!("({lo}..{hi})")
            })
            .collect();
        out.push_str(&format!("stage {stage}: {}\n", groups.join(" ")));
        size *= 2;
        stage += 1;
    }
    out
}

/// Fig. 6: the fat-tree (four-block merge) ordering for eight indices.
pub fn fig6() -> String {
    let ord = FatTreeOrdering::new(8).expect("n = 8 valid");
    format!("Figure 6 — fat-tree ordering, n = 8\n{}", render_sweep(&sweep(&ord), None))
}

/// Fig. 7(a): the new ring ordering, n = 8 (one sweep; the second sweep of
/// the period-2 schedule is appended for completeness).
pub fn fig7a() -> String {
    let ord = NewRingOrdering::new(8).expect("n = 8 valid");
    let progs = ord.programs(2);
    format!(
        "Figure 7(a) — new ring ordering, n = 8 (sweep 1)\n{}\n(sweep 2; layout restored after it)\n{}",
        render_sweep(&progs[0], None),
        render_sweep(&progs[1], None)
    )
}

/// Fig. 7(b): the equivalent round-robin ordering with the §4 relabelling.
pub fn fig7b() -> String {
    let nr = NewRingOrdering::new(8).expect("n = 8 valid");
    let rr = RoundRobinOrdering::new(8).expect("n = 8 valid");
    let pn = sweep(&nr);
    let pr = sweep(&rr);
    let pi = treesvd_orderings::equivalence::find_relabelling(&pn, &pr)
        .expect("paper §4: new ring is equivalent to round-robin");
    let map: Vec<String> =
        pi.iter().enumerate().map(|(i, &p)| format!("{} -> {}", i + 1, p + 1)).collect();
    format!(
        "Figure 7(b) — round-robin, with the relabelling proving equivalence (Definition 1):\n\
         relabelling: {}\n{}",
        map.join(", "),
        render_sweep(&pr, None)
    )
}

/// Fig. 8: the modified ring ordering, n = 8.
pub fn fig8() -> String {
    let ord = ModifiedRingOrdering::new(8).expect("n = 8 valid");
    let progs = ord.programs(2);
    format!(
        "Figure 8 — modified ring ordering, n = 8 (sweep 1; one sweep fully reverses\n\
         the layout, so sigma is nondecreasing after odd sweeps)\n{}\n(sweep 2)\n{}",
        render_sweep(&progs[0], None),
        render_sweep(&progs[1], None)
    )
}

/// Fig. 9: the hybrid ordering for sixteen indices, four groups.
pub fn fig9() -> String {
    let ord = HybridOrdering::new(16, 4).expect("16 indices, 4 groups valid");
    let prog = sweep(&ord);
    format!(
        "Figure 9 — hybrid ordering, n = 16, 4 groups (global = inter-group block move)\n{}",
        render_sweep(&prog, Some(4))
    )
}

/// All figures concatenated, in paper order.
pub fn all_figures() -> String {
    [fig1a(), fig1b(), fig2(), fig3(), fig4(), fig5(), fig6(), fig7a(), fig7b(), fig8(), fig9()]
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_renders() {
        let all = all_figures();
        for marker in [
            "Figure 1(a)",
            "Figure 1(b)",
            "Figure 2",
            "Figure 3",
            "Figure 4(a)",
            "Figure 4(b)",
            "Figure 5",
            "Figure 6",
            "Figure 7(a)",
            "Figure 7(b)",
            "Figure 8",
            "Figure 9",
        ] {
            assert!(all.contains(marker), "missing {marker}");
        }
    }

    #[test]
    fn fig6_has_seven_steps() {
        let f = fig6();
        assert!(f.contains("   7  "));
        assert!(!f.contains("   8  "));
    }

    #[test]
    fn fig9_marks_globals() {
        assert_eq!(fig9().matches("global").count(), 7 + 1); // 7 rows + title mention
    }

    #[test]
    fn fig7b_reports_a_relabelling() {
        assert!(fig7b().contains("->"));
    }
}
