//! Property-based tests of the numerical kernels (proptest).
//!
//! These pin down the *algebraic* invariants the SVD's correctness rests
//! on: rotations are orthogonal maps (norms and dot products transform
//! exactly as the 2×2 algebra says), the Gram kernel agrees with the naive
//! definitions, and the generators honour their advertised spectra.

#![cfg(test)]

use crate::ops::{self, axpy, dot, gram3, norm2, norm2_sq, rotate_fused, rotate_fused_swapped};
use crate::rotation::{
    apply_rotation, apply_rotation_swapped, compute_rotation, orthogonalize_pair,
};
use crate::{generate, Matrix};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0..100.0f64, len)
}

/// A pair of equal-length vectors whose length sweeps 0..67 — deliberately
/// covering lengths below, at, and straddling the kernels' unroll width so
/// the `chunks_exact` remainder tails are exercised.
fn vec_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (0usize..67).prop_flat_map(|n| (finite_vec(n), finite_vec(n)))
}

/// Tolerance for comparing two summation orders of the same reduction:
/// a few ulps per term, scaled by the sum of absolute terms (the bound
/// |Σreordered − Σstrict| ≤ 2(n−1)·ε·Σ|tᵢ|, with slack).
fn sum_order_tol(n: usize, abs_scale: f64) -> f64 {
    4.0 * (n as f64 + 1.0) * f64::EPSILON * abs_scale.max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_unrolled_matches_naive((a, b) in vec_pair()) {
        let fast = dot(&a, &b);
        let slow = ops::naive::dot(&a, &b);
        let scale: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        prop_assert!((fast - slow).abs() <= sum_order_tol(a.len(), scale),
            "dot len {}: {fast} vs {slow}", a.len());
    }

    #[test]
    fn norm2_sq_unrolled_matches_naive((a, _) in vec_pair()) {
        let fast = norm2_sq(&a);
        let slow = ops::naive::norm2_sq(&a);
        prop_assert!((fast - slow).abs() <= sum_order_tol(a.len(), slow),
            "norm2_sq len {}: {fast} vs {slow}", a.len());
    }

    #[test]
    fn gram3_unrolled_matches_naive((a, b) in vec_pair()) {
        let (aa, bb, ab) = gram3(&a, &b);
        let (naa, nbb, nab) = ops::naive::gram3(&a, &b);
        let ab_scale: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        let tol = |s: f64| sum_order_tol(a.len(), s);
        prop_assert!((aa - naa).abs() <= tol(naa), "aa len {}: {aa} vs {naa}", a.len());
        prop_assert!((bb - nbb).abs() <= tol(nbb), "bb len {}: {bb} vs {nbb}", a.len());
        prop_assert!((ab - nab).abs() <= tol(ab_scale), "ab len {}: {ab} vs {nab}", a.len());
    }

    #[test]
    fn axpy_unrolled_is_bitwise_naive((x, y) in vec_pair(), alpha in -10.0..10.0f64) {
        // axpy is element-wise (no reduction, no reassociation), so the
        // unrolled kernel must agree with the naive loop *bitwise*
        let mut fast = y.clone();
        axpy(alpha, &x, &mut fast);
        let mut slow = y;
        ops::naive::axpy(alpha, &x, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn rotate_fused_matches_rotate_then_norms((a, b) in vec_pair(), theta in -0.78..0.78f64) {
        let (c, s) = (theta.cos(), theta.sin());
        let (mut xf, mut yf) = (a.clone(), b.clone());
        let (na, nb) = rotate_fused(c, s, &mut xf, &mut yf);
        let (mut xs, mut ys) = (a.clone(), b.clone());
        let (sna, snb) = ops::naive::rotate_then_norms(c, s, &mut xs, &mut ys);
        // rotated columns: identical per-element expressions, so bitwise
        prop_assert_eq!(&xf, &xs);
        prop_assert_eq!(&yf, &ys);
        // accumulated norms: same sums in a different association order
        prop_assert!((na - sna).abs() <= sum_order_tol(a.len(), sna),
            "na len {}: {na} vs {sna}", a.len());
        prop_assert!((nb - snb).abs() <= sum_order_tol(a.len(), snb),
            "nb len {}: {nb} vs {snb}", a.len());
    }

    #[test]
    fn rotate_fused_swapped_matches_unfused((a, b) in vec_pair(), theta in -0.78..0.78f64) {
        let (c, s) = (theta.cos(), theta.sin());
        let (mut xf, mut yf) = (a.clone(), b.clone());
        let (na, nb) = rotate_fused_swapped(c, s, &mut xf, &mut yf);
        // reference: unfused rotate, swap halves, then measure
        let (mut xs, mut ys) = (a.clone(), b.clone());
        ops::naive::rotate_then_norms(c, s, &mut xs, &mut ys);
        std::mem::swap(&mut xs, &mut ys);
        let (sna, snb) = (ops::naive::norm2_sq(&xs), ops::naive::norm2_sq(&ys));
        prop_assert_eq!(&xf, &xs);
        prop_assert_eq!(&yf, &ys);
        prop_assert!((na - sna).abs() <= sum_order_tol(a.len(), sna));
        prop_assert!((nb - snb).abs() <= sum_order_tol(a.len(), snb));
    }

    #[test]
    fn gram3_matches_naive(a in finite_vec(12), b in finite_vec(12)) {
        let (aa, bb, ab) = gram3(&a, &b);
        prop_assert!((aa - dot(&a, &a)).abs() <= 1e-9 * aa.abs().max(1.0));
        prop_assert!((bb - dot(&b, &b)).abs() <= 1e-9 * bb.abs().max(1.0));
        prop_assert!((ab - dot(&a, &b)).abs() <= 1e-9 * ab.abs().max(1.0));
    }

    #[test]
    fn rotation_always_orthogonalizes(a in finite_vec(8), b in finite_vec(8)) {
        let (alpha, beta, gamma) = gram3(&a, &b);
        prop_assume!(alpha > 1e-6 && beta > 1e-6);
        let rot = compute_rotation(alpha, beta, gamma, 0.0);
        let (mut x, mut y) = (a.clone(), b.clone());
        apply_rotation(rot, &mut x, &mut y);
        let scale = norm2(&x) * norm2(&y);
        prop_assert!(dot(&x, &y).abs() <= 1e-10 * scale.max(1.0),
            "coupling {} after rotation", dot(&x, &y));
    }

    #[test]
    fn rotation_preserves_energy(a in finite_vec(10), b in finite_vec(10)) {
        let (alpha, beta, gamma) = gram3(&a, &b);
        let rot = compute_rotation(alpha, beta, gamma, 0.0);
        let before = norm2_sq(&a) + norm2_sq(&b);
        let (mut x, mut y) = (a, b);
        apply_rotation(rot, &mut x, &mut y);
        let after = norm2_sq(&x) + norm2_sq(&y);
        prop_assert!((before - after).abs() <= 1e-9 * before.max(1.0));
    }

    #[test]
    fn rotation_is_inner(alpha in 1e-6..1e6f64, beta in 1e-6..1e6f64, gamma in -1e6..1e6f64) {
        // |s| <= c always (rotation angle <= pi/4), the convergence-critical
        // property of the Rutishauser formulas
        prop_assume!(gamma.abs() <= (alpha * beta).sqrt()); // Cauchy-Schwarz feasible
        let r = compute_rotation(alpha, beta, gamma, 0.0);
        prop_assert!(r.s.abs() <= r.c + 1e-12);
        prop_assert!((r.c * r.c + r.s * r.s - 1.0).abs() <= 1e-12 || r.skipped);
    }

    #[test]
    fn swapped_rotation_equals_rotate_then_swap(a in finite_vec(6), b in finite_vec(6)) {
        let (alpha, beta, gamma) = gram3(&a, &b);
        let rot = compute_rotation(alpha, beta, gamma, 0.0);
        let (mut x1, mut y1) = (a.clone(), b.clone());
        apply_rotation(rot, &mut x1, &mut y1);
        std::mem::swap(&mut x1, &mut y1);
        let (mut x2, mut y2) = (a, b);
        apply_rotation_swapped(rot, &mut x2, &mut y2);
        for k in 0..6 {
            prop_assert!((x1[k] - x2[k]).abs() <= 1e-12 * x1[k].abs().max(1.0));
            prop_assert!((y1[k] - y2[k]).abs() <= 1e-12 * y1[k].abs().max(1.0));
        }
    }

    #[test]
    fn orthogonalize_pair_sorted_invariant(a in finite_vec(7), b in finite_vec(7)) {
        let (mut x, mut y) = (a, b);
        let out = orthogonalize_pair(&mut x, &mut y, 0.0, true);
        // reported norms match reality and are ordered
        prop_assert!(out.norms_sq_after.0 >= out.norms_sq_after.1);
        prop_assert!((out.norms_sq_after.0 - norm2_sq(&x)).abs() <= 1e-8 * out.norms_sq_after.0.max(1.0));
        prop_assert!((out.norms_sq_after.1 - norm2_sq(&y)).abs() <= 1e-8 * out.norms_sq_after.1.max(1.0));
    }

    #[test]
    fn prescribed_spectrum_frobenius(sigma in proptest::collection::vec(0.01..50.0f64, 1..6), seed in 0u64..1000) {
        let rows = sigma.len() + 2;
        let a = generate::with_singular_values(rows, &sigma, seed);
        let expect: f64 = sigma.iter().map(|s| s * s).sum::<f64>().sqrt();
        prop_assert!((a.frobenius_norm() - expect).abs() <= 1e-8 * expect);
    }

    #[test]
    fn random_orthogonal_stays_orthogonal(n in 2usize..10, seed in 0u64..500) {
        let q = generate::random_orthogonal(n, seed);
        prop_assert!(crate::checks::orthogonality_residual(&q) < 1e-11);
    }

    #[test]
    fn transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..100) {
        let a = generate::random_uniform(rows, cols, seed);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_associates_with_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..100) {
        let a = generate::random_uniform(rows, cols, seed);
        let i = Matrix::identity(cols, cols).unwrap();
        prop_assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn col_pair_mut_is_really_disjoint(n in 2usize..8, i in 0usize..8, j in 0usize..8) {
        prop_assume!(i < n && j < n && i != j);
        let mut m = generate::random_uniform(3, n, 7);
        let before_i = m.col(i).to_vec();
        let before_j = m.col(j).to_vec();
        {
            let (ci, cj) = m.col_pair_mut(i, j).unwrap();
            prop_assert_eq!(&ci[..], &before_i[..]);
            prop_assert_eq!(&cj[..], &before_j[..]);
            ci[0] += 1.0;
            cj[0] += 2.0;
        }
        prop_assert!((m.get(0, i) - (before_i[0] + 1.0)).abs() < 1e-15);
        prop_assert!((m.get(0, j) - (before_j[0] + 2.0)).abs() < 1e-15);
    }

    #[test]
    fn norm2_scale_invariance(v in finite_vec(9), scale in 1e-10..1e10f64) {
        let scaled: Vec<f64> = v.iter().map(|x| x * scale).collect();
        let n1 = norm2(&v) * scale;
        let n2 = norm2(&scaled);
        prop_assert!((n1 - n2).abs() <= 1e-9 * n1.max(1e-30));
    }
}
