//! Residual and orthogonality measures used to *verify* SVD results.

use crate::matrix::Matrix;

/// `‖QᵀQ − I‖_F` — how far the columns of `Q` are from orthonormal.
pub fn orthogonality_residual(q: &Matrix) -> f64 {
    let qtq = q.transpose().matmul(q).expect("shapes agree");
    let i = Matrix::identity(qtq.rows(), qtq.cols()).expect("nonzero dims");
    qtq.sub(&i).expect("same shape").frobenius_norm()
}

/// Relative reconstruction residual `‖A − U·diag(σ)·Vᵀ‖_F / ‖A‖_F`.
///
/// For a zero matrix the absolute residual is returned.
///
/// # Panics
/// Panics if shapes are inconsistent (`U: m×n`, `sigma: n`, `V: n×n`).
pub fn reconstruction_residual(a: &Matrix, u: &Matrix, sigma: &[f64], v: &Matrix) -> f64 {
    assert_eq!(u.cols(), sigma.len(), "U/sigma shape mismatch");
    assert_eq!(v.cols(), sigma.len(), "V/sigma shape mismatch");
    let d = Matrix::diagonal(sigma.len(), sigma).expect("square diagonal");
    let usv = u.matmul(&d).expect("shapes agree").matmul(&v.transpose()).expect("shapes agree");
    let num = a.sub(&usv).expect("same shape").frobenius_norm();
    let den = a.frobenius_norm();
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

/// The *off-diagonal measure* driving Jacobi convergence:
/// `off(A)² = Σ_{i<j} (aᵢ·aⱼ)²` over all column pairs.
///
/// The Hestenes iteration converges when `off(A)` (suitably normalized)
/// reaches roundoff; its per-sweep decrease is ultimately quadratic (§1).
pub fn off_diagonal_measure(a: &Matrix) -> f64 {
    let n = a.cols();
    let mut acc = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = a.col_dot(i, j);
            acc += d * d;
        }
    }
    acc.sqrt()
}

/// Normalized off-diagonal measure: `off(A) / ‖A‖_F²` — scale-invariant,
/// suitable as a convergence criterion across matrices.
pub fn off_diagonal_relative(a: &Matrix) -> f64 {
    let f = a.frobenius_norm();
    if f == 0.0 {
        0.0
    } else {
        off_diagonal_measure(a) / (f * f)
    }
}

/// Check that `values` is nonincreasing (allowing exact ties).
pub fn is_nonincreasing(values: &[f64]) -> bool {
    values.windows(2).all(|w| w[0] >= w[1])
}

/// Check that `values` is nondecreasing (allowing exact ties).
pub fn is_nondecreasing(values: &[f64]) -> bool {
    values.windows(2).all(|w| w[0] <= w[1])
}

/// Maximum relative deviation between two sorted spectra, using
/// `max(1, σ)`-scaling so tiny singular values are compared absolutely.
///
/// # Panics
/// Panics if lengths differ.
pub fn spectrum_distance(computed: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(computed.len(), reference.len(), "spectrum length mismatch");
    computed
        .iter()
        .zip(reference.iter())
        .map(|(&c, &r)| (c - r).abs() / r.abs().max(1.0))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn orthogonality_residual_of_identity_is_zero() {
        let i = Matrix::identity(4, 4).unwrap();
        assert_eq!(orthogonality_residual(&i), 0.0);
    }

    #[test]
    fn orthogonality_residual_detects_skew() {
        let mut m = Matrix::identity(3, 3).unwrap();
        m.set(0, 1, 0.5);
        assert!(orthogonality_residual(&m) > 0.4);
    }

    #[test]
    fn reconstruction_residual_exact_factorization() {
        let u = generate::random_orthogonal(5, 1);
        let v = generate::random_orthogonal(5, 2);
        let sigma = [5.0, 4.0, 3.0, 2.0, 1.0];
        let d = Matrix::diagonal(5, &sigma).unwrap();
        let a = u.matmul(&d).unwrap().matmul(&v.transpose()).unwrap();
        assert!(reconstruction_residual(&a, &u, &sigma, &v) < 1e-13);
    }

    #[test]
    fn off_measure_zero_for_orthogonal_columns() {
        let m = generate::already_orthogonal(6, 4, 7);
        assert!(off_diagonal_measure(&m) < 1e-12);
        assert!(off_diagonal_relative(&m) < 1e-13);
    }

    #[test]
    fn off_measure_positive_for_coupled_columns() {
        let m = Matrix::from_row_major(2, 2, &[1.0, 1.0, 0.0, 1.0]).unwrap();
        assert!(off_diagonal_measure(&m) > 0.5);
    }

    #[test]
    fn off_relative_is_scale_invariant() {
        let m = generate::random_uniform(8, 6, 3);
        let mut m2 = m.clone();
        m2.scale(1000.0);
        let a = off_diagonal_relative(&m);
        let b = off_diagonal_relative(&m2);
        assert!((a - b).abs() < 1e-12 * a.max(b));
    }

    #[test]
    fn monotonicity_helpers() {
        assert!(is_nonincreasing(&[3.0, 2.0, 2.0, 1.0]));
        assert!(!is_nonincreasing(&[1.0, 2.0]));
        assert!(is_nondecreasing(&[1.0, 1.0, 4.0]));
        assert!(!is_nondecreasing(&[2.0, 1.0]));
        assert!(is_nonincreasing(&[]));
        assert!(is_nonincreasing(&[1.0]));
    }

    #[test]
    fn spectrum_distance_basics() {
        assert_eq!(spectrum_distance(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((spectrum_distance(&[1.1, 2.0], &[1.0, 2.0]) - 0.1).abs() < 1e-12);
        // tiny reference values compared absolutely, not relatively
        assert!(spectrum_distance(&[1e-16], &[0.0]) < 1e-15);
    }
}
