//! Low-level vector kernels: dot products, norms, axpy.
//!
//! These are the only kernels in the hot path of a Jacobi sweep, so they are
//! written over plain slices (contiguous, bounds-check-friendly loops that
//! the compiler vectorizes) rather than through the `Matrix` abstraction.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        acc += a * b;
    }
    acc
}

/// Euclidean norm with scaling to avoid overflow/underflow on extreme data.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    let mut scale = 0.0_f64;
    for &v in x {
        scale = scale.max(v.abs());
    }
    if scale == 0.0 || !scale.is_finite() {
        return scale;
    }
    let inv = 1.0 / scale;
    let mut ssq = 0.0;
    for &v in x {
        let t = v * inv;
        ssq += t * t;
    }
    scale * ssq.sqrt()
}

/// Squared Euclidean norm (no overflow guard; used where magnitudes are tame).
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// `y += alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scale a slice in place.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// The three Gram entries `(a·a, b·b, a·b)` of a column pair, in one pass.
///
/// One fused pass halves the memory traffic of the convergence test that
/// precedes every rotation.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn gram3(a: &[f64], b: &[f64]) -> (f64, f64, f64) {
    assert_eq!(a.len(), b.len(), "gram3: length mismatch");
    let (mut aa, mut bb, mut ab) = (0.0, 0.0, 0.0);
    for (&x, &y) in a.iter().zip(b.iter()) {
        aa += x * x;
        bb += y * y;
        ab += x * y;
    }
    (aa, bb, ab)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm2_matches_naive_on_tame_data() {
        let x = [3.0, 4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norm2_survives_extreme_scales() {
        let big = [1e200, 1e200];
        let n = norm2(&big);
        assert!(n.is_finite());
        assert!((n - 1e200 * 2.0_f64.sqrt()).abs() / n < 1e-14);
        let small = [1e-200, 1e-200];
        let n = norm2(&small);
        assert!(n > 0.0);
        assert!((n - 1e-200 * 2.0_f64.sqrt()).abs() / n < 1e-14);
    }

    #[test]
    fn axpy_and_scal() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    #[test]
    fn gram3_consistent_with_dot() {
        let a = [1.0, 2.0, -1.0];
        let b = [0.5, -3.0, 2.0];
        let (aa, bb, ab) = gram3(&a, &b);
        assert_eq!(aa, dot(&a, &a));
        assert_eq!(bb, dot(&b, &b));
        assert_eq!(ab, dot(&a, &b));
    }

    #[test]
    fn norm2_sq_is_dot_with_self() {
        let a = [1.5, -2.0];
        assert_eq!(norm2_sq(&a), dot(&a, &a));
    }
}
