//! Low-level vector kernels: dot products, norms, axpy, fused rotations.
//!
//! These are the only kernels in the hot path of a Jacobi sweep, so they
//! are written over plain slices and structured for SIMD: every reduction
//! uses several *independent* accumulators (`chunks_exact` blocks of
//! [`UNROLL`] lanes), because a strict-left-to-right `f64` sum forms a
//! loop-carried dependency chain that LLVM is not allowed to vectorize.
//! With the accumulators independent, the compiler emits packed adds and
//! multiplies, and the dependency chain shrinks by the unroll factor even
//! in scalar code.
//!
//! The reassociated sums are *not* bitwise identical to the naive
//! left-to-right order; they are at least as accurate (shorter chains →
//! smaller worst-case rounding error). The original strict-order kernels
//! are kept in [`naive`] as the reference the property tests and the
//! benchmarks compare against.

/// Unroll width of the reduction kernels (independent accumulators).
pub const UNROLL: usize = 8;

/// Unroll width of the fused rotate kernel (it carries 2 accumulator
/// arrays plus 2 data streams, so a narrower unroll avoids register
/// spills).
const ROT_UNROLL: usize = 4;

/// Strict-order reference implementations of the unrolled kernels.
///
/// These are the textbook loops the optimized kernels are validated
/// against (property tests) and benchmarked against (`BENCH_kernels.json`).
/// They stay `pub` so the bench harness can time naive vs unrolled.
pub mod naive {
    /// Strict left-to-right dot product.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn dot(x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot: length mismatch");
        let mut acc = 0.0;
        for (a, b) in x.iter().zip(y.iter()) {
            acc += a * b;
        }
        acc
    }

    /// Strict-order squared Euclidean norm.
    #[inline]
    pub fn norm2_sq(x: &[f64]) -> f64 {
        dot(x, x)
    }

    /// Strict-order fused Gram entries `(a·a, b·b, a·b)`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn gram3(a: &[f64], b: &[f64]) -> (f64, f64, f64) {
        assert_eq!(a.len(), b.len(), "gram3: length mismatch");
        let (mut aa, mut bb, mut ab) = (0.0, 0.0, 0.0);
        for (&x, &y) in a.iter().zip(b.iter()) {
            aa += x * x;
            bb += y * y;
            ab += x * y;
        }
        (aa, bb, ab)
    }

    /// Element-at-a-time `y += alpha * x`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi += alpha * xi;
        }
    }

    /// Unfused rotation apply + two separate norm passes, the sequence the
    /// fused kernel replaces. Reference for the fused-rotation benches and
    /// property tests.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn rotate_then_norms(c: f64, s: f64, a: &mut [f64], b: &mut [f64]) -> (f64, f64) {
        assert_eq!(a.len(), b.len(), "rotate_then_norms: length mismatch");
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            let (ax, bx) = (*x, *y);
            *x = c * ax - s * bx;
            *y = s * ax + c * bx;
        }
        (norm2_sq(a), norm2_sq(b))
    }
}

#[inline]
fn sum_unrolled(acc: [f64; UNROLL]) -> f64 {
    // pairwise tree sum: same depth the SIMD horizontal reduction has
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Dot product of two equal-length slices (multi-accumulator, vectorizable).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = [0.0f64; UNROLL];
    let xc = x.chunks_exact(UNROLL);
    let yc = y.chunks_exact(UNROLL);
    let (xr, yr) = (xc.remainder(), yc.remainder());
    for (cx, cy) in xc.zip(yc) {
        // fixed-size views: compile-time lengths, no per-element bounds
        // checks inside the unrolled body
        let cx: &[f64; UNROLL] = cx.try_into().expect("chunks_exact");
        let cy: &[f64; UNROLL] = cy.try_into().expect("chunks_exact");
        for k in 0..UNROLL {
            acc[k] += cx[k] * cy[k];
        }
    }
    let mut tail = 0.0;
    for (a, b) in xr.iter().zip(yr.iter()) {
        tail += a * b;
    }
    sum_unrolled(acc) + tail
}

/// Squared Euclidean norm (no overflow guard; used where magnitudes are
/// tame). Multi-accumulator, vectorizable.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    let mut acc = [0.0f64; UNROLL];
    let xc = x.chunks_exact(UNROLL);
    let xr = xc.remainder();
    for cx in xc {
        let cx: &[f64; UNROLL] = cx.try_into().expect("chunks_exact");
        for k in 0..UNROLL {
            acc[k] += cx[k] * cx[k];
        }
    }
    let mut tail = 0.0;
    for &a in xr {
        tail += a * a;
    }
    sum_unrolled(acc) + tail
}

/// Euclidean norm with scaling to avoid overflow/underflow on extreme data.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    let mut scale = 0.0_f64;
    for &v in x {
        scale = scale.max(v.abs());
    }
    if scale == 0.0 || !scale.is_finite() {
        return scale;
    }
    let inv = 1.0 / scale;
    let mut acc = [0.0f64; UNROLL];
    let xc = x.chunks_exact(UNROLL);
    let xr = xc.remainder();
    for cx in xc {
        for k in 0..UNROLL {
            let t = cx[k] * inv;
            acc[k] += t * t;
        }
    }
    let mut tail = 0.0;
    for &v in xr {
        let t = v * inv;
        tail += t * t;
    }
    scale * (sum_unrolled(acc) + tail).sqrt()
}

/// `y += alpha * x` (unrolled; no reduction, but the fixed-width blocks
/// remove the bounds checks and let the compiler emit packed FMAs).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let split = y.len() - y.len() % UNROLL;
    let (ym, yt) = y.split_at_mut(split);
    let (xm, xt) = x.split_at(split);
    for (cy, cx) in ym.chunks_exact_mut(UNROLL).zip(xm.chunks_exact(UNROLL)) {
        for k in 0..UNROLL {
            cy[k] += alpha * cx[k];
        }
    }
    for (yi, xi) in yt.iter_mut().zip(xt.iter()) {
        *yi += alpha * xi;
    }
}

/// Scale a slice in place.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// The three Gram entries `(a·a, b·b, a·b)` of a column pair, in one pass.
///
/// One fused pass halves the memory traffic of the convergence test that
/// precedes every rotation; the three reductions run on independent
/// accumulator blocks so the whole pass vectorizes.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn gram3(a: &[f64], b: &[f64]) -> (f64, f64, f64) {
    assert_eq!(a.len(), b.len(), "gram3: length mismatch");
    let split = a.len() - a.len() % UNROLL;
    let (am, ar) = a.split_at(split);
    let (bm, br) = b.split_at(split);
    let (aa, bb, ab) = gram3_main(am, bm);
    let (mut taa, mut tbb, mut tab) = (0.0, 0.0, 0.0);
    for (&x, &y) in ar.iter().zip(br.iter()) {
        taa += x * x;
        tbb += y * y;
        tab += x * y;
    }
    (sum_unrolled(aa) + taa, sum_unrolled(bb) + tbb, sum_unrolled(ab) + tab)
}

/// Accumulator lanes of `gram3` over a length-multiple-of-[`UNROLL`]
/// prefix: lane `k` holds the partial sums over elements `j·UNROLL + k`.
///
/// Written with explicit AVX intrinsics on x86-64: LLVM's SLP pass pairs
/// the three reductions *across* the `a`/`b` streams (unpck shuffles at
/// 128-bit width) instead of across lanes, which runs slower than the
/// strict scalar loop. The intrinsic version is plain lane-wise
/// multiply-then-add — no FMA contraction — so its lanes are bitwise
/// identical to the scalar fallback below.
#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
#[inline]
fn gram3_main(a: &[f64], b: &[f64]) -> ([f64; UNROLL], [f64; UNROLL], [f64; UNROLL]) {
    use core::arch::x86_64::*;
    debug_assert_eq!(a.len() % UNROLL, 0);
    debug_assert_eq!(a.len(), b.len());
    let mut aa = [0.0f64; UNROLL];
    let mut bb = [0.0f64; UNROLL];
    let mut ab = [0.0f64; UNROLL];
    // SAFETY: loads/stores stay within `a`/`b` (length checked to be a
    // multiple of UNROLL = 8, read in 4-lane halves) and within the
    // 8-lane accumulator arrays; AVX is a compile-time target feature.
    unsafe {
        let (mut aa_lo, mut aa_hi) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        let (mut bb_lo, mut bb_hi) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        let (mut ab_lo, mut ab_hi) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < a.len() {
            let a_lo = _mm256_loadu_pd(pa.add(i));
            let a_hi = _mm256_loadu_pd(pa.add(i + 4));
            let b_lo = _mm256_loadu_pd(pb.add(i));
            let b_hi = _mm256_loadu_pd(pb.add(i + 4));
            aa_lo = _mm256_add_pd(aa_lo, _mm256_mul_pd(a_lo, a_lo));
            aa_hi = _mm256_add_pd(aa_hi, _mm256_mul_pd(a_hi, a_hi));
            bb_lo = _mm256_add_pd(bb_lo, _mm256_mul_pd(b_lo, b_lo));
            bb_hi = _mm256_add_pd(bb_hi, _mm256_mul_pd(b_hi, b_hi));
            ab_lo = _mm256_add_pd(ab_lo, _mm256_mul_pd(a_lo, b_lo));
            ab_hi = _mm256_add_pd(ab_hi, _mm256_mul_pd(a_hi, b_hi));
            i += UNROLL;
        }
        _mm256_storeu_pd(aa.as_mut_ptr(), aa_lo);
        _mm256_storeu_pd(aa.as_mut_ptr().add(4), aa_hi);
        _mm256_storeu_pd(bb.as_mut_ptr(), bb_lo);
        _mm256_storeu_pd(bb.as_mut_ptr().add(4), bb_hi);
        _mm256_storeu_pd(ab.as_mut_ptr(), ab_lo);
        _mm256_storeu_pd(ab.as_mut_ptr().add(4), ab_hi);
    }
    (aa, bb, ab)
}

/// Portable fallback: the same lane assignment in scalar code.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx")))]
#[inline]
fn gram3_main(a: &[f64], b: &[f64]) -> ([f64; UNROLL], [f64; UNROLL], [f64; UNROLL]) {
    debug_assert_eq!(a.len() % UNROLL, 0);
    let mut aa = [0.0f64; UNROLL];
    let mut bb = [0.0f64; UNROLL];
    let mut ab = [0.0f64; UNROLL];
    for (ca, cb) in a.chunks_exact(UNROLL).zip(b.chunks_exact(UNROLL)) {
        let ca: &[f64; UNROLL] = ca.try_into().expect("chunks_exact");
        let cb: &[f64; UNROLL] = cb.try_into().expect("chunks_exact");
        for k in 0..UNROLL {
            let (x, y) = (ca[k], cb[k]);
            aa[k] += x * x;
            bb[k] += y * y;
            ab[k] += x * y;
        }
    }
    (aa, bb, ab)
}

/// Fused plane rotation: apply `a' = c·a − s·b`, `b' = s·a + c·b` (or the
/// swapped form `a' = s·a + c·b`, `b' = c·a − s·b` when `SWAP`) while
/// accumulating the updated squared norms `(‖a'‖², ‖b'‖²)` in the same
/// pass. This is the executor's hot loop: it collapses the old
/// apply-then-renorm sequence (3 traversals of each column) into one.
#[inline]
fn rotate_fused_impl<const SWAP: bool>(c: f64, s: f64, a: &mut [f64], b: &mut [f64]) -> (f64, f64) {
    let split = a.len() - a.len() % ROT_UNROLL;
    let (am, at) = a.split_at_mut(split);
    let (bm, bt) = b.split_at_mut(split);
    let (na, nb) = rotate_fused_main::<SWAP>(c, s, am, bm);
    let (mut tna, mut tnb) = (0.0, 0.0);
    for (x, y) in at.iter_mut().zip(bt.iter_mut()) {
        let (ax, bx) = (*x, *y);
        let xp = c * ax - s * bx;
        let yp = s * ax + c * bx;
        let (da, db) = if SWAP { (yp, xp) } else { (xp, yp) };
        *x = da;
        *y = db;
        tna += da * da;
        tnb += db * db;
    }
    ((na[0] + na[1]) + (na[2] + na[3]) + tna, (nb[0] + nb[1]) + (nb[2] + nb[3]) + tnb)
}

/// Accumulator lanes of the fused rotation over a
/// length-multiple-of-[`ROT_UNROLL`] prefix.
///
/// Explicit AVX on x86-64 for the same reason as [`gram3_main`]: the plain
/// form auto-vectorizes, but for `SWAP = true` LLVM's SLP pass pairs the
/// updates *across* the `a`/`b` streams (scalar + `unpck` shuffles at
/// 128-bit width) and ran ~3× slower than the plain form. The intrinsic
/// version is lane-wise multiply/add/sub — no FMA contraction — and routes
/// both forms through the identical arithmetic (only the store destinations
/// and norm accumulators exchange roles), so its lanes are bitwise identical
/// to the scalar fallback below.
#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
#[inline]
fn rotate_fused_main<const SWAP: bool>(
    c: f64,
    s: f64,
    a: &mut [f64],
    b: &mut [f64],
) -> ([f64; ROT_UNROLL], [f64; ROT_UNROLL]) {
    use core::arch::x86_64::*;
    debug_assert_eq!(a.len() % ROT_UNROLL, 0);
    debug_assert_eq!(a.len(), b.len());
    let mut na = [0.0f64; ROT_UNROLL];
    let mut nb = [0.0f64; ROT_UNROLL];
    // SAFETY: loads/stores stay within `a`/`b` (length checked to be a
    // multiple of ROT_UNROLL = 4, processed one 4-lane vector at a time)
    // and within the 4-lane accumulator arrays; AVX is a compile-time
    // target feature.
    unsafe {
        let vc = _mm256_set1_pd(c);
        let vs = _mm256_set1_pd(s);
        let mut acc_a = _mm256_setzero_pd();
        let mut acc_b = _mm256_setzero_pd();
        let (pa, pb) = (a.as_mut_ptr(), b.as_mut_ptr());
        let mut i = 0;
        while i < a.len() {
            let x = _mm256_loadu_pd(pa.add(i));
            let y = _mm256_loadu_pd(pb.add(i));
            let xp = _mm256_sub_pd(_mm256_mul_pd(vc, x), _mm256_mul_pd(vs, y));
            let yp = _mm256_add_pd(_mm256_mul_pd(vs, x), _mm256_mul_pd(vc, y));
            let (da, db) = if SWAP { (yp, xp) } else { (xp, yp) };
            _mm256_storeu_pd(pa.add(i), da);
            _mm256_storeu_pd(pb.add(i), db);
            acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(da, da));
            acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(db, db));
            i += ROT_UNROLL;
        }
        _mm256_storeu_pd(na.as_mut_ptr(), acc_a);
        _mm256_storeu_pd(nb.as_mut_ptr(), acc_b);
    }
    (na, nb)
}

/// Portable fallback: the same lane assignment in scalar code.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx")))]
#[inline]
fn rotate_fused_main<const SWAP: bool>(
    c: f64,
    s: f64,
    a: &mut [f64],
    b: &mut [f64],
) -> ([f64; ROT_UNROLL], [f64; ROT_UNROLL]) {
    debug_assert_eq!(a.len() % ROT_UNROLL, 0);
    let mut na = [0.0f64; ROT_UNROLL];
    let mut nb = [0.0f64; ROT_UNROLL];
    for (ca, cb) in a.chunks_exact_mut(ROT_UNROLL).zip(b.chunks_exact_mut(ROT_UNROLL)) {
        for k in 0..ROT_UNROLL {
            let (x, y) = (ca[k], cb[k]);
            let xp = c * x - s * y;
            let yp = s * x + c * y;
            let (da, db) = if SWAP { (yp, xp) } else { (xp, yp) };
            ca[k] = da;
            cb[k] = db;
            na[k] += da * da;
            nb[k] += db * db;
        }
    }
    (na, nb)
}

/// Fused rotation, plain form (equation (1)): returns the exact updated
/// squared norms `(‖a'‖², ‖b'‖²)` computed in the same pass as the update.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn rotate_fused(c: f64, s: f64, a: &mut [f64], b: &mut [f64]) -> (f64, f64) {
    assert_eq!(a.len(), b.len(), "rotate_fused: length mismatch");
    rotate_fused_impl::<false>(c, s, a, b)
}

/// Fused rotation, swapped form (equation (3) — rotation + column
/// interchange in one pass): returns the exact updated squared norms.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn rotate_fused_swapped(c: f64, s: f64, a: &mut [f64], b: &mut [f64]) -> (f64, f64) {
    assert_eq!(a.len(), b.len(), "rotate_fused_swapped: length mismatch");
    rotate_fused_impl::<true>(c, s, a, b)
}

/// Row-tile length (in elements) of the blocked panel kernels
/// [`gram_block`] / [`panel_update`]. With a `2c = 64` column union the
/// input tile is `64 · 128 · 8 B = 64 KiB` — resident in L2 while each
/// output column streams over it.
pub const PANEL_TILE: usize = 128;

/// Column `i` of the union panel `[X Y]` (both column-major with `m` rows).
#[inline]
fn union_col<'a>(x: &'a [f64], y: &'a [f64], m: usize, i: usize) -> &'a [f64] {
    let off = i * m;
    if off < x.len() {
        &x[off..off + m]
    } else {
        &y[off - x.len()..off - x.len() + m]
    }
}

/// Adjacent columns `j` and `j + 1` of the union panel `[X Y]`, mutably —
/// both inside `x`, both inside `y`, or straddling the panel boundary.
#[inline]
fn union_col_pair_mut<'a>(
    x: &'a mut [f64],
    y: &'a mut [f64],
    m: usize,
    j: usize,
) -> (&'a mut [f64], &'a mut [f64]) {
    let xs = x.len();
    let off = j * m;
    if off + 2 * m <= xs {
        x[off..off + 2 * m].split_at_mut(m)
    } else if off >= xs {
        y[off - xs..off - xs + 2 * m].split_at_mut(m)
    } else {
        (&mut x[off..off + m], &mut y[0..m])
    }
}

/// Unroll width of the 2×2 blocked Gram kernel [`dot4`]: two 4-lane
/// vectors in flight per dot product (8 independent fma chains total).
const DOT4_UNROLL: usize = 8;

/// Accumulator lanes of the four simultaneous dot products
/// `(a0·b0, a1·b0, a0·b1, a1·b1)` over a length-multiple-of-
/// [`DOT4_UNROLL`] prefix: lane `l` of each dot holds the partial sums
/// over elements `j·DOT4_UNROLL + l`.
///
/// This is the register-blocked heart of [`gram_block`]: four reductions
/// share every load (2 flops per load versus 1 for four separate
/// [`dot`]s), and the eight independent fma chains hide the fma latency.
/// Both paths accumulate with fused multiply-adds (`_mm256_fmadd_pd` /
/// [`f64::mul_add`]), which are exactly rounded and therefore bitwise
/// identical between the intrinsic version and the scalar fallback.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline]
fn dot4_main(a0: &[f64], a1: &[f64], b0: &[f64], b1: &[f64]) -> [[f64; DOT4_UNROLL]; 4] {
    use core::arch::x86_64::*;
    debug_assert_eq!(a0.len() % DOT4_UNROLL, 0);
    let mut out = [[0.0f64; DOT4_UNROLL]; 4];
    // SAFETY: loads stay within the four equal-length slices (length a
    // multiple of DOT4_UNROLL = 8, one 8-lane vector per step) and stores
    // within the 8-lane accumulator rows; AVX-512F is a compile-time
    // target feature. The per-lane sums are identical to the 256-bit and
    // scalar paths — one 8-wide register simply holds what those track as
    // two halves or eight scalars.
    unsafe {
        let mut acc = [_mm512_setzero_pd(); 4];
        let (p0, p1, q0, q1) = (a0.as_ptr(), a1.as_ptr(), b0.as_ptr(), b1.as_ptr());
        let mut i = 0;
        while i < a0.len() {
            let va0 = _mm512_loadu_pd(p0.add(i));
            let va1 = _mm512_loadu_pd(p1.add(i));
            let vb0 = _mm512_loadu_pd(q0.add(i));
            let vb1 = _mm512_loadu_pd(q1.add(i));
            acc[0] = _mm512_fmadd_pd(va0, vb0, acc[0]);
            acc[1] = _mm512_fmadd_pd(va1, vb0, acc[1]);
            acc[2] = _mm512_fmadd_pd(va0, vb1, acc[2]);
            acc[3] = _mm512_fmadd_pd(va1, vb1, acc[3]);
            i += DOT4_UNROLL;
        }
        for d in 0..4 {
            _mm512_storeu_pd(out[d].as_mut_ptr(), acc[d]);
        }
    }
    out
}

#[cfg(all(target_arch = "x86_64", target_feature = "fma", not(target_feature = "avx512f")))]
#[inline]
#[allow(clippy::many_single_char_names)]
fn dot4_main(a0: &[f64], a1: &[f64], b0: &[f64], b1: &[f64]) -> [[f64; DOT4_UNROLL]; 4] {
    use core::arch::x86_64::*;
    debug_assert_eq!(a0.len() % DOT4_UNROLL, 0);
    let mut out = [[0.0f64; DOT4_UNROLL]; 4];
    // SAFETY: loads stay within the four equal-length slices (length a
    // multiple of DOT4_UNROLL = 8, read in 4-lane halves) and stores
    // within the 8-lane accumulator rows; FMA is a compile-time target
    // feature.
    unsafe {
        let mut acc = [_mm256_setzero_pd(); 8];
        let (p0, p1, q0, q1) = (a0.as_ptr(), a1.as_ptr(), b0.as_ptr(), b1.as_ptr());
        let mut i = 0;
        while i < a0.len() {
            let a0l = _mm256_loadu_pd(p0.add(i));
            let a0h = _mm256_loadu_pd(p0.add(i + 4));
            let a1l = _mm256_loadu_pd(p1.add(i));
            let a1h = _mm256_loadu_pd(p1.add(i + 4));
            let b0l = _mm256_loadu_pd(q0.add(i));
            let b0h = _mm256_loadu_pd(q0.add(i + 4));
            let b1l = _mm256_loadu_pd(q1.add(i));
            let b1h = _mm256_loadu_pd(q1.add(i + 4));
            acc[0] = _mm256_fmadd_pd(a0l, b0l, acc[0]);
            acc[1] = _mm256_fmadd_pd(a0h, b0h, acc[1]);
            acc[2] = _mm256_fmadd_pd(a1l, b0l, acc[2]);
            acc[3] = _mm256_fmadd_pd(a1h, b0h, acc[3]);
            acc[4] = _mm256_fmadd_pd(a0l, b1l, acc[4]);
            acc[5] = _mm256_fmadd_pd(a0h, b1h, acc[5]);
            acc[6] = _mm256_fmadd_pd(a1l, b1l, acc[6]);
            acc[7] = _mm256_fmadd_pd(a1h, b1h, acc[7]);
            i += DOT4_UNROLL;
        }
        for d in 0..4 {
            _mm256_storeu_pd(out[d].as_mut_ptr(), acc[2 * d]);
            _mm256_storeu_pd(out[d].as_mut_ptr().add(4), acc[2 * d + 1]);
        }
    }
    out
}

/// Portable fallback: the same lane assignment with scalar fused
/// multiply-adds.
#[cfg(not(all(target_arch = "x86_64", target_feature = "fma")))]
#[inline]
fn dot4_main(a0: &[f64], a1: &[f64], b0: &[f64], b1: &[f64]) -> [[f64; DOT4_UNROLL]; 4] {
    debug_assert_eq!(a0.len() % DOT4_UNROLL, 0);
    let mut out = [[0.0f64; DOT4_UNROLL]; 4];
    let mut j = 0;
    while j < a0.len() {
        for l in 0..DOT4_UNROLL {
            let (x0, x1, y0, y1) = (a0[j + l], a1[j + l], b0[j + l], b1[j + l]);
            out[0][l] = x0.mul_add(y0, out[0][l]);
            out[1][l] = x1.mul_add(y0, out[1][l]);
            out[2][l] = x0.mul_add(y1, out[2][l]);
            out[3][l] = x1.mul_add(y1, out[3][l]);
        }
        j += DOT4_UNROLL;
    }
    out
}

/// The four dot products `(a0·b0, a1·b0, a0·b1, a1·b1)` in one fused pass.
#[inline]
fn dot4(a0: &[f64], a1: &[f64], b0: &[f64], b1: &[f64]) -> [f64; 4] {
    let n = a0.len();
    debug_assert!(a1.len() == n && b0.len() == n && b1.len() == n);
    let split = n - n % DOT4_UNROLL;
    let lanes = dot4_main(&a0[..split], &a1[..split], &b0[..split], &b1[..split]);
    let mut out = [0.0f64; 4];
    for (d, acc) in lanes.iter().enumerate() {
        out[d] = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    }
    for i in split..n {
        out[0] = a0[i].mul_add(b0[i], out[0]);
        out[1] = a1[i].mul_add(b0[i], out[1]);
        out[2] = a0[i].mul_add(b1[i], out[2]);
        out[3] = a1[i].mul_add(b1[i], out[3]);
    }
    out
}

/// `G = [X Y]ᵀ[X Y]`: the `k×k` Gram matrix of the column union of two
/// column-major panels (`k = (x.len() + y.len()) / m`), written
/// column-major into `g` (both triangles).
///
/// The upper triangle is computed in 2×2 register blocks by [`dot4`]
/// (four reductions per pass, every load shared by two of them) with the
/// `2×2` diagonal blocks falling out of one fused [`gram3`] each; the
/// lower triangle is mirrored. Columns are walked at full length — the
/// union panels this serves are L2-resident, and each column is read
/// `k/2` times instead of the `k` times of unblocked dots.
///
/// # Panics
/// Panics if a panel length is not a multiple of `m`, or if `g.len() != k²`.
pub fn gram_block(x: &[f64], y: &[f64], m: usize, g: &mut [f64]) {
    assert_eq!(x.len() % m.max(1), 0, "gram_block: x is not whole columns");
    assert_eq!(y.len() % m.max(1), 0, "gram_block: y is not whole columns");
    let k = (x.len() + y.len()).checked_div(m).unwrap_or(0);
    assert_eq!(g.len(), k * k, "gram_block: output must be k×k");
    if k == 0 {
        return;
    }
    let ke = k & !1;
    for jb in (0..ke).step_by(2) {
        let cj0 = union_col(x, y, m, jb);
        let cj1 = union_col(x, y, m, jb + 1);
        let (aa, bb, ab) = gram3(cj0, cj1);
        g[jb + k * jb] = aa;
        g[jb + 1 + k * (jb + 1)] = bb;
        g[jb + k * (jb + 1)] = ab;
        for ib in (0..jb).step_by(2) {
            let ci0 = union_col(x, y, m, ib);
            let ci1 = union_col(x, y, m, ib + 1);
            let d = dot4(ci0, ci1, cj0, cj1);
            g[ib + k * jb] = d[0];
            g[ib + 1 + k * jb] = d[1];
            g[ib + k * (jb + 1)] = d[2];
            g[ib + 1 + k * (jb + 1)] = d[3];
        }
    }
    if k != ke {
        let j = k - 1;
        let cj = union_col(x, y, m, j);
        for i in 0..j {
            g[i + k * j] = dot(union_col(x, y, m, i), cj);
        }
        g[j + k * j] = norm2_sq(cj);
    }
    for j in 0..k {
        for i in 0..j {
            g[j + k * i] = g[i + k * j];
        }
    }
}

/// `y = alpha · x` (the initializing form of [`axpy`]).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn scaled_copy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "scaled_copy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi = alpha * xi;
    }
}

/// Four-source weighted accumulation, the GEMM micro-kernel of
/// [`panel_update`]: elementwise
/// `out[i] = w3·s3[i] + (w2·s2[i] + (w1·s1[i] + (w0·s0[i] + base)))`
/// where `base` is `0` when `INIT` or the previous `out[i]` otherwise,
/// every product folded in with a fused multiply-add.
///
/// Gathering four inputs per pass quarters the load/store traffic on
/// `out` that made a chain of [`axpy`]s memory-bound, and the element
/// updates are independent so the four-deep fma chains pipeline across
/// the unrolled vectors. The operation is elementwise with exactly
/// rounded fmas, so the intrinsic path and the scalar fallback are
/// bitwise identical.
#[cfg(all(target_arch = "x86_64", target_feature = "fma"))]
#[inline]
fn wsum4<const INIT: bool>(
    w: [f64; 4],
    s0: &[f64],
    s1: &[f64],
    s2: &[f64],
    s3: &[f64],
    out: &mut [f64],
) {
    use core::arch::x86_64::*;
    let n = out.len();
    debug_assert!(s0.len() == n && s1.len() == n && s2.len() == n && s3.len() == n);
    // SAFETY: all loads/stores stay within the five equal-length slices;
    // the vector loop covers whole 4-lane chunks and the scalar tail the
    // rest; FMA is a compile-time target feature.
    unsafe {
        let (vw0, vw1) = (_mm256_set1_pd(w[0]), _mm256_set1_pd(w[1]));
        let (vw2, vw3) = (_mm256_set1_pd(w[2]), _mm256_set1_pd(w[3]));
        let (p0, p1, p2, p3) = (s0.as_ptr(), s1.as_ptr(), s2.as_ptr(), s3.as_ptr());
        let po = out.as_mut_ptr();
        let mut i = 0;
        // two vectors in flight: each output element is a serial chain of
        // four fmas, so independent chunks are needed to hide the latency
        while i + 8 <= n {
            let mut va = if INIT { _mm256_setzero_pd() } else { _mm256_loadu_pd(po.add(i)) };
            let mut vb = if INIT { _mm256_setzero_pd() } else { _mm256_loadu_pd(po.add(i + 4)) };
            va = _mm256_fmadd_pd(vw0, _mm256_loadu_pd(p0.add(i)), va);
            vb = _mm256_fmadd_pd(vw0, _mm256_loadu_pd(p0.add(i + 4)), vb);
            va = _mm256_fmadd_pd(vw1, _mm256_loadu_pd(p1.add(i)), va);
            vb = _mm256_fmadd_pd(vw1, _mm256_loadu_pd(p1.add(i + 4)), vb);
            va = _mm256_fmadd_pd(vw2, _mm256_loadu_pd(p2.add(i)), va);
            vb = _mm256_fmadd_pd(vw2, _mm256_loadu_pd(p2.add(i + 4)), vb);
            va = _mm256_fmadd_pd(vw3, _mm256_loadu_pd(p3.add(i)), va);
            vb = _mm256_fmadd_pd(vw3, _mm256_loadu_pd(p3.add(i + 4)), vb);
            _mm256_storeu_pd(po.add(i), va);
            _mm256_storeu_pd(po.add(i + 4), vb);
            i += 8;
        }
        while i + 4 <= n {
            let mut va = if INIT { _mm256_setzero_pd() } else { _mm256_loadu_pd(po.add(i)) };
            va = _mm256_fmadd_pd(vw0, _mm256_loadu_pd(p0.add(i)), va);
            va = _mm256_fmadd_pd(vw1, _mm256_loadu_pd(p1.add(i)), va);
            va = _mm256_fmadd_pd(vw2, _mm256_loadu_pd(p2.add(i)), va);
            va = _mm256_fmadd_pd(vw3, _mm256_loadu_pd(p3.add(i)), va);
            _mm256_storeu_pd(po.add(i), va);
            i += 4;
        }
        while i < n {
            let base = if INIT { 0.0 } else { *po.add(i) };
            let acc = w[0].mul_add(*p0.add(i), base);
            let acc = w[1].mul_add(*p1.add(i), acc);
            let acc = w[2].mul_add(*p2.add(i), acc);
            *po.add(i) = w[3].mul_add(*p3.add(i), acc);
            i += 1;
        }
    }
}

/// Portable fallback: the same elementwise fused-multiply-add chain.
#[cfg(not(all(target_arch = "x86_64", target_feature = "fma")))]
#[inline]
fn wsum4<const INIT: bool>(
    w: [f64; 4],
    s0: &[f64],
    s1: &[f64],
    s2: &[f64],
    s3: &[f64],
    out: &mut [f64],
) {
    for (i, o) in out.iter_mut().enumerate() {
        let base = if INIT { 0.0 } else { *o };
        let acc = w[0].mul_add(s0[i], base);
        let acc = w[1].mul_add(s1[i], acc);
        let acc = w[2].mul_add(s2[i], acc);
        *o = w[3].mul_add(s3[i], acc);
    }
}

/// Two-output variant of [`wsum4`]: the same four sources accumulated
/// into two output columns with independent weight quadruples. Sharing
/// the source loads between the outputs doubles the flops per load,
/// which is what lifts the panel multiply from memory-bound to
/// near-arithmetic-bound. Same exactly-rounded fma semantics as
/// [`wsum4`], so the intrinsic and fallback paths agree bitwise.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline]
#[allow(clippy::too_many_arguments)]
fn wsum4x2<const INIT: bool>(
    wa: [f64; 4],
    wb: [f64; 4],
    s0: &[f64],
    s1: &[f64],
    s2: &[f64],
    s3: &[f64],
    out_a: &mut [f64],
    out_b: &mut [f64],
) {
    use core::arch::x86_64::*;
    let n = out_a.len();
    debug_assert!(out_b.len() == n);
    debug_assert!(s0.len() == n && s1.len() == n && s2.len() == n && s3.len() == n);
    // SAFETY: all loads/stores stay within the six equal-length slices;
    // the vector loop covers whole 8-lane chunks and the scalar tail the
    // rest; AVX-512F is a compile-time target feature. Elementwise
    // exactly-rounded fma chains — bitwise identical to the narrower
    // paths.
    unsafe {
        let (va0, va1) = (_mm512_set1_pd(wa[0]), _mm512_set1_pd(wa[1]));
        let (va2, va3) = (_mm512_set1_pd(wa[2]), _mm512_set1_pd(wa[3]));
        let (vb0, vb1) = (_mm512_set1_pd(wb[0]), _mm512_set1_pd(wb[1]));
        let (vb2, vb3) = (_mm512_set1_pd(wb[2]), _mm512_set1_pd(wb[3]));
        let (p0, p1, p2, p3) = (s0.as_ptr(), s1.as_ptr(), s2.as_ptr(), s3.as_ptr());
        let (pa, pb) = (out_a.as_mut_ptr(), out_b.as_mut_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let x0 = _mm512_loadu_pd(p0.add(i));
            let x1 = _mm512_loadu_pd(p1.add(i));
            let x2 = _mm512_loadu_pd(p2.add(i));
            let x3 = _mm512_loadu_pd(p3.add(i));
            let mut aa = if INIT { _mm512_setzero_pd() } else { _mm512_loadu_pd(pa.add(i)) };
            let mut ab = if INIT { _mm512_setzero_pd() } else { _mm512_loadu_pd(pb.add(i)) };
            aa = _mm512_fmadd_pd(va0, x0, aa);
            ab = _mm512_fmadd_pd(vb0, x0, ab);
            aa = _mm512_fmadd_pd(va1, x1, aa);
            ab = _mm512_fmadd_pd(vb1, x1, ab);
            aa = _mm512_fmadd_pd(va2, x2, aa);
            ab = _mm512_fmadd_pd(vb2, x2, ab);
            aa = _mm512_fmadd_pd(va3, x3, aa);
            ab = _mm512_fmadd_pd(vb3, x3, ab);
            _mm512_storeu_pd(pa.add(i), aa);
            _mm512_storeu_pd(pb.add(i), ab);
            i += 8;
        }
        while i < n {
            let (x0, x1, x2, x3) = (*p0.add(i), *p1.add(i), *p2.add(i), *p3.add(i));
            let base_a = if INIT { 0.0 } else { *pa.add(i) };
            let acc = wa[0].mul_add(x0, base_a);
            let acc = wa[1].mul_add(x1, acc);
            let acc = wa[2].mul_add(x2, acc);
            *pa.add(i) = wa[3].mul_add(x3, acc);
            let base_b = if INIT { 0.0 } else { *pb.add(i) };
            let acc = wb[0].mul_add(x0, base_b);
            let acc = wb[1].mul_add(x1, acc);
            let acc = wb[2].mul_add(x2, acc);
            *pb.add(i) = wb[3].mul_add(x3, acc);
            i += 1;
        }
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "fma", not(target_feature = "avx512f")))]
#[inline]
#[allow(clippy::too_many_arguments)]
fn wsum4x2<const INIT: bool>(
    wa: [f64; 4],
    wb: [f64; 4],
    s0: &[f64],
    s1: &[f64],
    s2: &[f64],
    s3: &[f64],
    out_a: &mut [f64],
    out_b: &mut [f64],
) {
    use core::arch::x86_64::*;
    let n = out_a.len();
    debug_assert!(out_b.len() == n);
    debug_assert!(s0.len() == n && s1.len() == n && s2.len() == n && s3.len() == n);
    // SAFETY: all loads/stores stay within the six equal-length slices;
    // the vector loop covers whole 4-lane chunks and the scalar tail the
    // rest; FMA is a compile-time target feature.
    unsafe {
        let (va0, va1) = (_mm256_set1_pd(wa[0]), _mm256_set1_pd(wa[1]));
        let (va2, va3) = (_mm256_set1_pd(wa[2]), _mm256_set1_pd(wa[3]));
        let (vb0, vb1) = (_mm256_set1_pd(wb[0]), _mm256_set1_pd(wb[1]));
        let (vb2, vb3) = (_mm256_set1_pd(wb[2]), _mm256_set1_pd(wb[3]));
        let (p0, p1, p2, p3) = (s0.as_ptr(), s1.as_ptr(), s2.as_ptr(), s3.as_ptr());
        let (pa, pb) = (out_a.as_mut_ptr(), out_b.as_mut_ptr());
        let mut i = 0;
        while i + 4 <= n {
            let x0 = _mm256_loadu_pd(p0.add(i));
            let x1 = _mm256_loadu_pd(p1.add(i));
            let x2 = _mm256_loadu_pd(p2.add(i));
            let x3 = _mm256_loadu_pd(p3.add(i));
            let mut aa = if INIT { _mm256_setzero_pd() } else { _mm256_loadu_pd(pa.add(i)) };
            let mut ab = if INIT { _mm256_setzero_pd() } else { _mm256_loadu_pd(pb.add(i)) };
            aa = _mm256_fmadd_pd(va0, x0, aa);
            ab = _mm256_fmadd_pd(vb0, x0, ab);
            aa = _mm256_fmadd_pd(va1, x1, aa);
            ab = _mm256_fmadd_pd(vb1, x1, ab);
            aa = _mm256_fmadd_pd(va2, x2, aa);
            ab = _mm256_fmadd_pd(vb2, x2, ab);
            aa = _mm256_fmadd_pd(va3, x3, aa);
            ab = _mm256_fmadd_pd(vb3, x3, ab);
            _mm256_storeu_pd(pa.add(i), aa);
            _mm256_storeu_pd(pb.add(i), ab);
            i += 4;
        }
        while i < n {
            let (x0, x1, x2, x3) = (*p0.add(i), *p1.add(i), *p2.add(i), *p3.add(i));
            let base_a = if INIT { 0.0 } else { *pa.add(i) };
            let acc = wa[0].mul_add(x0, base_a);
            let acc = wa[1].mul_add(x1, acc);
            let acc = wa[2].mul_add(x2, acc);
            *pa.add(i) = wa[3].mul_add(x3, acc);
            let base_b = if INIT { 0.0 } else { *pb.add(i) };
            let acc = wb[0].mul_add(x0, base_b);
            let acc = wb[1].mul_add(x1, acc);
            let acc = wb[2].mul_add(x2, acc);
            *pb.add(i) = wb[3].mul_add(x3, acc);
            i += 1;
        }
    }
}

/// Portable fallback: the same elementwise fused-multiply-add chains.
#[cfg(not(all(target_arch = "x86_64", target_feature = "fma")))]
#[inline]
#[allow(clippy::too_many_arguments)]
fn wsum4x2<const INIT: bool>(
    wa: [f64; 4],
    wb: [f64; 4],
    s0: &[f64],
    s1: &[f64],
    s2: &[f64],
    s3: &[f64],
    out_a: &mut [f64],
    out_b: &mut [f64],
) {
    for (i, (oa, ob)) in out_a.iter_mut().zip(out_b.iter_mut()).enumerate() {
        let (x0, x1, x2, x3) = (s0[i], s1[i], s2[i], s3[i]);
        let base_a = if INIT { 0.0 } else { *oa };
        let acc = wa[0].mul_add(x0, base_a);
        let acc = wa[1].mul_add(x1, acc);
        let acc = wa[2].mul_add(x2, acc);
        *oa = wa[3].mul_add(x3, acc);
        let base_b = if INIT { 0.0 } else { *ob };
        let acc = wb[0].mul_add(x0, base_b);
        let acc = wb[1].mul_add(x1, acc);
        let acc = wb[2].mul_add(x2, acc);
        *ob = wb[3].mul_add(x3, acc);
    }
}

/// Blocked panel update `[X Y] ← [X Y] · W` where `W` is the `k×k`
/// column-major orthogonal update accumulated by a block meeting
/// (`k = (x.len() + y.len()) / m`).
///
/// Row-tiled by [`PANEL_TILE`]: each tile of the input union is
/// snapshotted into `tile` (caller scratch, length ≥ `k · PANEL_TILE`),
/// then every output column is accumulated over the cache-resident
/// snapshot four sources at a time by the [`wsum4`] micro-kernel — one
/// read plus one write of the panel total, against the O(k²·m) column
/// traffic of applying rotations one pair at a time. Exact zeros in `W`
/// are skipped, so a near-identity `W` (late sweeps) degenerates to
/// cheap column copies.
///
/// # Panics
/// Panics if a panel length is not a multiple of `m`, `w.len() != k²`, or
/// `tile` is shorter than `k · PANEL_TILE`.
pub fn panel_update(x: &mut [f64], y: &mut [f64], m: usize, w: &[f64], tile: &mut [f64]) {
    assert_eq!(x.len() % m.max(1), 0, "panel_update: x is not whole columns");
    assert_eq!(y.len() % m.max(1), 0, "panel_update: y is not whole columns");
    let k = (x.len() + y.len()).checked_div(m).unwrap_or(0);
    assert_eq!(w.len(), k * k, "panel_update: w must be k×k");
    if k == 0 {
        return;
    }
    assert!(tile.len() >= k * PANEL_TILE, "panel_update: tile scratch too short");
    let mut r0 = 0;
    while r0 < m {
        let tb = (m - r0).min(PANEL_TILE);
        for i in 0..k {
            let src = &union_col(x, y, m, i)[r0..r0 + tb];
            tile[i * PANEL_TILE..i * PANEL_TILE + tb].copy_from_slice(src);
        }
        let nnz_of = |wj: &[f64]| wj.iter().filter(|&&v| v != 0.0).count();
        let mut j = 0;
        while j < k {
            let wj = &w[k * j..k * j + k];
            // two outputs at a time whenever both columns mix several
            // sources: the paired kernel shares every source load
            if j + 1 < k && nnz_of(wj) >= 2 && nnz_of(&w[k * (j + 1)..k * (j + 1) + k]) >= 2 {
                let wjb = &w[k * (j + 1)..k * (j + 1) + k];
                let (col_a, col_b) = union_col_pair_mut(x, y, m, j);
                let out_a = &mut col_a[r0..r0 + tb];
                let out_b = &mut col_b[r0..r0 + tb];
                let src_of = |i: usize| &tile[i * PANEL_TILE..i * PANEL_TILE + tb];
                let mut wsa = [0.0f64; 4];
                let mut wsb = [0.0f64; 4];
                let mut idx = [0usize; 4];
                let (mut fill, mut first) = (0usize, true);
                let mut flush = |wsa: [f64; 4], wsb: [f64; 4], idx: [usize; 4], first: bool| {
                    let (s0, s1, s2, s3) =
                        (src_of(idx[0]), src_of(idx[1]), src_of(idx[2]), src_of(idx[3]));
                    if first {
                        wsum4x2::<true>(wsa, wsb, s0, s1, s2, s3, out_a, out_b);
                    } else {
                        wsum4x2::<false>(wsa, wsb, s0, s1, s2, s3, out_a, out_b);
                    }
                };
                for i in 0..k {
                    let (wa, wb) = (wj[i], wjb[i]);
                    if wa == 0.0 && wb == 0.0 {
                        continue;
                    }
                    wsa[fill] = wa;
                    wsb[fill] = wb;
                    idx[fill] = i;
                    fill += 1;
                    if fill == 4 {
                        flush(wsa, wsb, idx, first);
                        first = false;
                        fill = 0;
                    }
                }
                if fill > 0 {
                    for slot in fill..4 {
                        wsa[slot] = 0.0;
                        wsb[slot] = 0.0;
                        idx[slot] = idx[0];
                    }
                    flush(wsa, wsb, idx, first);
                }
                j += 2;
                continue;
            }
            let out = {
                let off = j * m;
                let col = if off < x.len() {
                    &mut x[off..off + m]
                } else {
                    let off = off - x.len();
                    &mut y[off..off + m]
                };
                &mut col[r0..r0 + tb]
            };
            let src_of = |i: usize| &tile[i * PANEL_TILE..i * PANEL_TILE + tb];
            match nnz_of(wj) {
                0 => out.fill(0.0),
                1 => {
                    let i = wj.iter().position(|&v| v != 0.0).expect("nnz == 1");
                    scaled_copy(wj[i], src_of(i), out);
                }
                _ => {
                    // batches of four nonzero sources; a final partial
                    // batch is padded with zero weights (exact no-ops)
                    let mut ws = [0.0f64; 4];
                    let mut idx = [0usize; 4];
                    let (mut fill, mut first) = (0usize, true);
                    for (i, &wij) in wj.iter().enumerate() {
                        if wij == 0.0 {
                            continue;
                        }
                        ws[fill] = wij;
                        idx[fill] = i;
                        fill += 1;
                        if fill == 4 {
                            let (s0, s1, s2, s3) =
                                (src_of(idx[0]), src_of(idx[1]), src_of(idx[2]), src_of(idx[3]));
                            if first {
                                wsum4::<true>(ws, s0, s1, s2, s3, out);
                                first = false;
                            } else {
                                wsum4::<false>(ws, s0, s1, s2, s3, out);
                            }
                            fill = 0;
                        }
                    }
                    if fill > 0 {
                        for slot in fill..4 {
                            ws[slot] = 0.0;
                            idx[slot] = idx[0];
                        }
                        let (s0, s1, s2, s3) =
                            (src_of(idx[0]), src_of(idx[1]), src_of(idx[2]), src_of(idx[3]));
                        if first {
                            wsum4::<true>(ws, s0, s1, s2, s3, out);
                        } else {
                            wsum4::<false>(ws, s0, s1, s2, s3, out);
                        }
                    }
                }
            }
            j += 1;
        }
        r0 += tb;
    }
}

/// `out (ka×kb, column-major) = AᵀB` for two strided column-major
/// panels: column `j` of `A` is `a[j·lda .. j·lda + rows]` and likewise
/// for `B`. The panels may be sub-views of larger matrices (`lda`,
/// `ldb` ≥ `rows`), which is how the tall-skinny QR applies a block
/// reflector to a row-band of the trailing matrix without copying it.
///
/// Computed in 2×2 register blocks by the same [`dot4`] micro-kernel as
/// [`gram_block`] (four reductions per pass, every column load shared by
/// two of them), with single-[`dot`] edges for odd `ka`/`kb`.
///
/// # Panics
/// Panics if a panel is too short for its `(rows, ld, k)` view, if a
/// leading dimension is smaller than `rows`, or if `out.len() != ka·kb`.
#[allow(clippy::too_many_arguments)] // a strided-view GEMM is inherently (ptr, ld, k) × 3
pub fn gemm_tn(
    rows: usize,
    a: &[f64],
    lda: usize,
    ka: usize,
    b: &[f64],
    ldb: usize,
    kb: usize,
    out: &mut [f64],
) {
    assert!(lda >= rows && ldb >= rows, "gemm_tn: leading dimension < rows");
    assert_eq!(out.len(), ka * kb, "gemm_tn: output must be ka×kb");
    if ka == 0 || kb == 0 {
        return;
    }
    assert!(a.len() >= (ka - 1) * lda + rows, "gemm_tn: a too short");
    assert!(b.len() >= (kb - 1) * ldb + rows, "gemm_tn: b too short");
    let col_a = |i: usize| &a[i * lda..i * lda + rows];
    let col_b = |j: usize| &b[j * ldb..j * ldb + rows];
    let (kae, kbe) = (ka & !1, kb & !1);
    for j in (0..kbe).step_by(2) {
        let (bj0, bj1) = (col_b(j), col_b(j + 1));
        for i in (0..kae).step_by(2) {
            let d = dot4(col_a(i), col_a(i + 1), bj0, bj1);
            out[i + ka * j] = d[0];
            out[i + 1 + ka * j] = d[1];
            out[i + ka * (j + 1)] = d[2];
            out[i + 1 + ka * (j + 1)] = d[3];
        }
        if ka != kae {
            out[ka - 1 + ka * j] = dot(col_a(ka - 1), bj0);
            out[ka - 1 + ka * (j + 1)] = dot(col_a(ka - 1), bj1);
        }
    }
    if kb != kbe {
        let bj = col_b(kb - 1);
        for i in 0..ka {
            out[i + ka * (kb - 1)] = dot(col_a(i), bj);
        }
    }
}

/// Rank-`p` accumulation `C ← C + α·A·W` for a strided column-major
/// output: `A` is `rows×p` (column stride `lda`), `W` is a dense `p×q`
/// column-major coefficient block, and column `j` of `C` is
/// `c[j·ldc .. j·ldc + rows]`. This is the second half of a compact-WY
/// block-reflector application (`C ← C − V·(TᵀVᵀC)`), expressed on the
/// same [`wsum4`]/[`wsum4x2`] micro-kernels as [`panel_update`]:
/// row-tiled by [`PANEL_TILE`] so the `A` tile stays cache-resident
/// across all `q` output columns, two outputs per pass when possible so
/// every source load is shared.
///
/// # Panics
/// Panics if a panel is too short for its view, a leading dimension is
/// smaller than `rows`, or `w.len() != p·q`.
#[allow(clippy::too_many_arguments)] // a strided-view GEMM is inherently (ptr, ld, k) × 3
pub fn gemm_acc(
    rows: usize,
    a: &[f64],
    lda: usize,
    p: usize,
    w: &[f64],
    q: usize,
    alpha: f64,
    c: &mut [f64],
    ldc: usize,
) {
    assert!(lda >= rows && ldc >= rows, "gemm_acc: leading dimension < rows");
    assert_eq!(w.len(), p * q, "gemm_acc: w must be p×q");
    if p == 0 || q == 0 || rows == 0 {
        return;
    }
    assert!(a.len() >= (p - 1) * lda + rows, "gemm_acc: a too short");
    assert!(c.len() >= (q - 1) * ldc + rows, "gemm_acc: c too short");
    let mut r0 = 0;
    while r0 < rows {
        let tb = (rows - r0).min(PANEL_TILE);
        let src_of = |i: usize| &a[i * lda + r0..i * lda + r0 + tb];
        let mut j = 0;
        // pairs of output columns share every source load
        while j + 1 < q {
            let (wj, wj1) = (&w[p * j..p * (j + 1)], &w[p * (j + 1)..p * (j + 2)]);
            let (head, tail) = c.split_at_mut((j + 1) * ldc);
            let out_a = &mut head[j * ldc + r0..j * ldc + r0 + tb];
            let out_b = &mut tail[r0..r0 + tb];
            let mut wsa = [0.0f64; 4];
            let mut wsb = [0.0f64; 4];
            let mut idx = [0usize; 4];
            let mut fill = 0usize;
            for i in 0..p {
                let (wa, wb) = (alpha * wj[i], alpha * wj1[i]);
                if wa == 0.0 && wb == 0.0 {
                    continue;
                }
                wsa[fill] = wa;
                wsb[fill] = wb;
                idx[fill] = i;
                fill += 1;
                if fill == 4 {
                    wsum4x2::<false>(
                        wsa,
                        wsb,
                        src_of(idx[0]),
                        src_of(idx[1]),
                        src_of(idx[2]),
                        src_of(idx[3]),
                        out_a,
                        out_b,
                    );
                    fill = 0;
                }
            }
            if fill > 0 {
                for slot in fill..4 {
                    wsa[slot] = 0.0;
                    wsb[slot] = 0.0;
                    idx[slot] = idx[0];
                }
                wsum4x2::<false>(
                    wsa,
                    wsb,
                    src_of(idx[0]),
                    src_of(idx[1]),
                    src_of(idx[2]),
                    src_of(idx[3]),
                    out_a,
                    out_b,
                );
            }
            j += 2;
        }
        if j < q {
            let wj = &w[p * j..p * (j + 1)];
            let out = &mut c[j * ldc + r0..j * ldc + r0 + tb];
            let mut ws = [0.0f64; 4];
            let mut idx = [0usize; 4];
            let mut fill = 0usize;
            for (i, &wij) in wj.iter().enumerate() {
                if wij == 0.0 {
                    continue;
                }
                ws[fill] = alpha * wij;
                idx[fill] = i;
                fill += 1;
                if fill == 4 {
                    wsum4::<false>(
                        ws,
                        src_of(idx[0]),
                        src_of(idx[1]),
                        src_of(idx[2]),
                        src_of(idx[3]),
                        out,
                    );
                    fill = 0;
                }
            }
            if fill > 0 {
                for slot in fill..4 {
                    ws[slot] = 0.0;
                    idx[slot] = idx[0];
                }
                wsum4::<false>(
                    ws,
                    src_of(idx[0]),
                    src_of(idx[1]),
                    src_of(idx[2]),
                    src_of(idx[3]),
                    out,
                );
            }
        }
        r0 += tb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn unrolled_kernels_match_naive_closely() {
        // lengths straddling the unroll boundaries, including tails
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100, 257] {
            let x: Vec<f64> = (0..len).map(|i| ((i * 37 + 11) % 23) as f64 - 11.0).collect();
            let y: Vec<f64> = (0..len).map(|i| ((i * 53 + 5) % 19) as f64 - 9.0).collect();
            let tol = 1e-12 * (len.max(1) as f64);
            assert!((dot(&x, &y) - naive::dot(&x, &y)).abs() <= tol, "dot len {len}");
            assert!((norm2_sq(&x) - naive::norm2_sq(&x)).abs() <= tol, "norm2_sq len {len}");
            let (aa, bb, ab) = gram3(&x, &y);
            let (naa, nbb, nab) = naive::gram3(&x, &y);
            assert!(
                (aa - naa).abs() <= tol && (bb - nbb).abs() <= tol && (ab - nab).abs() <= tol,
                "gram3 len {len}"
            );
            let mut y1 = y.clone();
            let mut y2 = y.clone();
            axpy(1.5, &x, &mut y1);
            naive::axpy(1.5, &x, &mut y2);
            assert_eq!(y1, y2, "axpy len {len}");
        }
    }

    #[test]
    fn norm2_matches_naive_on_tame_data() {
        let x = [3.0, 4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norm2_survives_extreme_scales() {
        let big = [1e200, 1e200];
        let n = norm2(&big);
        assert!(n.is_finite());
        assert!((n - 1e200 * 2.0_f64.sqrt()).abs() / n < 1e-14);
        let small = [1e-200, 1e-200];
        let n = norm2(&small);
        assert!(n > 0.0);
        assert!((n - 1e-200 * 2.0_f64.sqrt()).abs() / n < 1e-14);
    }

    #[test]
    fn axpy_and_scal() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    #[test]
    fn gram3_consistent_with_dot() {
        let a = [1.0, 2.0, -1.0];
        let b = [0.5, -3.0, 2.0];
        let (aa, bb, ab) = gram3(&a, &b);
        assert!((aa - dot(&a, &a)).abs() < 1e-14);
        assert!((bb - dot(&b, &b)).abs() < 1e-14);
        assert!((ab - dot(&a, &b)).abs() < 1e-14);
    }

    #[test]
    fn norm2_sq_is_dot_with_self() {
        let a = [1.5, -2.0];
        assert_eq!(norm2_sq(&a), dot(&a, &a));
    }

    #[test]
    fn rotate_fused_matches_unfused_reference() {
        let (c, s) = (0.8, 0.6);
        for len in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33, 100] {
            let a0: Vec<f64> = (0..len).map(|i| (i as f64 * 0.7).sin()).collect();
            let b0: Vec<f64> = (0..len).map(|i| (i as f64 * 1.3).cos()).collect();

            let (mut a1, mut b1) = (a0.clone(), b0.clone());
            let (ra, rb) = naive::rotate_then_norms(c, s, &mut a1, &mut b1);

            let (mut a2, mut b2) = (a0.clone(), b0.clone());
            let (fa, fb) = rotate_fused(c, s, &mut a2, &mut b2);

            // the written columns are element-wise identical (same formula)
            assert_eq!(a1, a2, "len {len}");
            assert_eq!(b1, b2, "len {len}");
            // the fused norms agree with the recomputed ones up to rounding
            assert!((ra - fa).abs() <= 1e-13 * ra.max(1.0), "len {len}");
            assert!((rb - fb).abs() <= 1e-13 * rb.max(1.0), "len {len}");

            // swapped form = rotate, then exchange the columns
            let (mut a3, mut b3) = (a0.clone(), b0.clone());
            let (sa, sb) = rotate_fused_swapped(c, s, &mut a3, &mut b3);
            assert_eq!(a3, b1, "swapped len {len}");
            assert_eq!(b3, a1, "swapped len {len}");
            assert!((sa - fb).abs() <= 1e-13 * fb.max(1.0));
            assert!((sb - fa).abs() <= 1e-13 * fa.max(1.0));
        }
    }

    #[test]
    fn rotate_fused_identity_swap_is_exact_exchange() {
        let a0 = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b0 = vec![-1.0, 0.5, 2.0, -2.0, 0.25];
        let (mut a, mut b) = (a0.clone(), b0.clone());
        let (na, nb) = rotate_fused_swapped(1.0, 0.0, &mut a, &mut b);
        assert_eq!(a, b0);
        assert_eq!(b, a0);
        assert!((na - norm2_sq(&b0)).abs() < 1e-14);
        assert!((nb - norm2_sq(&a0)).abs() < 1e-14);
    }

    /// Deterministic pseudo-random panel (column-major, m×k).
    fn test_panel(m: usize, k: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        (0..m * k)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn gram_block_matches_pairwise_dots() {
        // straddle the tile boundary and odd/uneven splits
        for (m, cx, cy) in [(5, 2, 3), (PANEL_TILE, 4, 4), (PANEL_TILE + 7, 3, 5), (300, 1, 0)] {
            let x = test_panel(m, cx, 1);
            let y = test_panel(m, cy, 2);
            let k = cx + cy;
            let mut g = vec![0.0; k * k];
            gram_block(&x, &y, m, &mut g);
            for j in 0..k {
                for i in 0..k {
                    let want = naive::dot(union_col(&x, &y, m, i), union_col(&x, &y, m, j));
                    let got = g[i + k * j];
                    assert!(
                        (got - want).abs() <= 1e-12 * (m as f64),
                        "G[{i},{j}] m={m} cx={cx} cy={cy}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn gram_block_empty_is_ok() {
        let mut g = [];
        gram_block(&[], &[], 0, &mut g);
        gram_block(&[], &[], 4, &mut g);
    }

    #[test]
    fn panel_update_matches_explicit_multiply() {
        for (m, cx, cy) in [(6, 2, 2), (PANEL_TILE + 3, 3, 4), (2 * PANEL_TILE + 1, 5, 3)] {
            let k = cx + cy;
            let x0 = test_panel(m, cx, 3);
            let y0 = test_panel(m, cy, 4);
            // a dense-ish W with some exact zeros to exercise the skip path
            let mut w = test_panel(k, k, 5);
            w[0] = 0.0;
            if k > 1 {
                w[k + 1] = 0.0;
            }
            let (mut x, mut y) = (x0.clone(), y0.clone());
            let mut tile = vec![0.0; k * PANEL_TILE];
            panel_update(&mut x, &mut y, m, &w, &mut tile);
            for j in 0..k {
                for r in 0..m {
                    let want: f64 =
                        (0..k).map(|i| union_col(&x0, &y0, m, i)[r] * w[i + k * j]).sum();
                    let got = union_col(&x, &y, m, j)[r];
                    assert!(
                        (got - want).abs() <= 1e-12 * (k as f64),
                        "col {j} row {r} m={m}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn panel_update_identity_is_noop_bitwise() {
        let m = PANEL_TILE + 9;
        let (cx, cy) = (3, 2);
        let k = cx + cy;
        let x0 = test_panel(m, cx, 7);
        let y0 = test_panel(m, cy, 8);
        let mut w = vec![0.0; k * k];
        for i in 0..k {
            w[i + k * i] = 1.0;
        }
        let (mut x, mut y) = (x0.clone(), y0.clone());
        let mut tile = vec![0.0; k * PANEL_TILE];
        panel_update(&mut x, &mut y, m, &w, &mut tile);
        assert_eq!(x, x0);
        assert_eq!(y, y0);
    }

    #[test]
    fn scaled_copy_basic() {
        let x = [1.0, -2.0, 4.0];
        let mut y = [0.0; 3];
        scaled_copy(0.5, &x, &mut y);
        assert_eq!(y, [0.5, -1.0, 2.0]);
    }

    #[test]
    fn gemm_tn_matches_naive_on_strided_views() {
        // odd/even panel widths, leading dimensions larger than rows
        for (rows, lda, ka, ldb, kb) in
            [(7, 7, 3, 7, 3), (16, 20, 4, 16, 5), (33, 40, 5, 35, 4), (130, 131, 2, 133, 7)]
        {
            let a = test_panel(lda, ka, 11);
            let b = test_panel(ldb, kb, 12);
            let mut out = vec![0.0; ka * kb];
            gemm_tn(rows, &a, lda, ka, &b, ldb, kb, &mut out);
            for j in 0..kb {
                for i in 0..ka {
                    let want = naive::dot(&a[i * lda..i * lda + rows], &b[j * ldb..j * ldb + rows]);
                    let got = out[i + ka * j];
                    assert!(
                        (got - want).abs() <= 1e-11 * (rows as f64),
                        "({rows},{ka},{kb}) entry ({i},{j}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_acc_matches_naive_accumulation() {
        for (rows, lda, p, ldc, q, alpha) in [
            (9, 9, 3, 9, 2, -1.0),
            (PANEL_TILE + 5, PANEL_TILE + 5, 6, PANEL_TILE + 9, 5, -1.0),
            (40, 64, 5, 48, 1, 0.5),
            (17, 17, 1, 17, 4, 2.0),
        ] {
            let a = test_panel(lda, p, 21);
            let w = test_panel(p, q, 22);
            let c0 = test_panel(ldc, q, 23);
            let mut c = c0.clone();
            gemm_acc(rows, &a, lda, p, &w, q, alpha, &mut c, ldc);
            for j in 0..q {
                for r in 0..ldc {
                    let want = if r < rows {
                        let mix: f64 = (0..p).map(|i| a[i * lda + r] * w[i + p * j]).sum();
                        c0[j * ldc + r] + alpha * mix
                    } else {
                        c0[j * ldc + r] // rows past the view are untouched
                    };
                    let got = c[j * ldc + r];
                    assert!(
                        (got - want).abs() <= 1e-11 * (p.max(1) as f64),
                        "({rows},{p},{q}) col {j} row {r}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_acc_zero_weights_are_exact_noops() {
        let (rows, p, q) = (12, 4, 3);
        let a = test_panel(rows, p, 31);
        let w = vec![0.0; p * q];
        let c0 = test_panel(rows, q, 32);
        let mut c = c0.clone();
        gemm_acc(rows, &a, rows, p, &w, q, -1.0, &mut c, rows);
        assert_eq!(c, c0);
    }
}
