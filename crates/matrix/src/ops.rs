//! Low-level vector kernels: dot products, norms, axpy, fused rotations.
//!
//! These are the only kernels in the hot path of a Jacobi sweep, so they
//! are written over plain slices and structured for SIMD: every reduction
//! uses several *independent* accumulators (`chunks_exact` blocks of
//! [`UNROLL`] lanes), because a strict-left-to-right `f64` sum forms a
//! loop-carried dependency chain that LLVM is not allowed to vectorize.
//! With the accumulators independent, the compiler emits packed adds and
//! multiplies, and the dependency chain shrinks by the unroll factor even
//! in scalar code.
//!
//! The reassociated sums are *not* bitwise identical to the naive
//! left-to-right order; they are at least as accurate (shorter chains →
//! smaller worst-case rounding error). The original strict-order kernels
//! are kept in [`naive`] as the reference the property tests and the
//! benchmarks compare against.

/// Unroll width of the reduction kernels (independent accumulators).
pub const UNROLL: usize = 8;

/// Unroll width of the fused rotate kernel (it carries 2 accumulator
/// arrays plus 2 data streams, so a narrower unroll avoids register
/// spills).
const ROT_UNROLL: usize = 4;

/// Strict-order reference implementations of the unrolled kernels.
///
/// These are the textbook loops the optimized kernels are validated
/// against (property tests) and benchmarked against (`BENCH_kernels.json`).
/// They stay `pub` so the bench harness can time naive vs unrolled.
pub mod naive {
    /// Strict left-to-right dot product.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn dot(x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot: length mismatch");
        let mut acc = 0.0;
        for (a, b) in x.iter().zip(y.iter()) {
            acc += a * b;
        }
        acc
    }

    /// Strict-order squared Euclidean norm.
    #[inline]
    pub fn norm2_sq(x: &[f64]) -> f64 {
        dot(x, x)
    }

    /// Strict-order fused Gram entries `(a·a, b·b, a·b)`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn gram3(a: &[f64], b: &[f64]) -> (f64, f64, f64) {
        assert_eq!(a.len(), b.len(), "gram3: length mismatch");
        let (mut aa, mut bb, mut ab) = (0.0, 0.0, 0.0);
        for (&x, &y) in a.iter().zip(b.iter()) {
            aa += x * x;
            bb += y * y;
            ab += x * y;
        }
        (aa, bb, ab)
    }

    /// Element-at-a-time `y += alpha * x`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi += alpha * xi;
        }
    }

    /// Unfused rotation apply + two separate norm passes, the sequence the
    /// fused kernel replaces. Reference for the fused-rotation benches and
    /// property tests.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn rotate_then_norms(c: f64, s: f64, a: &mut [f64], b: &mut [f64]) -> (f64, f64) {
        assert_eq!(a.len(), b.len(), "rotate_then_norms: length mismatch");
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            let (ax, bx) = (*x, *y);
            *x = c * ax - s * bx;
            *y = s * ax + c * bx;
        }
        (norm2_sq(a), norm2_sq(b))
    }
}

#[inline]
fn sum_unrolled(acc: [f64; UNROLL]) -> f64 {
    // pairwise tree sum: same depth the SIMD horizontal reduction has
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Dot product of two equal-length slices (multi-accumulator, vectorizable).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = [0.0f64; UNROLL];
    let xc = x.chunks_exact(UNROLL);
    let yc = y.chunks_exact(UNROLL);
    let (xr, yr) = (xc.remainder(), yc.remainder());
    for (cx, cy) in xc.zip(yc) {
        // fixed-size views: compile-time lengths, no per-element bounds
        // checks inside the unrolled body
        let cx: &[f64; UNROLL] = cx.try_into().expect("chunks_exact");
        let cy: &[f64; UNROLL] = cy.try_into().expect("chunks_exact");
        for k in 0..UNROLL {
            acc[k] += cx[k] * cy[k];
        }
    }
    let mut tail = 0.0;
    for (a, b) in xr.iter().zip(yr.iter()) {
        tail += a * b;
    }
    sum_unrolled(acc) + tail
}

/// Squared Euclidean norm (no overflow guard; used where magnitudes are
/// tame). Multi-accumulator, vectorizable.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    let mut acc = [0.0f64; UNROLL];
    let xc = x.chunks_exact(UNROLL);
    let xr = xc.remainder();
    for cx in xc {
        let cx: &[f64; UNROLL] = cx.try_into().expect("chunks_exact");
        for k in 0..UNROLL {
            acc[k] += cx[k] * cx[k];
        }
    }
    let mut tail = 0.0;
    for &a in xr {
        tail += a * a;
    }
    sum_unrolled(acc) + tail
}

/// Euclidean norm with scaling to avoid overflow/underflow on extreme data.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    let mut scale = 0.0_f64;
    for &v in x {
        scale = scale.max(v.abs());
    }
    if scale == 0.0 || !scale.is_finite() {
        return scale;
    }
    let inv = 1.0 / scale;
    let mut acc = [0.0f64; UNROLL];
    let xc = x.chunks_exact(UNROLL);
    let xr = xc.remainder();
    for cx in xc {
        for k in 0..UNROLL {
            let t = cx[k] * inv;
            acc[k] += t * t;
        }
    }
    let mut tail = 0.0;
    for &v in xr {
        let t = v * inv;
        tail += t * t;
    }
    scale * (sum_unrolled(acc) + tail).sqrt()
}

/// `y += alpha * x` (unrolled; no reduction, but the fixed-width blocks
/// remove the bounds checks and let the compiler emit packed FMAs).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let split = y.len() - y.len() % UNROLL;
    let (ym, yt) = y.split_at_mut(split);
    let (xm, xt) = x.split_at(split);
    for (cy, cx) in ym.chunks_exact_mut(UNROLL).zip(xm.chunks_exact(UNROLL)) {
        for k in 0..UNROLL {
            cy[k] += alpha * cx[k];
        }
    }
    for (yi, xi) in yt.iter_mut().zip(xt.iter()) {
        *yi += alpha * xi;
    }
}

/// Scale a slice in place.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// The three Gram entries `(a·a, b·b, a·b)` of a column pair, in one pass.
///
/// One fused pass halves the memory traffic of the convergence test that
/// precedes every rotation; the three reductions run on independent
/// accumulator blocks so the whole pass vectorizes.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn gram3(a: &[f64], b: &[f64]) -> (f64, f64, f64) {
    assert_eq!(a.len(), b.len(), "gram3: length mismatch");
    let split = a.len() - a.len() % UNROLL;
    let (am, ar) = a.split_at(split);
    let (bm, br) = b.split_at(split);
    let (aa, bb, ab) = gram3_main(am, bm);
    let (mut taa, mut tbb, mut tab) = (0.0, 0.0, 0.0);
    for (&x, &y) in ar.iter().zip(br.iter()) {
        taa += x * x;
        tbb += y * y;
        tab += x * y;
    }
    (sum_unrolled(aa) + taa, sum_unrolled(bb) + tbb, sum_unrolled(ab) + tab)
}

/// Accumulator lanes of `gram3` over a length-multiple-of-[`UNROLL`]
/// prefix: lane `k` holds the partial sums over elements `j·UNROLL + k`.
///
/// Written with explicit AVX intrinsics on x86-64: LLVM's SLP pass pairs
/// the three reductions *across* the `a`/`b` streams (unpck shuffles at
/// 128-bit width) instead of across lanes, which runs slower than the
/// strict scalar loop. The intrinsic version is plain lane-wise
/// multiply-then-add — no FMA contraction — so its lanes are bitwise
/// identical to the scalar fallback below.
#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
#[inline]
fn gram3_main(a: &[f64], b: &[f64]) -> ([f64; UNROLL], [f64; UNROLL], [f64; UNROLL]) {
    use core::arch::x86_64::*;
    debug_assert_eq!(a.len() % UNROLL, 0);
    debug_assert_eq!(a.len(), b.len());
    let mut aa = [0.0f64; UNROLL];
    let mut bb = [0.0f64; UNROLL];
    let mut ab = [0.0f64; UNROLL];
    // SAFETY: loads/stores stay within `a`/`b` (length checked to be a
    // multiple of UNROLL = 8, read in 4-lane halves) and within the
    // 8-lane accumulator arrays; AVX is a compile-time target feature.
    unsafe {
        let (mut aa_lo, mut aa_hi) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        let (mut bb_lo, mut bb_hi) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        let (mut ab_lo, mut ab_hi) = (_mm256_setzero_pd(), _mm256_setzero_pd());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < a.len() {
            let a_lo = _mm256_loadu_pd(pa.add(i));
            let a_hi = _mm256_loadu_pd(pa.add(i + 4));
            let b_lo = _mm256_loadu_pd(pb.add(i));
            let b_hi = _mm256_loadu_pd(pb.add(i + 4));
            aa_lo = _mm256_add_pd(aa_lo, _mm256_mul_pd(a_lo, a_lo));
            aa_hi = _mm256_add_pd(aa_hi, _mm256_mul_pd(a_hi, a_hi));
            bb_lo = _mm256_add_pd(bb_lo, _mm256_mul_pd(b_lo, b_lo));
            bb_hi = _mm256_add_pd(bb_hi, _mm256_mul_pd(b_hi, b_hi));
            ab_lo = _mm256_add_pd(ab_lo, _mm256_mul_pd(a_lo, b_lo));
            ab_hi = _mm256_add_pd(ab_hi, _mm256_mul_pd(a_hi, b_hi));
            i += UNROLL;
        }
        _mm256_storeu_pd(aa.as_mut_ptr(), aa_lo);
        _mm256_storeu_pd(aa.as_mut_ptr().add(4), aa_hi);
        _mm256_storeu_pd(bb.as_mut_ptr(), bb_lo);
        _mm256_storeu_pd(bb.as_mut_ptr().add(4), bb_hi);
        _mm256_storeu_pd(ab.as_mut_ptr(), ab_lo);
        _mm256_storeu_pd(ab.as_mut_ptr().add(4), ab_hi);
    }
    (aa, bb, ab)
}

/// Portable fallback: the same lane assignment in scalar code.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx")))]
#[inline]
fn gram3_main(a: &[f64], b: &[f64]) -> ([f64; UNROLL], [f64; UNROLL], [f64; UNROLL]) {
    debug_assert_eq!(a.len() % UNROLL, 0);
    let mut aa = [0.0f64; UNROLL];
    let mut bb = [0.0f64; UNROLL];
    let mut ab = [0.0f64; UNROLL];
    for (ca, cb) in a.chunks_exact(UNROLL).zip(b.chunks_exact(UNROLL)) {
        let ca: &[f64; UNROLL] = ca.try_into().expect("chunks_exact");
        let cb: &[f64; UNROLL] = cb.try_into().expect("chunks_exact");
        for k in 0..UNROLL {
            let (x, y) = (ca[k], cb[k]);
            aa[k] += x * x;
            bb[k] += y * y;
            ab[k] += x * y;
        }
    }
    (aa, bb, ab)
}

/// Fused plane rotation: apply `a' = c·a − s·b`, `b' = s·a + c·b` (or the
/// swapped form `a' = s·a + c·b`, `b' = c·a − s·b` when `SWAP`) while
/// accumulating the updated squared norms `(‖a'‖², ‖b'‖²)` in the same
/// pass. This is the executor's hot loop: it collapses the old
/// apply-then-renorm sequence (3 traversals of each column) into one.
#[inline]
fn rotate_fused_impl<const SWAP: bool>(c: f64, s: f64, a: &mut [f64], b: &mut [f64]) -> (f64, f64) {
    let split = a.len() - a.len() % ROT_UNROLL;
    let (am, at) = a.split_at_mut(split);
    let (bm, bt) = b.split_at_mut(split);
    let mut na = [0.0f64; ROT_UNROLL];
    let mut nb = [0.0f64; ROT_UNROLL];
    for (ca, cb) in am.chunks_exact_mut(ROT_UNROLL).zip(bm.chunks_exact_mut(ROT_UNROLL)) {
        for k in 0..ROT_UNROLL {
            let (x, y) = (ca[k], cb[k]);
            let (xp, yp) =
                if SWAP { (s * x + c * y, c * x - s * y) } else { (c * x - s * y, s * x + c * y) };
            ca[k] = xp;
            cb[k] = yp;
            na[k] += xp * xp;
            nb[k] += yp * yp;
        }
    }
    let (mut tna, mut tnb) = (0.0, 0.0);
    for (x, y) in at.iter_mut().zip(bt.iter_mut()) {
        let (ax, bx) = (*x, *y);
        let (xp, yp) = if SWAP {
            (s * ax + c * bx, c * ax - s * bx)
        } else {
            (c * ax - s * bx, s * ax + c * bx)
        };
        *x = xp;
        *y = yp;
        tna += xp * xp;
        tnb += yp * yp;
    }
    ((na[0] + na[1]) + (na[2] + na[3]) + tna, (nb[0] + nb[1]) + (nb[2] + nb[3]) + tnb)
}

/// Fused rotation, plain form (equation (1)): returns the exact updated
/// squared norms `(‖a'‖², ‖b'‖²)` computed in the same pass as the update.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn rotate_fused(c: f64, s: f64, a: &mut [f64], b: &mut [f64]) -> (f64, f64) {
    assert_eq!(a.len(), b.len(), "rotate_fused: length mismatch");
    rotate_fused_impl::<false>(c, s, a, b)
}

/// Fused rotation, swapped form (equation (3) — rotation + column
/// interchange in one pass): returns the exact updated squared norms.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn rotate_fused_swapped(c: f64, s: f64, a: &mut [f64], b: &mut [f64]) -> (f64, f64) {
    assert_eq!(a.len(), b.len(), "rotate_fused_swapped: length mismatch");
    rotate_fused_impl::<true>(c, s, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn unrolled_kernels_match_naive_closely() {
        // lengths straddling the unroll boundaries, including tails
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100, 257] {
            let x: Vec<f64> = (0..len).map(|i| ((i * 37 + 11) % 23) as f64 - 11.0).collect();
            let y: Vec<f64> = (0..len).map(|i| ((i * 53 + 5) % 19) as f64 - 9.0).collect();
            let tol = 1e-12 * (len.max(1) as f64);
            assert!((dot(&x, &y) - naive::dot(&x, &y)).abs() <= tol, "dot len {len}");
            assert!((norm2_sq(&x) - naive::norm2_sq(&x)).abs() <= tol, "norm2_sq len {len}");
            let (aa, bb, ab) = gram3(&x, &y);
            let (naa, nbb, nab) = naive::gram3(&x, &y);
            assert!(
                (aa - naa).abs() <= tol && (bb - nbb).abs() <= tol && (ab - nab).abs() <= tol,
                "gram3 len {len}"
            );
            let mut y1 = y.clone();
            let mut y2 = y.clone();
            axpy(1.5, &x, &mut y1);
            naive::axpy(1.5, &x, &mut y2);
            assert_eq!(y1, y2, "axpy len {len}");
        }
    }

    #[test]
    fn norm2_matches_naive_on_tame_data() {
        let x = [3.0, 4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norm2_survives_extreme_scales() {
        let big = [1e200, 1e200];
        let n = norm2(&big);
        assert!(n.is_finite());
        assert!((n - 1e200 * 2.0_f64.sqrt()).abs() / n < 1e-14);
        let small = [1e-200, 1e-200];
        let n = norm2(&small);
        assert!(n > 0.0);
        assert!((n - 1e-200 * 2.0_f64.sqrt()).abs() / n < 1e-14);
    }

    #[test]
    fn axpy_and_scal() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    #[test]
    fn gram3_consistent_with_dot() {
        let a = [1.0, 2.0, -1.0];
        let b = [0.5, -3.0, 2.0];
        let (aa, bb, ab) = gram3(&a, &b);
        assert!((aa - dot(&a, &a)).abs() < 1e-14);
        assert!((bb - dot(&b, &b)).abs() < 1e-14);
        assert!((ab - dot(&a, &b)).abs() < 1e-14);
    }

    #[test]
    fn norm2_sq_is_dot_with_self() {
        let a = [1.5, -2.0];
        assert_eq!(norm2_sq(&a), dot(&a, &a));
    }

    #[test]
    fn rotate_fused_matches_unfused_reference() {
        let (c, s) = (0.8, 0.6);
        for len in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33, 100] {
            let a0: Vec<f64> = (0..len).map(|i| (i as f64 * 0.7).sin()).collect();
            let b0: Vec<f64> = (0..len).map(|i| (i as f64 * 1.3).cos()).collect();

            let (mut a1, mut b1) = (a0.clone(), b0.clone());
            let (ra, rb) = naive::rotate_then_norms(c, s, &mut a1, &mut b1);

            let (mut a2, mut b2) = (a0.clone(), b0.clone());
            let (fa, fb) = rotate_fused(c, s, &mut a2, &mut b2);

            // the written columns are element-wise identical (same formula)
            assert_eq!(a1, a2, "len {len}");
            assert_eq!(b1, b2, "len {len}");
            // the fused norms agree with the recomputed ones up to rounding
            assert!((ra - fa).abs() <= 1e-13 * ra.max(1.0), "len {len}");
            assert!((rb - fb).abs() <= 1e-13 * rb.max(1.0), "len {len}");

            // swapped form = rotate, then exchange the columns
            let (mut a3, mut b3) = (a0.clone(), b0.clone());
            let (sa, sb) = rotate_fused_swapped(c, s, &mut a3, &mut b3);
            assert_eq!(a3, b1, "swapped len {len}");
            assert_eq!(b3, a1, "swapped len {len}");
            assert!((sa - fb).abs() <= 1e-13 * fb.max(1.0));
            assert!((sb - fa).abs() <= 1e-13 * fa.max(1.0));
        }
    }

    #[test]
    fn rotate_fused_identity_swap_is_exact_exchange() {
        let a0 = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b0 = vec![-1.0, 0.5, 2.0, -2.0, 0.25];
        let (mut a, mut b) = (a0.clone(), b0.clone());
        let (na, nb) = rotate_fused_swapped(1.0, 0.0, &mut a, &mut b);
        assert_eq!(a, b0);
        assert_eq!(b, a0);
        assert!((na - norm2_sq(&b0)).abs() < 1e-14);
        assert!((nb - norm2_sq(&a0)).abs() < 1e-14);
    }
}
