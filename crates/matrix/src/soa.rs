//! Structure-of-arrays lane kernels for the batched small-SVD engine.
//!
//! The one-sided Jacobi machinery elsewhere in this crate vectorizes
//! *within* one problem: a rotation streams two long columns through SIMD
//! lanes. For batches of millions of *small* problems (2×2 up to ~64×64)
//! that shape is hopeless — the columns are shorter than one vector
//! register. The kernels here therefore vectorize *across problems*
//! (Novaković, arXiv 2005.07403; the GPU batch solver of arXiv
//! 2601.17979): matrix entries for `L` problems are interleaved so that
//! entry `(r, c)` of problem `l` lives at lane `l` of a contiguous
//! `L`-wide plane, and one AVX-512 (or AVX2) instruction advances all `L`
//! problems at once.
//!
//! Three kernels cover a whole batched Jacobi sweep:
//!
//! * [`gram_lanes`] — the per-pair Gram entries `(α, β, γ)`, one value per
//!   lane, accumulated vertically over the rows of the column planes;
//! * [`rotation_lanes`] — the branch-free `(c, s)` solve: every lane
//!   computes both the rotation and its alternatives (threshold skip,
//!   huge-ζ asymptote, sort-order swap) and masked selects pick the
//!   survivor, so divergent problems cost no branches;
//! * [`rotate_lanes`] — the fused apply: rotate both planes under a
//!   per-lane `write` mask (converged problems are left untouched) with a
//!   per-lane `swap` mask folding the paper's equation (3) column
//!   interchange into the same pass.
//!
//! Like the column kernels in [`crate::ops`], every SIMD body is plain
//! lane-wise multiply/add — no FMA contraction — and accumulates in the
//! same order as the scalar fallback, so the two paths are **bitwise
//! identical** and the fallback can be forced at runtime
//! ([`LanePath::Scalar`]) for testing and benchmarking.

/// Default lane-group width: one AVX-512 register of `f64`s, or two AVX2
/// registers processed back to back. Problem `i` of a batch lives at lane
/// `i % LANES` of lane-group `i / LANES`.
pub const LANES: usize = 8;

/// Magnitude of `ζ = (β − α) / 2γ` beyond which `ζ²` would overflow and
/// the solve switches to the asymptote `t = 1/(2ζ)` (correct to a relative
/// error of `O(ζ⁻²) < 10⁻³⁰⁰` there). `f64::MAX.sqrt()` is ≈ 1.34e154;
/// 1e150 leaves headroom for the `+ |ζ|` term.
const ZETA_HUGE: f64 = 1e150;

/// Which kernel body executes the lane math.
///
/// `Auto` picks the widest SIMD body the build supports (AVX-512 →
/// AVX2 → scalar); `Scalar` forces the portable fallback. Both paths are
/// bitwise identical, so `Scalar` exists for benchmarking the fallback
/// and for property tests, not for correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LanePath {
    /// Widest available SIMD body (compile-time feature detection).
    #[default]
    Auto,
    /// Portable scalar body, identical lane semantics.
    Scalar,
}

/// Per-lane outcome of the branch-free rotation solve for one column pair:
/// the rotation parameters plus the masks that steer [`rotate_lanes`].
///
/// Masks are all-ones (`u64::MAX`) or all-zeros per lane so the SIMD
/// bodies can use them directly as blend masks.
#[derive(Debug, Clone, Copy)]
pub struct LaneRotation<const L: usize> {
    /// Cosines (exactly `1.0` on skipped lanes).
    pub c: [f64; L],
    /// Sines (exactly `0.0` on skipped lanes).
    pub s: [f64; L],
    /// Lanes whose columns are interchanged (equation (3)): the sort
    /// wants the larger post-rotation norm on the left. A lane can swap
    /// even when its rotation is the identity.
    pub swap: [u64; L],
    /// Lanes whose planes must be written: active and (rotated or
    /// swapped). The complement is exactly the set of lanes for which the
    /// sequential reference would not touch the data either.
    pub write: [u64; L],
}

impl<const L: usize> LaneRotation<L> {
    /// Whether any lane writes — when false the caller can skip the
    /// [`rotate_lanes`] passes (and the V update) entirely.
    #[must_use]
    pub fn any_write(&self) -> bool {
        self.write.iter().any(|&w| w != 0)
    }
}

/// Lane-wise Gram entries of a column-plane pair: for each lane `l`,
/// `(α_l, β_l, γ_l) = (x_l·x_l, y_l·y_l, x_l·y_l)` accumulated strictly
/// over the rows (row `r`, lane `l` lives at `r·L + l`).
///
/// # Panics
/// Panics if the planes differ in length or are not a multiple of `L`.
#[must_use]
pub fn gram_lanes<const L: usize>(
    x: &[f64],
    y: &[f64],
    path: LanePath,
) -> ([f64; L], [f64; L], [f64; L]) {
    assert_eq!(x.len(), y.len(), "gram_lanes: plane length mismatch");
    assert_eq!(x.len() % L, 0, "gram_lanes: plane not a multiple of the lane width");
    match path {
        LanePath::Auto => gram_lanes_auto::<L>(x, y),
        LanePath::Scalar => gram_lanes_scalar::<L>(x, y),
    }
}

/// Apply the per-lane rotations to a column-plane pair under the `write`
/// and `swap` masks: lanes with `write = 0` keep their old values bitwise;
/// swapped lanes store `(s·x + c·y, c·x − s·y)` (rotation and interchange
/// in one pass), unswapped lanes store `(c·x − s·y, s·x + c·y)`.
///
/// # Panics
/// Panics if the planes differ in length or are not a multiple of `L`.
pub fn rotate_lanes<const L: usize>(
    rot: &LaneRotation<L>,
    x: &mut [f64],
    y: &mut [f64],
    path: LanePath,
) {
    assert_eq!(x.len(), y.len(), "rotate_lanes: plane length mismatch");
    assert_eq!(x.len() % L, 0, "rotate_lanes: plane not a multiple of the lane width");
    match path {
        LanePath::Auto => rotate_lanes_auto::<L>(rot, x, y),
        LanePath::Scalar => rotate_lanes_scalar::<L>(rot, x, y),
    }
}

/// [`rotate_lanes`] applied to **two** plane pairs under the same
/// rotation — the per-pair `(A, V)` update of the batched engine. The
/// pairs may differ in length (`A` planes have `rows` rows, `V` planes
/// `cols`); sharing one call amortizes the mask/coefficient setup, which
/// dominates for small planes. Results are bitwise identical to two
/// [`rotate_lanes`] calls.
///
/// # Panics
/// Panics if either pair's planes differ in length or are not a multiple
/// of `L`.
pub fn rotate_lanes_dual<const L: usize>(
    rot: &LaneRotation<L>,
    x1: &mut [f64],
    y1: &mut [f64],
    x2: &mut [f64],
    y2: &mut [f64],
    path: LanePath,
) {
    assert_eq!(x1.len(), y1.len(), "rotate_lanes_dual: first plane length mismatch");
    assert_eq!(x2.len(), y2.len(), "rotate_lanes_dual: second plane length mismatch");
    assert_eq!(x1.len() % L, 0, "rotate_lanes_dual: plane not a multiple of the lane width");
    assert_eq!(x2.len() % L, 0, "rotate_lanes_dual: plane not a multiple of the lane width");
    match path {
        LanePath::Auto => rotate_lanes_dual_auto::<L>(rot, x1, y1, x2, y2),
        LanePath::Scalar => rotate_lanes_dual_scalar::<L>(rot, x1, y1, x2, y2),
    }
}

/// The branch-free per-lane `(c, s)` solve for one column pair, mirroring
/// [`crate::rotation::compute_rotation`] and the swap decision of
/// [`crate::rotation::orthogonalize_pair`] lane-wise.
///
/// Every lane computes all alternatives and masked selects choose:
///
/// * **threshold skip** — `|γ| ≤ threshold·√α·√β`, or a zero column
///   (`α = 0` or `β = 0`): identity rotation, exactly `(c, s) = (1, 0)`;
/// * **huge ζ** — `|ζ| > 10¹⁵⁰`, where the textbook
///   `t = sign(ζ)/(|ζ| + √(1 + ζ²))` would overflow `ζ²` to infinity and
///   collapse to `t = 0`: the asymptote `t = 1/(2ζ)` is used instead, so
///   the solve never overflows for any finite Gram entries;
/// * **sort swap** — with `sort_descending`, lanes whose predicted
///   post-rotation right norm exceeds the left get the swapped store.
///
/// Inactive lanes (`active = 0`, i.e. already-converged problems) never
/// write, whatever the data says.
#[must_use]
#[allow(clippy::needless_range_loop)] // lane loops: indexed across 6 arrays
pub fn rotation_lanes<const L: usize>(
    alpha: &[f64; L],
    beta: &[f64; L],
    gamma: &[f64; L],
    threshold: f64,
    sort_descending: bool,
    active: &[u64; L],
) -> LaneRotation<L> {
    let mut out = LaneRotation { c: [1.0; L], s: [0.0; L], swap: [0; L], write: [0; L] };
    for l in 0..L {
        let (a, b, g) = (alpha[l], beta[l], gamma[l]);
        // threshold skip: identical condition to compute_rotation — a zero
        // column is orthogonal to everything, and |γ| under the Wilkinson
        // threshold is declared converged
        let limit = threshold * (a.sqrt() * b.sqrt());
        let skip = a == 0.0 || b == 0.0 || g.abs() <= limit;
        // both solve variants are computed unconditionally (vector lanes
        // cannot branch); selects keep the valid one
        let zeta = (b - a) / (2.0 * g);
        let azeta = zeta.abs();
        let denom = azeta + (1.0 + zeta * zeta).sqrt();
        let t_small = if zeta >= 0.0 { 1.0 / denom } else { -1.0 / denom };
        let t_big = 0.5 / zeta;
        let t_solved = if azeta > ZETA_HUGE { t_big } else { t_small };
        let t = if skip { 0.0 } else { t_solved };
        let c = 1.0 / (1.0 + t * t).sqrt(); // exactly 1.0 when t = 0
        let s = c * t;
        // predicted post-rotation norms (rotation algebra), used only for
        // the swap decision — same formula as orthogonalize_pair
        let (ap, bp) = if skip {
            (a, b)
        } else {
            (c * c * a - 2.0 * c * s * g + s * s * b, s * s * a + 2.0 * c * s * g + c * c * b)
        };
        let act = active[l] != 0;
        let want_swap = sort_descending && bp > ap && act;
        let write = act && (!skip || want_swap);
        out.c[l] = c;
        out.s[l] = s;
        out.swap[l] = if want_swap { u64::MAX } else { 0 };
        out.write[l] = if write { u64::MAX } else { 0 };
    }
    out
}

// ---------------------------------------------------------------------------
// scalar bodies (the reference semantics; always compiled)
// ---------------------------------------------------------------------------

#[allow(clippy::needless_range_loop)] // lane-indexed across parallel arrays
fn gram_lanes_scalar<const L: usize>(x: &[f64], y: &[f64]) -> ([f64; L], [f64; L], [f64; L]) {
    let mut aa = [0.0f64; L];
    let mut bb = [0.0f64; L];
    let mut ab = [0.0f64; L];
    for (cx, cy) in x.chunks_exact(L).zip(y.chunks_exact(L)) {
        for l in 0..L {
            let (a, b) = (cx[l], cy[l]);
            aa[l] += a * a;
            bb[l] += b * b;
            ab[l] += a * b;
        }
    }
    (aa, bb, ab)
}

/// Fold the swap mask into per-lane 2×2 coefficients, so the row loops are
/// pure multiply/add and autovectorize: `new_x = m0·x + m1·y`,
/// `new_y = m2·x + m3·y`. This is bitwise-faithful: `c·x − s·y ≡
/// c·x + (−s)·y` in IEEE, and a swapped store is just the two output rows
/// interchanged. Also reports whether every lane writes (the common case,
/// which needs no selects at all).
#[allow(clippy::needless_range_loop)] // lane-indexed across parallel arrays
#[inline(always)]
fn fold_rotation_coeffs<const L: usize>(rot: &LaneRotation<L>) -> ([[f64; L]; 4], bool) {
    // branch-free selects (the swap pattern varies per lane, so branches
    // mispredict), one simple loop per output array so each compiles to a
    // load/blend/store instead of a cross-array shuffle
    let mut m = [[0.0f64; L]; 4];
    for l in 0..L {
        m[0][l] = if rot.swap[l] != 0 { rot.s[l] } else { rot.c[l] };
    }
    for l in 0..L {
        m[1][l] = if rot.swap[l] != 0 { rot.c[l] } else { -rot.s[l] };
    }
    for l in 0..L {
        m[2][l] = if rot.swap[l] != 0 { rot.c[l] } else { rot.s[l] };
    }
    for l in 0..L {
        m[3][l] = if rot.swap[l] != 0 { -rot.s[l] } else { rot.c[l] };
    }
    let mut all_write = true;
    for l in 0..L {
        all_write &= rot.write[l] != 0;
    }
    (m, all_write)
}

/// Apply folded 2×2 coefficients to one plane pair. With `all_write` the
/// row loop is select-free; otherwise a branch-free select keeps unwritten
/// lanes bitwise untouched (a pure `1·x + 0·y` form would flip `−0.0`).
#[allow(clippy::needless_range_loop)] // lane-indexed across parallel arrays
#[inline(always)]
fn apply_folded_coeffs<const L: usize>(
    m: &[[f64; L]; 4],
    write: &[u64; L],
    all_write: bool,
    x: &mut [f64],
    y: &mut [f64],
) {
    // fixed-size array chunks: lane loops over `[f64; L]` compile to clean
    // vector code where runtime-length slices would not
    let (xc, _) = x.as_chunks_mut::<L>();
    let (yc, _) = y.as_chunks_mut::<L>();
    if all_write {
        for (cx, cy) in xc.iter_mut().zip(yc.iter_mut()) {
            for l in 0..L {
                let (xa, yb) = (cx[l], cy[l]);
                cx[l] = m[0][l] * xa + m[1][l] * yb;
                cy[l] = m[2][l] * xa + m[3][l] * yb;
            }
        }
    } else {
        for (cx, cy) in xc.iter_mut().zip(yc.iter_mut()) {
            for l in 0..L {
                let (xa, yb) = (cx[l], cy[l]);
                let nx = m[0][l] * xa + m[1][l] * yb;
                let ny = m[2][l] * xa + m[3][l] * yb;
                cx[l] = if write[l] != 0 { nx } else { xa };
                cy[l] = if write[l] != 0 { ny } else { yb };
            }
        }
    }
}

#[inline(always)]
fn rotate_lanes_scalar<const L: usize>(rot: &LaneRotation<L>, x: &mut [f64], y: &mut [f64]) {
    let (m, all_write) = fold_rotation_coeffs(rot);
    apply_folded_coeffs(&m, &rot.write, all_write, x, y);
}

#[inline(always)]
fn rotate_lanes_dual_scalar<const L: usize>(
    rot: &LaneRotation<L>,
    x1: &mut [f64],
    y1: &mut [f64],
    x2: &mut [f64],
    y2: &mut [f64],
) {
    // one coefficient fold shared across both pairs — for small planes the
    // fold dominates the row loops, so sharing it is the whole point
    let (m, all_write) = fold_rotation_coeffs(rot);
    apply_folded_coeffs(&m, &rot.write, all_write, x1, y1);
    apply_folded_coeffs(&m, &rot.write, all_write, x2, y2);
}

// ---------------------------------------------------------------------------
// AVX-512 bodies: 8 lanes per instruction, masks as __mmask8
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
fn gram_lanes_auto<const L: usize>(x: &[f64], y: &[f64]) -> ([f64; L], [f64; L], [f64; L]) {
    use core::arch::x86_64::*;
    if !L.is_multiple_of(8) {
        return gram_lanes_avx_or_scalar::<L>(x, y);
    }
    let rows = x.len() / L;
    let mut aa = [0.0f64; L];
    let mut bb = [0.0f64; L];
    let mut ab = [0.0f64; L];
    // SAFETY: all loads/stores stay in bounds — `x`/`y` have length
    // `rows·L` with `L % 8 == 0`, and each 8-lane chunk `c0` reads
    // `r·L + c0 .. r·L + c0 + 8`; AVX-512F is a compile-time target
    // feature of this body.
    unsafe {
        let (px, py) = (x.as_ptr(), y.as_ptr());
        let mut c0 = 0;
        while c0 < L {
            let mut vaa = _mm512_setzero_pd();
            let mut vbb = _mm512_setzero_pd();
            let mut vab = _mm512_setzero_pd();
            for r in 0..rows {
                let vx = _mm512_loadu_pd(px.add(r * L + c0));
                let vy = _mm512_loadu_pd(py.add(r * L + c0));
                vaa = _mm512_add_pd(vaa, _mm512_mul_pd(vx, vx));
                vbb = _mm512_add_pd(vbb, _mm512_mul_pd(vy, vy));
                vab = _mm512_add_pd(vab, _mm512_mul_pd(vx, vy));
            }
            _mm512_storeu_pd(aa.as_mut_ptr().add(c0), vaa);
            _mm512_storeu_pd(bb.as_mut_ptr().add(c0), vbb);
            _mm512_storeu_pd(ab.as_mut_ptr().add(c0), vab);
            c0 += 8;
        }
    }
    (aa, bb, ab)
}

/// One 8-lane chunk of rotation state, hoisted out of the row loops so a
/// dual-pair call pays the mask/coefficient setup once.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[derive(Clone, Copy)]
struct Chunk512 {
    vc: core::arch::x86_64::__m512d,
    vs: core::arch::x86_64::__m512d,
    kswap: core::arch::x86_64::__mmask8,
    kwrite: core::arch::x86_64::__mmask8,
}

/// # Safety
/// `rot`'s lane arrays must have ≥ `c0 + 8` entries.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline(always)]
unsafe fn load_chunk_512<const L: usize>(rot: &LaneRotation<L>, c0: usize) -> Chunk512 {
    use core::arch::x86_64::*;
    // SAFETY: caller guarantees the lane arrays extend to `c0 + 8`, and
    // AVX-512F is a compile-time target feature of this body.
    unsafe {
        // vptestmq turns the all-ones/zero u64 lane masks straight into a
        // __mmask8 — no scalar bit-assembly loop
        let mswap = _mm512_loadu_epi64(rot.swap.as_ptr().add(c0).cast::<i64>());
        let mwrite = _mm512_loadu_epi64(rot.write.as_ptr().add(c0).cast::<i64>());
        Chunk512 {
            vc: _mm512_loadu_pd(rot.c.as_ptr().add(c0)),
            vs: _mm512_loadu_pd(rot.s.as_ptr().add(c0)),
            kswap: _mm512_test_epi64_mask(mswap, mswap),
            kwrite: _mm512_test_epi64_mask(mwrite, mwrite),
        }
    }
}

/// # Safety
/// `px`/`py` must be valid for `rows·L` elements with `c0 + 8 ≤ L`.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[inline(always)]
unsafe fn rotate_rows_512<const L: usize>(
    ch: Chunk512,
    px: *mut f64,
    py: *mut f64,
    rows: usize,
    c0: usize,
) {
    use core::arch::x86_64::*;
    // SAFETY: caller guarantees `px`/`py` span `rows·L` elements with
    // `c0 + 8 ≤ L`; AVX-512F is a compile-time target feature of this body.
    unsafe {
        for r in 0..rows {
            let vx = _mm512_loadu_pd(px.add(r * L + c0));
            let vy = _mm512_loadu_pd(py.add(r * L + c0));
            let xp = _mm512_sub_pd(_mm512_mul_pd(ch.vc, vx), _mm512_mul_pd(ch.vs, vy));
            let yp = _mm512_add_pd(_mm512_mul_pd(ch.vs, vx), _mm512_mul_pd(ch.vc, vy));
            let da = _mm512_mask_blend_pd(ch.kswap, xp, yp);
            let db = _mm512_mask_blend_pd(ch.kswap, yp, xp);
            _mm512_storeu_pd(px.add(r * L + c0), _mm512_mask_blend_pd(ch.kwrite, vx, da));
            _mm512_storeu_pd(py.add(r * L + c0), _mm512_mask_blend_pd(ch.kwrite, vy, db));
        }
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
fn rotate_lanes_auto<const L: usize>(rot: &LaneRotation<L>, x: &mut [f64], y: &mut [f64]) {
    if !L.is_multiple_of(8) {
        rotate_lanes_avx_or_scalar::<L>(rot, x, y);
        return;
    }
    let rows = x.len() / L;
    // SAFETY: bounds as in gram_lanes_auto; the blend masks are built from
    // the per-lane u64 masks, and unwritten lanes are re-stored with their
    // original loaded values (bitwise no-op).
    unsafe {
        let (px, py) = (x.as_mut_ptr(), y.as_mut_ptr());
        let mut c0 = 0;
        while c0 < L {
            let ch = load_chunk_512::<L>(rot, c0);
            rotate_rows_512::<L>(ch, px, py, rows, c0);
            c0 += 8;
        }
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
fn rotate_lanes_dual_auto<const L: usize>(
    rot: &LaneRotation<L>,
    x1: &mut [f64],
    y1: &mut [f64],
    x2: &mut [f64],
    y2: &mut [f64],
) {
    if !L.is_multiple_of(8) {
        rotate_lanes_dual_avx_or_scalar::<L>(rot, x1, y1, x2, y2);
        return;
    }
    let rows1 = x1.len() / L;
    let rows2 = x2.len() / L;
    // SAFETY: bounds as in rotate_lanes_auto, for each pair independently
    // (the pairs may differ in row count).
    unsafe {
        let (px1, py1) = (x1.as_mut_ptr(), y1.as_mut_ptr());
        let (px2, py2) = (x2.as_mut_ptr(), y2.as_mut_ptr());
        let mut c0 = 0;
        while c0 < L {
            let ch = load_chunk_512::<L>(rot, c0);
            rotate_rows_512::<L>(ch, px1, py1, rows1, c0);
            rotate_rows_512::<L>(ch, px2, py2, rows2, c0);
            c0 += 8;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 bodies: 4 lanes per instruction, masks via blendv sign bits
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_feature = "avx", not(target_feature = "avx512f")))]
fn gram_lanes_auto<const L: usize>(x: &[f64], y: &[f64]) -> ([f64; L], [f64; L], [f64; L]) {
    gram_lanes_avx_or_scalar::<L>(x, y)
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx", not(target_feature = "avx512f")))]
fn rotate_lanes_auto<const L: usize>(rot: &LaneRotation<L>, x: &mut [f64], y: &mut [f64]) {
    rotate_lanes_avx_or_scalar::<L>(rot, x, y);
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx", not(target_feature = "avx512f")))]
fn rotate_lanes_dual_auto<const L: usize>(
    rot: &LaneRotation<L>,
    x1: &mut [f64],
    y1: &mut [f64],
    x2: &mut [f64],
    y2: &mut [f64],
) {
    rotate_lanes_dual_avx_or_scalar::<L>(rot, x1, y1, x2, y2);
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
fn gram_lanes_avx_or_scalar<const L: usize>(
    x: &[f64],
    y: &[f64],
) -> ([f64; L], [f64; L], [f64; L]) {
    use core::arch::x86_64::*;
    if !L.is_multiple_of(4) {
        return gram_lanes_scalar::<L>(x, y);
    }
    let rows = x.len() / L;
    let mut aa = [0.0f64; L];
    let mut bb = [0.0f64; L];
    let mut ab = [0.0f64; L];
    // SAFETY: all loads/stores stay in bounds — `x`/`y` have length
    // `rows·L` with `L % 4 == 0`, each 4-lane chunk `c0` touching
    // `r·L + c0 .. r·L + c0 + 4`; AVX is a compile-time target feature of
    // this body.
    unsafe {
        let (px, py) = (x.as_ptr(), y.as_ptr());
        let mut c0 = 0;
        while c0 < L {
            let mut vaa = _mm256_setzero_pd();
            let mut vbb = _mm256_setzero_pd();
            let mut vab = _mm256_setzero_pd();
            for r in 0..rows {
                let vx = _mm256_loadu_pd(px.add(r * L + c0));
                let vy = _mm256_loadu_pd(py.add(r * L + c0));
                vaa = _mm256_add_pd(vaa, _mm256_mul_pd(vx, vx));
                vbb = _mm256_add_pd(vbb, _mm256_mul_pd(vy, vy));
                vab = _mm256_add_pd(vab, _mm256_mul_pd(vx, vy));
            }
            _mm256_storeu_pd(aa.as_mut_ptr().add(c0), vaa);
            _mm256_storeu_pd(bb.as_mut_ptr().add(c0), vbb);
            _mm256_storeu_pd(ab.as_mut_ptr().add(c0), vab);
            c0 += 4;
        }
    }
    (aa, bb, ab)
}

/// One 4-lane chunk of rotation state, hoisted out of the row loops.
#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
#[derive(Clone, Copy)]
struct Chunk256 {
    vc: core::arch::x86_64::__m256d,
    vs: core::arch::x86_64::__m256d,
    mswap: core::arch::x86_64::__m256d,
    mwrite: core::arch::x86_64::__m256d,
}

/// # Safety
/// `rot`'s lane arrays must have ≥ `c0 + 4` entries.
#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
#[inline(always)]
unsafe fn load_chunk_256<const L: usize>(rot: &LaneRotation<L>, c0: usize) -> Chunk256 {
    use core::arch::x86_64::*;
    // SAFETY: caller guarantees the lane arrays extend to `c0 + 4`, and
    // AVX is a compile-time target feature of this body.
    unsafe {
        // The u64 lane masks (all-ones or zero) are loaded as f64 bit
        // patterns; `blendv` keys on the sign bit, which is set exactly
        // for all-ones masks.
        Chunk256 {
            vc: _mm256_loadu_pd(rot.c.as_ptr().add(c0)),
            vs: _mm256_loadu_pd(rot.s.as_ptr().add(c0)),
            mswap: _mm256_loadu_pd(rot.swap.as_ptr().add(c0).cast::<f64>()),
            mwrite: _mm256_loadu_pd(rot.write.as_ptr().add(c0).cast::<f64>()),
        }
    }
}

/// # Safety
/// `px`/`py` must be valid for `rows·L` elements with `c0 + 4 ≤ L`.
#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
#[inline(always)]
unsafe fn rotate_rows_256<const L: usize>(
    ch: Chunk256,
    px: *mut f64,
    py: *mut f64,
    rows: usize,
    c0: usize,
) {
    use core::arch::x86_64::*;
    // SAFETY: caller guarantees `px`/`py` span `rows·L` elements with
    // `c0 + 4 ≤ L`; AVX is a compile-time target feature of this body.
    unsafe {
        for r in 0..rows {
            let vx = _mm256_loadu_pd(px.add(r * L + c0));
            let vy = _mm256_loadu_pd(py.add(r * L + c0));
            let xp = _mm256_sub_pd(_mm256_mul_pd(ch.vc, vx), _mm256_mul_pd(ch.vs, vy));
            let yp = _mm256_add_pd(_mm256_mul_pd(ch.vs, vx), _mm256_mul_pd(ch.vc, vy));
            let da = _mm256_blendv_pd(xp, yp, ch.mswap);
            let db = _mm256_blendv_pd(yp, xp, ch.mswap);
            _mm256_storeu_pd(px.add(r * L + c0), _mm256_blendv_pd(vx, da, ch.mwrite));
            _mm256_storeu_pd(py.add(r * L + c0), _mm256_blendv_pd(vy, db, ch.mwrite));
        }
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
fn rotate_lanes_avx_or_scalar<const L: usize>(rot: &LaneRotation<L>, x: &mut [f64], y: &mut [f64]) {
    if !L.is_multiple_of(4) {
        rotate_lanes_scalar::<L>(rot, x, y);
        return;
    }
    let rows = x.len() / L;
    // SAFETY: bounds as in gram_lanes_avx_or_scalar. Unwritten lanes are
    // re-stored with their original loaded values (bitwise no-op).
    unsafe {
        let (px, py) = (x.as_mut_ptr(), y.as_mut_ptr());
        let mut c0 = 0;
        while c0 < L {
            let ch = load_chunk_256::<L>(rot, c0);
            rotate_rows_256::<L>(ch, px, py, rows, c0);
            c0 += 4;
        }
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
fn rotate_lanes_dual_avx_or_scalar<const L: usize>(
    rot: &LaneRotation<L>,
    x1: &mut [f64],
    y1: &mut [f64],
    x2: &mut [f64],
    y2: &mut [f64],
) {
    if !L.is_multiple_of(4) {
        rotate_lanes_dual_scalar::<L>(rot, x1, y1, x2, y2);
        return;
    }
    let rows1 = x1.len() / L;
    let rows2 = x2.len() / L;
    // SAFETY: bounds as in rotate_lanes_avx_or_scalar, for each pair
    // independently (the pairs may differ in row count).
    unsafe {
        let (px1, py1) = (x1.as_mut_ptr(), y1.as_mut_ptr());
        let (px2, py2) = (x2.as_mut_ptr(), y2.as_mut_ptr());
        let mut c0 = 0;
        while c0 < L {
            let ch = load_chunk_256::<L>(rot, c0);
            rotate_rows_256::<L>(ch, px1, py1, rows1, c0);
            rotate_rows_256::<L>(ch, px2, py2, rows2, c0);
            c0 += 4;
        }
    }
}

// ---------------------------------------------------------------------------
// portable fallback when no SIMD feature is compiled in
// ---------------------------------------------------------------------------

#[cfg(not(all(target_arch = "x86_64", target_feature = "avx")))]
fn gram_lanes_auto<const L: usize>(x: &[f64], y: &[f64]) -> ([f64; L], [f64; L], [f64; L]) {
    gram_lanes_scalar::<L>(x, y)
}

#[cfg(not(all(target_arch = "x86_64", target_feature = "avx")))]
fn rotate_lanes_auto<const L: usize>(rot: &LaneRotation<L>, x: &mut [f64], y: &mut [f64]) {
    rotate_lanes_scalar::<L>(rot, x, y);
}

#[cfg(not(all(target_arch = "x86_64", target_feature = "avx")))]
fn rotate_lanes_dual_auto<const L: usize>(
    rot: &LaneRotation<L>,
    x1: &mut [f64],
    y1: &mut [f64],
    x2: &mut [f64],
    y2: &mut [f64],
) {
    rotate_lanes_dual_scalar::<L>(rot, x1, y1, x2, y2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation::{apply_rotation, apply_rotation_swapped, compute_rotation, Rotation};

    /// Deterministic plane data: `rows` rows of `L` lanes.
    fn plane<const L: usize>(rows: usize, salt: u64) -> Vec<f64> {
        let mut rng = crate::rng::Rng::seed_from_u64(salt);
        (0..rows * L).map(|_| rng.uniform(-2.0, 2.0)).collect()
    }

    #[test]
    fn gram_lanes_matches_per_lane_naive() {
        const L: usize = 8;
        let rows = 13;
        let x = plane::<L>(rows, 1);
        let y = plane::<L>(rows, 2);
        for path in [LanePath::Auto, LanePath::Scalar] {
            let (aa, bb, ab) = gram_lanes::<L>(&x, &y, path);
            for l in 0..L {
                let xs: Vec<f64> = (0..rows).map(|r| x[r * L + l]).collect();
                let ys: Vec<f64> = (0..rows).map(|r| y[r * L + l]).collect();
                let (naa, nbb, nab) = crate::ops::naive::gram3(&xs, &ys);
                assert!((aa[l] - naa).abs() <= 1e-15 * naa.abs().max(1.0), "{path:?} lane {l}");
                assert!((bb[l] - nbb).abs() <= 1e-15 * nbb.abs().max(1.0), "{path:?} lane {l}");
                assert!((ab[l] - nab).abs() <= 1e-15 * nab.abs().max(1.0), "{path:?} lane {l}");
            }
        }
    }

    #[test]
    fn auto_and_scalar_paths_are_bitwise_identical() {
        const L: usize = 8;
        let rows = 9;
        let x = plane::<L>(rows, 3);
        let y = plane::<L>(rows, 4);
        let (aa_a, bb_a, ab_a) = gram_lanes::<L>(&x, &y, LanePath::Auto);
        let (aa_s, bb_s, ab_s) = gram_lanes::<L>(&x, &y, LanePath::Scalar);
        assert_eq!(aa_a, aa_s);
        assert_eq!(bb_a, bb_s);
        assert_eq!(ab_a, ab_s);

        let rot = rotation_lanes::<L>(&aa_a, &bb_a, &ab_a, 0.0, true, &[u64::MAX; L]);
        let (mut xa, mut ya) = (x.clone(), y.clone());
        rotate_lanes::<L>(&rot, &mut xa, &mut ya, LanePath::Auto);
        let (mut xs, mut ys) = (x, y);
        rotate_lanes::<L>(&rot, &mut xs, &mut ys, LanePath::Scalar);
        assert_eq!(xa, xs);
        assert_eq!(ya, ys);
    }

    #[test]
    fn rotation_lanes_matches_compute_rotation_per_lane() {
        const L: usize = 4;
        let alpha = [4.0, 1.0, 0.0, 2.5];
        let beta = [1.0, 4.0, 3.0, 2.5];
        let gamma = [0.5, -0.5, 0.0, 1e-18];
        let rot = rotation_lanes::<L>(&alpha, &beta, &gamma, 1e-12, false, &[u64::MAX; L]);
        for l in 0..L {
            let reference = compute_rotation(alpha[l], beta[l], gamma[l], 1e-12);
            assert_eq!(rot.c[l], reference.c, "lane {l}");
            assert_eq!(rot.s[l], reference.s, "lane {l}");
            assert_eq!(rot.write[l] != 0, !reference.skipped, "lane {l}");
        }
    }

    #[test]
    fn rotation_lanes_swap_matches_orthogonalize_pair_decision() {
        const L: usize = 2;
        // lane 0: right norm larger after the (skipped) rotation → swap;
        // lane 1: already sorted → no write at all
        let alpha = [1.0, 9.0];
        let beta = [9.0, 1.0];
        let gamma = [0.0, 0.0];
        let rot = rotation_lanes::<L>(&alpha, &beta, &gamma, 1e-12, true, &[u64::MAX; L]);
        assert_eq!(rot.swap, [u64::MAX, 0]);
        assert_eq!(rot.write, [u64::MAX, 0]);
        assert_eq!(rot.c, [1.0; L]);
        assert_eq!(rot.s, [0.0; L]);
    }

    #[test]
    fn rotate_lanes_replays_apply_rotation_per_lane() {
        const L: usize = 8;
        let rows = 6;
        let x0 = plane::<L>(rows, 5);
        let y0 = plane::<L>(rows, 6);
        let (aa, bb, ab) = gram_lanes::<L>(&x0, &y0, LanePath::Auto);
        let rot = rotation_lanes::<L>(&aa, &bb, &ab, 0.0, true, &[u64::MAX; L]);
        for path in [LanePath::Auto, LanePath::Scalar] {
            let (mut x, mut y) = (x0.clone(), y0.clone());
            rotate_lanes::<L>(&rot, &mut x, &mut y, path);
            for l in 0..L {
                let mut xs: Vec<f64> = (0..rows).map(|r| x0[r * L + l]).collect();
                let mut ys: Vec<f64> = (0..rows).map(|r| y0[r * L + l]).collect();
                let r = Rotation { c: rot.c[l], s: rot.s[l], skipped: false };
                if rot.write[l] != 0 {
                    if rot.swap[l] != 0 {
                        apply_rotation_swapped(r, &mut xs, &mut ys);
                    } else {
                        apply_rotation(r, &mut xs, &mut ys);
                    }
                }
                for row in 0..rows {
                    assert_eq!(x[row * L + l], xs[row], "{path:?} lane {l} row {row}");
                    assert_eq!(y[row * L + l], ys[row], "{path:?} lane {l} row {row}");
                }
            }
        }
    }

    #[test]
    fn rotate_lanes_dual_matches_two_single_rotates_bitwise() {
        const L: usize = 8;
        // unequal row counts, like the engine's A (rows) and V (cols) planes
        let (rows_a, rows_v) = (6, 4);
        let xa0 = plane::<L>(rows_a, 21);
        let ya0 = plane::<L>(rows_a, 22);
        let xv0 = plane::<L>(rows_v, 23);
        let yv0 = plane::<L>(rows_v, 24);
        let (aa, bb, ab) = gram_lanes::<L>(&xa0, &ya0, LanePath::Auto);
        // mixed write mask: exercise the select path too
        let mut active = [u64::MAX; L];
        active[3] = 0;
        let rot = rotation_lanes::<L>(&aa, &bb, &ab, 0.0, true, &active);
        for path in [LanePath::Auto, LanePath::Scalar] {
            let (mut xa, mut ya) = (xa0.clone(), ya0.clone());
            let (mut xv, mut yv) = (xv0.clone(), yv0.clone());
            rotate_lanes::<L>(&rot, &mut xa, &mut ya, path);
            rotate_lanes::<L>(&rot, &mut xv, &mut yv, path);
            let (mut dxa, mut dya) = (xa0.clone(), ya0.clone());
            let (mut dxv, mut dyv) = (xv0.clone(), yv0.clone());
            rotate_lanes_dual::<L>(&rot, &mut dxa, &mut dya, &mut dxv, &mut dyv, path);
            assert_eq!(xa, dxa, "{path:?}");
            assert_eq!(ya, dya, "{path:?}");
            assert_eq!(xv, dxv, "{path:?}");
            assert_eq!(yv, dyv, "{path:?}");
        }
    }

    #[test]
    fn inactive_and_unwritten_lanes_are_bitwise_untouched() {
        const L: usize = 8;
        let rows = 5;
        let x0 = plane::<L>(rows, 7);
        let y0 = plane::<L>(rows, 8);
        let (aa, bb, ab) = gram_lanes::<L>(&x0, &y0, LanePath::Auto);
        let mut active = [u64::MAX; L];
        active[2] = 0;
        active[5] = 0;
        let rot = rotation_lanes::<L>(&aa, &bb, &ab, 0.0, true, &active);
        assert_eq!(rot.write[2], 0);
        assert_eq!(rot.write[5], 0);
        for path in [LanePath::Auto, LanePath::Scalar] {
            let (mut x, mut y) = (x0.clone(), y0.clone());
            rotate_lanes::<L>(&rot, &mut x, &mut y, path);
            for r in 0..rows {
                for &l in &[2usize, 5] {
                    assert_eq!(x[r * L + l], x0[r * L + l], "{path:?}");
                    assert_eq!(y[r * L + l], y0[r * L + l], "{path:?}");
                }
            }
        }
    }

    #[test]
    fn huge_zeta_does_not_overflow_the_solve() {
        const L: usize = 4;
        // α huge, β tiny, γ small but above threshold: ζ² would overflow
        let alpha = [1e308, 1.0, 1e300, 1.0];
        let beta = [1e-100, 1e308, 1e-300, 1.0];
        let gamma = [1e100, 1e100, 1e-5, 0.9];
        let rot = rotation_lanes::<L>(&alpha, &beta, &gamma, 1e-15, false, &[u64::MAX; L]);
        for l in 0..L {
            assert!(rot.c[l].is_finite(), "lane {l}: c = {}", rot.c[l]);
            assert!(rot.s[l].is_finite(), "lane {l}: s = {}", rot.s[l]);
            assert!(rot.c[l] > 0.0, "lane {l}: inner rotation has c > 0");
            // |s| <= c: the inner-rotation property survives the guard
            assert!(rot.s[l].abs() <= rot.c[l] + 1e-15, "lane {l}");
        }
        // the guarded lanes actually rotate (tiny but non-zero angle)
        assert_ne!(rot.s[0], 0.0);
        // and the asymptote agrees with the exact formula to high accuracy
        // on a representable case: ζ = 1e149 (just under the guard) vs the
        // asymptote at ζ = 1e151 scales as 1/(2ζ)
        let t149 = {
            let z = 1e149f64;
            1.0 / (z + (1.0 + z * z).sqrt())
        };
        assert!((t149 * 2.0 * 1e149 - 1.0).abs() < 1e-10);
    }

    #[test]
    fn zero_and_denormal_columns_are_skipped() {
        const L: usize = 4;
        // denormal entries square to zero → α = 0 → identity, no write
        let alpha = [0.0, 0.0, 5.0, 0.0];
        let beta = [3.0, 0.0, 0.0, 0.0];
        let gamma = [0.0, 0.0, 0.0, 0.0];
        let rot = rotation_lanes::<L>(&alpha, &beta, &gamma, 1e-12, false, &[u64::MAX; L]);
        assert_eq!(rot.write, [0; L]);
        assert_eq!(rot.c, [1.0; L]);
        assert_eq!(rot.s, [0.0; L]);
        assert!(!rot.any_write());
    }

    #[test]
    fn lane_width_4_and_16_share_semantics_with_8() {
        // the same 16 problems, packed at L = 4, 8, 16, rotate identically
        let rows = 7;
        let base = plane::<16>(rows, 11);
        let other = plane::<16>(rows, 12);
        let repack = |src: &[f64], l: usize, chunk: usize| -> Vec<f64> {
            // problems chunk·l .. chunk·l + l, rows major
            (0..rows * l).map(|i| src[(i / l) * 16 + chunk * l + i % l]).collect()
        };
        let run16 = {
            let (aa, bb, ab) = gram_lanes::<16>(&base, &other, LanePath::Auto);
            let rot = rotation_lanes::<16>(&aa, &bb, &ab, 0.0, true, &[u64::MAX; 16]);
            let (mut x, mut y) = (base.clone(), other.clone());
            rotate_lanes::<16>(&rot, &mut x, &mut y, LanePath::Auto);
            (x, y)
        };
        for chunk in 0..4 {
            let xs = repack(&base, 4, chunk);
            let ys = repack(&other, 4, chunk);
            let (aa, bb, ab) = gram_lanes::<4>(&xs, &ys, LanePath::Auto);
            let rot = rotation_lanes::<4>(&aa, &bb, &ab, 0.0, true, &[u64::MAX; 4]);
            let (mut x, mut y) = (xs, ys);
            rotate_lanes::<4>(&rot, &mut x, &mut y, LanePath::Auto);
            let ex = repack(&run16.0, 4, chunk);
            let ey = repack(&run16.1, 4, chunk);
            assert_eq!(x, ex, "chunk {chunk}");
            assert_eq!(y, ey, "chunk {chunk}");
        }
    }
}
