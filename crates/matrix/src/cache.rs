//! Cache-size probing for the multi-level blocking decisions.
//!
//! The hierarchical blocked driver and the tall-skinny QR front-end both
//! size their working sets against the per-core L2 cache: a blocked
//! meeting whose union panel spills out of L2 re-reads every column from
//! DRAM `O(c)` times, which is exactly the `c = 32` falloff recorded in
//! `BENCH_blocked.json`. Rather than hardcoding a block width, callers ask
//! [`l2_bytes`] once and derive their tile shapes from it.
//!
//! Probe order:
//! 1. the `TREESVD_L2` environment variable (bytes, with optional
//!    `K`/`M` suffix) — the override for benchmarking and for machines
//!    whose sysfs is absent or wrong;
//! 2. `/sys/devices/system/cpu/cpu0/cache/index2/size` (Linux);
//! 3. a conservative 512 KiB fallback.
//!
//! The probe runs once and is cached for the process lifetime.

use std::sync::OnceLock;

/// Conservative fallback when no probe source is available: half a MiB of
/// L2 is the smallest size on any machine this workspace targets.
pub const L2_FALLBACK_BYTES: usize = 512 * 1024;

/// Parse a cache-size string: plain bytes, or with a `K`/`M` (KiB/MiB)
/// suffix as sysfs reports (`"1024K"`). Returns `None` for anything
/// non-positive or unparsable.
pub fn parse_cache_size(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, mult) = match t.char_indices().find(|(_, c)| !c.is_ascii_digit()) {
        None => (t, 1usize),
        Some((i, c)) => {
            let mult = match c.to_ascii_uppercase() {
                'K' => 1024,
                'M' => 1024 * 1024,
                _ => return None,
            };
            // nothing but the one suffix letter may follow the digits
            if t[i + 1..].trim() != "" {
                return None;
            }
            (&t[..i], mult)
        }
    };
    let n: usize = digits.parse().ok()?;
    if n == 0 {
        None
    } else {
        n.checked_mul(mult)
    }
}

fn probe_l2() -> usize {
    if let Ok(v) = std::env::var("TREESVD_L2") {
        if let Some(b) = parse_cache_size(&v) {
            return b;
        }
    }
    if let Ok(s) = std::fs::read_to_string("/sys/devices/system/cpu/cpu0/cache/index2/size") {
        if let Some(b) = parse_cache_size(&s) {
            return b;
        }
    }
    L2_FALLBACK_BYTES
}

/// Per-core L2 cache size in bytes: `TREESVD_L2` override, else the
/// sysfs probe, else [`L2_FALLBACK_BYTES`]. Probed once per process.
pub fn l2_bytes() -> usize {
    static L2: OnceLock<usize> = OnceLock::new();
    *L2.get_or_init(probe_l2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_bytes_and_suffixes() {
        assert_eq!(parse_cache_size("524288"), Some(524288));
        assert_eq!(parse_cache_size("1024K"), Some(1024 * 1024));
        assert_eq!(parse_cache_size(" 2M \n"), Some(2 * 1024 * 1024));
        assert_eq!(parse_cache_size("1m"), Some(1024 * 1024));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse_cache_size(""), None);
        assert_eq!(parse_cache_size("0"), None);
        assert_eq!(parse_cache_size("12G"), None);
        assert_eq!(parse_cache_size("K12"), None);
        assert_eq!(parse_cache_size("12KB"), None);
        assert_eq!(parse_cache_size("-4"), None);
    }

    #[test]
    fn probe_returns_something_sane() {
        let b = l2_bytes();
        assert!(b >= 64 * 1024, "implausibly small L2: {b}");
        assert!(b <= 1024 * 1024 * 1024, "implausibly large L2: {b}");
    }
}
