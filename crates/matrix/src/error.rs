//! Error type for matrix construction and shape mismatches.

use std::fmt;

/// Errors produced by matrix constructors and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The number of supplied elements does not match `rows * cols`.
    DataLength {
        /// Expected element count (`rows * cols`).
        expected: usize,
        /// Actual element count supplied.
        actual: usize,
    },
    /// A dimension was zero where a non-empty matrix is required.
    EmptyDimension,
    /// Two matrices (or a matrix and a vector) have incompatible shapes.
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A column (or row) index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it must be below.
        bound: usize,
    },
    /// The same column was requested twice where distinct columns are needed.
    DuplicateColumn(usize),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DataLength { expected, actual } => {
                write!(f, "data length {actual} does not match rows*cols = {expected}")
            }
            MatrixError::EmptyDimension => write!(f, "matrix dimensions must be nonzero"),
            MatrixError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            MatrixError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (must be < {bound})")
            }
            MatrixError::DuplicateColumn(i) => {
                write!(f, "column {i} requested twice where distinct columns are required")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MatrixError::DataLength { expected: 6, actual: 5 };
        assert!(e.to_string().contains('6'));
        assert!(e.to_string().contains('5'));
        let e = MatrixError::ShapeMismatch { left: (2, 3), right: (4, 5) };
        assert!(e.to_string().contains("(2, 3)"));
        let e = MatrixError::IndexOutOfBounds { index: 9, bound: 4 };
        assert!(e.to_string().contains('9'));
        let e = MatrixError::DuplicateColumn(3);
        assert!(e.to_string().contains('3'));
        assert!(MatrixError::EmptyDimension.to_string().contains("nonzero"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<MatrixError>();
    }
}
