//! Dense column-major matrix substrate for the `treesvd` workspace.
//!
//! This crate provides the numerical building blocks used by the one-sided
//! (Hestenes) Jacobi SVD of Zhou & Brent, *Parallel Computation of the
//! Singular Value Decomposition on Tree Architectures* (ICPP 1993):
//!
//! * [`Matrix`] — a dense, column-major `f64` matrix whose columns are
//!   contiguous slices, so a plane rotation of two columns touches exactly
//!   two cache-friendly runs of memory;
//! * [`rotation`] — the Hestenes plane-rotation kernels, including the
//!   *rotation-with-swap* of the paper's equation (3), which folds a column
//!   interchange into the rotation itself;
//! * [`generate`] — reproducible test-matrix generators (random dense,
//!   prescribed singular spectrum, graded, rank-deficient, …);
//! * [`checks`] — residual and orthogonality measures used by the test
//!   suite and the experiment harness.
//!
//! The crate is deliberately free of external linear-algebra dependencies:
//! every kernel needed by the paper (dot products, norms, Householder
//! reflectors for generating random orthogonal factors, small matrix
//! products for verification) is implemented here.
//!
//! ```
//! use treesvd_matrix::Matrix;
//! use treesvd_matrix::rotation::orthogonalize_pair;
//! use treesvd_matrix::ops::dot;
//!
//! let mut a = Matrix::from_row_major(3, 2, &[1.0, 2.0, 2.0, 0.5, 3.0, 1.0]).unwrap();
//! let (x, y) = a.col_pair_mut(0, 1).unwrap();
//! let outcome = orthogonalize_pair(x, y, 0.0, true);
//! assert!(!outcome.rotation.skipped);
//! assert!(dot(a.col(0), a.col(1)).abs() < 1e-12);  // now orthogonal
//! ```

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod checks;
pub mod error;
pub mod generate;
pub mod matrix;
pub mod ops;
#[cfg(test)]
mod proptests;
pub mod qr;
pub mod rng;
pub mod rotation;
pub mod soa;

pub use error::MatrixError;
pub use matrix::Matrix;
pub use rotation::Rotation;

/// Machine epsilon for `f64`, re-exported for convenience in tolerances.
pub const EPS: f64 = f64::EPSILON;
