//! Reproducible test-matrix generators.
//!
//! The SVD experiments need matrices with *known* singular spectra so that
//! accuracy can be asserted, plus unstructured random matrices for
//! convergence studies. Orthogonal factors are built as products of random
//! Householder reflectors — no external linear algebra required.

use crate::matrix::Matrix;
use crate::rng::Rng;

/// A random `rows × cols` matrix with i.i.d. entries uniform on `[-1, 1]`.
///
/// # Panics
/// Panics if a dimension is zero.
pub fn random_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-1.0, 1.0)).expect("nonzero dims")
}

/// Apply a random Householder reflector `H = I − 2vvᵀ/(vᵀv)` to every column
/// of `m` (left multiplication), in place.
fn apply_random_reflector(m: &mut Matrix, rng: &mut Rng) {
    let rows = m.rows();
    let mut v: Vec<f64> = (0..rows).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let vv = crate::ops::norm2_sq(&v);
    if vv == 0.0 {
        v[0] = 1.0;
    }
    let vv = crate::ops::norm2_sq(&v).max(f64::MIN_POSITIVE);
    for j in 0..m.cols() {
        let col = m.col_mut(j);
        let proj = crate::ops::dot(&v, col);
        let coeff = 2.0 * proj / vv;
        for (c, vi) in col.iter_mut().zip(v.iter()) {
            *c -= coeff * vi;
        }
    }
}

/// A random `n × n` orthogonal matrix: a product of `n` random Householder
/// reflectors applied to the identity.
///
/// # Panics
/// Panics if `n == 0`.
pub fn random_orthogonal(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from_u64(seed);
    let mut q = Matrix::identity(n, n).expect("nonzero dims");
    for _ in 0..n.max(2) {
        apply_random_reflector(&mut q, &mut rng);
    }
    q
}

/// A `rows × cols` matrix with the *prescribed* singular values `sigma`
/// (not necessarily sorted): `A = U · diag(sigma) · Vᵀ` with random
/// orthogonal `U`, `V`.
///
/// # Panics
/// Panics if `sigma.len() != cols`, `rows < cols`, or any dimension is zero.
pub fn with_singular_values(rows: usize, sigma: &[f64], seed: u64) -> Matrix {
    let cols = sigma.len();
    assert!(rows >= cols, "need rows >= cols (paper assumes m >= n)");
    let u = random_orthogonal(rows, seed ^ 0x5eed_0001);
    let v = random_orthogonal(cols, seed ^ 0x5eed_0002);
    let d = Matrix::diagonal(rows, sigma).expect("rows >= cols");
    u.matmul(&d).expect("shapes agree").matmul(&v.transpose()).expect("shapes agree")
}

/// A matrix with geometrically graded singular values
/// `sigma_k = ratio^(k/(n-1))`, so the condition number is `1/ratio`.
///
/// # Panics
/// Panics if `rows < cols`, `cols == 0`, or `ratio <= 0`.
pub fn graded(rows: usize, cols: usize, ratio: f64, seed: u64) -> Matrix {
    assert!(ratio > 0.0, "grading ratio must be positive");
    let sigma: Vec<f64> = (0..cols)
        .map(|k| if cols == 1 { 1.0 } else { ratio.powf(k as f64 / (cols - 1) as f64) })
        .collect();
    with_singular_values(rows, &sigma, seed)
}

/// A rank-deficient matrix: the trailing `cols − rank` singular values are
/// exactly zero.
///
/// # Panics
/// Panics if `rank > cols` or `rows < cols`.
pub fn rank_deficient(rows: usize, cols: usize, rank: usize, seed: u64) -> Matrix {
    assert!(rank <= cols, "rank cannot exceed column count");
    let sigma: Vec<f64> = (0..cols).map(|k| if k < rank { 1.0 + k as f64 } else { 0.0 }).collect();
    with_singular_values(rows, &sigma, seed)
}

/// The (notoriously ill-conditioned) Hilbert-like matrix
/// `a_ij = 1 / (i + j + 1)`, truncated to `rows × cols`.
///
/// # Panics
/// Panics if a dimension is zero.
pub fn hilbert(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| 1.0 / (i + j + 1) as f64).expect("nonzero dims")
}

/// A matrix whose columns are already mutually orthogonal (a scaled
/// orthogonal matrix) — the Jacobi iteration must converge in one sweep
/// with zero rotations.
///
/// # Panics
/// Panics if `rows < cols` or a dimension is zero.
pub fn already_orthogonal(rows: usize, cols: usize, seed: u64) -> Matrix {
    assert!(rows >= cols);
    let q = random_orthogonal(rows, seed);
    let mut m = Matrix::zeros(rows, cols).expect("nonzero dims");
    for j in 0..cols {
        let src = q.col(j).to_vec();
        let dst = m.col_mut(j);
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d = s * (j + 1) as f64; // distinct norms => distinct singular values
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;

    #[test]
    fn random_uniform_is_reproducible_and_bounded() {
        let a = random_uniform(5, 4, 42);
        let b = random_uniform(5, 4, 42);
        assert_eq!(a, b);
        let c = random_uniform(5, 4, 43);
        assert_ne!(a, c);
        assert!(a.max_abs() <= 1.0);
    }

    #[test]
    fn random_orthogonal_is_orthogonal() {
        let q = random_orthogonal(8, 7);
        assert!(checks::orthogonality_residual(&q) < 1e-12);
        // and genuinely random: not the identity
        assert!(q.sub(&Matrix::identity(8, 8).unwrap()).unwrap().frobenius_norm() > 0.1);
    }

    #[test]
    fn prescribed_singular_values_survive_construction() {
        // Frobenius norm of A equals the 2-norm of sigma.
        let sigma = [3.0, 2.0, 1.0];
        let a = with_singular_values(6, &sigma, 11);
        let expect = (9.0_f64 + 4.0 + 1.0).sqrt();
        assert!((a.frobenius_norm() - expect).abs() < 1e-10);
    }

    #[test]
    fn graded_condition_number() {
        let a = graded(8, 4, 1e-3, 5);
        // Frobenius norm² = sum of sigma² with sigma = 1e-3^(k/3), k=0..3
        let expect: f64 = (0..4).map(|k| 1e-3_f64.powf(k as f64 / 3.0).powi(2)).sum();
        assert!((a.frobenius_norm().powi(2) - expect).abs() < 1e-10);
    }

    #[test]
    fn rank_deficient_has_dependent_columns() {
        let a = rank_deficient(6, 4, 2, 9);
        // Frobenius² = 1² + 2² = 5
        assert!((a.frobenius_norm().powi(2) - 5.0).abs() < 1e-10);
    }

    #[test]
    fn hilbert_entries() {
        let h = hilbert(3, 3);
        assert_eq!(h.get(0, 0), 1.0);
        assert_eq!(h.get(1, 1), 1.0 / 3.0);
        assert_eq!(h.get(2, 2), 0.2);
        assert_eq!(h.get(0, 2), h.get(2, 0));
    }

    #[test]
    fn already_orthogonal_matrix_has_orthogonal_columns() {
        let m = already_orthogonal(6, 4, 3);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(m.col_dot(i, j).abs() < 1e-12, "columns {i},{j} not orthogonal");
            }
        }
        // column norms are 1, 2, 3, 4
        for j in 0..4 {
            assert!((m.col_norm(j) - (j + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "rows >= cols")]
    fn wide_matrices_are_rejected() {
        let _ = with_singular_values(2, &[1.0, 2.0, 3.0], 0);
    }
}
