//! Tall-skinny QR: tiled Householder panels with compact-WY blocking and
//! a TSQR tree reduction over row tiles.
//!
//! For `m ≫ n` the one-sided Jacobi sweeps rotate full `m`-length columns
//! every meeting — nearly all memory bandwidth moves data that a QR
//! front-end could shrink first. This module factors `A = QR` so the
//! Jacobi drivers run on the small `n×n` factor `R`, with `Q` kept in
//! factored form (never materialized) and applied tile by tile:
//!
//! * **Panel factorization** proceeds left to right in panels of
//!   [`QrOptions::panel`] columns. Each panel's rows are split into *row
//!   tiles* sized to the L2 cache ([`crate::cache::l2_bytes`]); every
//!   tile is reduced by an in-cache Householder QR, and the per-tile `R`
//!   factors are merged pairwise up a binary tree (the TSQR reduction of
//!   Faverge–Langou–Robert–Dongarra, arXiv 1611.06892) — the same tree
//!   shape the paper's orderings sweep on. Tiles are independent, so the
//!   leaf factorizations fan out over the caller's fork–join hook
//!   ([`Joiner`]).
//! * **Compact-WY blocking**: every tree node stores its reflectors as an
//!   explicit unit-lower-trapezoidal `V` plus the upper-triangular `T` of
//!   `Q_node = I − V·T·Vᵀ`, so applying a node to `k` columns is two
//!   tall-skinny GEMMs ([`ops::gemm_tn`], [`ops::gemm_acc`]) around a
//!   small triangular multiply — BLAS-3-shaped work on the same
//!   `dot4`/`wsum4` micro-kernels as the blocked Jacobi panel update.
//! * **Trailing update / apply-Q** parallelize over *column chunks*: each
//!   lane owns a contiguous group of columns and applies the whole tree
//!   to it (leaves, then combines for `Qᵀ`; the reverse for `Q`), so no
//!   barrier is needed between tree levels.
//!
//! The factorization's steady state (the per-panel loop) is
//! allocation-free after the first panel warms the per-lane scratch
//! arenas; [`QrStats::steady_alloc_events`] counts violations (zero in
//! every test and bench). The factor storage itself — one `V`/`T` pair
//! per tree node — is the output, allocated once per node.

use crate::error::MatrixError;
use crate::matrix::Matrix;
use crate::ops;

/// Fork–join hook for the TSQR tree: this crate is the workspace's
/// lowest layer and cannot depend on the persistent worker pool
/// (`treesvd-sim` depends on *it*), so callers inject one. The two
/// closures operate on disjoint data and may run concurrently; `fork`
/// returns when both have completed.
pub trait Joiner: Sync {
    /// Run both closures (possibly concurrently), returning when both
    /// are done.
    fn fork(&self, a: &mut (dyn FnMut() + Send), b: &mut (dyn FnMut() + Send));
}

/// The serial joiner: runs the halves back to back on the caller.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialJoin;

impl Joiner for SerialJoin {
    fn fork(&self, a: &mut (dyn FnMut() + Send), b: &mut (dyn FnMut() + Send)) {
        a();
        b();
    }
}

/// Tuning knobs for [`TsqrQr::factor`].
#[derive(Debug, Clone, Copy)]
pub struct QrOptions {
    /// Panel width (the compact-WY block size). Clamped to the column
    /// count. Default 32 — wide enough that the trailing update is
    /// GEMM-shaped, small enough that `T` and the tree nodes stay tiny.
    pub panel: usize,
    /// Row-tile height for the TSQR leaves; `0` derives it from the L2
    /// probe so one leaf tile (`leaf_rows × panel` doubles) fills about
    /// half the cache.
    pub leaf_rows: usize,
    /// Fork lanes for the leaf factorizations and the column-chunk
    /// applies; `1` runs serially regardless of the [`Joiner`].
    pub lanes: usize,
}

impl Default for QrOptions {
    fn default() -> Self {
        Self { panel: 32, leaf_rows: 0, lanes: 1 }
    }
}

impl QrOptions {
    /// The effective leaf height for a panel of width `bw`: the explicit
    /// override, else `L2/2` worth of tile rows, floored at two panels'
    /// worth so the tree does not degenerate on tiny caches.
    fn leaf_height(&self, bw: usize) -> usize {
        if self.leaf_rows > 0 {
            self.leaf_rows.max(bw)
        } else {
            (crate::cache::l2_bytes() / (16 * bw.max(1))).clamp(2 * bw, 16384)
        }
    }
}

/// Counters from a factorization, for the benches and the zero-alloc
/// gates.
#[derive(Debug, Clone, Copy, Default)]
pub struct QrStats {
    /// Panels factored.
    pub panels: usize,
    /// Row tiles (TSQR leaves) of the first — tallest — panel.
    pub leaves: usize,
    /// Depth of the first panel's combine tree.
    pub levels: usize,
    /// Scratch-arena growth events after the first panel warmed the
    /// per-lane arenas. Zero in steady state.
    pub steady_alloc_events: u64,
}

/// One TSQR leaf: the compact-WY factor of one row tile of a panel.
#[derive(Debug)]
struct Leaf {
    /// First (global) row of the tile.
    row0: usize,
    /// Tile height.
    rows: usize,
    /// Explicit unit-lower-trapezoidal `V`, `rows × bw`.
    v: Vec<f64>,
    /// Upper-triangular `T`, `bw × bw`.
    t: Vec<f64>,
}

/// One combine node: the compact-WY factor of the QR of two stacked
/// `bw×bw` `R` factors. Its reflectors act on the top `bw` rows of the
/// two child tiles' row ranges.
#[derive(Debug)]
struct Combine {
    /// Surviving child: leaf index whose top rows hold the left `R`.
    left: usize,
    /// Absorbed child: leaf index whose top rows hold the right `R`.
    right: usize,
    /// Explicit `V`, `2bw × bw`.
    v: Vec<f64>,
    /// Upper-triangular `T`, `bw × bw`.
    t: Vec<f64>,
}

/// The factored form of one panel: its leaves plus the combine tree in
/// reduction order.
#[derive(Debug)]
struct PanelFactor {
    /// Panel width.
    bw: usize,
    leaves: Vec<Leaf>,
    combines: Vec<Combine>,
}

/// Per-lane scratch for factorization and applies. Reused across panels;
/// growth after warm-up is counted.
#[derive(Debug, Default)]
struct QrScratch {
    /// Householder scalars of the node being factored.
    tau: Vec<f64>,
    /// `VᵀV` while building `T`, and the stacked-`R` buffer of combines.
    s: Vec<f64>,
    /// `W = VᵀC` of a block-reflector application.
    w: Vec<f64>,
    /// Gather buffer for combine applications (two `bw`-row strips).
    stack: Vec<f64>,
    alloc_events: u64,
}

impl QrScratch {
    fn grow(buf: &mut Vec<f64>, len: usize, events: &mut u64) {
        if buf.capacity() < len {
            *events += 1;
        }
        buf.resize(len, 0.0);
    }

    fn ensure_factor(&mut self, bw: usize) {
        Self::grow(&mut self.tau, bw, &mut self.alloc_events);
        Self::grow(&mut self.s, (2 * bw) * bw, &mut self.alloc_events);
    }

    fn ensure_apply(&mut self, bw: usize, k: usize) {
        Self::grow(&mut self.w, bw * k, &mut self.alloc_events);
        Self::grow(&mut self.stack, 2 * bw * k, &mut self.alloc_events);
    }
}

/// `A = QR` in TSQR factored form: `R` explicitly, `Q` as the per-panel
/// reflector trees, applied on demand by [`TsqrQr::apply_q`] /
/// [`TsqrQr::apply_qt`].
#[derive(Debug)]
pub struct TsqrQr {
    m: usize,
    n: usize,
    panels: Vec<PanelFactor>,
    r: Matrix,
    stats: QrStats,
}

/// In-place Householder QR of a dense `h × bw` column-major tile
/// (`h ≥ bw`): on return the upper triangle holds `R`, the strict lower
/// trapezoid the reflector tails (scaled so the implicit diagonal is 1),
/// and `tau` the reflector scalars (`tau[j] = 0` means `H_j = I`).
fn house_qr(buf: &mut [f64], h: usize, bw: usize, tau: &mut [f64]) {
    debug_assert!(h >= bw && buf.len() == h * bw);
    for j in 0..bw {
        let (head, tail) = buf.split_at_mut((j + 1) * h);
        let colj = &mut head[j * h..];
        let alpha = colj[j];
        let xnorm = ops::norm2(&colj[j + 1..]);
        if xnorm == 0.0 {
            tau[j] = 0.0; // H_j = I; the diagonal entry is already R's
            continue;
        }
        let beta = -alpha.signum() * f64::hypot(alpha, xnorm);
        tau[j] = (beta - alpha) / beta;
        ops::scal(1.0 / (alpha - beta), &mut colj[j + 1..]);
        colj[j] = beta;
        // apply H_j to the remaining columns of the tile
        for coll in tail.chunks_exact_mut(h) {
            let w = coll[j] + ops::dot(&colj[j + 1..], &coll[j + 1..]);
            let tw = tau[j] * w;
            coll[j] -= tw;
            ops::axpy(-tw, &colj[j + 1..], &mut coll[j + 1..]);
        }
    }
}

/// Split a factored tile into `(R, explicit V)`: copy the upper triangle
/// into `r` (dense `bw×bw`, zeros below), then overwrite the tile with
/// the explicit unit-lower-trapezoidal `V` (ones on the diagonal, zeros
/// above) so block applications are plain GEMMs.
fn split_r_v(buf: &mut [f64], h: usize, bw: usize, r: &mut [f64]) {
    debug_assert!(r.len() >= bw * bw);
    for j in 0..bw {
        let col = &mut buf[j * h..(j + 1) * h];
        for i in 0..bw {
            r[i + bw * j] = if i <= j { col[i] } else { 0.0 };
        }
        col[..j].fill(0.0);
        col[j] = 1.0;
    }
}

/// Build the compact-WY `T` (upper triangular, forward accumulation) from
/// an explicit `V` and its `tau`s: `T[j,j] = τ_j`,
/// `T(0..j, j) = −τ_j · T(0..j,0..j) · (Vᵀ v_j)`.
fn build_t(v: &[f64], h: usize, bw: usize, tau: &[f64], s: &mut [f64], t: &mut [f64]) {
    debug_assert!(s.len() >= bw * bw && t.len() == bw * bw);
    ops::gemm_tn(h, v, h, bw, v, h, bw, &mut s[..bw * bw]);
    t.fill(0.0);
    for j in 0..bw {
        t[j + bw * j] = tau[j];
        for i in (0..j).rev() {
            let mut acc = 0.0;
            for l in i..j {
                acc += t[i + bw * l] * s[l + bw * j];
            }
            t[i + bw * j] = -tau[j] * acc;
        }
    }
}

/// Apply the block reflector `(I − V·op(T)·Vᵀ)` of one tree node to `k`
/// columns of a strided column-major view: column `j` of `C` is
/// `c[base + j·ldc ..][..h]`. `trans` selects `op(T) = Tᵀ` (the `Qᵀ`
/// direction) over `T`.
#[allow(clippy::too_many_arguments)]
fn apply_wy(
    v: &[f64],
    h: usize,
    bw: usize,
    t: &[f64],
    trans: bool,
    c: &mut [f64],
    base: usize,
    ldc: usize,
    k: usize,
    w: &mut [f64],
) {
    if k == 0 {
        return;
    }
    let w = &mut w[..bw * k];
    ops::gemm_tn(h, v, h, bw, &c[base..], ldc, k, w);
    // triangular multiply in place, one column of W at a time
    for col in w.chunks_exact_mut(bw) {
        if trans {
            // W ← Tᵀ·W: row i needs rows ≤ i, so descend
            for i in (0..bw).rev() {
                let mut acc = 0.0;
                for l in 0..=i {
                    acc += t[l + bw * i] * col[l];
                }
                col[i] = acc;
            }
        } else {
            // W ← T·W: row i needs rows ≥ i, so ascend
            for i in 0..bw {
                let mut acc = 0.0;
                for l in i..bw {
                    acc += t[i + bw * l] * col[l];
                }
                col[i] = acc;
            }
        }
    }
    ops::gemm_acc(h, v, h, bw, w, k, -1.0, &mut c[base..], ldc);
}

/// Apply one panel's whole reflector tree to a contiguous column chunk
/// (`k` columns of length `ldc`, panel rows addressed globally inside
/// each column). `trans = true` is the `Qᵀ` direction (leaves, then
/// combines in reduction order); `trans = false` is `Q` (combines in
/// reverse, then leaves).
fn apply_panel(
    p: &PanelFactor,
    trans: bool,
    c: &mut [f64],
    ldc: usize,
    k: usize,
    s: &mut QrScratch,
) {
    s.ensure_apply(p.bw, k);
    let leaves = |c: &mut [f64], s: &mut QrScratch| {
        for leaf in &p.leaves {
            apply_wy(&leaf.v, leaf.rows, p.bw, &leaf.t, trans, c, leaf.row0, ldc, k, &mut s.w);
        }
    };
    let combine = |cb: &Combine, c: &mut [f64], s: &mut QrScratch| {
        let (r0, r1) = (p.leaves[cb.left].row0, p.leaves[cb.right].row0);
        let h = 2 * p.bw;
        // gather the two bw-row strips of every column, apply, scatter
        for j in 0..k {
            let col = &c[j * ldc..];
            s.stack[j * h..j * h + p.bw].copy_from_slice(&col[r0..r0 + p.bw]);
            s.stack[j * h + p.bw..(j + 1) * h].copy_from_slice(&col[r1..r1 + p.bw]);
        }
        apply_wy(&cb.v, h, p.bw, &cb.t, trans, &mut s.stack, 0, h, k, &mut s.w);
        for j in 0..k {
            let col = &mut c[j * ldc..];
            col[r0..r0 + p.bw].copy_from_slice(&s.stack[j * h..j * h + p.bw]);
            col[r1..r1 + p.bw].copy_from_slice(&s.stack[j * h + p.bw..(j + 1) * h]);
        }
    };
    if trans {
        leaves(c, s);
        for cb in &p.combines {
            combine(cb, c, s);
        }
    } else {
        for cb in p.combines.iter().rev() {
            combine(cb, c, s);
        }
        leaves(c, s);
    }
}

/// Recursively fan `f(index, item, scratch)` over items, splitting lanes
/// (and the scratch arenas with them) across the joiner.
fn fan_out<T: Send, F>(
    items: &mut [T],
    base: usize,
    scratches: &mut [QrScratch],
    lanes: usize,
    join: &dyn Joiner,
    f: &F,
) where
    F: Fn(usize, &mut T, &mut QrScratch) + Sync,
{
    if lanes <= 1 || items.len() <= 1 || scratches.len() <= 1 {
        let s = &mut scratches[0];
        for (i, item) in items.iter_mut().enumerate() {
            f(base + i, item, s);
        }
        return;
    }
    let mid = items.len() / 2;
    let (il, ir) = items.split_at_mut(mid);
    let left_lanes = (lanes / 2).max(1);
    let (sl, sr) = scratches.split_at_mut(left_lanes.min(scratches.len() - 1).max(1));
    let mut a = || fan_out(il, base, sl, left_lanes, join, f);
    let mut b = || fan_out(ir, base + mid, sr, lanes - left_lanes, join, f);
    join.fork(&mut a, &mut b);
}

/// A column chunk of the working matrix handed to one lane: the columns
/// are contiguous (`cols × ld`).
struct Chunk<'a> {
    cols: &'a mut [f64],
    k: usize,
}

/// Split `region` (whole columns, stride `ld`) into roughly `parts`
/// contiguous chunks.
fn chunk_columns<'a>(region: &'a mut [f64], ld: usize, parts: usize) -> Vec<Chunk<'a>> {
    let total = region.len() / ld.max(1);
    let parts = parts.clamp(1, total.max(1));
    let (base, rem) = (total / parts, total % parts);
    let mut out = Vec::with_capacity(parts);
    let mut rest = region;
    for i in 0..parts {
        let k = base + usize::from(i < rem);
        let (head, tail) = rest.split_at_mut(k * ld);
        out.push(Chunk { cols: head, k });
        rest = tail;
    }
    out
}

impl TsqrQr {
    /// Factor `a = QR` (requires `a.rows() ≥ a.cols()`).
    ///
    /// # Errors
    /// [`MatrixError::ShapeMismatch`] when the input is wide — callers
    /// route `m < n` through the factorization of `Aᵀ`.
    pub fn factor(a: &Matrix, opts: &QrOptions, join: &dyn Joiner) -> Result<TsqrQr, MatrixError> {
        let (m, n) = a.shape();
        if m < n {
            return Err(MatrixError::ShapeMismatch { left: (m, n), right: (n, n) });
        }
        let lanes = opts.lanes.max(1);
        let mut scratches: Vec<QrScratch> = (0..lanes).map(|_| QrScratch::default()).collect();
        let mut work = a.as_slice().to_vec();
        let bw_max = opts.panel.clamp(1, n);
        let mut panels: Vec<PanelFactor> = Vec::with_capacity(n.div_ceil(bw_max));
        let mut stats = QrStats::default();
        let mut warm_alloc = 0u64;

        let mut col0 = 0;
        while col0 < n {
            let bw = bw_max.min(n - col0);
            let prows = m - col0;
            let leaf_h = opts.leaf_height(bw);
            let nl = (prows / leaf_h).clamp(1, (prows / bw).max(1));
            let (hbase, hrem) = (prows / nl, prows % nl);

            // ---- leaf factorizations (parallel over tiles) ----
            let mut leaves: Vec<(Leaf, Vec<f64>)> = Vec::with_capacity(nl);
            let mut row0 = col0;
            for i in 0..nl {
                let rows = hbase + usize::from(i < hrem);
                leaves.push((
                    Leaf { row0, rows, v: vec![0.0; rows * bw], t: vec![0.0; bw * bw] },
                    vec![0.0; bw * bw],
                ));
                row0 += rows;
            }
            let work_ref: &[f64] = &work;
            fan_out(&mut leaves, 0, &mut scratches, lanes, join, &|_, (leaf, r), s| {
                s.ensure_factor(bw);
                for j in 0..bw {
                    let src = &work_ref[(col0 + j) * m + leaf.row0..][..leaf.rows];
                    leaf.v[j * leaf.rows..(j + 1) * leaf.rows].copy_from_slice(src);
                }
                house_qr(&mut leaf.v, leaf.rows, bw, &mut s.tau);
                split_r_v(&mut leaf.v, leaf.rows, bw, r);
                build_t(&leaf.v, leaf.rows, bw, &s.tau, &mut s.s, &mut leaf.t);
            });
            let mut rs: Vec<Vec<f64>> = Vec::with_capacity(nl);
            let mut leaf_nodes: Vec<Leaf> = Vec::with_capacity(nl);
            for (leaf, r) in leaves {
                leaf_nodes.push(leaf);
                rs.push(r);
            }

            // ---- combine tree (serial; O(bw³) per node) ----
            let mut combines: Vec<Combine> = Vec::new();
            let mut survivors: Vec<usize> = (0..nl).collect();
            let mut levels = 0usize;
            while survivors.len() > 1 {
                levels += 1;
                let mut next = Vec::with_capacity(survivors.len().div_ceil(2));
                for pair in survivors.chunks(2) {
                    if pair.len() == 1 {
                        next.push(pair[0]);
                        continue;
                    }
                    let (left, right) = (pair[0], pair[1]);
                    let h = 2 * bw;
                    let s0 = &mut scratches[0];
                    s0.ensure_factor(bw);
                    let mut v = vec![0.0; h * bw];
                    let mut t = vec![0.0; bw * bw];
                    for j in 0..bw {
                        v[j * h..j * h + bw].copy_from_slice(&rs[left][j * bw..(j + 1) * bw]);
                        v[j * h + bw..(j + 1) * h]
                            .copy_from_slice(&rs[right][j * bw..(j + 1) * bw]);
                    }
                    house_qr(&mut v, h, bw, &mut s0.tau);
                    // the merged R overwrites the left child's
                    let (rl, s) = (&mut rs[left], &mut s0.s);
                    split_r_v(&mut v, h, bw, rl);
                    build_t(&v, h, bw, &s0.tau, s, &mut t);
                    combines.push(Combine { left, right, v, t });
                    next.push(left);
                }
                survivors = next;
            }

            // root R → the working matrix's diagonal block
            let root = survivors[0];
            for j in 0..bw {
                work[(col0 + j) * m + col0..][..bw]
                    .copy_from_slice(&rs[root][j * bw..(j + 1) * bw]);
            }

            let panel = PanelFactor { bw, leaves: leaf_nodes, combines };

            // ---- trailing update: Qᵀ_panel on columns right of the panel
            //      (parallel over column chunks) ----
            let trailing = &mut work[(col0 + bw) * m..n * m];
            if !trailing.is_empty() {
                let mut chunks = chunk_columns(trailing, m, lanes);
                let pref = &panel;
                fan_out(&mut chunks, 0, &mut scratches, lanes, join, &|_, chunk, s| {
                    apply_panel(pref, true, chunk.cols, m, chunk.k, s);
                });
            }

            if col0 == 0 {
                stats.leaves = nl;
                stats.levels = levels;
                warm_alloc = scratches.iter().map(|s| s.alloc_events).sum();
            }
            stats.panels += 1;
            panels.push(panel);
            col0 += bw;
        }
        stats.steady_alloc_events =
            scratches.iter().map(|s| s.alloc_events).sum::<u64>() - warm_alloc;

        // R = the upper triangle of the reduced working matrix
        let mut r = Matrix::zeros(n, n)?;
        for j in 0..n {
            let src = &work[j * m..j * m + (j + 1).min(n)];
            r.col_mut(j)[..src.len()].copy_from_slice(src);
        }
        Ok(TsqrQr { m, n, panels, r, stats })
    }

    /// Row count of the factored matrix.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Column count of the factored matrix.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The `n×n` upper-triangular factor `R`.
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Factorization counters.
    pub fn stats(&self) -> QrStats {
        self.stats
    }

    fn apply(&self, x: &mut Matrix, trans: bool, lanes: usize, join: &dyn Joiner) {
        assert_eq!(x.rows(), self.m, "apply: row count mismatch");
        let k = x.cols();
        let lanes = lanes.max(1);
        let m = self.m;
        let mut scratches: Vec<QrScratch> = (0..lanes).map(|_| QrScratch::default()).collect();
        let mut chunks = chunk_columns(x.as_mut_slice(), m, lanes.min(k));
        let panels = &self.panels;
        fan_out(&mut chunks, 0, &mut scratches, lanes, join, &|_, chunk, s| {
            if trans {
                for p in panels.iter() {
                    apply_panel(p, true, chunk.cols, m, chunk.k, s);
                }
            } else {
                for p in panels.iter().rev() {
                    apply_panel(p, false, chunk.cols, m, chunk.k, s);
                }
            }
        });
    }

    /// `X ← Q·X` for an `m×k` matrix, tile by tile (never forming `Q`).
    /// The back-transform of the tall-skinny SVD pipeline is
    /// `U = Q·[U_R; 0]`.
    pub fn apply_q(&self, x: &mut Matrix, lanes: usize, join: &dyn Joiner) {
        self.apply(x, false, lanes, join);
    }

    /// `X ← Qᵀ·X` for an `m×k` matrix.
    pub fn apply_qt(&self, x: &mut Matrix, lanes: usize, join: &dyn Joiner) {
        self.apply(x, true, lanes, join);
    }

    /// Materialize the thin `Q` (`m×n`) by applying the tree to
    /// `[Iₙ; 0]`. For verification; the drivers never call this.
    pub fn thin_q(&self, join: &dyn Joiner) -> Matrix {
        let mut q = Matrix::zeros(self.m, self.n).expect("nonzero dims");
        for j in 0..self.n {
            q.col_mut(j)[j] = 1.0;
        }
        self.apply_q(&mut q, 1, join);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{checks, generate};

    fn factor_opts(panel: usize, leaf_rows: usize) -> QrOptions {
        QrOptions { panel, leaf_rows, lanes: 1 }
    }

    fn assert_qr(a: &Matrix, qr: &TsqrQr, tol: f64) {
        let q = qr.thin_q(&SerialJoin);
        assert!(checks::orthogonality_residual(&q) < tol, "QᵀQ ≠ I");
        let recon = q.matmul(qr.r()).unwrap();
        let diff = a.sub(&recon).unwrap().frobenius_norm() / a.frobenius_norm().max(1.0);
        assert!(diff < tol, "A ≠ QR: rel {diff:.3e}");
        // R upper triangular by construction
        for j in 0..qr.cols() {
            for i in (j + 1)..qr.cols() {
                assert_eq!(qr.r().get(i, j), 0.0, "R({i},{j}) not zero");
            }
        }
    }

    #[test]
    fn single_tile_qr_reconstructs() {
        let a = generate::random_uniform(48, 12, 7);
        let qr = TsqrQr::factor(&a, &factor_opts(6, 1 << 20), &SerialJoin).unwrap();
        assert_eq!(qr.stats().leaves, 1);
        assert_qr(&a, &qr, 1e-12);
    }

    #[test]
    fn tsqr_tree_reconstructs_and_matches_flat() {
        let a = generate::random_uniform(256, 24, 8);
        // small leaves force a multi-level tree
        let tree = TsqrQr::factor(&a, &factor_opts(8, 32), &SerialJoin).unwrap();
        assert!(tree.stats().leaves >= 4, "leaves {}", tree.stats().leaves);
        assert!(tree.stats().levels >= 2, "levels {}", tree.stats().levels);
        assert_qr(&a, &tree, 1e-12);
        let flat = TsqrQr::factor(&a, &factor_opts(8, 1 << 20), &SerialJoin).unwrap();
        assert_qr(&a, &flat, 1e-12);
        // R is unique up to row signs for a full-rank A
        for j in 0..24 {
            for i in 0..=j {
                let (x, y) = (tree.r().get(i, j), flat.r().get(i, j));
                assert!(
                    (x.abs() - y.abs()).abs() < 1e-10 * a.frobenius_norm(),
                    "|R({i},{j})| differs: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn square_input_and_odd_panel_edges() {
        for (m, n, panel) in [(16, 16, 5), (17, 13, 4), (40, 1, 32), (9, 8, 8)] {
            let a = generate::random_uniform(m, n, (m + n) as u64);
            let qr = TsqrQr::factor(&a, &factor_opts(panel, 0), &SerialJoin).unwrap();
            assert_qr(&a, &qr, 1e-12);
        }
    }

    #[test]
    fn rank_deficient_panel_takes_tau_zero_path() {
        let mut a = generate::random_uniform(64, 10, 9);
        for j in [2usize, 7] {
            a.col_mut(j).fill(0.0);
        }
        let qr = TsqrQr::factor(&a, &factor_opts(4, 16), &SerialJoin).unwrap();
        assert_qr(&a, &qr, 1e-12);
    }

    #[test]
    fn apply_roundtrip_is_identity() {
        let a = generate::random_uniform(128, 16, 10);
        let qr = TsqrQr::factor(&a, &factor_opts(8, 32), &SerialJoin).unwrap();
        let x0 = generate::random_uniform(128, 5, 11);
        let mut x = x0.clone();
        qr.apply_qt(&mut x, 1, &SerialJoin);
        qr.apply_q(&mut x, 1, &SerialJoin);
        let diff = x.sub(&x0).unwrap().frobenius_norm() / x0.frobenius_norm();
        assert!(diff < 1e-13, "Q·Qᵀ·x ≠ x: rel {diff:.3e}");
    }

    #[test]
    fn qt_a_equals_r_on_top() {
        let a = generate::random_uniform(96, 12, 12);
        let qr = TsqrQr::factor(&a, &factor_opts(6, 24), &SerialJoin).unwrap();
        let mut x = a.clone();
        qr.apply_qt(&mut x, 1, &SerialJoin);
        // top n×n of QᵀA matches R up to rounding; the rest is ~0
        for j in 0..12 {
            for i in 0..96 {
                let want = if i < 12 { qr.r().get(i, j) } else { 0.0 };
                assert!(
                    (x.get(i, j) - want).abs() < 1e-11 * a.frobenius_norm(),
                    "QᵀA({i},{j}) = {} vs {want}",
                    x.get(i, j)
                );
            }
        }
    }

    #[test]
    fn factor_rejects_wide_input() {
        let a = generate::random_uniform(4, 9, 13);
        assert!(TsqrQr::factor(&a, &QrOptions::default(), &SerialJoin).is_err());
    }

    #[test]
    fn steady_state_is_allocation_free() {
        // many panels after the first: the per-lane arenas must not grow
        let a = generate::random_uniform(200, 48, 14);
        let qr = TsqrQr::factor(&a, &factor_opts(8, 50), &SerialJoin).unwrap();
        assert!(qr.stats().panels >= 6);
        assert_eq!(qr.stats().steady_alloc_events, 0);
    }
}
