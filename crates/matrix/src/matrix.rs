//! Dense column-major matrix.

use crate::error::MatrixError;

/// A dense `rows × cols` matrix of `f64` stored **column-major**.
///
/// Column-major storage is the natural layout for one-sided Jacobi SVD:
/// every plane rotation reads and writes exactly two contiguous columns,
/// and the simulated processors of `treesvd-sim` each own two columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// Column-major data: element `(i, j)` lives at `data[j * rows + i]`.
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of zeros.
    ///
    /// # Errors
    /// Returns [`MatrixError::EmptyDimension`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, MatrixError> {
        if rows == 0 || cols == 0 {
            return Err(MatrixError::EmptyDimension);
        }
        Ok(Self { rows, cols, data: vec![0.0; rows * cols] })
    }

    /// Create an identity-like matrix (ones on the main diagonal).
    ///
    /// For rectangular shapes this is the leading `min(rows, cols)` diagonal.
    ///
    /// # Errors
    /// Returns [`MatrixError::EmptyDimension`] if either dimension is zero.
    pub fn identity(rows: usize, cols: usize) -> Result<Self, MatrixError> {
        let mut m = Self::zeros(rows, cols)?;
        for d in 0..rows.min(cols) {
            m.set(d, d, 1.0);
        }
        Ok(m)
    }

    /// Build a matrix from column-major data.
    ///
    /// # Errors
    /// Returns [`MatrixError::DataLength`] if `data.len() != rows * cols`,
    /// or [`MatrixError::EmptyDimension`] for zero dimensions.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MatrixError> {
        if rows == 0 || cols == 0 {
            return Err(MatrixError::EmptyDimension);
        }
        if data.len() != rows * cols {
            return Err(MatrixError::DataLength { expected: rows * cols, actual: data.len() });
        }
        Ok(Self { rows, cols, data })
    }

    /// Build a matrix from row-major data (convenient for literals in tests).
    ///
    /// # Errors
    /// Same as [`Matrix::from_col_major`].
    pub fn from_row_major(rows: usize, cols: usize, data: &[f64]) -> Result<Self, MatrixError> {
        if rows == 0 || cols == 0 {
            return Err(MatrixError::EmptyDimension);
        }
        if data.len() != rows * cols {
            return Err(MatrixError::DataLength { expected: rows * cols, actual: data.len() });
        }
        let mut m = Self::zeros(rows, cols)?;
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, data[i * cols + j]);
            }
        }
        Ok(m)
    }

    /// Build an `rows × cols` matrix by evaluating `f(i, j)` at every entry.
    ///
    /// # Errors
    /// Returns [`MatrixError::EmptyDimension`] for zero dimensions.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Result<Self, MatrixError> {
        let mut m = Self::zeros(rows, cols)?;
        for j in 0..cols {
            for i in 0..rows {
                m.set(i, j, f(i, j));
            }
        }
        Ok(m)
    }

    /// Build a diagonal matrix from `diag`, shaped `rows × diag.len()`.
    ///
    /// # Errors
    /// Returns [`MatrixError::EmptyDimension`] if `rows == 0` or `diag` is
    /// empty, and [`MatrixError::ShapeMismatch`] if `rows < diag.len()`.
    pub fn diagonal(rows: usize, diag: &[f64]) -> Result<Self, MatrixError> {
        if rows < diag.len() {
            return Err(MatrixError::ShapeMismatch {
                left: (rows, diag.len()),
                right: (diag.len(), diag.len()),
            });
        }
        let mut m = Self::zeros(rows, diag.len())?;
        for (d, &v) in diag.iter().enumerate() {
            m.set(d, d, v);
        }
        Ok(m)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element `(i, j)`.
    ///
    /// # Panics
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[j * self.rows + i]
    }

    /// Set element `(i, j)`.
    ///
    /// # Panics
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[j * self.rows + i] = v;
    }

    /// Immutable view of column `j` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `j >= cols`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols, "column {j} out of bounds");
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable view of column `j` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `j >= cols`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols, "column {j} out of bounds");
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable views of two *distinct* columns simultaneously.
    ///
    /// This is the access pattern of a plane rotation. Borrow-checker-safe
    /// via `split_at_mut`.
    ///
    /// # Errors
    /// Returns [`MatrixError::DuplicateColumn`] if `a == b` and
    /// [`MatrixError::IndexOutOfBounds`] if either index is out of range.
    pub fn col_pair_mut(
        &mut self,
        a: usize,
        b: usize,
    ) -> Result<(&mut [f64], &mut [f64]), MatrixError> {
        if a == b {
            return Err(MatrixError::DuplicateColumn(a));
        }
        let bound = self.cols;
        for idx in [a, b] {
            if idx >= bound {
                return Err(MatrixError::IndexOutOfBounds { index: idx, bound });
            }
        }
        let rows = self.rows;
        let (lo, hi) = (a.min(b), a.max(b));
        let (left, right) = self.data.split_at_mut(hi * rows);
        let lo_col = &mut left[lo * rows..(lo + 1) * rows];
        let hi_col = &mut right[..rows];
        if a < b {
            Ok((lo_col, hi_col))
        } else {
            Ok((hi_col, lo_col))
        }
    }

    /// Swap columns `a` and `b` in place (no-op if `a == b`).
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        assert!(a < self.cols && b < self.cols, "column index out of bounds");
        if a == b {
            return;
        }
        let rows = self.rows;
        let (x, y) = self.col_pair_mut(a, b).expect("distinct in-bounds columns");
        for r in 0..rows {
            std::mem::swap(&mut x[r], &mut y[r]);
        }
    }

    /// Replace the contents of column `j` with `src`.
    ///
    /// # Panics
    /// Panics if `j` is out of bounds or `src.len() != rows`.
    pub fn set_col(&mut self, j: usize, src: &[f64]) {
        assert_eq!(src.len(), self.rows, "column length mismatch");
        self.col_mut(j).copy_from_slice(src);
    }

    /// Euclidean norm of column `j`.
    #[inline]
    pub fn col_norm(&self, j: usize) -> f64 {
        crate::ops::norm2(self.col(j))
    }

    /// Dot product of columns `i` and `j`.
    #[inline]
    pub fn col_dot(&self, i: usize, j: usize) -> f64 {
        crate::ops::dot(self.col(i), self.col(j))
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows).expect("nonzero dims");
        for j in 0..self.cols {
            let c = self.col(j);
            for (i, &v) in c.iter().enumerate() {
                t.set(j, i, v);
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// A straightforward jki-ordered kernel, adequate for verification-sized
    /// problems (the SVD itself never multiplies full matrices).
    ///
    /// # Errors
    /// Returns [`MatrixError::ShapeMismatch`] if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::ShapeMismatch { left: self.shape(), right: rhs.shape() });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols)?;
        for j in 0..rhs.cols {
            let rcol = rhs.col(j);
            let ocol = out.col_mut(j);
            for (k, &rkj) in rcol.iter().enumerate() {
                if rkj == 0.0 {
                    continue;
                }
                let acol = self.col(k);
                for (o, &a) in ocol.iter_mut().zip(acol.iter()) {
                    *o += a * rkj;
                }
            }
        }
        Ok(out)
    }

    /// Frobenius norm of the whole matrix.
    pub fn frobenius_norm(&self) -> f64 {
        crate::ops::norm2(&self.data)
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Errors
    /// Returns [`MatrixError::ShapeMismatch`] on shape disagreement.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.shape() != rhs.shape() {
            return Err(MatrixError::ShapeMismatch { left: self.shape(), right: rhs.shape() });
        }
        let data = self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a - b).collect();
        Matrix::from_col_major(self.rows, self.cols, data)
    }

    /// Scale every entry by `s`, in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// The raw column-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw column-major data, mutably. Column `j` occupies
    /// `[j·rows, (j+1)·rows)`; the blocked kernels (panel updates, the
    /// tall-skinny QR's apply-Q) operate on such contiguous column
    /// groups directly.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its columns as owned vectors.
    ///
    /// Used by the simulator to distribute columns over leaf processors.
    pub fn into_columns(self) -> Vec<Vec<f64>> {
        let rows = self.rows;
        self.data.chunks(rows).map(|c| c.to_vec()).collect()
    }

    /// Rebuild a matrix from owned columns (inverse of [`Matrix::into_columns`]).
    ///
    /// # Errors
    /// Returns [`MatrixError::EmptyDimension`] if `cols` is empty or columns
    /// are empty, and [`MatrixError::ShapeMismatch`] if lengths disagree.
    pub fn from_columns(cols: &[Vec<f64>]) -> Result<Self, MatrixError> {
        if cols.is_empty() || cols[0].is_empty() {
            return Err(MatrixError::EmptyDimension);
        }
        let rows = cols[0].len();
        for (j, c) in cols.iter().enumerate() {
            if c.len() != rows {
                return Err(MatrixError::ShapeMismatch {
                    left: (rows, cols.len()),
                    right: (c.len(), j),
                });
            }
        }
        let mut data = Vec::with_capacity(rows * cols.len());
        for c in cols {
            data.extend_from_slice(c);
        }
        Matrix::from_col_major(rows, cols.len(), data)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 2).unwrap();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(2, 1), 0.0);
        assert_eq!(Matrix::zeros(0, 2), Err(MatrixError::EmptyDimension));
        assert_eq!(Matrix::zeros(2, 0), Err(MatrixError::EmptyDimension));
    }

    #[test]
    fn identity_rectangular() {
        let m = Matrix::identity(3, 2).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.get(2, 1), 0.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn row_major_round_trip() {
        let m = Matrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.get(1, 2), 6.0);
        // column-major layout: col 0 = [1,4]
        assert_eq!(m.col(0), &[1.0, 4.0]);
    }

    #[test]
    fn from_col_major_checks_length() {
        assert!(matches!(
            Matrix::from_col_major(2, 2, vec![1.0; 3]),
            Err(MatrixError::DataLength { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn col_pair_mut_disjoint_access() {
        let mut m = Matrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        {
            let (a, b) = m.col_pair_mut(0, 2).unwrap();
            a[0] = 10.0;
            b[1] = 60.0;
        }
        assert_eq!(m.get(0, 0), 10.0);
        assert_eq!(m.get(1, 2), 60.0);
        // reversed order yields the same slices swapped
        let (b, a) = m.col_pair_mut(2, 0).unwrap();
        assert_eq!(b[1], 60.0);
        assert_eq!(a[0], 10.0);
    }

    #[test]
    fn col_pair_mut_rejects_duplicates_and_oob() {
        let mut m = Matrix::zeros(2, 2).unwrap();
        assert_eq!(m.col_pair_mut(1, 1).unwrap_err(), MatrixError::DuplicateColumn(1));
        assert_eq!(
            m.col_pair_mut(0, 5).unwrap_err(),
            MatrixError::IndexOutOfBounds { index: 5, bound: 2 }
        );
    }

    #[test]
    fn swap_cols_works() {
        let mut m = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        m.swap_cols(0, 1);
        assert_eq!(m.col(0), &[2.0, 4.0]);
        assert_eq!(m.col(1), &[1.0, 3.0]);
        m.swap_cols(1, 1); // no-op
        assert_eq!(m.col(1), &[1.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 0), 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity_and_shapes() {
        let a = Matrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let i3 = Matrix::identity(3, 3).unwrap();
        assert_eq!(a.matmul(&i3).unwrap(), a);
        let i2 = Matrix::identity(2, 2).unwrap();
        assert_eq!(i2.matmul(&a).unwrap(), a);
        assert!(a.matmul(&i2).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_row_major(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_row_major(2, 2, &[19.0, 22.0, 43.0, 50.0]).unwrap());
    }

    #[test]
    fn columns_round_trip() {
        let m = Matrix::from_row_major(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let cols = m.clone().into_columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], vec![1.0, 3.0, 5.0]);
        let back = Matrix::from_columns(&cols).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn from_columns_rejects_ragged() {
        let cols = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(Matrix::from_columns(&cols).is_err());
        assert!(Matrix::from_columns(&[]).is_err());
    }

    #[test]
    fn diagonal_and_norms() {
        let d = Matrix::diagonal(3, &[3.0, 4.0]).unwrap();
        assert_eq!(d.shape(), (3, 2));
        assert_eq!(d.get(0, 0), 3.0);
        assert_eq!(d.get(1, 1), 4.0);
        assert!((d.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!(Matrix::diagonal(1, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn sub_and_scale() {
        let a = Matrix::from_row_major(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut b = a.clone();
        b.scale(2.0);
        let d = b.sub(&a).unwrap();
        assert_eq!(d, a);
        let wrong = Matrix::zeros(3, 2).unwrap();
        assert!(a.sub(&wrong).is_err());
    }

    #[test]
    fn col_dot_and_norm() {
        let m = Matrix::from_row_major(2, 2, &[3.0, 1.0, 4.0, 0.0]).unwrap();
        assert_eq!(m.col_dot(0, 1), 3.0);
        assert_eq!(m.col_norm(0), 5.0);
    }

    #[test]
    fn max_abs_entry() {
        let m = Matrix::from_row_major(2, 2, &[1.0, -7.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.max_abs(), 7.0);
    }

    #[test]
    fn from_fn_builder() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64).unwrap();
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.get(0, 1), 1.0);
    }
}
