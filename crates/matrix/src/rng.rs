//! A small, self-contained pseudo-random number generator.
//!
//! The workspace builds in fully offline environments, so the test-matrix
//! generators cannot depend on the `rand` crate. This module provides the
//! tiny slice of functionality they need: a seedable, reproducible stream
//! of `u64`s (SplitMix64, Steele et al., OOPSLA 2014) and uniform `f64`
//! draws derived from it. SplitMix64 passes BigCrush when used as a plain
//! stream generator, which is far more statistical quality than the test
//! generators require.

/// A seedable SplitMix64 generator.
///
/// Deterministic: the same seed always produces the same stream, on every
/// platform — the property every reproducible test matrix relies on.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // take the top 53 bits — the weakest SplitMix64 bits are the low ones
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or either bound is non-finite.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad uniform range");
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer from `[0, n)` (unbiased via rejection).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        let n = n as u64;
        // rejection sampling over the top multiple of n
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds_and_fills_range() {
        let mut r = Rng::seed_from_u64(2);
        let (mut lo_seen, mut hi_seen) = (1.0_f64, -1.0_f64);
        for _ in 0..2000 {
            let x = r.uniform(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&x));
            lo_seen = lo_seen.min(x);
            hi_seen = hi_seen.max(x);
        }
        assert!(lo_seen < -0.9 && hi_seen > 0.9, "poor coverage: [{lo_seen}, {hi_seen}]");
    }

    #[test]
    fn next_below_unbiased_bounds() {
        let mut r = Rng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[r.next_below(5)] += 1;
        }
        for &c in &counts {
            assert!(c > 700, "suspicious skew: {counts:?}");
        }
    }
}
