//! Plane rotations for the one-sided (Hestenes) Jacobi method.
//!
//! Given two columns `a_i`, `a_j` of `A`, the paper's equation (1) applies
//!
//! ```text
//! [a_i' a_j'] = [a_i a_j] · [[ c, s],
//!                            [-s, c]]
//! ```
//!
//! with `c = cos θ`, `s = sin θ` chosen to make `a_i'` and `a_j'`
//! orthogonal. When the schedule additionally needs the two columns to end
//! up exchanged (the ↔ arrow in the paper's Fig. 4(a)), equation (3) folds
//! the swap into the rotation:
//!
//! ```text
//! [a_i'' a_j''] = [a_i a_j] · [[s, c],
//!                              [c, -s]]
//! ```
//!
//! so no explicit column interchange is ever performed.

use crate::ops::{gram3, rotate_fused, rotate_fused_swapped};

/// A computed plane rotation `(c, s)` together with the Gram data that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rotation {
    /// Cosine of the rotation angle.
    pub c: f64,
    /// Sine of the rotation angle.
    pub s: f64,
    /// Whether the pair was already orthogonal under the threshold and the
    /// rotation is the identity.
    pub skipped: bool,
}

impl Rotation {
    /// The identity rotation (used for thresholded / skipped pairs).
    pub const IDENTITY: Rotation = Rotation { c: 1.0, s: 0.0, skipped: true };
}

/// Outcome of orthogonalizing one column pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairOutcome {
    /// The rotation that was applied (identity if skipped).
    pub rotation: Rotation,
    /// `|a_i · a_j|` before the rotation — the pair's contribution to the
    /// off-diagonal measure.
    pub off: f64,
    /// Normalized pre-rotation coupling `|a_i·a_j| / (‖a_i‖‖a_j‖)` — the
    /// convergence measure (0 when either column is zero).
    pub coupling: f64,
    /// Squared norms `(‖a_i‖², ‖a_j‖²)` *after* the update.
    pub norms_sq_after: (f64, f64),
    /// Whether the swapped form (equation (3)) was used, i.e. the columns
    /// were interchanged as part of the update.
    pub used_swap: bool,
}

/// Compute the Hestenes rotation for Gram entries `alpha = a_i·a_i`,
/// `beta = a_j·a_j`, `gamma = a_i·a_j`.
///
/// Uses the standard stable formulas (Rutishauser): with
/// `zeta = (beta - alpha) / (2 gamma)`,
/// `t = sign(zeta) / (|zeta| + sqrt(1 + zeta²))`,
/// `c = 1 / sqrt(1 + t²)`, `s = c·t`.
///
/// `threshold` implements the paper's threshold strategy (§1, citing
/// Wilkinson): if `|gamma| <= threshold * sqrt(alpha * beta)` the pair is
/// declared orthogonal and the identity is returned with `skipped = true`.
#[must_use]
pub fn compute_rotation(alpha: f64, beta: f64, gamma: f64, threshold: f64) -> Rotation {
    // A zero column is orthogonal to everything.
    if alpha == 0.0 || beta == 0.0 {
        return Rotation::IDENTITY;
    }
    let limit = threshold * (alpha.sqrt() * beta.sqrt());
    if gamma.abs() <= limit {
        return Rotation::IDENTITY;
    }
    let zeta = (beta - alpha) / (2.0 * gamma);
    let t = {
        let denom = zeta.abs() + (1.0 + zeta * zeta).sqrt();
        if zeta >= 0.0 {
            1.0 / denom
        } else {
            -1.0 / denom
        }
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = c * t;
    Rotation { c, s, skipped: false }
}

/// Apply equation (1) to a column pair: `a' = c·a − s·b`, `b' = s·a + c·b`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn apply_rotation(rot: Rotation, a: &mut [f64], b: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "apply_rotation: length mismatch");
    if rot.skipped {
        return;
    }
    let (c, s) = (rot.c, rot.s);
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        let (ax, bx) = (*x, *y);
        *x = c * ax - s * bx;
        *y = s * ax + c * bx;
    }
}

/// Apply equation (3): the rotation *and* a column interchange in one pass:
/// `a'' = s·a + c·b`, `b'' = c·a − s·b`.
///
/// Note that even for a skipped (identity) rotation the columns are still
/// exchanged — the swap is demanded by the schedule, not by the numerics.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn apply_rotation_swapped(rot: Rotation, a: &mut [f64], b: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "apply_rotation_swapped: length mismatch");
    let (c, s) = (rot.c, rot.s);
    for (x, y) in a.iter_mut().zip(b.iter_mut()) {
        let (ax, bx) = (*x, *y);
        *x = s * ax + c * bx;
        *y = c * ax - s * bx;
    }
}

/// Apply a rotation to a column pair in a **single fused pass**, returning
/// the updated squared norms `(‖a'‖², ‖b'‖²)` measured from the freshly
/// written values.
///
/// This is the hot-path form of [`apply_rotation`] /
/// [`apply_rotation_swapped`]: instead of rotating (one traversal) and then
/// re-measuring both norms (two more traversals), the fused kernel in
/// [`crate::ops`] produces the rotated columns and their exact squared norms
/// in one sweep over the data. A skipped rotation with `swap = false` still
/// measures the norms (one fused read-only pass semantically, implemented as
/// the same kernel with `c = 1, s = 0`).
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn rotate_pair_fused(rot: Rotation, a: &mut [f64], b: &mut [f64], swap: bool) -> (f64, f64) {
    if swap {
        rotate_fused_swapped(rot.c, rot.s, a, b)
    } else {
        rotate_fused(rot.c, rot.s, a, b)
    }
}

/// Orthogonalize a column pair in place, optionally keeping the larger-norm
/// column on the *left* (first) slot, as required for sorted singular values
/// (paper §3.2.1).
///
/// Returns the [`PairOutcome`] describing what happened. When
/// `sort_descending` is set and the right column would end up larger, the
/// swapped form of the update (equation (3)) is used, so the exchange costs
/// nothing extra.
///
/// The update itself uses the fused rotate-and-measure kernel
/// ([`rotate_pair_fused`]), so the reported `norms_sq_after` are the *exact*
/// squared norms of the written columns, not rotation-algebra estimates —
/// and the whole pair costs ~2 column traversals (gram + fused apply)
/// instead of ~5.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn orthogonalize_pair(
    a: &mut [f64],
    b: &mut [f64],
    threshold: f64,
    sort_descending: bool,
) -> PairOutcome {
    let (alpha, beta, gamma) = gram3(a, b);
    let rot = compute_rotation(alpha, beta, gamma, threshold);
    let coupling =
        if alpha > 0.0 && beta > 0.0 { gamma.abs() / (alpha.sqrt() * beta.sqrt()) } else { 0.0 };
    // Predicted norms after the rotation (rotation algebra); used only to
    // decide the swap before touching the data. The reported norms come
    // from the fused kernel, i.e. from the written values themselves.
    let (alpha_pred, beta_pred) = if rot.skipped {
        (alpha, beta)
    } else {
        let (c, s) = (rot.c, rot.s);
        (
            c * c * alpha - 2.0 * c * s * gamma + s * s * beta,
            s * s * alpha + 2.0 * c * s * gamma + c * c * beta,
        )
    };
    let want_swap = sort_descending && beta_pred > alpha_pred;
    if rot.skipped && !want_swap {
        // Nothing to write: keep the exact Gram norms without another pass.
        return PairOutcome {
            rotation: rot,
            off: gamma.abs(),
            coupling,
            norms_sq_after: (alpha, beta),
            used_swap: false,
        };
    }
    let norms_sq_after = rotate_pair_fused(rot, a, b, want_swap);
    PairOutcome { rotation: rot, off: gamma.abs(), coupling, norms_sq_after, used_swap: want_swap }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{dot, norm2_sq};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn rotation_orthogonalizes() {
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![2.0, 0.5, 1.0];
        let (alpha, beta, gamma) = gram3(&a, &b);
        let rot = compute_rotation(alpha, beta, gamma, 0.0);
        assert!(!rot.skipped);
        apply_rotation(rot, &mut a, &mut b);
        assert_close(dot(&a, &b), 0.0, 1e-12);
    }

    #[test]
    fn rotation_preserves_frobenius_mass() {
        let mut a = vec![1.0, -2.0, 0.5];
        let mut b = vec![3.0, 1.0, 1.0];
        let before = norm2_sq(&a) + norm2_sq(&b);
        let (alpha, beta, gamma) = gram3(&a, &b);
        apply_rotation(compute_rotation(alpha, beta, gamma, 0.0), &mut a, &mut b);
        let after = norm2_sq(&a) + norm2_sq(&b);
        assert_close(before, after, 1e-12 * before);
    }

    #[test]
    fn threshold_skips_nearly_orthogonal_pairs() {
        let rot = compute_rotation(1.0, 1.0, 1e-15, 1e-12);
        assert!(rot.skipped);
        assert_eq!(rot.c, 1.0);
        assert_eq!(rot.s, 0.0);
        // but a genuinely coupled pair is not skipped
        assert!(!compute_rotation(1.0, 1.0, 0.5, 1e-12).skipped);
    }

    #[test]
    fn zero_column_is_skipped() {
        assert!(compute_rotation(0.0, 3.0, 0.0, 0.0).skipped);
        assert!(compute_rotation(3.0, 0.0, 0.0, 0.0).skipped);
    }

    #[test]
    fn swapped_form_equals_rotate_then_swap() {
        let a0 = vec![1.0, 2.0, 3.0];
        let b0 = vec![-1.0, 0.5, 2.0];
        let (alpha, beta, gamma) = gram3(&a0, &b0);
        let rot = compute_rotation(alpha, beta, gamma, 0.0);

        let (mut a1, mut b1) = (a0.clone(), b0.clone());
        apply_rotation(rot, &mut a1, &mut b1);
        std::mem::swap(&mut a1, &mut b1);

        let (mut a2, mut b2) = (a0, b0);
        apply_rotation_swapped(rot, &mut a2, &mut b2);

        for k in 0..3 {
            assert_close(a1[k], a2[k], 1e-15);
            assert_close(b1[k], b2[k], 1e-15);
        }
    }

    #[test]
    fn swapped_form_swaps_even_identity() {
        let mut a = vec![1.0, 0.0];
        let mut b = vec![0.0, 1.0];
        apply_rotation_swapped(Rotation::IDENTITY, &mut a, &mut b);
        assert_eq!(a, vec![0.0, 1.0]);
        assert_eq!(b, vec![1.0, 0.0]);
    }

    #[test]
    fn orthogonalize_pair_sorts_descending() {
        // left column much smaller than right: sorted mode must leave the
        // larger-norm column on the left.
        let mut a = vec![0.1, 0.0, 0.0];
        let mut b = vec![0.0, 5.0, 0.1];
        let out = orthogonalize_pair(&mut a, &mut b, 0.0, true);
        assert!(norm2_sq(&a) >= norm2_sq(&b));
        assert!(out.norms_sq_after.0 >= out.norms_sq_after.1);
        assert_close(dot(&a, &b), 0.0, 1e-12);
    }

    #[test]
    fn orthogonalize_pair_reports_norms() {
        let mut a = vec![1.0, 2.0];
        let mut b = vec![0.5, -1.0];
        let out = orthogonalize_pair(&mut a, &mut b, 0.0, false);
        assert_close(out.norms_sq_after.0, norm2_sq(&a), 1e-12);
        assert_close(out.norms_sq_after.1, norm2_sq(&b), 1e-12);
    }

    #[test]
    fn outcome_off_is_pre_rotation_coupling() {
        let a0 = vec![1.0, 1.0];
        let b0 = vec![1.0, -0.5];
        let expected = dot(&a0, &b0).abs();
        let mut a = a0;
        let mut b = b0;
        let out = orthogonalize_pair(&mut a, &mut b, 0.0, false);
        assert_close(out.off, expected, 0.0);
    }

    #[test]
    fn rotate_pair_fused_matches_apply_then_measure() {
        let a0 = vec![1.0, -2.0, 0.25, 4.0, -1.5];
        let b0 = vec![0.5, 1.0, -3.0, 2.0, 0.75];
        let (alpha, beta, gamma) = gram3(&a0, &b0);
        let rot = compute_rotation(alpha, beta, gamma, 0.0);
        for swap in [false, true] {
            let (mut a1, mut b1) = (a0.clone(), b0.clone());
            if swap {
                apply_rotation_swapped(rot, &mut a1, &mut b1);
            } else {
                apply_rotation(rot, &mut a1, &mut b1);
            }
            let (mut a2, mut b2) = (a0.clone(), b0.clone());
            let (na, nb) = rotate_pair_fused(rot, &mut a2, &mut b2, swap);
            assert_eq!(a1, a2, "swap={swap}");
            assert_eq!(b1, b2, "swap={swap}");
            assert_close(na, norm2_sq(&a2), 1e-13 * na.max(1.0));
            assert_close(nb, norm2_sq(&b2), 1e-13 * nb.max(1.0));
        }
    }

    #[test]
    fn outcome_norms_are_exact_measured_norms() {
        let mut a = vec![1.0, 2.0, -0.5, 3.0, 0.25, -1.0, 2.0, 0.125, 4.0];
        let mut b = vec![0.5, -1.0, 2.0, 1.0, -0.25, 0.5, 3.0, -2.0, 0.5];
        let out = orthogonalize_pair(&mut a, &mut b, 0.0, false);
        // Fused norms come from the written data, so they match a
        // re-measurement to rounding of the reduction only.
        assert_close(out.norms_sq_after.0, norm2_sq(&a), 1e-14 * out.norms_sq_after.0);
        assert_close(out.norms_sq_after.1, norm2_sq(&b), 1e-14 * out.norms_sq_after.1);
    }

    #[test]
    fn outcome_coupling_is_normalized() {
        let a0 = vec![2.0, 0.0];
        let b0 = vec![1.0, 1.0];
        let (alpha, beta, gamma) = gram3(&a0, &b0);
        let expected = gamma.abs() / (alpha.sqrt() * beta.sqrt());
        let (mut a, mut b) = (a0, b0);
        let out = orthogonalize_pair(&mut a, &mut b, 0.0, false);
        assert_close(out.coupling, expected, 1e-15);
        assert!(out.coupling <= 1.0 + 1e-15);

        // zero column → coupling defined as 0
        let mut z = vec![0.0, 0.0];
        let mut c = vec![1.0, 1.0];
        let out = orthogonalize_pair(&mut z, &mut c, 0.0, false);
        assert_eq!(out.coupling, 0.0);
    }

    #[test]
    fn rotation_angle_is_bounded_by_pi_over_4() {
        // |t| <= 1 always, i.e. |s| <= c, the classic inner-rotation choice
        // needed for convergence.
        for &(alpha, beta, gamma) in
            &[(1.0, 2.0, 0.7), (5.0, 0.1, -0.3), (1.0, 1.0, 0.999), (2.0, 2.0, -1.9)]
        {
            let r = compute_rotation(alpha, beta, gamma, 0.0);
            assert!(r.s.abs() <= r.c + 1e-15, "rotation not inner: {r:?}");
        }
    }
}
