//! Argument parsing and command dispatch (hand-rolled; no external deps).

use crate::io;
use std::path::PathBuf;
use treesvd_core::{
    blocked_svd, BlockKernel, BlockedOptions, HestenesSvd, HierBlocking, OrderingKind, SvdOptions,
    TopologyKind,
};

/// Usage text shown on errors.
pub const USAGE: &str = "\
usage:
  treesvd svd <matrix-file> [--auto] [--ordering NAME] [--topology NAME]
              [--no-vectors]
              [--distributed] [--no-overlap] [--processors P]
              [--block-kernel NAME] [--threads N]
              [--qr-frontend] [--qr-crossover X] [--hier-block auto|off|W]
              [--chaos SEED] [--recv-timeout MS] [--max-retries N]
              [--sigma-out FILE] [--u-out FILE] [--v-out FILE]
  treesvd analyze [--ordering NAME] [--n N] [--topology NAME]
                  [--groups M] [--words W]
                  [--emit-cert FILE | --check-cert FILE]
  treesvd batch --order N --count K [--rows M] [--seed S] [--lanes L]
                [--scalar] [--threads T] [--no-vectors] [--max-sweeps S]
  treesvd lstsq <matrix-file> <rhs-file> [--rcond X]
  treesvd cond <matrix-file>
  treesvd info

orderings:  ring | round-robin | fat-tree | new-ring | modified-ring |
            llb-fat-tree | hybrid          (default: fat-tree)
topologies: perfect | fat-tree | cm5 | binary | skinny-above-K
            (default: perfect for svd; none for analyze)
block kernels (with --processors): pairwise | gram   (default: gram)
--auto lets the calibrated cost model pick the whole execution config
            (driver, ordering, kernel, block width, threads, overlap, QR
            crossover, hierarchical blocking); combine only with the
            problem statement — --topology, --no-vectors, and --processors
            as a parallelism budget. Pinning a config flag (--ordering,
            --block-kernel, --no-overlap, …) alongside --auto is an error
--no-overlap pins comm/compute overlap off in the distributed executor
            (bitwise-identical results; when the flag is absent the
            calibrated cost model decides per shape)
--threads N caps the host worker lanes (default: machine parallelism,
            or the TREESVD_THREADS environment variable)
--qr-frontend enables the tall-skinny QR front-end: past the aspect
            crossover the sweeps run on the small n×n factor R and U is
            back-transformed through the TSQR tree (never forming Q)
--qr-crossover X sets the m/n ratio at which the front-end engages
            (default 8; requires --qr-frontend)
--hier-block auto|off|W controls cache-level blocking of the blocked
            driver's meetings: auto (default) probes L2 (TREESVD_L2
            override honored), off is flat, W splits unions wider than
            W columns
--chaos SEED arms the seeded fault-injection plan on the distributed
            executor (requires --distributed); recovery must reproduce
            the fault-free run bitwise or fail with a diagnostic
--recv-timeout MS / --max-retries N tune the receive watchdog and
            retransmission budget of the recovery layer (distributed)
--emit-cert FILE runs the provers and, when every check passes, writes
            a serialized proof certificate whose witnesses any later
            `--check-cert` run can validate without re-proving
--check-cert FILE validates a previously emitted certificate against
            the named schedule in O(plan) — no provers are re-run;
            exits non-zero on any witness mismatch or version skew
batch:      synthetic throughput run of the batched small-SVD engine —
            K random M×N problems (M defaults to N, N ≤ 64 is the
            intended regime) solved in SoA lanes; --lanes picks the
            group width (4 | 8 | 16, default 8), --scalar forces the
            portable kernel path (bitwise-identical results)";

fn parse_ordering(name: &str) -> Result<OrderingKind, String> {
    OrderingKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown ordering {name:?}"))
}

fn parse_topology(name: &str) -> Result<TopologyKind, String> {
    if let Some(cut) = name.strip_prefix("skinny-above-") {
        let cut: u32 = cut.parse().map_err(|e| format!("bad cut level in {name:?}: {e}"))?;
        return Ok(TopologyKind::SkinnyAbove(cut));
    }
    match name {
        "perfect" | "perfect-fat-tree" | "fat-tree" => Ok(TopologyKind::PerfectFatTree),
        "cm5" | "cm5-tree" => Ok(TopologyKind::Cm5),
        "binary" | "binary-tree" => Ok(TopologyKind::BinaryTree),
        _ => Err(format!("unknown topology {name:?}")),
    }
}

/// Run the CLI on `argv`, returning the stdout text.
///
/// # Errors
/// A human-readable message for any usage or runtime failure.
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some(cmd) = argv.first() else {
        return Err("missing command".to_string());
    };
    match cmd.as_str() {
        "svd" => cmd_svd(&argv[1..]),
        "analyze" => cmd_analyze(&argv[1..]),
        "batch" => cmd_batch(&argv[1..]),
        "lstsq" => cmd_lstsq(&argv[1..]),
        "cond" => cmd_cond(&argv[1..]),
        "info" => Ok(cmd_info()),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Pull `--flag value` out of a mutable arg list; returns the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Pull a boolean `--flag` out of a mutable arg list.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn cmd_svd(rest: &[String]) -> Result<String, String> {
    let mut args = rest.to_vec();
    let auto = take_switch(&mut args, "--auto");
    let ordering_flag = take_flag(&mut args, "--ordering")?;
    let ordering = match ordering_flag.as_deref() {
        Some(name) => parse_ordering(name)?,
        None => OrderingKind::FatTree,
    };
    let topology = match take_flag(&mut args, "--topology")? {
        Some(name) => parse_topology(&name)?,
        None => TopologyKind::PerfectFatTree,
    };
    let sigma_out = take_flag(&mut args, "--sigma-out")?.map(PathBuf::from);
    let u_out = take_flag(&mut args, "--u-out")?.map(PathBuf::from);
    let v_out = take_flag(&mut args, "--v-out")?.map(PathBuf::from);
    let processors = take_flag(&mut args, "--processors")?
        .map(|p| p.parse::<usize>().map_err(|e| format!("--processors: {e}")))
        .transpose()?;
    let block_kernel_flag = take_flag(&mut args, "--block-kernel")?;
    let block_kernel = match block_kernel_flag.as_deref() {
        None => BlockKernel::Gram,
        Some("gram") => BlockKernel::Gram,
        Some("pairwise") => BlockKernel::Pairwise,
        Some(other) => return Err(format!("unknown block kernel {other:?}")),
    };
    let threads = take_flag(&mut args, "--threads")?
        .map(|t| t.parse::<usize>().map_err(|e| format!("--threads: {e}")))
        .transpose()?;
    if threads == Some(0) {
        return Err("--threads must be at least 1".to_string());
    }
    let chaos = take_flag(&mut args, "--chaos")?
        .map(|s| s.parse::<u64>().map_err(|e| format!("--chaos: {e}")))
        .transpose()?;
    let recv_timeout = take_flag(&mut args, "--recv-timeout")?
        .map(|t| t.parse::<u64>().map_err(|e| format!("--recv-timeout: {e}")))
        .transpose()?;
    let max_retries = take_flag(&mut args, "--max-retries")?
        .map(|r| r.parse::<u32>().map_err(|e| format!("--max-retries: {e}")))
        .transpose()?;
    let qr_frontend = take_switch(&mut args, "--qr-frontend");
    let qr_crossover = take_flag(&mut args, "--qr-crossover")?
        .map(|x| x.parse::<f64>().map_err(|e| format!("--qr-crossover: {e}")))
        .transpose()?;
    if qr_crossover.is_some() && !qr_frontend {
        return Err("--qr-crossover only applies with --qr-frontend".to_string());
    }
    let hier_flag = take_flag(&mut args, "--hier-block")?;
    let hier = match hier_flag.as_deref() {
        None | Some("auto") => HierBlocking::Auto,
        Some("off") => HierBlocking::Off,
        Some(w) => HierBlocking::Cols(
            w.parse::<usize>()
                .map_err(|_| format!("--hier-block: auto, off, or a width, got {w:?}"))?,
        ),
    };
    let no_vectors = take_switch(&mut args, "--no-vectors");
    let distributed = take_switch(&mut args, "--distributed");
    let no_overlap = take_switch(&mut args, "--no-overlap");
    if auto {
        // --auto delegates the whole execution config to the tuner; only
        // the problem statement (matrix, --topology, --processors budget,
        // --no-vectors) and output flags may accompany it.
        let pinned = [
            ("--ordering", ordering_flag.is_some()),
            ("--block-kernel", block_kernel_flag.is_some()),
            ("--no-overlap", no_overlap),
            ("--threads", threads.is_some()),
            ("--qr-frontend", qr_frontend),
            ("--qr-crossover", qr_crossover.is_some()),
            ("--hier-block", hier_flag.is_some()),
            ("--distributed", distributed),
            ("--chaos", chaos.is_some()),
            ("--recv-timeout", recv_timeout.is_some()),
            ("--max-retries", max_retries.is_some()),
        ];
        if let Some((flag, _)) = pinned.iter().find(|(_, set)| *set) {
            return Err(format!(
                "--auto selects the full execution config, but {flag} pins part of it by hand; \
                 drop {flag} to let the tuner decide, or drop --auto to keep your explicit config"
            ));
        }
    }
    if !distributed && (chaos.is_some() || recv_timeout.is_some() || max_retries.is_some()) {
        return Err(
            "--chaos / --recv-timeout / --max-retries only apply with --distributed".to_string()
        );
    }
    let [path] = args.as_slice() else {
        return Err("svd needs exactly one matrix file".to_string());
    };

    let a = io::read_matrix(&PathBuf::from(path))?;
    let mut opts = SvdOptions::default()
        .with_ordering(ordering)
        .with_topology(topology)
        .with_vectors(!no_vectors)
        .with_block_kernel(block_kernel)
        .with_threads(threads)
        .with_qr_frontend(qr_frontend)
        .with_hier_blocking(hier);
    if no_overlap {
        // pin overlap off; when the flag is absent the option stays unset
        // and the distributed executor asks the cost model
        opts = opts.with_overlap(false);
    }
    if let Some(x) = qr_crossover {
        opts = opts.with_qr_crossover(x);
    }
    if let Some(seed) = chaos {
        opts = opts.with_chaos(seed);
    }
    if let Some(ms) = recv_timeout {
        opts = opts.with_recv_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(r) = max_retries {
        opts = opts.with_max_retries(r);
    }

    let mut out = String::new();
    let fe_tag = |engaged: bool| if engaged { ", qr front-end" } else { "" };
    let (svd, sweeps, ordering_name, extra) = if auto {
        let mut problem = treesvd_core::TuneProblem::new(a.rows(), a.cols())
            .with_vectors(!no_vectors)
            .with_topology(topology);
        if let Some(p) = processors {
            problem = problem.with_processors(p);
        }
        let run = treesvd_core::auto_svd_for(&a, &problem).map_err(|e| e.to_string())?;
        let plan = run.plan;
        let kernel = match plan.kernel {
            treesvd_core::KernelSel::Gram => "gram",
            treesvd_core::KernelSel::Pairwise => "pairwise",
        };
        let extra = format!(
            "auto plan: {} driver, {kernel} kernel, overlap {}, {} thread(s), \
             predicted {:.3e} ns{}",
            plan.driver.name(),
            if plan.overlap { "on" } else { "off" },
            plan.threads,
            plan.predicted_ns,
            fe_tag(run.qr_frontend)
        );
        (run.svd, run.sweeps, plan.ordering.name(), extra)
    } else if let Some(p) = processors {
        let run = blocked_svd(&a, &BlockedOptions { processors: p, svd: opts })
            .map_err(|e| e.to_string())?;
        (
            run.svd,
            run.sweeps,
            ordering.name(),
            format!("block size {}{}", run.block_size, fe_tag(run.qr_frontend)),
        )
    } else if distributed {
        let run = HestenesSvd::new(opts).compute_distributed(&a).map_err(|e| e.to_string())?;
        let mut extra = format!("distributed executor{}", fe_tag(run.qr_frontend));
        if let Some(health) = &run.health {
            let f = health.faults;
            extra.push_str(&format!(
                "\n# health: {} faults injected ({} drops, {} delays, {} dups, \
                 {} corruptions, {} stalls), {} redeliveries, {} retries, {} restarts",
                f.injected(),
                f.drops,
                f.delays,
                f.duplicates,
                f.corruptions,
                f.stalls,
                f.redeliveries,
                health.retries,
                health.restarts
            ));
            if health.fallbacks.is_empty() {
                extra.push_str(", no fallbacks");
            } else {
                extra.push_str(&format!(", fell back past [{}]", health.fallbacks.join(" → ")));
            }
        }
        (run.svd, run.sweeps, ordering.name(), extra)
    } else {
        let run = HestenesSvd::new(opts).compute(&a).map_err(|e| e.to_string())?;
        (
            run.svd,
            run.sweeps,
            ordering.name(),
            format!(
                "simulated time {:.3e} on {topology}{}",
                run.simulated_time,
                fe_tag(run.qr_frontend)
            ),
        )
    };
    let sigma = svd.sigma.clone();

    out.push_str(&format!(
        "# {}x{} matrix, ordering {ordering_name}, {sweeps} sweeps, {extra}\n",
        a.rows(),
        a.cols(),
    ));
    out.push_str("# singular values (descending):\n");
    out.push_str(&io::format_vector(&sigma));
    if let Some(p) = sigma_out {
        std::fs::write(&p, io::format_vector(&sigma))
            .map_err(|e| format!("{}: {e}", p.display()))?;
        out.push_str(&format!("# sigma written to {}\n", p.display()));
    }
    if let Some(p) = u_out {
        std::fs::write(&p, io::format_matrix(&svd.u))
            .map_err(|e| format!("{}: {e}", p.display()))?;
        out.push_str(&format!("# U written to {}\n", p.display()));
    }
    if let Some(p) = v_out {
        std::fs::write(&p, io::format_matrix(&svd.v))
            .map_err(|e| format!("{}: {e}", p.display()))?;
        out.push_str(&format!("# V written to {}\n", p.display()));
    }
    Ok(out)
}

fn cmd_analyze(rest: &[String]) -> Result<String, String> {
    let mut args = rest.to_vec();
    let ordering = match take_flag(&mut args, "--ordering")? {
        Some(name) => parse_ordering(&name)?,
        None => OrderingKind::FatTree,
    };
    let n = take_flag(&mut args, "--n")?
        .map_or(Ok(32), |v| v.parse::<usize>().map_err(|e| format!("--n: {e}")))?;
    let topology = take_flag(&mut args, "--topology")?.map(|t| parse_topology(&t)).transpose()?;
    let groups = take_flag(&mut args, "--groups")?
        .map(|v| v.parse::<usize>().map_err(|e| format!("--groups: {e}")))
        .transpose()?;
    let words = take_flag(&mut args, "--words")?
        .map_or(Ok(1), |v| v.parse::<u64>().map_err(|e| format!("--words: {e}")))?;
    let emit_cert = take_flag(&mut args, "--emit-cert")?.map(PathBuf::from);
    let check_cert = take_flag(&mut args, "--check-cert")?.map(PathBuf::from);
    if emit_cert.is_some() && check_cert.is_some() {
        return Err("--emit-cert and --check-cert are mutually exclusive".to_string());
    }
    if !args.is_empty() {
        return Err(format!("analyze: unexpected argument {:?}", args[0]));
    }

    let ord: Box<dyn treesvd_orderings::JacobiOrdering> = match groups {
        Some(m) => {
            if ordering != OrderingKind::Hybrid {
                return Err("--groups only applies to the hybrid ordering".to_string());
            }
            Box::new(treesvd_orderings::HybridOrdering::new(n, m).map_err(|e| e.to_string())?)
        }
        None => ordering.build(n).map_err(|e| e.to_string())?,
    };

    let opts = treesvd_analyze::AnalysisOptions {
        topology: topology.map(|kind| treesvd_net::Topology::new(kind, n / 2)),
        words_per_column: words,
    };

    // fast path: validate an existing certificate without re-proving
    if let Some(path) = check_cert {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let cert = treesvd_analyze::ProofCertificate::parse(&text).map_err(|e| e.to_string())?;
        let obligations = treesvd_analyze::check_certificate(&cert, ord.as_ref(), &opts)
            .map_err(|e| format!("certificate rejected: {e}"))?;
        return Ok(format!(
            "# certificate {} VALID for {} (n = {n}): {obligations} proof obligation(s) \
             discharged without re-running the provers\n",
            path.display(),
            ord.name(),
        ));
    }

    let report = treesvd_analyze::analyze_ordering(ord.as_ref(), &opts);
    if !report.is_verified() {
        return Err(format!("schedule verification failed\n{report}"));
    }
    let mut out = report.to_string();
    if let Some(path) = emit_cert {
        let cert = treesvd_analyze::emit_certificate(ord.as_ref(), &opts, true, true)
            .map_err(|e| e.to_string())?;
        std::fs::write(&path, cert.to_text()).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push_str(&format!("# proof certificate written to {}\n", path.display()));
    }
    Ok(out)
}

fn cmd_batch(rest: &[String]) -> Result<String, String> {
    let mut args = rest.to_vec();
    let order = take_flag(&mut args, "--order")?
        .ok_or_else(|| "batch needs --order N".to_string())?
        .parse::<usize>()
        .map_err(|e| format!("--order: {e}"))?;
    let count = take_flag(&mut args, "--count")?
        .ok_or_else(|| "batch needs --count K".to_string())?
        .parse::<usize>()
        .map_err(|e| format!("--count: {e}"))?;
    let rows = take_flag(&mut args, "--rows")?
        .map_or(Ok(order), |v| v.parse::<usize>().map_err(|e| format!("--rows: {e}")))?;
    let seed = take_flag(&mut args, "--seed")?
        .map_or(Ok(42), |v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))?;
    let lanes = take_flag(&mut args, "--lanes")?.map_or(Ok(treesvd_batch::LANES), |v| {
        v.parse::<usize>().map_err(|e| format!("--lanes: {e}"))
    })?;
    let threads = take_flag(&mut args, "--threads")?
        .map(|t| t.parse::<usize>().map_err(|e| format!("--threads: {e}")))
        .transpose()?;
    if threads == Some(0) {
        return Err("--threads must be at least 1".to_string());
    }
    let max_sweeps = take_flag(&mut args, "--max-sweeps")?
        .map_or(Ok(60), |v| v.parse::<usize>().map_err(|e| format!("--max-sweeps: {e}")))?;
    let scalar = take_switch(&mut args, "--scalar");
    let no_vectors = take_switch(&mut args, "--no-vectors");
    if !args.is_empty() {
        return Err(format!("batch: unexpected argument {:?}", args[0]));
    }

    // fill the SoA batch one problem at a time so peak memory stays at
    // one dense matrix plus the batch itself
    let mut batch = treesvd_batch::BatchSoA::new(rows, order, count, lanes)
        .map_err(|e| format!("batch setup: {e}"))?;
    for i in 0..count {
        let m = treesvd_matrix::generate::random_uniform(rows, order, seed.wrapping_add(i as u64));
        batch.set_problem(i, &m).map_err(|e| format!("batch setup: {e}"))?;
    }

    let path = if scalar { treesvd_batch::LanePath::Scalar } else { treesvd_batch::LanePath::Auto };
    let opts = treesvd_batch::BatchOptions::default()
        .with_path(path)
        .with_vectors(!no_vectors)
        .with_max_sweeps(max_sweeps)
        .with_threads(threads);
    let start = std::time::Instant::now();
    let out = treesvd_batch::batch_svd(&mut batch, &opts).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64();

    let stats = out.stats;
    let mut text = format!(
        "# batched svd: {count} problems of {rows}x{order}, lanes {}, path {}, seed {seed}\n",
        stats.lanes,
        if scalar { "scalar" } else { "auto" },
    );
    text.push_str(&format!(
        "# {} lane groups, max {} sweeps, {} alloc events\n",
        stats.groups, stats.max_sweeps_used, stats.alloc_events
    ));
    text.push_str(&format!(
        "# solved in {elapsed:.6} s — {:.0} problems/s\n",
        count as f64 / elapsed.max(1e-12)
    ));
    text.push_str("# singular values of problem 0 (descending):\n");
    text.push_str(&io::format_vector(out.sigma(0)));
    Ok(text)
}

fn cmd_lstsq(rest: &[String]) -> Result<String, String> {
    let mut args = rest.to_vec();
    let rcond = take_flag(&mut args, "--rcond")?
        .map(|x| x.parse::<f64>().map_err(|e| format!("--rcond: {e}")))
        .transpose()?;
    let [a_path, b_path] = args.as_slice() else {
        return Err("lstsq needs a matrix file and a rhs file".to_string());
    };
    let a = io::read_matrix(&PathBuf::from(a_path))?;
    let b_mat = io::read_matrix(&PathBuf::from(b_path))?;
    if b_mat.cols() != 1 {
        return Err(format!("rhs must be a single column, got {} columns", b_mat.cols()));
    }
    let b: Vec<f64> = b_mat.col(0).to_vec();
    if b.len() != a.rows() {
        return Err(format!("rhs has {} rows, matrix has {}", b.len(), a.rows()));
    }
    let sol = treesvd_apps::lstsq(&a, &b, rcond).map_err(|e| e.to_string())?;
    let mut out = format!(
        "# effective rank {}, residual norm {:.6e}\n# solution:\n",
        sol.effective_rank, sol.residual_norm
    );
    out.push_str(&io::format_vector(&sol.x));
    Ok(out)
}

fn cmd_cond(rest: &[String]) -> Result<String, String> {
    let [path] = rest else {
        return Err("cond needs exactly one matrix file".to_string());
    };
    let a = io::read_matrix(&PathBuf::from(path))?;
    let kappa = treesvd_apps::condition_number(&a).map_err(|e| e.to_string())?;
    Ok(format!("{kappa:.6e}\n"))
}

fn cmd_info() -> String {
    let mut out = String::from("treesvd — Zhou & Brent (ICPP 1993) reproduction\n\norderings:\n");
    for kind in OrderingKind::ALL {
        out.push_str(&format!("  {}\n", kind.name()));
    }
    out.push_str(
        "\ntopologies:\n  perfect (binary fat-tree)\n  cm5 (skinny, ×√2 capacity per level)\n  binary (capacity 1 everywhere)\n  skinny-above-K (perfect up to level K, frozen above)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn write_temp(name: &str, content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("treesvd-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    #[test]
    fn auto_runs_and_reports_its_plan() {
        let p = write_temp("auto.txt", "3 0\n0 4\n1 1\n");
        let out = run(&argv(&["svd", p.to_str().unwrap(), "--auto"])).unwrap();
        assert!(out.contains("auto plan:"), "{out}");
        assert!(out.contains("driver"), "{out}");
        // the tuner changes how, never what: spectrum matches the default path
        let base = run(&argv(&["svd", p.to_str().unwrap()])).unwrap();
        let sigmas = |s: &str| -> Vec<f64> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .filter_map(|l| l.trim().parse::<f64>().ok())
                .collect()
        };
        for (a, b) in sigmas(&base).iter().zip(sigmas(&out).iter()) {
            assert!((a - b).abs() < 1e-9 * a.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn auto_accepts_the_problem_statement_flags() {
        let p = write_temp("auto_ps.txt", "2 0 0\n0 3 0\n0 0 5\n1 1 1\n");
        let out = run(&argv(&[
            "svd",
            p.to_str().unwrap(),
            "--auto",
            "--no-vectors",
            "--processors",
            "2",
            "--topology",
            "cm5",
        ]))
        .unwrap();
        assert!(out.contains("auto plan:"), "{out}");
    }

    #[test]
    fn auto_rejects_hand_pinned_config_flags() {
        let p = write_temp("auto_conflict.txt", "1 0\n0 2\n");
        for flags in [
            &["--ordering", "ring"][..],
            &["--block-kernel", "gram"],
            &["--no-overlap"],
            &["--threads", "2"],
            &["--qr-frontend"],
            &["--hier-block", "off"],
            &["--distributed"],
            &["--distributed", "--chaos", "7"],
        ] {
            let mut a = argv(&["svd", p.to_str().unwrap(), "--auto"]);
            a.extend(flags.iter().map(|s| s.to_string()));
            let err = run(&a).unwrap_err();
            assert!(err.contains("--auto"), "{flags:?}: {err}");
            assert!(err.contains(flags[0]), "{flags:?}: {err}");
        }
    }

    #[test]
    fn info_lists_all_orderings() {
        let out = run(&argv(&["info"])).unwrap();
        for k in OrderingKind::ALL {
            assert!(out.contains(k.name()), "missing {}", k.name());
        }
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn svd_on_a_small_file() {
        let p = write_temp("a.txt", "3 0\n0 4\n0 0\n");
        let out = run(&argv(&["svd", p.to_str().unwrap()])).unwrap();
        assert!(out.contains("2 sweeps") || out.contains("sweeps"));
        // sigma descending: 4 then 3
        let nums: Vec<f64> = out
            .lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| l.trim().parse::<f64>().ok())
            .collect();
        assert!((nums[0] - 4.0).abs() < 1e-12);
        assert!((nums[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn svd_flags_parse() {
        let p = write_temp("b.txt", "1 0\n0 2\n1 1\n");
        let out = run(&argv(&[
            "svd",
            p.to_str().unwrap(),
            "--ordering",
            "new-ring",
            "--topology",
            "cm5",
            "--no-vectors",
        ]))
        .unwrap();
        assert!(out.contains("new-ring"));
        assert!(run(&argv(&["svd", p.to_str().unwrap(), "--ordering", "nope"])).is_err());
        assert!(run(&argv(&["svd", p.to_str().unwrap(), "--topology", "nope"])).is_err());
        let out =
            run(&argv(&["svd", p.to_str().unwrap(), "--topology", "skinny-above-2"])).unwrap();
        assert!(out.contains("skinny-above-2"));
        assert!(run(&argv(&["svd", p.to_str().unwrap(), "--topology", "skinny-above-x"])).is_err());
    }

    #[test]
    fn svd_distributed_and_blocked_paths() {
        let p = write_temp("c.txt", "2 0 0 0\n0 3 0 0\n0 0 1 0\n0 0 0 4\n1 1 1 1\n");
        let out = run(&argv(&["svd", p.to_str().unwrap(), "--distributed"])).unwrap();
        assert!(out.contains("distributed"));
        // --no-overlap parses and produces the identical spectrum
        let plain =
            run(&argv(&["svd", p.to_str().unwrap(), "--distributed", "--no-overlap"])).unwrap();
        let sigmas = |s: &str| -> Vec<f64> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .filter_map(|l| l.trim().parse::<f64>().ok())
                .collect()
        };
        assert_eq!(sigmas(&out), sigmas(&plain), "overlap must be bitwise-invisible");
        let out = run(&argv(&["svd", p.to_str().unwrap(), "--processors", "2"])).unwrap();
        assert!(out.contains("block size"));
    }

    #[test]
    fn svd_block_kernel_and_threads_flags() {
        let p = write_temp("k.txt", "2 0 0 0\n0 3 0 0\n0 0 1 0\n0 0 0 4\n1 1 1 1\n");
        for kernel in ["pairwise", "gram"] {
            let out = run(&argv(&[
                "svd",
                p.to_str().unwrap(),
                "--processors",
                "2",
                "--block-kernel",
                kernel,
                "--threads",
                "1",
            ]))
            .unwrap();
            assert!(out.contains("block size"), "{out}");
        }
        assert!(run(&argv(&["svd", p.to_str().unwrap(), "--block-kernel", "nope"])).is_err());
        assert!(run(&argv(&["svd", p.to_str().unwrap(), "--threads", "0"])).is_err());
    }

    #[test]
    fn qr_frontend_flags_engage_and_validate() {
        // a 12×2 matrix: aspect 6, so crossover 4 engages and default 8
        // does not
        let rows: String = (0..12).map(|i| format!("{} {}\n", i + 1, (i % 3) as f64)).collect();
        let p = write_temp("tall.txt", &rows);
        let plain = run(&argv(&["svd", p.to_str().unwrap()])).unwrap();
        assert!(!plain.contains("qr front-end"));
        let fe = run(&argv(&["svd", p.to_str().unwrap(), "--qr-frontend", "--qr-crossover", "4"]))
            .unwrap();
        assert!(fe.contains("qr front-end"), "{fe}");
        let sigmas = |s: &str| -> Vec<f64> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .filter_map(|l| l.trim().parse::<f64>().ok())
                .collect()
        };
        for (a, b) in sigmas(&plain).iter().zip(sigmas(&fe).iter()) {
            assert!((a - b).abs() < 1e-9 * a.max(1.0), "{a} vs {b}");
        }
        // default crossover 8 leaves a 6:1 matrix on the direct path
        let off = run(&argv(&["svd", p.to_str().unwrap(), "--qr-frontend"])).unwrap();
        assert!(!off.contains("qr front-end"), "{off}");
        // the blocked driver reports the front-end too
        let blk = run(&argv(&[
            "svd",
            p.to_str().unwrap(),
            "--processors",
            "1",
            "--qr-frontend",
            "--qr-crossover",
            "2",
        ]))
        .unwrap();
        assert!(blk.contains("block size") && blk.contains("qr front-end"), "{blk}");
        // validation
        assert!(run(&argv(&["svd", p.to_str().unwrap(), "--qr-crossover", "4"])).is_err());
        assert!(run(&argv(&[
            "svd",
            p.to_str().unwrap(),
            "--qr-frontend",
            "--qr-crossover",
            "wat"
        ]))
        .is_err());
    }

    #[test]
    fn hier_block_flag_parses_and_matches_flat() {
        let p = write_temp("hier.txt", "2 0 0 0\n0 3 0 0\n0 0 1 0\n0 0 0 4\n1 1 1 1\n");
        let sigmas = |s: &str| -> Vec<f64> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .filter_map(|l| l.trim().parse::<f64>().ok())
                .collect()
        };
        let base = run(&argv(&["svd", p.to_str().unwrap(), "--processors", "1"])).unwrap();
        for mode in ["auto", "off", "4"] {
            let out = run(&argv(&[
                "svd",
                p.to_str().unwrap(),
                "--processors",
                "1",
                "--hier-block",
                mode,
            ]))
            .unwrap();
            for (a, b) in sigmas(&base).iter().zip(sigmas(&out).iter()) {
                assert!((a - b).abs() < 1e-9 * a.max(1.0), "mode {mode}: {a} vs {b}");
            }
        }
        assert!(run(&argv(&["svd", p.to_str().unwrap(), "--hier-block", "sideways"])).is_err());
    }

    #[test]
    fn chaos_run_matches_the_fault_free_spectrum_and_reports_health() {
        let p = write_temp("chaos.txt", "2 0 0 0\n0 3 0 0\n0 0 1 0\n0 0 0 4\n1 1 1 1\n");
        let clean = run(&argv(&["svd", p.to_str().unwrap(), "--distributed"])).unwrap();
        let chaotic = run(&argv(&[
            "svd",
            p.to_str().unwrap(),
            "--distributed",
            "--chaos",
            "11",
            "--recv-timeout",
            "20",
            "--max-retries",
            "6",
        ]))
        .unwrap();
        assert!(chaotic.contains("# health:"), "{chaotic}");
        assert!(chaotic.contains("faults injected"), "{chaotic}");
        let sigmas = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .filter(|l| !l.trim().is_empty())
                .map(str::to_string)
                .collect()
        };
        assert_eq!(sigmas(&clean), sigmas(&chaotic), "recovery must be bitwise-invisible");
    }

    #[test]
    fn fault_flags_require_distributed_and_validate() {
        let p = write_temp("chaos2.txt", "1 0\n0 2\n");
        for flags in [&["--chaos", "1"][..], &["--recv-timeout", "50"], &["--max-retries", "3"]] {
            let mut a = argv(&["svd", p.to_str().unwrap()]);
            a.extend(flags.iter().map(|s| s.to_string()));
            let err = run(&a).unwrap_err();
            assert!(err.contains("--distributed"), "{err}");
        }
        assert!(run(&argv(&[
            "svd",
            p.to_str().unwrap(),
            "--distributed",
            "--chaos",
            "not-a-seed"
        ]))
        .is_err());
        assert!(run(&argv(&["svd", p.to_str().unwrap(), "--distributed", "--recv-timeout", "-4"]))
            .is_err());
    }

    #[test]
    fn analyze_acceptance_command_proves_zero_contention() {
        // the headline check: hybrid at n = 64 on the perfect fat-tree
        let out =
            run(&argv(&["analyze", "--ordering", "hybrid", "--n", "64", "--topology", "fat-tree"]))
                .unwrap();
        assert!(out.contains("zero contention"), "{out}");
        for check in ["permutation-safety", "coverage/restore", "contention", "deadlock-freedom"] {
            assert!(out.contains(check), "missing {check} in {out}");
        }
        assert!(!out.contains("FAIL"), "{out}");
    }

    #[test]
    fn analyze_defaults_and_flags() {
        // defaults: fat-tree ordering, n = 32, no topology
        let out = run(&argv(&["analyze"])).unwrap();
        assert!(out.contains("n = 32"), "{out}");
        assert!(out.contains("not checked"), "{out}");
        // explicit groups for the hybrid
        let out = run(&argv(&[
            "analyze",
            "--ordering",
            "hybrid",
            "--n",
            "32",
            "--groups",
            "8",
            "--topology",
            "cm5",
        ]))
        .unwrap();
        assert!(out.contains("OK"), "{out}");
        assert!(run(&argv(&["analyze", "--ordering", "ring", "--groups", "4"])).is_err());
        assert!(run(&argv(&["analyze", "--n", "seven"])).is_err());
        assert!(run(&argv(&["analyze", "stray"])).is_err());
    }

    #[test]
    fn analyze_reports_contention_where_the_paper_predicts_it() {
        // the fat-tree ordering overloads a plain binary tree (§5)
        let err =
            run(&argv(&["analyze", "--ordering", "fat-tree", "--n", "32", "--topology", "binary"]))
                .unwrap_err();
        assert!(err.contains("FAIL"), "{err}");
        assert!(err.contains("contention"), "{err}");
    }

    #[test]
    fn analyze_emit_and_check_cert_round_trip() {
        let dir = std::env::temp_dir().join("treesvd-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let cert = dir.join("ring16.cert");
        let _ = std::fs::remove_file(&cert);
        let base = ["analyze", "--ordering", "ring", "--n", "16", "--topology", "perfect"];
        let mut emit = argv(&base);
        emit.extend(["--emit-cert".to_string(), cert.to_str().unwrap().to_string()]);
        let out = run(&emit).unwrap();
        assert!(out.contains("proof certificate written"), "{out}");

        let mut check = argv(&base);
        check.extend(["--check-cert".to_string(), cert.to_str().unwrap().to_string()]);
        let out = run(&check).unwrap();
        assert!(out.contains("VALID"), "{out}");
        assert!(out.contains("proof obligation(s)"), "{out}");

        // the same certificate must not validate a different schedule
        let mut wrong = argv(&["analyze", "--ordering", "new-ring", "--n", "16"]);
        wrong.extend(["--check-cert".to_string(), cert.to_str().unwrap().to_string()]);
        let err = run(&wrong).unwrap_err();
        assert!(err.contains("certificate rejected"), "{err}");

        // and a truncated file is a parse error with a line number
        let garbled = dir.join("garbled.cert");
        let text = std::fs::read_to_string(&cert).unwrap();
        let keep = text.lines().count() / 2;
        std::fs::write(&garbled, text.lines().take(keep).collect::<Vec<_>>().join("\n")).unwrap();
        let mut bad = argv(&base);
        bad.extend(["--check-cert".to_string(), garbled.to_str().unwrap().to_string()]);
        assert!(run(&bad).is_err());

        // the two flags are mutually exclusive
        let mut both = argv(&base);
        both.extend([
            "--emit-cert".to_string(),
            cert.to_str().unwrap().to_string(),
            "--check-cert".to_string(),
            cert.to_str().unwrap().to_string(),
        ]);
        assert!(run(&both).is_err());
    }

    #[test]
    fn batch_runs_and_reports_throughput() {
        let out = run(&argv(&["batch", "--order", "6", "--count", "37", "--seed", "7"])).unwrap();
        assert!(out.contains("37 problems of 6x6"), "{out}");
        assert!(out.contains("problems/s"), "{out}");
        // 37 problems over 8 lanes → 5 groups
        assert!(out.contains("5 lane groups"), "{out}");
    }

    #[test]
    fn batch_scalar_path_is_bitwise_identical() {
        let base = argv(&["batch", "--order", "5", "--count", "13", "--rows", "9"]);
        let auto = run(&base).unwrap();
        let mut scalar_args = base.clone();
        scalar_args.push("--scalar".to_string());
        let scalar = run(&scalar_args).unwrap();
        let sigmas = |s: &str| -> Vec<String> {
            s.lines().filter(|l| !l.starts_with('#')).map(str::to_string).collect()
        };
        assert_eq!(sigmas(&auto), sigmas(&scalar), "kernel paths must agree bitwise");
    }

    #[test]
    fn batch_flags_validate() {
        assert!(run(&argv(&["batch", "--count", "4"])).is_err(), "missing --order");
        assert!(run(&argv(&["batch", "--order", "4"])).is_err(), "missing --count");
        assert!(run(&argv(&["batch", "--order", "4", "--count", "4", "--lanes", "5"])).is_err());
        assert!(run(&argv(&["batch", "--order", "4", "--count", "4", "--rows", "2"])).is_err());
        assert!(run(&argv(&["batch", "--order", "4", "--count", "4", "--threads", "0"])).is_err());
        assert!(run(&argv(&["batch", "--order", "4", "--count", "4", "stray"])).is_err());
        // lanes 4 and 16, thread caps, and --no-vectors all parse and run
        for extra in [&["--lanes", "4"][..], &["--lanes", "16"], &["--threads", "2"]] {
            let mut a = argv(&["batch", "--order", "3", "--count", "9", "--no-vectors"]);
            a.extend(extra.iter().map(|s| s.to_string()));
            assert!(run(&a).is_ok(), "{extra:?}");
        }
    }

    #[test]
    fn lstsq_solves() {
        let a = write_temp("lsq_a.txt", "1 0\n0 1\n1 1\n");
        let b = write_temp("lsq_b.txt", "1\n2\n3\n");
        let out = run(&argv(&["lstsq", a.to_str().unwrap(), b.to_str().unwrap()])).unwrap();
        assert!(out.contains("effective rank 2"));
    }

    #[test]
    fn lstsq_shape_errors() {
        let a = write_temp("lsq_a2.txt", "1 0\n0 1\n");
        let b = write_temp("lsq_b2.txt", "1\n2\n3\n");
        assert!(run(&argv(&["lstsq", a.to_str().unwrap(), b.to_str().unwrap()])).is_err());
        let b2 = write_temp("lsq_b3.txt", "1 2\n3 4\n");
        assert!(run(&argv(&["lstsq", a.to_str().unwrap(), b2.to_str().unwrap()])).is_err());
    }

    #[test]
    fn cond_of_identity_is_one() {
        let p = write_temp("id.txt", "1 0\n0 1\n");
        let out = run(&argv(&["cond", p.to_str().unwrap()])).unwrap();
        let k: f64 = out.trim().parse().unwrap();
        assert!((k - 1.0).abs() < 1e-10);
    }

    #[test]
    fn u_v_out_write_orthogonal_factors() {
        let p = write_temp("uv.txt", "3 0\n0 4\n1 1\n");
        let dir = std::env::temp_dir().join("treesvd-cli-tests");
        let up = dir.join("u.txt");
        let vp = dir.join("v.txt");
        run(&argv(&[
            "svd",
            p.to_str().unwrap(),
            "--u-out",
            up.to_str().unwrap(),
            "--v-out",
            vp.to_str().unwrap(),
        ]))
        .unwrap();
        let u = crate::io::read_matrix(&up).unwrap();
        let v = crate::io::read_matrix(&vp).unwrap();
        assert_eq!(u.shape(), (3, 2));
        assert_eq!(v.shape(), (2, 2));
        assert!(treesvd_matrix::checks::orthogonality_residual(&v) < 1e-10);
        assert!(treesvd_matrix::checks::orthogonality_residual(&u) < 1e-10);
    }

    #[test]
    fn sigma_out_writes_file() {
        let p = write_temp("d.txt", "5 0\n0 12\n");
        let outfile = std::env::temp_dir().join("treesvd-cli-tests").join("sigma.txt");
        let _ = std::fs::remove_file(&outfile);
        run(&argv(&["svd", p.to_str().unwrap(), "--sigma-out", outfile.to_str().unwrap()]))
            .unwrap();
        let text = std::fs::read_to_string(&outfile).unwrap();
        let first: f64 = text.lines().next().unwrap().parse().unwrap();
        assert!((first - 12.0).abs() < 1e-10);
    }
}
