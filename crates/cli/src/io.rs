//! Plain-text matrix I/O: whitespace/comma-separated rows, `#` comments.

use std::path::Path;
use treesvd_matrix::Matrix;

/// Parse a matrix from text: one row per line, entries separated by
/// whitespace or commas; empty lines and lines starting with `#` ignored.
///
/// # Errors
/// Returns a message describing the first malformed line.
pub fn parse_matrix(text: &str) -> Result<Matrix, String> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut row = Vec::new();
        for tok in line.split(|c: char| c.is_whitespace() || c == ',') {
            if tok.is_empty() {
                continue;
            }
            row.push(
                tok.parse::<f64>()
                    .map_err(|e| format!("line {}: bad number {tok:?}: {e}", lineno + 1))?,
            );
        }
        if !row.is_empty() {
            if let Some(first) = rows.first() {
                if row.len() != first.len() {
                    return Err(format!(
                        "line {}: {} entries, expected {}",
                        lineno + 1,
                        row.len(),
                        first.len()
                    ));
                }
            }
            rows.push(row);
        }
    }
    if rows.is_empty() {
        return Err("no data rows found".to_string());
    }
    let (m, n) = (rows.len(), rows[0].len());
    let flat: Vec<f64> = rows.into_iter().flatten().collect();
    Matrix::from_row_major(m, n, &flat).map_err(|e| e.to_string())
}

/// Read and parse a matrix file.
///
/// # Errors
/// I/O errors and parse errors, as messages.
pub fn read_matrix(path: &Path) -> Result<Matrix, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_matrix(&text)
}

/// Format a vector, one entry per line with full precision.
pub fn format_vector(v: &[f64]) -> String {
    let mut out = String::new();
    for x in v {
        out.push_str(&format!("{x:.17e}\n"));
    }
    out
}

/// Format a matrix row-major, whitespace separated, full precision.
pub fn format_matrix(m: &Matrix) -> String {
    let mut out = String::new();
    for i in 0..m.rows() {
        let row: Vec<String> = (0..m.cols()).map(|j| format!("{:.17e}", m.get(i, j))).collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_whitespace_and_commas() {
        let m = parse_matrix("1 2 3\n4,5,6\n").unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let m = parse_matrix("# header\n\n1 2\n# middle\n3 4\n").unwrap();
        assert_eq!(m.shape(), (2, 2));
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = parse_matrix("1 2\n3\n").unwrap_err();
        assert!(err.contains("expected 2"), "{err}");
    }

    #[test]
    fn rejects_bad_numbers() {
        let err = parse_matrix("1 x\n").unwrap_err();
        assert!(err.contains("bad number"), "{err}");
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_matrix("# nothing\n").is_err());
    }

    #[test]
    fn round_trip() {
        let m = parse_matrix("1.5 -2\n0 3.25\n").unwrap();
        let text = format_matrix(&m);
        let back = parse_matrix(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn scientific_notation_accepted() {
        let m = parse_matrix("1e-3 2.5E+2\n").unwrap();
        assert_eq!(m.get(0, 0), 1e-3);
        assert_eq!(m.get(0, 1), 250.0);
    }
}
