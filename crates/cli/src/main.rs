//! `treesvd` — command-line SVD on simulated tree architectures.
//!
//! ```text
//! treesvd svd <matrix-file> [--ordering NAME] [--topology NAME] [--no-vectors]
//!             [--distributed] [--processors P] [--sigma-out FILE]
//! treesvd analyze [--ordering NAME] [--n N] [--topology NAME] [--groups M]
//!                 [--emit-cert FILE | --check-cert FILE]
//! treesvd batch --order N --count K [--rows M] [--seed S] [--lanes L] [--scalar]
//! treesvd lstsq <matrix-file> <rhs-file> [--rcond X]
//! treesvd cond <matrix-file>
//! treesvd info
//! ```
//!
//! Matrix files are plain text: one row per line, whitespace- or
//! comma-separated, `#` comments allowed. `analyze` runs the
//! `treesvd-analyze` schedule verifier on a built-in ordering without
//! touching any matrix data, exiting non-zero when a check fails.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod args;
mod io;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("treesvd: {msg}");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
