//! Proof certificates: serializable, independently re-checkable witnesses
//! of the analyzer's schedule proofs.
//!
//! Every run of the driver and the distributed executor used to re-derive
//! and re-check the schedule/comm proofs from scratch — pure overhead
//! under repeated traffic, and useless across a process boundary where
//! the proving side and the executing side are different programs. A
//! [`ProofCertificate`] turns each proof into a *cacheable artifact*: it
//! carries, per proof, the witness the prover produced —
//!
//! * **permutation safety** — the per-step ownership tables (slot
//!   layouts) across the restore period;
//! * **coverage/restore** — a per-step commutative multiset digest of the
//!   pairs met, summing to the full `n(n−1)/2`-pair digest per sweep;
//! * **contention** — the per-(step, channel) word-load table on the
//!   keyed topology;
//! * **deadlock/overlap/recovery freedom** — a concrete topological
//!   order of each [`CommPlan`] wait-for graph;
//! * **pool-lease discipline** — the deposit/ack pairing of every leased
//!   buffer on the recovery plans;
//!
//! keyed by `(ordering, n, topology, words, overlap, recovery,
//! analyzer_version)`. [`check_certificate`] validates a witness in
//! O(plan) without re-running the prover: layouts are replayed and
//! bijection-checked, digests recomputed and compared, loads compared
//! entry-wise against the routed phases, and a topological witness is
//! checked by verifying that every wait-for edge points forward in the
//! stored order — the classic O(V+E) certificate for acyclicity, with no
//! sort and no cycle search.
//!
//! Consumption rule (the driver and `sim::distributed` both follow it via
//! [`CertificateCache::verify_or_prove`]): a cache entry whose key or
//! `analyzer_version` does not match is a silent **miss** — re-prove and
//! refresh. A matching key whose *witness* fails validation is a **hard
//! error** ([`Violation::CertificateMismatch`]): the artifact claims to
//! certify this exact schedule and does not, so something is tampered
//! with or stale in a way versioning did not catch.

use crate::contention::verify_contention;
use crate::coverage::{verify_coverage, verify_restore};
use crate::deadlock::{build_wait_graph, plan_topo_order, CommModel, CommPlan};
use crate::permutation::verify_permutation_safety;
use crate::pool::{verify_pool_discipline, verify_pool_safety, Lease};
use crate::report::{Check, Violation};
use crate::AnalysisOptions;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use treesvd_net::{Message, Phase};
use treesvd_orderings::{JacobiOrdering, Program};

/// Version of the analyzer's proof rules. Bump whenever a prover, a
/// witness format, or a plan constructor changes semantics: certificates
/// emitted under a different version are silently re-proved, never
/// trusted ([`CertificateCache::verify_or_prove`]).
pub const ANALYZER_VERSION: u32 = 1;

/// The identity of the schedule a certificate certifies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CertKey {
    /// Ordering name (`JacobiOrdering::name`).
    pub ordering: String,
    /// Index count.
    pub n: usize,
    /// Topology the contention proof ran on, as `"{kind}/{leaves}"`;
    /// `None` when no contention proof is part of the bundle.
    pub topology: Option<String>,
    /// Words per column used by the contention proof (loads scale with
    /// it). Normalized to 1 when no topology is keyed.
    pub words: u64,
    /// Whether the overlapped (send-ahead) plans are certified.
    pub overlap: bool,
    /// Whether the recovery (deposit/ack) plans and the pool-lease
    /// discipline are certified.
    pub recovery: bool,
    /// [`ANALYZER_VERSION`] at emit time.
    pub version: u32,
}

impl CertKey {
    /// The key for analyzing `ord` under `opts` with the given plan
    /// coverage, at the current analyzer version.
    pub fn for_analysis(
        ord: &dyn JacobiOrdering,
        opts: &AnalysisOptions,
        overlap: bool,
        recovery: bool,
    ) -> Self {
        let topology = opts.topology.as_ref().map(|t| format!("{}/{}", t.kind(), t.leaves()));
        let words = if topology.is_some() { opts.words_per_column.max(1) } else { 1 };
        Self {
            ordering: ord.name(),
            n: ord.n(),
            topology,
            words,
            overlap,
            recovery,
            version: ANALYZER_VERSION,
        }
    }

    /// Cache identity: every key field except the version (a version-
    /// skewed entry must be *found* so it can be refreshed in place).
    fn cache_id(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.ordering,
            self.n,
            self.topology.as_deref().unwrap_or("-"),
            self.words,
            self.overlap,
            self.recovery
        )
    }
}

/// Which communication plan a deadlock/pool witness belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// `CommPlan::from_program` — the blocking exchange order.
    Blocking,
    /// `CommPlan::from_program_overlapped` — the send-ahead order.
    Overlapped,
    /// The blocking plan with the deposit/ack recovery protocol.
    BlockingRecovery,
    /// The overlapped plan with the deposit/ack recovery protocol.
    OverlappedRecovery,
}

impl PlanKind {
    fn token(self) -> &'static str {
        match self {
            PlanKind::Blocking => "blocking",
            PlanKind::Overlapped => "overlapped",
            PlanKind::BlockingRecovery => "blocking-recovery",
            PlanKind::OverlappedRecovery => "overlapped-recovery",
        }
    }

    fn from_token(s: &str) -> Option<Self> {
        match s {
            "blocking" => Some(PlanKind::Blocking),
            "overlapped" => Some(PlanKind::Overlapped),
            "blocking-recovery" => Some(PlanKind::BlockingRecovery),
            "overlapped-recovery" => Some(PlanKind::OverlappedRecovery),
            _ => None,
        }
    }

    fn build(self, prog: &Program, vectors: bool) -> CommPlan {
        match self {
            PlanKind::Blocking => CommPlan::from_program(prog),
            PlanKind::Overlapped => CommPlan::from_program_overlapped(prog, vectors),
            PlanKind::BlockingRecovery => CommPlan::from_program(prog).with_recovery(),
            PlanKind::OverlappedRecovery => {
                CommPlan::from_program_overlapped(prog, vectors).with_recovery()
            }
        }
    }
}

/// A topological-order witness for one plan's wait-for graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanWitness {
    /// Sweep (restore-period index) of the program.
    pub sweep: usize,
    /// Which plan constructor.
    pub kind: PlanKind,
    /// Whether the plan carries V-phase traffic.
    pub vectors: bool,
    /// Communication model the order certifies acyclicity under.
    pub model: CommModel,
    /// Global node ids (rank-major program order) in topological order.
    pub order: Vec<usize>,
}

/// One entry of the per-(step, channel) contention load table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadEntry {
    /// Sweep of the phase.
    pub sweep: usize,
    /// Step of the phase.
    pub step: usize,
    /// Upward (toward the root) or downward channel.
    pub up: bool,
    /// Channel level (1 = endpoint).
    pub level: usize,
    /// Subtree node the channel sits above.
    pub node: usize,
    /// Words crossing the channel in the phase.
    pub load: u64,
}

/// A pool-lease witness entry: one deposit/ack pairing on a recovery plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeaseEntry {
    /// Sweep of the plan.
    pub sweep: usize,
    /// Which recovery plan (always a `*Recovery` kind, `vectors = true`
    /// for the overlapped one).
    pub kind: PlanKind,
    /// Store key: original sender.
    pub src: usize,
    /// Store key: receiver.
    pub dst: usize,
    /// Store key: message tag.
    pub tag: u64,
    /// Step of the deposit.
    pub deposit_step: usize,
    /// Step of the acknowledging return.
    pub ack_step: usize,
}

impl LeaseEntry {
    fn from_lease(sweep: usize, kind: PlanKind, lease: &Lease) -> Self {
        Self {
            sweep,
            kind,
            src: lease.src,
            dst: lease.dst,
            tag: lease.tag,
            deposit_step: lease.deposit.step,
            ack_step: lease.ack.step,
        }
    }
}

/// A serializable bundle of proof witnesses for one schedule
/// (see the module docs for the per-proof witness formats).
#[derive(Debug, Clone, PartialEq)]
pub struct ProofCertificate {
    /// What this certificate certifies.
    pub key: CertKey,
    /// Processor count (`n/2`).
    pub processors: usize,
    /// Sweeps covered (the ordering's restore period).
    pub period: usize,
    /// Steps per sweep.
    pub steps_per_sweep: usize,
    /// Ownership witness: `layouts[sweep][k]` = the slot→index layout
    /// before step `k` (index `steps_per_sweep` = the final layout).
    pub layouts: Vec<Vec<Vec<usize>>>,
    /// Coverage witness: `pair_digests[sweep][k]` = commutative digest of
    /// the pairs met at step `k`; the per-sweep sum equals the full
    /// `n(n−1)/2`-pair digest.
    pub pair_digests: Vec<Vec<u64>>,
    /// Contention witness: every nonzero per-(step, channel) load, sorted;
    /// empty when no topology is keyed.
    pub loads: Vec<LoadEntry>,
    /// Worst per-phase contention factor proven (≤ 1.0).
    pub worst_contention: f64,
    /// Deadlock witnesses: one topological order per certified plan.
    pub plans: Vec<PlanWitness>,
    /// Pool witnesses: the lease table of each certified recovery plan.
    pub leases: Vec<LeaseEntry>,
}

// ---------------------------------------------------------------------
// digests

/// SplitMix64 finalizer — the commutative-sum pair digest's mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pair_hash(a: usize, b: usize) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    mix(((lo as u64) << 32) | hi as u64)
}

/// Digest of the pairs met at one step, from the layout before the step.
fn step_digest(layout: &[usize]) -> u64 {
    layout.chunks(2).fold(0u64, |acc, pair| acc.wrapping_add(pair_hash(pair[0], pair[1])))
}

/// Digest of the full set of `n(n−1)/2` unordered pairs.
fn full_digest(n: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        for j in i + 1..n {
            acc = acc.wrapping_add(pair_hash(i, j));
        }
    }
    acc
}

// ---------------------------------------------------------------------
// emit

/// The plans a certificate with these key flags must witness, per sweep:
/// `(kind, vectors, model)` triples.
fn expected_plans(overlap: bool, recovery: bool) -> Vec<(PlanKind, bool, CommModel)> {
    let mut plans = vec![(PlanKind::Blocking, false, CommModel::Buffered)];
    if overlap {
        for vectors in [false, true] {
            plans.push((PlanKind::Overlapped, vectors, CommModel::Buffered));
            plans.push((PlanKind::Overlapped, vectors, CommModel::Rendezvous));
        }
    }
    if recovery {
        plans.push((PlanKind::BlockingRecovery, false, CommModel::Buffered));
        if overlap {
            for vectors in [false, true] {
                plans.push((PlanKind::OverlappedRecovery, vectors, CommModel::Buffered));
                plans.push((PlanKind::OverlappedRecovery, vectors, CommModel::Rendezvous));
            }
        }
    }
    plans
}

/// The recovery plans whose lease tables a certificate stores, per sweep.
fn expected_lease_plans(overlap: bool, recovery: bool) -> Vec<(PlanKind, bool)> {
    let mut plans = Vec::new();
    if recovery {
        plans.push((PlanKind::BlockingRecovery, false));
        if overlap {
            plans.push((PlanKind::OverlappedRecovery, true));
        }
    }
    plans
}

/// Run the provers over `ord`'s restore period and package every witness
/// into a [`ProofCertificate`]. `overlap`/`recovery` select which plan
/// families are certified (and become part of the key).
///
/// # Errors
/// The first [`Violation`] any prover finds — a certificate is only ever
/// emitted for a fully verified schedule.
pub fn emit_certificate(
    ord: &dyn JacobiOrdering,
    opts: &AnalysisOptions,
    overlap: bool,
    recovery: bool,
) -> Result<ProofCertificate, Violation> {
    let key = CertKey::for_analysis(ord, opts, overlap, recovery);
    let period = ord.restore_period().max(1);
    let programs = ord.programs(period);
    let steps_per_sweep = programs.first().map_or(0, |p| p.steps.len());

    // permutation + coverage/restore provers, then the layout witness
    for prog in &programs {
        verify_permutation_safety(prog)?;
        verify_coverage(prog)?;
    }
    verify_restore(ord)?;
    let mut layouts = Vec::with_capacity(period);
    let mut pair_digests = Vec::with_capacity(period);
    for prog in &programs {
        let mut sweep_layouts = prog.layouts();
        sweep_layouts.push(prog.final_layout());
        pair_digests
            .push(sweep_layouts[..prog.steps.len()].iter().map(|l| step_digest(l)).collect());
        layouts.push(sweep_layouts);
    }

    // contention prover + load-table witness
    let mut loads: Vec<LoadEntry> = Vec::new();
    let mut worst_contention = 0.0f64;
    if let Some(topo) = &opts.topology {
        for (sweep, prog) in programs.iter().enumerate() {
            let proof = verify_contention(prog, topo, opts.words())?;
            worst_contention = worst_contention.max(proof.max_contention);
            for (step, pair_step) in prog.steps.iter().enumerate() {
                let messages: Vec<Message> = pair_step
                    .move_after
                    .inter_processor_moves()
                    .into_iter()
                    .map(|(f, t)| Message { src: f / 2, dst: t / 2, words: opts.words() })
                    .collect();
                let phase = Phase::new(topo, messages);
                for (channel, load) in phase.channel_loads().iter() {
                    if load > 0 {
                        loads.push(LoadEntry {
                            sweep,
                            step,
                            up: channel.up,
                            level: channel.level,
                            node: channel.node,
                            load,
                        });
                    }
                }
            }
        }
        loads.sort_by_key(|e| (e.sweep, e.step, e.level, e.node, e.up));
    }

    // deadlock provers + topological-order witnesses
    let mut plans = Vec::new();
    for (sweep, prog) in programs.iter().enumerate() {
        for (kind, vectors, model) in expected_plans(overlap, recovery) {
            let order = plan_topo_order(&kind.build(prog, vectors), model)?;
            plans.push(PlanWitness { sweep, kind, vectors, model, order });
        }
    }

    // pool prover (all recovery paths incl. restart splices) + lease witness
    let mut leases = Vec::new();
    if recovery {
        for (sweep, prog) in programs.iter().enumerate() {
            for vectors in [false, true] {
                verify_pool_safety(prog, vectors)?;
            }
            for (kind, vectors) in expected_lease_plans(overlap, recovery) {
                for lease in verify_pool_discipline(&kind.build(prog, vectors))? {
                    leases.push(LeaseEntry::from_lease(sweep, kind, &lease));
                }
            }
        }
    }

    Ok(ProofCertificate {
        key,
        processors: ord.n() / 2,
        period,
        steps_per_sweep,
        layouts,
        pair_digests,
        loads,
        worst_contention,
        plans,
        leases,
    })
}

// ---------------------------------------------------------------------
// check

fn mismatch(check: Check, sweep: usize, step: usize, detail: String) -> Violation {
    Violation::CertificateMismatch { cert_check: check, sweep, step, detail }
}

/// Validate every witness in `cert` against the schedule of `ord` under
/// `opts`, in O(plan), without re-running the provers (no pair-set
/// tracking, no topological sort, no cycle search). Returns the number of
/// proof obligations discharged.
///
/// The caller is expected to have matched the key already (see
/// [`CertificateCache::verify_or_prove`]); a key or version disagreement
/// here is reported as a [`Violation::CertificateMismatch`] like any
/// other witness failure.
///
/// # Errors
/// [`Violation::CertificateMismatch`] naming the check, sweep, and step
/// of the first witness entry that disagrees with the schedule.
pub fn check_certificate(
    cert: &ProofCertificate,
    ord: &dyn JacobiOrdering,
    opts: &AnalysisOptions,
) -> Result<usize, Violation> {
    let expected_key = CertKey::for_analysis(ord, opts, cert.key.overlap, cert.key.recovery);
    if cert.key != expected_key {
        return Err(mismatch(
            Check::Permutation,
            0,
            0,
            format!(
                "certificate key {:?} does not match the requested analysis {expected_key:?}",
                cert.key
            ),
        ));
    }
    let period = ord.restore_period().max(1);
    if cert.period != period {
        return Err(mismatch(
            Check::Permutation,
            0,
            0,
            format!(
                "certificate covers {} sweep(s), ordering restores after {period}",
                cert.period
            ),
        ));
    }
    let programs = ord.programs(period);
    let n = ord.n();
    let mut obligations = 0usize;

    // --- permutation safety: each witnessed layout is a bijection and the
    // chain is consistent with the program's movement permutations
    if cert.layouts.len() != period {
        return Err(mismatch(Check::Permutation, 0, 0, "layout witness missing sweeps".into()));
    }
    for (sweep, prog) in programs.iter().enumerate() {
        let layouts = &cert.layouts[sweep];
        if layouts.len() != prog.steps.len() + 1 {
            return Err(mismatch(
                Check::Permutation,
                sweep,
                0,
                format!(
                    "layout witness has {} entries, expected {}",
                    layouts.len(),
                    prog.steps.len() + 1
                ),
            ));
        }
        if layouts[0] != prog.initial_layout {
            return Err(mismatch(
                Check::Permutation,
                sweep,
                0,
                "witnessed initial layout differs from the program's".into(),
            ));
        }
        let mut owner = vec![usize::MAX; n];
        for (step, layout) in layouts.iter().enumerate() {
            owner.fill(usize::MAX);
            for (slot, &index) in layout.iter().enumerate() {
                if index >= n || owner[index] != usize::MAX {
                    return Err(mismatch(
                        Check::Permutation,
                        sweep,
                        step,
                        format!(
                            "witnessed layout is not a bijection at slot {slot} (index {index})"
                        ),
                    ));
                }
                owner[index] = slot;
            }
            if step < prog.steps.len() {
                let moved = prog.steps[step].move_after.apply(layout);
                if moved != layouts[step + 1] {
                    return Err(mismatch(
                        Check::Permutation,
                        sweep,
                        step + 1,
                        "witnessed layout disagrees with the step's movement permutation".into(),
                    ));
                }
            }
        }
        obligations += 1;
    }

    // --- coverage: recomputed per-step digests match, and each sweep's
    // digest sum equals the full pair-set digest; the final layout of the
    // period restores the initial one
    let full = full_digest(n);
    for sweep in 0..period {
        let digests = &cert.pair_digests[sweep];
        let layouts = &cert.layouts[sweep];
        if digests.len() != cert.steps_per_sweep {
            return Err(mismatch(Check::Coverage, sweep, 0, "digest witness truncated".into()));
        }
        let mut sum = 0u64;
        for (step, &digest) in digests.iter().enumerate() {
            let recomputed = step_digest(&layouts[step]);
            if recomputed != digest {
                return Err(mismatch(
                    Check::Coverage,
                    sweep,
                    step,
                    format!(
                        "pair digest {digest:#018x} disagrees with the layout's {recomputed:#018x}"
                    ),
                ));
            }
            sum = sum.wrapping_add(digest);
        }
        if sum != full {
            return Err(mismatch(
                Check::Coverage,
                sweep,
                0,
                format!("sweep digest {sum:#018x} does not cover the full pair set {full:#018x}"),
            ));
        }
        obligations += 1;
    }
    let final_layout = cert.layouts[period - 1].last().expect("layout chain nonempty");
    if *final_layout != programs[0].initial_layout {
        return Err(mismatch(
            Check::Coverage,
            period - 1,
            cert.steps_per_sweep,
            "witnessed final layout does not restore the initial order".into(),
        ));
    }

    // --- contention: the witnessed load table matches the routed phases
    // entry-wise, and the worst factor stays within the endpoint floor
    if let Some(topo) = &opts.topology {
        let mut witnessed: HashMap<(usize, usize, bool, usize, usize), u64> = HashMap::new();
        for e in &cert.loads {
            witnessed.insert((e.sweep, e.step, e.up, e.level, e.node), e.load);
        }
        let mut seen = 0usize;
        let mut worst = 0.0f64;
        for (sweep, prog) in programs.iter().enumerate() {
            for (step, pair_step) in prog.steps.iter().enumerate() {
                let messages: Vec<Message> = pair_step
                    .move_after
                    .inter_processor_moves()
                    .into_iter()
                    .map(|(f, t)| Message { src: f / 2, dst: t / 2, words: opts.words() })
                    .collect();
                let phase = Phase::new(topo, messages);
                worst = worst.max(phase.contention(topo));
                for (channel, load) in phase.channel_loads().iter() {
                    if load == 0 {
                        continue;
                    }
                    seen += 1;
                    let key = (sweep, step, channel.up, channel.level, channel.node);
                    if witnessed.get(&key) != Some(&load) {
                        return Err(mismatch(
                            Check::Contention,
                            sweep,
                            step,
                            format!(
                                "witnessed load {:?} for {} channel level {} node {} disagrees with routed load {load}",
                                witnessed.get(&key),
                                if channel.up { "up" } else { "down" },
                                channel.level,
                                channel.node
                            ),
                        ));
                    }
                }
            }
        }
        if seen != cert.loads.len() {
            return Err(mismatch(
                Check::Contention,
                0,
                0,
                format!("load witness has {} entries, routing produces {seen}", cert.loads.len()),
            ));
        }
        if worst > 1.0 || cert.worst_contention > 1.0 {
            return Err(mismatch(
                Check::Contention,
                0,
                0,
                format!("contention factor {worst:.2} exceeds the endpoint floor"),
            ));
        }
        obligations += 1;
    }

    // --- deadlock/overlap/recovery: every expected plan has a witnessed
    // topological order, and every wait-for edge points forward in it
    let mut by_plan: HashMap<(usize, PlanKind, bool, CommModel), &PlanWitness> = HashMap::new();
    for w in &cert.plans {
        by_plan.insert((w.sweep, w.kind, w.vectors, w.model), w);
    }
    for (sweep, prog) in programs.iter().enumerate() {
        for (kind, vectors, model) in expected_plans(cert.key.overlap, cert.key.recovery) {
            let Some(witness) = by_plan.get(&(sweep, kind, vectors, model)) else {
                return Err(mismatch(
                    Check::Deadlock,
                    sweep,
                    0,
                    format!("no topological witness for the {} plan ({model:?})", kind.token()),
                ));
            };
            let plan = kind.build(prog, vectors);
            let graph = build_wait_graph(&plan, model)?;
            let node_count = graph.node_count();
            if witness.order.len() != node_count {
                return Err(mismatch(
                    Check::Deadlock,
                    sweep,
                    0,
                    format!(
                        "topological witness for the {} plan has {} nodes, plan has {node_count}",
                        kind.token(),
                        witness.order.len()
                    ),
                ));
            }
            let mut position = vec![usize::MAX; node_count];
            for (idx, &node) in witness.order.iter().enumerate() {
                if node >= node_count || position[node] != usize::MAX {
                    let step = if node < node_count {
                        let (rank, pos) = graph.locate(node);
                        plan.op_ref(rank, pos).step
                    } else {
                        0
                    };
                    return Err(mismatch(
                        Check::Deadlock,
                        sweep,
                        step,
                        format!("topological witness is not a permutation at position {idx}"),
                    ));
                }
                position[node] = idx;
            }
            for (dep, outs) in graph.edges.iter().enumerate() {
                for &node in outs {
                    if position[dep] >= position[node] {
                        let (rank, pos) = graph.locate(node);
                        let op = plan.op_ref(rank, pos);
                        return Err(mismatch(
                            Check::Deadlock,
                            sweep,
                            op.step,
                            format!("witnessed order places [{op}] before its dependency"),
                        ));
                    }
                }
            }
            obligations += 1;
        }
    }

    // --- pool leases: the witnessed lease table equals the recomputed
    // deposit/ack pairing of each certified recovery plan
    if cert.key.recovery {
        let mut witnessed: HashMap<(usize, PlanKind), Vec<&LeaseEntry>> = HashMap::new();
        for lease in &cert.leases {
            witnessed.entry((lease.sweep, lease.kind)).or_default().push(lease);
        }
        for (sweep, prog) in programs.iter().enumerate() {
            for (kind, vectors) in expected_lease_plans(cert.key.overlap, cert.key.recovery) {
                let actual: Vec<LeaseEntry> = verify_pool_discipline(&kind.build(prog, vectors))?
                    .iter()
                    .map(|l| LeaseEntry::from_lease(sweep, kind, l))
                    .collect();
                let entries = witnessed.remove(&(sweep, kind)).unwrap_or_default();
                let actual_set: std::collections::HashSet<LeaseEntry> =
                    actual.iter().copied().collect();
                for &entry in &entries {
                    if !actual_set.contains(entry) {
                        return Err(mismatch(
                            Check::Pool,
                            sweep,
                            entry.deposit_step,
                            format!(
                                "witnessed lease ({} -> {}, tag {}) does not exist on the {} plan",
                                entry.src,
                                entry.dst,
                                entry.tag,
                                kind.token()
                            ),
                        ));
                    }
                }
                if entries.len() != actual.len() {
                    let witnessed_set: std::collections::HashSet<LeaseEntry> =
                        entries.iter().map(|e| **e).collect();
                    let missing = actual
                        .iter()
                        .find(|e| !witnessed_set.contains(e))
                        .expect("count mismatch implies a missing lease");
                    return Err(mismatch(
                        Check::Pool,
                        sweep,
                        missing.deposit_step,
                        format!(
                            "lease ({} -> {}, tag {}) deposited at step {} is missing from the witness (unreleased?)",
                            missing.src, missing.dst, missing.tag, missing.deposit_step
                        ),
                    ));
                }
                obligations += 1;
            }
        }
    }

    Ok(obligations)
}

// ---------------------------------------------------------------------
// serialization: a line-based text format (the workspace carries no
// serialization dependency by design — see DESIGN.md on the shim policy)

const HEADER: &str = "treesvd-proof-certificate v1";

impl ProofCertificate {
    /// Serialize to the line-based text format parsed by
    /// [`ProofCertificate::parse`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "ordering {}", self.key.ordering);
        let _ = writeln!(out, "n {}", self.key.n);
        let _ = writeln!(out, "topology {}", self.key.topology.as_deref().unwrap_or("none"));
        let _ = writeln!(out, "words {}", self.key.words);
        let _ = writeln!(out, "overlap {}", u8::from(self.key.overlap));
        let _ = writeln!(out, "recovery {}", u8::from(self.key.recovery));
        let _ = writeln!(out, "version {}", self.key.version);
        let _ = writeln!(out, "processors {}", self.processors);
        let _ = writeln!(out, "period {}", self.period);
        let _ = writeln!(out, "steps {}", self.steps_per_sweep);
        let _ = writeln!(out, "worst-contention {:016x}", self.worst_contention.to_bits());
        for (sweep, sweep_layouts) in self.layouts.iter().enumerate() {
            for (step, layout) in sweep_layouts.iter().enumerate() {
                let _ = write!(out, "layout {sweep} {step}");
                for &index in layout {
                    let _ = write!(out, " {index}");
                }
                let _ = writeln!(out);
            }
        }
        for (sweep, digests) in self.pair_digests.iter().enumerate() {
            let _ = write!(out, "pairs {sweep}");
            for &d in digests {
                let _ = write!(out, " {d:016x}");
            }
            let _ = writeln!(out);
        }
        for e in &self.loads {
            let _ = writeln!(
                out,
                "load {} {} {} {} {} {}",
                e.sweep,
                e.step,
                if e.up { "u" } else { "d" },
                e.level,
                e.node,
                e.load
            );
        }
        for w in &self.plans {
            let model = if w.model == CommModel::Buffered { "b" } else { "r" };
            let _ =
                write!(out, "topo {} {} {} {model}", w.sweep, w.kind.token(), u8::from(w.vectors));
            for &node in &w.order {
                let _ = write!(out, " {node}");
            }
            let _ = writeln!(out);
        }
        for l in &self.leases {
            let _ = writeln!(
                out,
                "lease {} {} {} {} {} {} {}",
                l.sweep,
                l.kind.token(),
                l.src,
                l.dst,
                l.tag,
                l.deposit_step,
                l.ack_step
            );
        }
        let _ = writeln!(out, "end");
        out
    }

    /// Parse the text format produced by [`ProofCertificate::to_text`].
    ///
    /// # Errors
    /// [`Violation::CertificateMalformed`] with the 1-based line number of
    /// the first offending line.
    pub fn parse(text: &str) -> Result<Self, Violation> {
        let bad = |line: usize, detail: &str| Violation::CertificateMalformed {
            line,
            detail: detail.to_string(),
        };
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| bad(1, "empty certificate"))?;
        if header.trim() != HEADER {
            return Err(bad(1, "unrecognized header"));
        }

        let mut ordering = None;
        let mut n = None;
        let mut topology: Option<Option<String>> = None;
        let mut words = None;
        let mut overlap = None;
        let mut recovery = None;
        let mut version = None;
        let mut processors = None;
        let mut period = None;
        let mut steps = None;
        let mut worst_contention = None;
        let mut layout_lines: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        let mut pair_lines: Vec<(usize, Vec<u64>)> = Vec::new();
        let mut loads: Vec<LoadEntry> = Vec::new();
        let mut plans: Vec<PlanWitness> = Vec::new();
        let mut leases: Vec<LeaseEntry> = Vec::new();
        let mut ended = false;

        for (idx, raw) in lines {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if ended {
                return Err(bad(lineno, "content after end marker"));
            }
            let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
            let fields: Vec<&str> = rest.split_whitespace().collect();
            let parse_usize = |s: &str| s.parse::<usize>().map_err(|_| bad(lineno, "bad integer"));
            let parse_u64 = |s: &str| s.parse::<u64>().map_err(|_| bad(lineno, "bad integer"));
            let parse_hex =
                |s: &str| u64::from_str_radix(s, 16).map_err(|_| bad(lineno, "bad hex digest"));
            match tag {
                "ordering" => ordering = Some(rest.to_string()),
                "n" => n = Some(parse_usize(rest)?),
                "topology" => {
                    topology = Some(if rest == "none" { None } else { Some(rest.to_string()) });
                }
                "words" => words = Some(parse_u64(rest)?),
                "overlap" => overlap = Some(rest == "1"),
                "recovery" => recovery = Some(rest == "1"),
                "version" => {
                    version = Some(rest.parse::<u32>().map_err(|_| bad(lineno, "bad version"))?);
                }
                "processors" => processors = Some(parse_usize(rest)?),
                "period" => period = Some(parse_usize(rest)?),
                "steps" => steps = Some(parse_usize(rest)?),
                "worst-contention" => worst_contention = Some(f64::from_bits(parse_hex(rest)?)),
                "layout" => {
                    if fields.len() < 2 {
                        return Err(bad(lineno, "layout needs sweep, step, and slots"));
                    }
                    let sweep = parse_usize(fields[0])?;
                    let step = parse_usize(fields[1])?;
                    let layout = fields[2..]
                        .iter()
                        .map(|s| parse_usize(s))
                        .collect::<Result<Vec<_>, _>>()?;
                    layout_lines.push((sweep, step, layout));
                }
                "pairs" => {
                    if fields.is_empty() {
                        return Err(bad(lineno, "pairs needs a sweep"));
                    }
                    let sweep = parse_usize(fields[0])?;
                    let digests =
                        fields[1..].iter().map(|s| parse_hex(s)).collect::<Result<Vec<_>, _>>()?;
                    pair_lines.push((sweep, digests));
                }
                "load" => {
                    if fields.len() != 6 {
                        return Err(bad(lineno, "load needs 6 fields"));
                    }
                    loads.push(LoadEntry {
                        sweep: parse_usize(fields[0])?,
                        step: parse_usize(fields[1])?,
                        up: match fields[2] {
                            "u" => true,
                            "d" => false,
                            _ => return Err(bad(lineno, "load direction must be u or d")),
                        },
                        level: parse_usize(fields[3])?,
                        node: parse_usize(fields[4])?,
                        load: parse_u64(fields[5])?,
                    });
                }
                "topo" => {
                    if fields.len() < 3 {
                        return Err(bad(lineno, "topo needs sweep, kind, vectors, model"));
                    }
                    let sweep = parse_usize(fields[0])?;
                    let kind = PlanKind::from_token(fields[1])
                        .ok_or_else(|| bad(lineno, "unknown plan kind"))?;
                    let vectors = fields[2] == "1";
                    let model = match fields.get(3) {
                        Some(&"b") => CommModel::Buffered,
                        Some(&"r") => CommModel::Rendezvous,
                        _ => return Err(bad(lineno, "model must be b or r")),
                    };
                    let order = fields[4..]
                        .iter()
                        .map(|s| parse_usize(s))
                        .collect::<Result<Vec<_>, _>>()?;
                    plans.push(PlanWitness { sweep, kind, vectors, model, order });
                }
                "lease" => {
                    if fields.len() != 7 {
                        return Err(bad(lineno, "lease needs 7 fields"));
                    }
                    leases.push(LeaseEntry {
                        sweep: parse_usize(fields[0])?,
                        kind: PlanKind::from_token(fields[1])
                            .ok_or_else(|| bad(lineno, "unknown plan kind"))?,
                        src: parse_usize(fields[2])?,
                        dst: parse_usize(fields[3])?,
                        tag: parse_u64(fields[4])?,
                        deposit_step: parse_usize(fields[5])?,
                        ack_step: parse_usize(fields[6])?,
                    });
                }
                "end" => ended = true,
                _ => return Err(bad(lineno, "unknown record tag")),
            }
        }
        if !ended {
            return Err(bad(text.lines().count(), "missing end marker"));
        }

        let missing = |field: &str| Violation::CertificateMalformed {
            line: 1,
            detail: format!("missing {field} record"),
        };
        let period = period.ok_or_else(|| missing("period"))?;
        let steps_per_sweep = steps.ok_or_else(|| missing("steps"))?;
        let mut layouts: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); steps_per_sweep + 1]; period];
        for (sweep, step, layout) in layout_lines {
            if sweep >= period || step > steps_per_sweep {
                return Err(Violation::CertificateMalformed {
                    line: 1,
                    detail: format!("layout record out of range (sweep {sweep}, step {step})"),
                });
            }
            layouts[sweep][step] = layout;
        }
        let mut pair_digests: Vec<Vec<u64>> = vec![Vec::new(); period];
        for (sweep, digests) in pair_lines {
            if sweep >= period {
                return Err(Violation::CertificateMalformed {
                    line: 1,
                    detail: format!("pairs record out of range (sweep {sweep})"),
                });
            }
            pair_digests[sweep] = digests;
        }

        Ok(ProofCertificate {
            key: CertKey {
                ordering: ordering.ok_or_else(|| missing("ordering"))?,
                n: n.ok_or_else(|| missing("n"))?,
                topology: topology.ok_or_else(|| missing("topology"))?,
                words: words.ok_or_else(|| missing("words"))?,
                overlap: overlap.ok_or_else(|| missing("overlap"))?,
                recovery: recovery.ok_or_else(|| missing("recovery"))?,
                version: version.ok_or_else(|| missing("version"))?,
            },
            processors: processors.ok_or_else(|| missing("processors"))?,
            period,
            steps_per_sweep,
            layouts,
            pair_digests,
            loads,
            worst_contention: worst_contention.ok_or_else(|| missing("worst-contention"))?,
            plans,
            leases,
        })
    }
}

// ---------------------------------------------------------------------
// cache

/// A process-wide store of validated certificates, shared by the SVD
/// driver (`SvdOptions::with_certificate_cache`) and the distributed
/// executor's overlap/recovery gate. Thread-safe; clone the `Arc` it
/// lives in to share it across solvers.
///
/// Consumption rule: a lookup that misses — including a **version skew**,
/// where a stored certificate was emitted under a different
/// [`ANALYZER_VERSION`] — silently re-proves and refreshes the entry. A
/// lookup that hits but whose witness fails [`check_certificate`] is a
/// hard error.
#[derive(Debug, Default)]
pub struct CertificateCache {
    inner: Mutex<HashMap<String, Arc<ProofCertificate>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CertificateCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lookups that found a current, matching certificate (the prover was
    /// skipped).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed (including version skews) and re-proved.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Fetch the certificate for `key`, if present **and** emitted under
    /// the same analyzer version. A version-skewed entry is a miss by
    /// design. Does not touch the hit/miss counters.
    pub fn get(&self, key: &CertKey) -> Option<Arc<ProofCertificate>> {
        let inner = self.inner.lock().expect("certificate cache poisoned");
        inner.get(&key.cache_id()).filter(|c| c.key == *key).cloned()
    }

    /// Insert (or refresh) a certificate under its own key.
    pub fn insert(&self, cert: ProofCertificate) -> Arc<ProofCertificate> {
        let cert = Arc::new(cert);
        let mut inner = self.inner.lock().expect("certificate cache poisoned");
        inner.insert(cert.key.cache_id(), Arc::clone(&cert));
        cert
    }

    /// The gate entry point: serve the proofs for `(ord, opts, overlap,
    /// recovery)` from a cached certificate when one validates, otherwise
    /// run the provers and cache the fresh certificate. Returns the
    /// number of proof obligations served from the certificate (`0` when
    /// the prover ran).
    ///
    /// # Errors
    /// * [`Violation::CertificateMismatch`] — a cached entry with a
    ///   matching key failed witness validation (hard error; the cache
    ///   entry is left in place for inspection).
    /// * Any prover [`Violation`] — the schedule itself is bad.
    pub fn verify_or_prove(
        &self,
        ord: &dyn JacobiOrdering,
        opts: &AnalysisOptions,
        overlap: bool,
        recovery: bool,
    ) -> Result<usize, Violation> {
        let key = CertKey::for_analysis(ord, opts, overlap, recovery);
        if let Some(cert) = self.get(&key) {
            let obligations = check_certificate(&cert, ord, opts)?;
            self.record_hit();
            return Ok(obligations);
        }
        self.record_miss();
        let cert = emit_certificate(ord, opts, overlap, recovery)?;
        self.insert(cert);
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_net::{Topology, TopologyKind};
    use treesvd_orderings::{FatTreeOrdering, NewRingOrdering, RingOrdering};

    #[test]
    fn emit_then_check_round_trips() {
        let ord = FatTreeOrdering::new(16).unwrap();
        let opts = AnalysisOptions {
            topology: Some(Topology::new(TopologyKind::PerfectFatTree, 8)),
            words_per_column: 16,
        };
        let cert = emit_certificate(&ord, &opts, true, true).unwrap();
        let obligations = check_certificate(&cert, &ord, &opts).unwrap();
        assert!(obligations > 0);
        // and through the serializer
        let text = cert.to_text();
        let parsed = ProofCertificate::parse(&text).unwrap();
        assert_eq!(parsed, cert);
        assert_eq!(check_certificate(&parsed, &ord, &opts).unwrap(), obligations);
    }

    #[test]
    fn certificate_for_the_wrong_ordering_is_rejected() {
        let ord = RingOrdering::new(8).unwrap();
        let other = NewRingOrdering::new(8).unwrap();
        let opts = AnalysisOptions::default();
        let cert = emit_certificate(&ord, &opts, true, false).unwrap();
        assert!(matches!(
            check_certificate(&cert, &other, &opts),
            Err(Violation::CertificateMismatch { .. })
        ));
    }

    #[test]
    fn cache_hits_skip_the_prover_and_version_skew_reproves() {
        let ord = FatTreeOrdering::new(8).unwrap();
        let opts = AnalysisOptions::default();
        let cache = CertificateCache::new();
        assert_eq!(cache.verify_or_prove(&ord, &opts, true, true).unwrap(), 0);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let skipped = cache.verify_or_prove(&ord, &opts, true, true).unwrap();
        assert!(skipped > 0, "warm lookup must serve from the certificate");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // version-skew the stored entry: next lookup silently re-proves
        // and refreshes it
        let key = CertKey::for_analysis(&ord, &opts, true, true);
        let mut stale = (*cache.get(&key).unwrap()).clone();
        stale.key.version += 1;
        cache.insert(stale);
        assert!(cache.get(&key).is_none(), "skewed entry must read as a miss");
        assert_eq!(cache.verify_or_prove(&ord, &opts, true, true).unwrap(), 0);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert!(cache.get(&key).is_some(), "re-prove refreshes the entry");
    }

    #[test]
    fn malformed_text_is_rejected_with_a_line_number() {
        assert!(matches!(
            ProofCertificate::parse("not a certificate"),
            Err(Violation::CertificateMalformed { line: 1, .. })
        ));
        let ord = RingOrdering::new(8).unwrap();
        let cert = emit_certificate(&ord, &AnalysisOptions::default(), false, false).unwrap();
        let mut text = cert.to_text();
        text = text.replace("end\n", "");
        assert!(matches!(
            ProofCertificate::parse(&text),
            Err(Violation::CertificateMalformed { .. })
        ));
    }
}
