//! Pair coverage and order restoration — the paper's §3 sweep invariants.
//!
//! A *valid sweep* consists of `n(n−1)/2` rotations in which every
//! unordered column pair meets exactly once, partitioned into steps of
//! `n/2` disjoint pairs; the paper's tree orderings additionally restore
//! the original index order at the end of every period. This module is the
//! canonical implementation of those checks for the whole workspace — the
//! orderings' own test helpers delegate here.

use crate::permutation::verify_permutation_safety;
use crate::report::Violation;
use std::collections::HashMap;
use treesvd_orderings::schedule::pair_key;
use treesvd_orderings::{JacobiOrdering, Program};

/// Verify that one sweep meets every unordered pair exactly once.
///
/// Implies (and first runs) the permutation-safety check: pair coverage is
/// meaningless over a corrupted ownership map.
///
/// # Errors
/// The first [`Violation`] found, naming the step and the offending pair.
pub fn verify_coverage(prog: &Program) -> Result<(), Violation> {
    verify_permutation_safety(prog)?;
    let n = prog.n;
    let mut met: HashMap<(usize, usize), usize> = HashMap::new();
    for (step, pairs) in prog.step_pairs().iter().enumerate() {
        for &(a, b) in pairs {
            if a == b {
                return Err(Violation::DegeneratePair { step, index: a });
            }
            let key = pair_key(a, b);
            if let Some(&first_step) = met.get(&key) {
                return Err(Violation::PairRepeated { step, first_step, pair: key });
            }
            met.insert(key, step);
        }
    }
    let expected = n * (n - 1) / 2;
    if met.len() != expected {
        let example = first_missing_pair(n, &met);
        return Err(Violation::PairsMissed { covered: met.len(), expected, example });
    }
    Ok(())
}

fn first_missing_pair(n: usize, met: &HashMap<(usize, usize), usize>) -> (usize, usize) {
    for a in 0..n {
        for b in a + 1..n {
            if !met.contains_key(&(a, b)) {
                return (a, b);
            }
        }
    }
    (0, 0)
}

/// Verify the paper's order-restoration property: after exactly
/// `ord.restore_period()` sweeps the slot layout returns to the initial
/// layout — and not a sweep earlier (the period claim must be tight).
///
/// # Errors
/// [`Violation::LayoutNotRestored`] or [`Violation::RestoredEarly`].
pub fn verify_restore(ord: &dyn JacobiOrdering) -> Result<(), Violation> {
    let period = ord.restore_period().max(1);
    let initial = ord.initial_layout();
    let mut layout = initial.clone();
    for sweep in 0..period {
        let prog = ord.sweep_program(sweep, &layout);
        layout = prog.final_layout();
        if sweep + 1 < period && layout == initial {
            return Err(Violation::RestoredEarly { sweeps: sweep + 1, claimed: period });
        }
    }
    if let Some(slot) = (0..initial.len()).find(|&s| layout[s] != initial[s]) {
        return Err(Violation::LayoutNotRestored {
            sweeps: period,
            slot,
            expected: initial[slot],
            found: layout[slot],
        });
    }
    Ok(())
}

/// Assert that *every* sweep in the ordering's restore period is a valid
/// parallel sweep, panicking with the step-precise violation on failure.
/// Drop-in replacement for the checker the ordering test suites used
/// before the analyzer existed.
///
/// # Panics
/// Panics if any sweep in the period is invalid.
pub fn assert_valid_sweep(ord: &dyn JacobiOrdering) {
    let period = ord.restore_period().max(1);
    for (k, prog) in ord.programs(period).iter().enumerate() {
        if let Err(v) = verify_coverage(prog) {
            panic!("{}: sweep {k} invalid: {v}", ord.name());
        }
    }
}

/// Assert the order-restoration property after exactly `sweeps` sweeps,
/// panicking with the violation otherwise (including a premature restore).
///
/// # Panics
/// Panics if the layout is not restored, or restored too early.
pub fn check_restores_after(ord: &dyn JacobiOrdering, sweeps: usize) {
    assert_eq!(
        ord.restore_period().max(1),
        sweeps,
        "{}: claimed period differs from the expected sweep count",
        ord.name()
    );
    if let Err(v) = verify_restore(ord) {
        panic!("{}: {v}", ord.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_orderings::schedule::Permutation;
    use treesvd_orderings::{FatTreeOrdering, NewRingOrdering, PairStep, RingOrdering};

    fn tiny_program(steps: Vec<Vec<usize>>) -> Program {
        Program {
            n: 4,
            initial_layout: vec![0, 1, 2, 3],
            steps: steps
                .into_iter()
                .map(|d| PairStep { move_after: Permutation::from_dest(d) })
                .collect(),
        }
    }

    #[test]
    fn valid_tournament_accepted() {
        let prog = tiny_program(vec![vec![0, 2, 1, 3], vec![0, 3, 2, 1], vec![0, 1, 2, 3]]);
        assert!(verify_coverage(&prog).is_ok());
    }

    #[test]
    fn repeated_pair_is_step_precise() {
        let prog = tiny_program(vec![vec![0, 1, 2, 3], vec![0, 1, 2, 3], vec![0, 1, 2, 3]]);
        match verify_coverage(&prog) {
            Err(Violation::PairRepeated { step, first_step, pair }) => {
                assert_eq!((step, first_step), (1, 0));
                assert_eq!(pair, (0, 1));
            }
            other => panic!("expected PairRepeated, got {other:?}"),
        }
    }

    #[test]
    fn missed_pairs_reported_with_example() {
        let prog = tiny_program(vec![vec![0, 2, 1, 3], vec![0, 1, 3, 2], vec![0, 1, 2, 3]]);
        match verify_coverage(&prog) {
            Err(v) => {
                assert!(matches!(v, Violation::PairsMissed { .. } | Violation::PairRepeated { .. }))
            }
            Ok(()) => panic!("incomplete sweep accepted"),
        }
    }

    #[test]
    fn restore_period_verified_and_tight() {
        assert!(verify_restore(&FatTreeOrdering::new(16).unwrap()).is_ok());
        assert!(verify_restore(&RingOrdering::new(8).unwrap()).is_ok());
        assert!(verify_restore(&NewRingOrdering::new(8).unwrap()).is_ok());
    }

    #[test]
    fn wrong_period_claim_detected() {
        struct WrongPeriod(FatTreeOrdering);
        impl JacobiOrdering for WrongPeriod {
            fn n(&self) -> usize {
                self.0.n()
            }
            fn name(&self) -> String {
                "wrong-period".into()
            }
            fn restore_period(&self) -> usize {
                2 // the fat-tree ordering actually restores after 1
            }
            fn sweep_program(&self, sweep: usize, layout: &[usize]) -> Program {
                self.0.sweep_program(sweep, layout)
            }
        }
        let ord = WrongPeriod(FatTreeOrdering::new(8).unwrap());
        assert!(matches!(
            verify_restore(&ord),
            Err(Violation::RestoredEarly { sweeps: 1, claimed: 2 })
        ));
    }
}
