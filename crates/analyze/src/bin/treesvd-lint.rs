//! `treesvd-lint`: the workspace source audit.
//!
//! Three mechanical rules, enforced over every `crates/*/src/**/*.rs`
//! file (see docs/ANALYSIS.md §6):
//!
//! 1. **SAFETY adjacency** — every `unsafe` token (block, fn, or impl)
//!    is annotated: either a trailing `// SAFETY:` comment on the same
//!    line, or a contiguous block of comments/attributes immediately
//!    above it containing `SAFETY` (or a `# Safety` doc heading).
//!    Boilerplate-free by construction: the rule checks *presence and
//!    placement*; review checks content.
//! 2. **Forbid consistency** — the crates that need no `unsafe`
//!    (`treesvd-core`, `treesvd-orderings`, `treesvd-apps`,
//!    `treesvd-analyze`, `treesvd-net`, `treesvd-cli`) must declare
//!    `#![forbid(unsafe_code)]` at the crate root, and no file under
//!    them may contain an `unsafe` token.
//! 3. **Concurrency seams** — no raw `std::thread::spawn`,
//!    `thread::Builder`, or ad-hoc `mpsc` channel construction outside
//!    the two seams the analyzer actually models: `treesvd-comm` (the
//!    communicator) and `crates/sim/src/par.rs` (the fork/join pool and
//!    its [`spawn_worker`] escape hatch). A thread the analyzer cannot
//!    see is a wait-for edge the deadlock proof cannot see.
//!
//! Comments and string literals are stripped before token matching, so
//! prose about `unsafe` or `thread::spawn` (like this paragraph) never
//! trips the audit.
//!
//! Usage: `treesvd-lint [--root DIR]` — `--root` defaults to the current
//! directory and must contain a `crates/` directory. Exits nonzero on
//! any finding, printing one `file:line: message` per finding.
//!
//! [`spawn_worker`]: ../treesvd_sim/par/fn.spawn_worker.html

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One audit violation.
struct Finding {
    file: PathBuf,
    line: usize,
    msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.msg)
    }
}

/// The crates that must declare `#![forbid(unsafe_code)]`, with their
/// crate-root source file.
const FORBID_CRATES: &[(&str, &str)] = &[
    ("core", "src/lib.rs"),
    ("orderings", "src/lib.rs"),
    ("apps", "src/lib.rs"),
    ("analyze", "src/lib.rs"),
    ("net", "src/lib.rs"),
    ("cli", "src/main.rs"),
];

/// Paths (relative to the root, `/`-separated) allowed to spawn threads
/// or build channels: the seams the analyzer models.
fn seam_allowed(rel: &str) -> bool {
    rel.starts_with("crates/comm/") || rel == "crates/sim/src/par.rs"
}

// ---------------------------------------------------------------------
// source scanning

/// Per-line view of a source file: the code with comments and string
/// literals blanked out (spaces, preserving column positions), plus the
/// original text.
struct Lines<'a> {
    code: Vec<String>,
    raw: Vec<&'a str>,
}

/// Strip comments and string/char literals from `source`, preserving the
/// line structure. Handles nested `/* */`, raw strings (`r#"…"#`), and
/// the lifetime-vs-char-literal ambiguity of `'`.
fn strip(source: &str) -> Lines<'_> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        Block(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut state = St::Code;
    let mut code = Vec::new();
    let mut raw = Vec::new();
    for line in source.lines() {
        raw.push(line);
        if state == St::LineComment {
            state = St::Code;
        }
        let bytes = line.as_bytes();
        let mut out = vec![b' '; bytes.len()];
        let mut i = 0;
        while i < bytes.len() {
            match state {
                St::Code => {
                    let rest = &bytes[i..];
                    if rest.starts_with(b"//") {
                        state = St::LineComment;
                        break;
                    } else if rest.starts_with(b"/*") {
                        state = St::Block(1);
                        i += 2;
                    } else if rest[0] == b'"' {
                        state = St::Str;
                        i += 1;
                    } else if rest[0] == b'r' || rest.starts_with(b"br") {
                        // raw string? r"…", r#"…"#, br"…", …
                        let skip = if rest[0] == b'r' { 1 } else { 2 };
                        let hashes = rest[skip..].iter().take_while(|&&b| b == b'#').count();
                        if rest.get(skip + hashes) == Some(&b'"') {
                            state = St::RawStr(hashes);
                            out[i] = bytes[i]; // keep the identifier-ish prefix
                            i += skip + hashes + 1;
                        } else {
                            out[i] = bytes[i];
                            i += 1;
                        }
                    } else if rest[0] == b'\'' {
                        // lifetime ('a) or char literal ('x', '\n')?
                        let is_char = match rest.get(1) {
                            Some(b'\\') => true,
                            Some(&c) => rest.get(2) == Some(&b'\'') && c != b'\'',
                            None => false,
                        };
                        if is_char {
                            state = St::Char;
                        } else {
                            out[i] = bytes[i]; // lifetime quote stays code
                        }
                        i += 1;
                    } else {
                        out[i] = bytes[i];
                        i += 1;
                    }
                }
                St::LineComment => unreachable!("handled at line start / break"),
                St::Block(depth) => {
                    let rest = &bytes[i..];
                    if rest.starts_with(b"*/") {
                        state = if depth == 1 { St::Code } else { St::Block(depth - 1) };
                        i += 2;
                    } else if rest.starts_with(b"/*") {
                        state = St::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                St::Str => {
                    if bytes[i] == b'\\' {
                        i += 2;
                    } else {
                        if bytes[i] == b'"' {
                            state = St::Code;
                        }
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    if bytes[i] == b'"'
                        && bytes[i + 1..].iter().take_while(|&&b| b == b'#').count() >= hashes
                    {
                        state = St::Code;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
                St::Char => {
                    if bytes[i] == b'\\' {
                        i += 2;
                    } else {
                        if bytes[i] == b'\'' {
                            state = St::Code;
                        }
                        i += 1;
                    }
                }
            }
        }
        code.push(String::from_utf8_lossy(&out).into_owned());
    }
    Lines { code, raw }
}

/// Whether `code` contains `word` as a standalone token (Rust identifier
/// boundaries on both sides).
fn has_token(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Whether line `idx` is an annotation line — pure comment (line or
/// block) or an attribute — that a SAFETY block may span.
fn is_annotation(lines: &Lines<'_>, idx: usize) -> bool {
    let code = lines.code[idx].trim();
    let raw = lines.raw[idx].trim();
    (code.is_empty() && !raw.is_empty()) || code.starts_with("#[") || code.starts_with("#!")
}

fn mentions_safety(raw: &str) -> bool {
    raw.contains("SAFETY") || raw.contains("Safety")
}

// ---------------------------------------------------------------------
// audits

/// Rule 1: every `unsafe` token is SAFETY-annotated.
fn audit_unsafe(rel: &Path, lines: &Lines<'_>, findings: &mut Vec<Finding>) -> usize {
    let mut sites = 0;
    for (idx, code) in lines.code.iter().enumerate() {
        if !has_token(code, "unsafe") {
            continue;
        }
        sites += 1;
        // trailing comment on the same line
        let raw = lines.raw[idx];
        let code_len = code.trim_end().len();
        if raw.len() > code_len && mentions_safety(&raw[code_len..]) {
            continue;
        }
        // contiguous annotation block above
        let mut covered = false;
        let mut up = idx;
        while up > 0 && is_annotation(lines, up - 1) {
            up -= 1;
            if mentions_safety(lines.raw[up]) {
                covered = true;
                break;
            }
        }
        if !covered {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: idx + 1,
                msg: "`unsafe` without an adjacent `// SAFETY:` comment (same line or the \
                      comment/attribute block immediately above)"
                    .to_string(),
            });
        }
    }
    sites
}

/// Rule 3: no raw thread spawns or ad-hoc channels outside the seams.
fn audit_seams(rel: &Path, rel_str: &str, lines: &Lines<'_>, findings: &mut Vec<Finding>) {
    if seam_allowed(rel_str) {
        return;
    }
    for (idx, code) in lines.code.iter().enumerate() {
        for pattern in ["thread::spawn", "thread::Builder", "mpsc::channel", "mpsc::sync_channel"] {
            if code.contains(pattern) {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    msg: format!(
                        "`{pattern}` outside the modelled seams (treesvd-comm, sim::par): \
                         threads the analyzer cannot see break the deadlock proof — use \
                         `treesvd_sim::par` (or `par::spawn_worker`) instead"
                    ),
                });
            }
        }
    }
}

/// Rule 2: the unsafe-free crates declare `#![forbid(unsafe_code)]` and
/// stay unsafe-free.
fn audit_forbid(root: &Path, findings: &mut Vec<Finding>) {
    for &(krate, entry) in FORBID_CRATES {
        let entry_path = root.join("crates").join(krate).join(entry);
        let Ok(source) = std::fs::read_to_string(&entry_path) else {
            continue; // absent under this root (e.g. a test fixture tree)
        };
        let lines = strip(&source);
        if !lines.code.iter().any(|c| c.contains("#![forbid(unsafe_code)]")) {
            findings.push(Finding {
                file: PathBuf::from(format!("crates/{krate}/{entry}")),
                line: 1,
                msg: "crate must declare #![forbid(unsafe_code)] (it needs no unsafe)".to_string(),
            });
        }
        for file in rust_sources(&root.join("crates").join(krate).join("src")) {
            let Ok(source) = std::fs::read_to_string(&file) else { continue };
            let lines = strip(&source);
            for (idx, code) in lines.code.iter().enumerate() {
                if has_token(code, "unsafe") {
                    let rel = file.strip_prefix(root).unwrap_or(&file);
                    findings.push(Finding {
                        file: rel.to_path_buf(),
                        line: idx + 1,
                        msg: format!("`unsafe` in crate treesvd-{krate}, which forbids it"),
                    });
                }
            }
        }
    }
}

/// All `.rs` files under `dir`, recursively, sorted for stable output.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Run all three audits over `root/crates/*/src`. Returns
/// `(files_scanned, unsafe_sites_audited, findings)`.
fn run_audit(root: &Path) -> (usize, usize, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut files = 0;
    let mut sites = 0;
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map(|entries| {
            entries.flatten().map(|e| e.path()).filter(|p| p.join("src").is_dir()).collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        for file in rust_sources(&crate_dir.join("src")) {
            let Ok(source) = std::fs::read_to_string(&file) else { continue };
            files += 1;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            let rel_str = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let lines = strip(&source);
            sites += audit_unsafe(&rel, &lines, &mut findings);
            audit_seams(&rel, &rel_str, &lines, &mut findings);
        }
    }
    audit_forbid(root, &mut findings);
    (files, sites, findings)
}

const USAGE: &str = "treesvd-lint: source audit (SAFETY adjacency, forbid(unsafe_code) \
consistency, concurrency seams)\n\nusage: treesvd-lint [--root DIR]\n\n  --root DIR   \
workspace root to audit (default: current directory); must contain crates/";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("treesvd-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("treesvd-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !root.join("crates").is_dir() {
        eprintln!("treesvd-lint: {} has no crates/ directory\n{USAGE}", root.display());
        return ExitCode::FAILURE;
    }
    let (files, sites, findings) = run_audit(&root);
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("treesvd-lint: clean — {files} file(s) scanned, {sites} unsafe site(s) audited");
        ExitCode::SUCCESS
    } else {
        println!("treesvd-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(src: &str) -> Lines<'_> {
        strip(src)
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let l = lines("let x = \"unsafe\"; // unsafe here\nlet y = 'u';\n/* unsafe */ let z = 1;");
        assert!(!has_token(&l.code[0], "unsafe"));
        assert!(!has_token(&l.code[1], "unsafe"));
        assert!(!has_token(&l.code[2], "unsafe"));
        assert!(l.code[2].contains("let z"));
    }

    #[test]
    fn token_boundaries_exclude_identifiers() {
        let l =
            lines("#![forbid(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\nunsafe fn f() {}");
        assert!(!has_token(&l.code[0], "unsafe"));
        assert!(!has_token(&l.code[1], "unsafe"));
        assert!(has_token(&l.code[2], "unsafe"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lines("fn f<'a>(x: &'a str) -> &'a str { x } // unsafe");
        assert!(l.code[0].contains("fn f<'a>"));
        assert!(!has_token(&l.code[0], "unsafe"));
    }

    #[test]
    fn uncommented_unsafe_is_flagged_and_commented_passes() {
        let mut findings = Vec::new();
        let bad = lines("fn f() {\n    unsafe { g() }\n}");
        assert_eq!(audit_unsafe(Path::new("x.rs"), &bad, &mut findings), 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);

        findings.clear();
        let good = lines("fn f() {\n    // SAFETY: g is fine\n    unsafe { g() }\n}");
        assert_eq!(audit_unsafe(Path::new("x.rs"), &good, &mut findings), 1);
        assert!(findings.is_empty());

        let trailing = lines("unsafe impl Send for X {} // SAFETY: no shared state");
        audit_unsafe(Path::new("x.rs"), &trailing, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn safety_doc_heading_spans_attributes() {
        // the soa.rs idiom: `/// # Safety` doc, then attributes, then fn
        let src = "/// # Safety\n/// caller upholds bounds\n#[cfg(feature = \"x\")]\n#[inline]\nunsafe fn f() {}";
        let mut findings = Vec::new();
        audit_unsafe(Path::new("x.rs"), &lines(src), &mut findings);
        assert!(findings.is_empty(), "{:?}", findings.iter().map(|f| f.line).collect::<Vec<_>>());
        // but a *detached* comment (blank code line between) does not count
        let src = "// SAFETY: stale\nfn g() {}\nunsafe fn f() {}";
        audit_unsafe(Path::new("x.rs"), &lines(src), &mut findings);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn seam_rule_flags_raw_spawns_outside_the_allowlist() {
        let mut findings = Vec::new();
        let src = lines("let h = std::thread::spawn(|| {});\nlet (tx, rx) = mpsc::channel();");
        audit_seams(
            Path::new("crates/sim/src/distributed.rs"),
            "crates/sim/src/distributed.rs",
            &src,
            &mut findings,
        );
        assert_eq!(findings.len(), 2);

        findings.clear();
        audit_seams(
            Path::new("crates/sim/src/par.rs"),
            "crates/sim/src/par.rs",
            &src,
            &mut findings,
        );
        audit_seams(
            Path::new("crates/comm/src/world.rs"),
            "crates/comm/src/world.rs",
            &src,
            &mut findings,
        );
        assert!(findings.is_empty(), "the modelled seams are exempt");
    }

    #[test]
    fn negative_fixture_tree_is_rejected() {
        // a deliberately uncommented unsafe block + a forbid crate without
        // the attribute, under a throwaway root
        let root = std::env::temp_dir().join(format!("treesvd-lint-test-{}", std::process::id()));
        let src = root.join("crates/badcrate/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "pub fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n",
        )
        .unwrap();
        let core_src = root.join("crates/core/src");
        std::fs::create_dir_all(&core_src).unwrap();
        std::fs::write(core_src.join("lib.rs"), "pub fn g() {}\n").unwrap();

        let (files, sites, findings) = run_audit(&root);
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(files, 2);
        assert_eq!(sites, 1);
        // finding 1: the uncommented unsafe; finding 2: core missing forbid
        assert!(findings.iter().any(|f| f.line == 2 && f.msg.contains("SAFETY")));
        assert!(findings.iter().any(|f| f.msg.contains("forbid(unsafe_code)")));
    }
}
