//! Static verification of Jacobi SVD schedules before execution.
//!
//! `treesvd-analyze` takes any [`JacobiOrdering`] (or a raw
//! [`Program`](treesvd_orderings::Program)) and proves — or refutes with a
//! step-precise diagnostic — the five properties the rest of the workspace
//! silently assumes:
//!
//! 1. **Permutation safety** ([`verify_permutation_safety`]): every column
//!    index is owned by exactly one processor at every step, so no two
//!    processors ever rotate or move the same column concurrently.
//! 2. **Coverage and restoration** ([`verify_coverage`], [`verify_restore`]):
//!    each sweep meets all `n(n−1)/2` unordered pairs exactly once, and the
//!    index order returns to the initial layout after the ordering's claimed
//!    period — the paper's §3 sweep invariants.
//! 3. **Contention** ([`verify_contention`]): mapped onto a concrete
//!    `treesvd-net` tree, no interior channel ever drains slower than the
//!    busiest endpoint channel — the paper's §5 zero-contention claim,
//!    proved per (step, channel) rather than asserted.
//! 4. **Deadlock freedom** ([`verify_deadlock_freedom`]): the send/recv
//!    dependency graph the distributed executor would realize is complete
//!    (every receive matched, every send consumed, tags unambiguous) and
//!    acyclic.
//! 5. **Pool-lease discipline** ([`verify_pool_safety`]): every pooled
//!    buffer the recovery protocol deposits for retransmission is
//!    acknowledged (returned to its pool) exactly once on every path —
//!    including duplicate delivery and checkpoint restarts.
//!
//! [`analyze_ordering`] bundles all five into an [`AnalysisReport`];
//! [`verify_ordering_schedule`] is the cheap topology-free subset the SVD
//! driver runs when `SvdOptions::verify_schedule` is enabled.
//!
//! Each proof also produces a serializable, independently re-checkable
//! witness — see the [`certificate`] module: [`emit_certificate`] packages
//! the witnesses, [`check_certificate`] validates them in O(plan) without
//! re-running the provers, and [`CertificateCache`] lets the driver and
//! the distributed executor skip re-proving schedules they have already
//! certified.
//!
//! ```
//! use treesvd_analyze::{analyze_ordering, AnalysisOptions};
//! use treesvd_net::{Topology, TopologyKind};
//! use treesvd_orderings::HybridOrdering;
//!
//! let ord = HybridOrdering::new(64, 16).unwrap();
//! let opts = AnalysisOptions {
//!     topology: Some(Topology::new(TopologyKind::Cm5, 32)),
//!     ..AnalysisOptions::default()
//! };
//! let report = analyze_ordering(&ord, &opts);
//! assert!(report.is_verified(), "{report}");
//! assert!(report.max_contention.unwrap() <= 1.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod certificate;
pub mod contention;
pub mod coverage;
pub mod deadlock;
pub mod permutation;
pub mod pool;
pub mod report;

pub use certificate::{
    check_certificate, emit_certificate, CertKey, CertificateCache, ProofCertificate,
    ANALYZER_VERSION,
};
pub use contention::{verify_contention, ContentionProof};
pub use coverage::{assert_valid_sweep, check_restores_after, verify_coverage, verify_restore};
pub use deadlock::{
    overlap_tag_a, overlap_tag_v, plan_topo_order, verify_deadlock_freedom, verify_overlap_freedom,
    verify_plan, verify_recovery_freedom, CommModel, CommOp, CommPlan,
};
pub use permutation::verify_permutation_safety;
pub use pool::{restart_splice, verify_pool_discipline, verify_pool_safety, Lease, PoolProof};
pub use report::{AnalysisReport, Check, CheckOutcome, OpRef, Violation};

use treesvd_net::Topology;
use treesvd_orderings::JacobiOrdering;

/// Knobs for [`analyze_ordering`].
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptions {
    /// Tree to prove the contention claim on. `None` skips the contention
    /// check (the other three are topology-free).
    pub topology: Option<Topology>,
    /// Message size used for the contention proof, in words per column.
    /// `0` is treated as 1.
    pub words_per_column: u64,
}

impl AnalysisOptions {
    fn words(&self) -> u64 {
        self.words_per_column.max(1)
    }
}

/// Run all five checks over every sweep of the ordering's restore period
/// and collect the verdicts into a single report.
pub fn analyze_ordering(ord: &dyn JacobiOrdering, opts: &AnalysisOptions) -> AnalysisReport {
    let period = ord.restore_period().max(1);
    let programs = ord.programs(period);
    let steps_per_sweep = programs.first().map_or(0, |p| p.steps.len());
    let n = ord.n();
    let mut outcomes: Vec<(Check, CheckOutcome)> = Vec::with_capacity(Check::ALL.len());

    let permutation = programs
        .iter()
        .try_for_each(verify_permutation_safety)
        .map(|()| format!("every step a bijection of 0..{n}"));
    outcomes.push((Check::Permutation, permutation));

    let coverage =
        programs.iter().try_for_each(verify_coverage).and_then(|()| verify_restore(ord)).map(
            |()| {
                format!(
                    "{} pairs met once per sweep; order restored after {period} sweep(s)",
                    n * (n - 1) / 2
                )
            },
        );
    outcomes.push((Check::Coverage, coverage));

    let mut max_contention = None;
    let contention = match &opts.topology {
        Some(topo) => {
            let mut worst = 0.0f64;
            let result = programs
                .iter()
                .try_for_each(|prog| {
                    let proof = verify_contention(prog, topo, opts.words())?;
                    worst = worst.max(proof.max_contention);
                    Ok(())
                })
                .map(|()| format!("zero contention on {} (worst factor {worst:.2})", topo.kind()));
            max_contention = Some(worst);
            result
        }
        None => Ok("not checked (no topology given)".to_string()),
    };
    outcomes.push((Check::Contention, contention));

    let deadlock = programs
        .iter()
        .try_for_each(|prog| {
            verify_deadlock_freedom(prog)?;
            // the overlapped (send-ahead) plan must hold under both
            // buffered and rendezvous semantics before the executor may
            // prefetch
            verify_overlap_freedom(prog, true)?;
            verify_overlap_freedom(prog, false)
        })
        .map(|()| {
            "wait-for graph acyclic; all sends matched (buffered model); \
             overlapped plan safe under buffered + rendezvous"
                .to_string()
        });
    outcomes.push((Check::Deadlock, deadlock));

    let pool = programs
        .iter()
        .try_for_each(|prog| {
            verify_pool_safety(prog, true)?;
            verify_pool_safety(prog, false).map(|_| ())
        })
        .map(|()| {
            "every leased buffer returned exactly once on all recovery paths \
             (incl. duplicate delivery and checkpoint restarts)"
                .to_string()
        });
    outcomes.push((Check::Pool, pool));

    AnalysisReport {
        ordering: ord.name(),
        n,
        processors: n / 2,
        sweeps: period,
        steps_per_sweep,
        outcomes,
        max_contention,
        cert_skips: 0,
    }
}

/// [`analyze_ordering`] with a certificate cache in front of the provers.
///
/// On a cache hit the witnesses are validated with [`check_certificate`]
/// and the report's [`AnalysisReport::cert_skips`] counts the proof
/// obligations served without re-proving. On a miss (including an
/// [`ANALYZER_VERSION`] skew) the provers run as usual and, when the
/// schedule verifies, a fresh certificate is emitted into the cache.
///
/// # Errors
/// [`Violation::CertificateMismatch`] when a cached certificate with a
/// matching key fails witness validation — a hard error by design (the
/// artifact claims to certify this exact schedule and does not).
pub fn analyze_ordering_cached(
    ord: &dyn JacobiOrdering,
    opts: &AnalysisOptions,
    cache: &CertificateCache,
) -> Result<AnalysisReport, Violation> {
    let key = CertKey::for_analysis(ord, opts, true, true);
    if let Some(cert) = cache.get(&key) {
        let cert_skips = check_certificate(&cert, ord, opts)?;
        cache.record_hit();
        let n = ord.n();
        let outcomes = Check::ALL
            .iter()
            .map(|&check| {
                let msg = if check == Check::Contention && opts.topology.is_none() {
                    "not checked (no topology given)".to_string()
                } else {
                    "witness validated against a cached proof certificate".to_string()
                };
                (check, Ok(msg))
            })
            .collect();
        return Ok(AnalysisReport {
            ordering: ord.name(),
            n,
            processors: n / 2,
            sweeps: cert.period,
            steps_per_sweep: cert.steps_per_sweep,
            outcomes,
            max_contention: opts.topology.as_ref().map(|_| cert.worst_contention),
            cert_skips,
        });
    }
    cache.record_miss();
    let report = analyze_ordering(ord, opts);
    if report.is_verified() {
        cache.insert(emit_certificate(ord, opts, true, true)?);
    }
    Ok(report)
}

/// The topology-free subset of the checks (permutation safety, coverage,
/// restoration, deadlock freedom), as a cheap pre-flight gate for the SVD
/// driver.
///
/// # Errors
/// The first [`Violation`] found, in check order.
pub fn verify_ordering_schedule(ord: &dyn JacobiOrdering) -> Result<(), Violation> {
    let period = ord.restore_period().max(1);
    for prog in &ord.programs(period) {
        verify_coverage(prog)?; // implies permutation safety
        verify_deadlock_freedom(prog)?;
    }
    verify_restore(ord)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_net::TopologyKind;
    use treesvd_orderings::{HybridOrdering, LlbFatTreeOrdering, RingOrdering};

    #[test]
    fn report_covers_all_checks_in_order() {
        let ord = RingOrdering::new(8).unwrap();
        let report = analyze_ordering(&ord, &AnalysisOptions::default());
        assert!(report.is_verified(), "{report}");
        let order: Vec<Check> = report.outcomes.iter().map(|(c, _)| *c).collect();
        assert_eq!(order, Check::ALL);
        assert!(report.max_contention.is_none());
        assert_eq!(report.processors, 4);
    }

    #[test]
    fn report_with_topology_records_contention() {
        let ord = LlbFatTreeOrdering::new(16).unwrap();
        let opts = AnalysisOptions {
            topology: Some(Topology::new(TopologyKind::PerfectFatTree, 8)),
            words_per_column: 16,
        };
        let report = analyze_ordering(&ord, &opts);
        assert!(report.is_verified(), "{report}");
        assert!(report.max_contention.unwrap() <= 1.0);
    }

    #[test]
    fn driver_gate_accepts_builtin_orderings() {
        assert!(verify_ordering_schedule(&HybridOrdering::with_default_groups(16).unwrap()).is_ok());
        assert!(verify_ordering_schedule(&RingOrdering::new(12).unwrap()).is_ok());
    }
}
