//! The §5 contention proof: map a schedule onto a tree topology and prove
//! no interior channel ever becomes the bottleneck — or report the first
//! violating (step, channel).
//!
//! Every message unavoidably serializes through its endpoint (level-1)
//! channels, so the *endpoint* drain time is the floor of a phase.
//! Contention, in the sense of the paper's "no contention will occur
//! anywhere in the tree" guarantee for the hybrid ordering, is an interior
//! channel draining slower than that floor. The proof simply replays each
//! step's `move_after` as a routed [`Phase`] and compares per-channel
//! `load/capacity` ratios.

use crate::report::Violation;
use treesvd_net::{Message, Phase, Topology};
use treesvd_orderings::Program;

/// A successful contention proof: the witness numbers backing the claim.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionProof {
    /// Worst per-phase contention factor across the sweep (≤ 1.0).
    pub max_contention: f64,
    /// The step attaining the worst factor (0 when the sweep is silent).
    pub worst_step: usize,
    /// Total messages routed through the tree.
    pub messages: usize,
}

/// Prove the zero-contention claim for `prog` on `topo`, with columns of
/// `words_per_column` words, or report the first violating (step, channel).
///
/// Processor `p` (slots `2p`, `2p+1`) is mapped to leaf `p`; the topology
/// must have at least `n/2` leaves.
///
/// # Errors
/// [`Violation::ChannelOverload`] naming the first step whose phase loads
/// an interior channel beyond the busiest endpoint channel.
///
/// # Panics
/// Panics if the topology has fewer than `n/2` leaves.
pub fn verify_contention(
    prog: &Program,
    topo: &Topology,
    words_per_column: u64,
) -> Result<ContentionProof, Violation> {
    assert!(2 * topo.leaves() >= prog.n, "topology too small for the program");
    let mut proof = ContentionProof { max_contention: 0.0, worst_step: 0, messages: 0 };
    for (step, pair_step) in prog.steps.iter().enumerate() {
        let messages: Vec<Message> = pair_step
            .move_after
            .inter_processor_moves()
            .into_iter()
            .map(|(f, t)| Message { src: f / 2, dst: t / 2, words: words_per_column })
            .collect();
        proof.messages += messages.len();
        let phase = Phase::new(topo, messages);
        let factor = phase.contention(topo);
        if factor > proof.max_contention {
            proof.max_contention = factor;
            proof.worst_step = step;
        }
        if factor > 1.0 {
            let loads = phase.channel_loads();
            // the witness: the interior channel with the worst load ratio
            let (channel, load) = loads
                .iter()
                .filter(|(c, _)| c.level >= 2)
                .max_by(|(c1, w1), (c2, w2)| {
                    let r1 = *w1 as f64 / topo.capacity(c1.level) as f64;
                    let r2 = *w2 as f64 / topo.capacity(c2.level) as f64;
                    r1.total_cmp(&r2)
                })
                .expect("contention > 1 implies a loaded interior channel");
            return Err(Violation::ChannelOverload {
                step,
                channel,
                load,
                capacity: topo.capacity(channel.level),
                factor,
            });
        }
    }
    Ok(proof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_net::TopologyKind;
    use treesvd_orderings::{FatTreeOrdering, HybridOrdering, JacobiOrdering, RingOrdering};

    fn sweep(ord: &dyn JacobiOrdering) -> Program {
        ord.sweep_program(0, &ord.initial_layout())
    }

    #[test]
    fn hybrid_zero_contention_on_cm5() {
        // §5: with group size 4 (blocks of 2 columns) the CM-5 tree's
        // lowest skinny level is never oversubscribed.
        let n = 64;
        let ord = HybridOrdering::new(n, n / 4).unwrap();
        let topo = Topology::new(TopologyKind::Cm5, n / 2);
        let proof = verify_contention(&sweep(&ord), &topo, 64).unwrap();
        assert!(proof.max_contention <= 1.0);
        assert!(proof.messages > 0);
    }

    #[test]
    fn fat_tree_ordering_contends_on_binary_tree() {
        let n = 64;
        let ord = FatTreeOrdering::new(n).unwrap();
        let topo = Topology::new(TopologyKind::BinaryTree, n / 2);
        match verify_contention(&sweep(&ord), &topo, 64) {
            Err(Violation::ChannelOverload { step, channel, load, capacity, factor }) => {
                assert!(channel.level >= 2, "violating channel must be interior");
                assert!(load > capacity, "load {load} vs capacity {capacity}");
                assert!(factor > 1.0);
                // the first high-level merge stage is where it breaks
                assert!(step < n - 1);
            }
            other => panic!("expected ChannelOverload, got {other:?}"),
        }
    }

    #[test]
    fn ring_contention_free_on_binary_tree() {
        let ord = RingOrdering::new(32).unwrap();
        let topo = Topology::new(TopologyKind::BinaryTree, 16);
        assert!(verify_contention(&sweep(&ord), &topo, 32).is_ok());
    }

    #[test]
    fn everything_contention_free_on_perfect_fat_tree() {
        for n in [8usize, 16, 32] {
            let ord = FatTreeOrdering::new(n).unwrap();
            let topo = Topology::new(TopologyKind::PerfectFatTree, n / 2);
            let proof = verify_contention(&sweep(&ord), &topo, 64).unwrap();
            assert!(proof.max_contention <= 1.0, "n = {n}: {}", proof.max_contention);
        }
    }
}
