//! Deadlock freedom: the send/recv dependency graph implied by a schedule.
//!
//! The distributed executor (`treesvd-sim::distributed`) turns each step's
//! `move_after` into explicit tag-matched messages over the
//! `treesvd-comm` world: every rank first sends its departing columns,
//! then blocks receiving its arrivals, with the tag identifying
//! `(global step, destination slot)`. [`CommPlan::from_program`] extracts
//! exactly that operation sequence, and [`verify_deadlock_freedom`] checks
//! that the induced wait-for graph is acyclic and complete:
//!
//! * every receive has exactly one matching send (an unmatched receive
//!   blocks forever — the static twin of `RecvError::Timeout`);
//! * every send is consumed (an orphan send is a column lost in flight);
//! * no cyclic wait chain exists under the chosen [`CommModel`].
//!
//! Under [`CommModel::Buffered`] (the executor's real semantics — sends
//! are asynchronous, like a buffered CMMD `send_noblock`) a well-formed
//! slot schedule is always acyclic. Under [`CommModel::Rendezvous`]
//! (synchronous sends) the Jacobi exchange idiom itself deadlocks — both
//! partners sit in `send` waiting for the other's `recv` — which the
//! verifier demonstrates by exhibiting the cycle; this is the formal
//! reason the communicator buffers.

use crate::report::{OpRef, Violation};
use std::collections::HashMap;
use treesvd_orderings::Program;

/// Communication semantics for the wait-for analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommModel {
    /// Sends complete immediately (asynchronous/buffered). The executor's
    /// actual semantics.
    Buffered,
    /// Sends block until the matching receive is reached (synchronous).
    Rendezvous,
}

/// One communication operation of the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommOp {
    /// Send a column to `to` with `tag`.
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag (`global_step << 1 | dest_slot parity`).
        tag: u64,
    },
    /// Blocking receive from `from` with `tag`.
    Recv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: u64,
    },
    /// Nonblocking prefetch post (MPI `Irecv` style): the rank registers
    /// the landing buffer for a future arrival and continues computing.
    /// The overlapped executor posts the arrivals of movement *s* at the
    /// top of step *s*, before its rotation — the double buffer.
    PostRecv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: u64,
    },
    /// Blocking completion of an earlier [`CommOp::PostRecv`] with the
    /// same `(from, tag)` — issued at the point of use, one step after the
    /// post.
    WaitRecv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: u64,
    },
    /// Nonblocking deposit of a retransmission copy into the reliable
    /// store, issued immediately before the matching [`CommOp::Send`]. A
    /// purely local mutex write: it participates only in program order,
    /// never in cross-rank matching — which is exactly why the recovery
    /// protocol stays acyclic (see [`CommPlan::with_recovery`]).
    Deposit {
        /// Destination rank of the guarded send.
        to: usize,
        /// Tag of the guarded send.
        tag: u64,
    },
    /// Nonblocking acknowledgement: on successful receipt the receiver
    /// removes `(peer → self, tag)` from the retransmission store. Like
    /// [`CommOp::Deposit`], a local store write with no cross-rank edge —
    /// the receiver never sends an ack *message* (the design that does is
    /// [`CommPlan::with_blocking_acks`], which the verifier rejects).
    Ack {
        /// Original sender whose deposit is being released.
        to: usize,
        /// Tag of the received message.
        tag: u64,
    },
    /// The supervisor wipes the whole retransmission store — the epoch
    /// boundary between two whole-world attempts (checkpoint restart or a
    /// degradation-ladder descent). A local store write like
    /// [`CommOp::Deposit`]; it matters only to the pool-lease analysis
    /// ([`crate::pool::verify_pool_discipline`]), which forgives deposits
    /// stranded by an aborted attempt *only* across this boundary.
    ClearStore,
}

/// Tag of an overlapped-transport A-phase message (the data column) for
/// an arrival into `dest_slot` belonging to global step `step`. The low
/// bit is the phase (A = 0, V = 1), the next the destination-slot parity.
pub fn overlap_tag_a(step: usize, dest_slot: usize) -> u64 {
    (step as u64) << 2 | ((dest_slot % 2) as u64) << 1
}

/// Tag of an overlapped-transport V-phase message (the accumulated right
/// singular vector column); see [`overlap_tag_a`].
pub fn overlap_tag_v(step: usize, dest_slot: usize) -> u64 {
    overlap_tag_a(step, dest_slot) | 1
}

/// The per-rank, program-ordered communication operations implied by a
/// sweep program, annotated with the step each belongs to.
#[derive(Debug, Clone)]
pub struct CommPlan {
    /// Number of ranks (`n/2`).
    pub ranks: usize,
    /// `ops[rank]` = that rank's operations in program order, as
    /// `(step, op)`.
    pub ops: Vec<Vec<(usize, CommOp)>>,
}

impl CommPlan {
    /// Extract the communication plan of one sweep, mirroring the
    /// distributed executor: per step, each rank sends its departing
    /// columns (slot order), then receives its arrivals (slot order).
    pub fn from_program(prog: &Program) -> Self {
        let ranks = prog.processors();
        let mut ops: Vec<Vec<(usize, CommOp)>> = vec![Vec::new(); ranks];
        for (step, pair_step) in prog.steps.iter().enumerate() {
            let perm = &pair_step.move_after;
            let inv = perm.inverse();
            for (rank, rank_ops) in ops.iter_mut().enumerate() {
                for s in [2 * rank, 2 * rank + 1] {
                    let d = perm.dest_of(s);
                    if d / 2 != rank {
                        let tag = (step as u64) << 1 | (d % 2) as u64;
                        rank_ops.push((step, CommOp::Send { to: d / 2, tag }));
                    }
                }
                for dest_slot in [2 * rank, 2 * rank + 1] {
                    let src_slot = inv.dest_of(dest_slot);
                    if src_slot / 2 != rank {
                        let tag = (step as u64) << 1 | (dest_slot % 2) as u64;
                        rank_ops.push((step, CommOp::Recv { from: src_slot / 2, tag }));
                    }
                }
            }
        }
        Self { ranks, ops }
    }

    /// Extract the communication plan of one sweep under the *overlapped*
    /// transport, mirroring `treesvd-sim`'s send-ahead executor. Per step
    /// `s`, each rank:
    ///
    /// 1. posts the receives for movement-`s` arrivals (`PostRecv`, the
    ///    prefetch/double buffer — legal because the movement permutation
    ///    fixes every next destination statically);
    /// 2. completes the movement-`s−1` A-phase arrivals (`WaitRecv`) it
    ///    posted one step earlier, then rotates the data columns;
    /// 3. sends its departing A-phase columns;
    /// 4. completes the movement-`s−1` V-phase arrivals, rotates the
    ///    vector columns, and sends the departing V phase (when `vectors`).
    ///
    /// A final drain step (index `steps.len()`) completes the last
    /// movement's arrivals.
    pub fn from_program_overlapped(prog: &Program, vectors: bool) -> Self {
        let ranks = prog.processors();
        let mut ops: Vec<Vec<(usize, CommOp)>> = vec![Vec::new(); ranks];
        // arrivals[rank] = the (src_rank, dest_slot, step) triples whose
        // completions are still pending from the previous movement
        let mut arrivals: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); ranks];
        for (step, pair_step) in prog.steps.iter().enumerate() {
            let perm = &pair_step.move_after;
            let inv = perm.inverse();
            for (rank, rank_ops) in ops.iter_mut().enumerate() {
                let mut posted = Vec::new();
                for dest_slot in [2 * rank, 2 * rank + 1] {
                    let src_slot = inv.dest_of(dest_slot);
                    if src_slot / 2 != rank {
                        let from = src_slot / 2;
                        let tag = overlap_tag_a(step, dest_slot);
                        rank_ops.push((step, CommOp::PostRecv { from, tag }));
                        if vectors {
                            let tag = overlap_tag_v(step, dest_slot);
                            rank_ops.push((step, CommOp::PostRecv { from, tag }));
                        }
                        posted.push((from, dest_slot, step));
                    }
                }
                for &(from, dest_slot, prev) in &arrivals[rank] {
                    let tag = overlap_tag_a(prev, dest_slot);
                    rank_ops.push((step, CommOp::WaitRecv { from, tag }));
                }
                for s in [2 * rank, 2 * rank + 1] {
                    let d = perm.dest_of(s);
                    if d / 2 != rank {
                        let tag = overlap_tag_a(step, d);
                        rank_ops.push((step, CommOp::Send { to: d / 2, tag }));
                    }
                }
                if vectors {
                    for &(from, dest_slot, prev) in &arrivals[rank] {
                        let tag = overlap_tag_v(prev, dest_slot);
                        rank_ops.push((step, CommOp::WaitRecv { from, tag }));
                    }
                    for s in [2 * rank, 2 * rank + 1] {
                        let d = perm.dest_of(s);
                        if d / 2 != rank {
                            let tag = overlap_tag_v(step, d);
                            rank_ops.push((step, CommOp::Send { to: d / 2, tag }));
                        }
                    }
                }
                arrivals[rank] = posted;
            }
        }
        // drain: the last movement's posts complete after the sweep loop
        let drain = prog.steps.len();
        for (rank, rank_ops) in ops.iter_mut().enumerate() {
            for &(from, dest_slot, prev) in &arrivals[rank] {
                rank_ops
                    .push((drain, CommOp::WaitRecv { from, tag: overlap_tag_a(prev, dest_slot) }));
            }
            if vectors {
                for &(from, dest_slot, prev) in &arrivals[rank] {
                    rank_ops.push((
                        drain,
                        CommOp::WaitRecv { from, tag: overlap_tag_v(prev, dest_slot) },
                    ));
                }
            }
        }
        Self { ranks, ops }
    }

    /// Augment the plan with the fault layer's recovery protocol, exactly
    /// as `treesvd-comm` implements it: a [`CommOp::Deposit`] to the
    /// retransmission store immediately before every send, a
    /// [`CommOp::Ack`] immediately after every receive completion. Both
    /// are local store writes — nonblocking nodes with only program-order
    /// edges — so retransmission can never introduce a new wait cycle;
    /// [`verify_recovery_freedom`] proves it per program.
    pub fn with_recovery(&self) -> Self {
        let mut ops: Vec<Vec<(usize, CommOp)>> = vec![Vec::new(); self.ranks];
        for (rank, rank_ops) in self.ops.iter().enumerate() {
            for &(step, op) in rank_ops {
                match op {
                    CommOp::Send { to, tag } => {
                        ops[rank].push((step, CommOp::Deposit { to, tag }));
                        ops[rank].push((step, op));
                    }
                    CommOp::Recv { from, tag } | CommOp::WaitRecv { from, tag } => {
                        ops[rank].push((step, op));
                        ops[rank].push((step, CommOp::Ack { to: from, tag }));
                    }
                    _ => ops[rank].push((step, op)),
                }
            }
        }
        Self { ranks: self.ranks, ops }
    }

    /// Tag bit reserved for modelled acknowledgement *messages* (only used
    /// by [`CommPlan::with_blocking_acks`]; the real protocol sends no ack
    /// messages at all).
    pub const ACK_TAG: u64 = 1 << 61;

    /// The rejected alternative recovery design, kept as the verifier's
    /// negative exhibit: acknowledge by *message* and have every sender
    /// block on its ack before proceeding. On any pairwise-exchange
    /// schedule this deadlocks even under buffered sends — each rank sits
    /// waiting for an ack its partner can only send after a receive that
    /// sits behind the partner's own ack wait — and
    /// [`verify_plan`] exhibits the cycle. This is the formal reason the
    /// shipped protocol acknowledges through the shared store instead.
    pub fn with_blocking_acks(&self) -> Self {
        let mut ops: Vec<Vec<(usize, CommOp)>> = vec![Vec::new(); self.ranks];
        for (rank, rank_ops) in self.ops.iter().enumerate() {
            for &(step, op) in rank_ops {
                match op {
                    CommOp::Send { to, tag } => {
                        ops[rank].push((step, op));
                        ops[rank].push((step, CommOp::Recv { from: to, tag: tag | Self::ACK_TAG }));
                    }
                    CommOp::Recv { from, tag } | CommOp::WaitRecv { from, tag } => {
                        ops[rank].push((step, op));
                        ops[rank].push((step, CommOp::Send { to: from, tag: tag | Self::ACK_TAG }));
                    }
                    _ => ops[rank].push((step, op)),
                }
            }
        }
        Self { ranks: self.ranks, ops }
    }

    /// Total operation count across all ranks.
    pub fn op_count(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }

    pub(crate) fn op_ref(&self, rank: usize, pos: usize) -> OpRef {
        let (step, op) = self.ops[rank][pos];
        match op {
            CommOp::Send { to, tag } | CommOp::Deposit { to, tag } => {
                OpRef { rank, step, is_send: true, peer: to, tag }
            }
            CommOp::Recv { from, tag }
            | CommOp::PostRecv { from, tag }
            | CommOp::WaitRecv { from, tag }
            | CommOp::Ack { to: from, tag } => {
                OpRef { rank, step, is_send: false, peer: from, tag }
            }
            CommOp::ClearStore => OpRef { rank, step, is_send: false, peer: rank, tag: 0 },
        }
    }
}

/// The wait-for graph of a plan under one [`CommModel`]: global node ids
/// (rank-major program order) and the dependency edges between them.
/// Shared by the prover ([`verify_plan`], which topologically sorts it)
/// and the certificate checker (which only validates that a *witnessed*
/// topological order respects every edge — O(V+E), no sort, no cycle
/// search).
pub(crate) struct WaitGraph {
    /// `base[r]` = global id of rank `r`'s first op; `base[ranks]` = node count.
    pub base: Vec<usize>,
    /// `edges[dep]` = nodes that must wait for `dep` to complete.
    pub edges: Vec<Vec<usize>>,
    /// In-degree per node (for Kahn's algorithm).
    pub indegree: Vec<usize>,
}

impl WaitGraph {
    pub fn node_count(&self) -> usize {
        *self.base.last().expect("base has ranks+1 entries")
    }

    /// The (rank, pos) coordinates of a global node id.
    pub fn locate(&self, node: usize) -> (usize, usize) {
        let ranks = self.base.len() - 1;
        let rank = (0..ranks).rfind(|&r| self.base[r] <= node).expect("node in range");
        (rank, node - self.base[rank])
    }
}

/// Build the wait-for graph of `plan` under `model`, checking plan
/// completeness on the way (every receive matched, every send consumed,
/// tags unambiguous, prefetch posts paired).
pub(crate) fn build_wait_graph(plan: &CommPlan, model: CommModel) -> Result<WaitGraph, Violation> {
    // global node ids: (rank, position) -> id
    let mut base = vec![0usize; plan.ranks + 1];
    for r in 0..plan.ranks {
        base[r + 1] = base[r] + plan.ops[r].len();
    }
    let node_count = base[plan.ranks];
    let id = |rank: usize, pos: usize| base[rank] + pos;

    // match sends to recvs on (sender, receiver, tag); prefetch posts are
    // matched the same way, keyed by the rank that posts them
    let mut sends: HashMap<(usize, usize, u64), usize> = HashMap::new();
    let mut posts: HashMap<(usize, usize, u64), usize> = HashMap::new();
    let mut consumed: Vec<bool> = vec![false; node_count];
    let mut post_used: Vec<bool> = vec![false; node_count];
    for rank in 0..plan.ranks {
        for (pos, &(_, op)) in plan.ops[rank].iter().enumerate() {
            match op {
                CommOp::Send { to, tag }
                    if sends.insert((rank, to, tag), id(rank, pos)).is_some() =>
                {
                    return Err(Violation::AmbiguousTag { op: plan.op_ref(rank, pos) });
                }
                CommOp::PostRecv { from, tag }
                    if posts.insert((from, rank, tag), pos).is_some() =>
                {
                    return Err(Violation::AmbiguousTag { op: plan.op_ref(rank, pos) });
                }
                _ => {}
            }
        }
    }

    // dependency edges: dep -> node ("dep must complete before node can")
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); node_count];
    let mut indegree: Vec<usize> = vec![0; node_count];
    let add_edge =
        |edges: &mut Vec<Vec<usize>>, indegree: &mut Vec<usize>, dep: usize, node: usize| {
            edges[dep].push(node);
            indegree[node] += 1;
        };
    for rank in 0..plan.ranks {
        for (pos, &(_, op)) in plan.ops[rank].iter().enumerate() {
            let node = id(rank, pos);
            if pos > 0 {
                add_edge(&mut edges, &mut indegree, id(rank, pos - 1), node);
            }
            match op {
                CommOp::Recv { from, tag } => {
                    let Some(&send) = sends.get(&(from, rank, tag)) else {
                        return Err(Violation::UnmatchedRecv { op: plan.op_ref(rank, pos) });
                    };
                    consumed[send] = true;
                    // the message must be sent before it is received
                    add_edge(&mut edges, &mut indegree, send, node);
                    if model == CommModel::Rendezvous {
                        // a synchronous send cannot complete until the peer
                        // has *reached* the receive: everything before the
                        // recv in the peer's program order must complete
                        // first
                        if pos > 0 {
                            add_edge(&mut edges, &mut indegree, id(rank, pos - 1), send);
                        }
                    }
                }
                CommOp::WaitRecv { from, tag } => {
                    // the completion must pair with an earlier prefetch
                    // post on this rank ...
                    match posts.get(&(from, rank, tag)) {
                        Some(&post_pos) if post_pos < pos => post_used[id(rank, post_pos)] = true,
                        _ => return Err(Violation::PrefetchMissing { op: plan.op_ref(rank, pos) }),
                    }
                    // ... and with a send, which must happen first
                    let Some(&send) = sends.get(&(from, rank, tag)) else {
                        return Err(Violation::UnmatchedRecv { op: plan.op_ref(rank, pos) });
                    };
                    consumed[send] = true;
                    add_edge(&mut edges, &mut indegree, send, node);
                    // under rendezvous the send blocks only until the peer
                    // *posts* the receive — not until the completion — so
                    // the prefetch is exactly what breaks the exchange
                    // idiom's two-cycle
                }
                _ => {}
            }
        }
    }
    if model == CommModel::Rendezvous {
        for (&(from, to, tag), &post_pos) in &posts {
            if let Some(&send) = sends.get(&(from, to, tag)) {
                // a synchronous send completes once the peer has reached
                // the matching post: everything before the post must
                // complete first
                if post_pos > 0 {
                    add_edge(&mut edges, &mut indegree, id(to, post_pos - 1), send);
                }
            }
        }
    }
    for rank in 0..plan.ranks {
        for (pos, &(_, op)) in plan.ops[rank].iter().enumerate() {
            if matches!(op, CommOp::Send { .. }) && !consumed[id(rank, pos)] {
                return Err(Violation::UnconsumedSend { op: plan.op_ref(rank, pos) });
            }
            if matches!(op, CommOp::PostRecv { .. }) && !post_used[id(rank, pos)] {
                return Err(Violation::PrefetchUnused { op: plan.op_ref(rank, pos) });
            }
        }
    }
    Ok(WaitGraph { base, edges, indegree })
}

/// Verify that `plan` is deadlock-free under `model`.
///
/// # Errors
/// [`Violation::UnmatchedRecv`], [`Violation::UnconsumedSend`],
/// [`Violation::AmbiguousTag`], or [`Violation::WaitCycle`] with the full
/// wait chain.
pub fn verify_plan(plan: &CommPlan, model: CommModel) -> Result<(), Violation> {
    plan_topo_order(plan, model).map(|_| ())
}

/// Prove `plan` deadlock-free under `model` and return a concrete
/// topological order of its wait-for graph — the witness a
/// [`ProofCertificate`](crate::ProofCertificate) stores, which
/// [`check_certificate`](crate::check_certificate) can later validate in
/// O(V+E) without re-running this sort.
///
/// # Errors
/// As [`verify_plan`].
pub fn plan_topo_order(plan: &CommPlan, model: CommModel) -> Result<Vec<usize>, Violation> {
    let graph = build_wait_graph(plan, model)?;
    let node_count = graph.node_count();
    let mut indegree = graph.indegree.clone();

    // Kahn's algorithm; whatever survives with nonzero indegree is cyclic
    let mut queue: Vec<usize> = (0..node_count).filter(|&v| indegree[v] == 0).collect();
    let mut order: Vec<usize> = Vec::with_capacity(node_count);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &w in &graph.edges[v] {
            indegree[w] -= 1;
            if indegree[w] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() == node_count {
        return Ok(order);
    }

    // extract one concrete cycle among the remaining nodes for the report
    let to_ref = |node: usize| {
        let (rank, pos) = graph.locate(node);
        plan.op_ref(rank, pos)
    };
    let in_cycle: Vec<usize> = (0..node_count).filter(|&v| indegree[v] > 0).collect();
    let cycle = find_cycle(&graph.edges, &indegree, in_cycle[0]);
    Err(Violation::WaitCycle { cycle: cycle.into_iter().map(to_ref).collect() })
}

/// Extract one cycle among the blocked nodes (indegree > 0 after Kahn).
///
/// Every blocked node has at least one blocked *predecessor* — the
/// dependency that never completed — so walking backwards along residual
/// edges must eventually revisit a node; that loop, reversed into wait
/// order, is the cycle.
fn find_cycle(edges: &[Vec<usize>], indegree: &[usize], start: usize) -> Vec<usize> {
    let mut pred: Vec<Option<usize>> = vec![None; edges.len()];
    for (v, outs) in edges.iter().enumerate() {
        if indegree[v] > 0 {
            for &w in outs {
                if indegree[w] > 0 && pred[w].is_none() {
                    pred[w] = Some(v);
                }
            }
        }
    }
    let mut path: Vec<usize> = Vec::new();
    let mut seen: HashMap<usize, usize> = HashMap::new();
    let mut v = start;
    loop {
        if let Some(&at) = seen.get(&v) {
            let mut cycle = path[at..].to_vec();
            cycle.reverse();
            return cycle;
        }
        seen.insert(v, path.len());
        path.push(v);
        v = pred[v].expect("blocked node must have a blocked dependency");
    }
}

/// Verify deadlock freedom of one sweep program under buffered semantics —
/// the semantics of the real executor.
///
/// # Errors
/// As [`verify_plan`].
pub fn verify_deadlock_freedom(prog: &Program) -> Result<(), Violation> {
    verify_plan(&CommPlan::from_program(prog), CommModel::Buffered)
}

/// Verify the *overlapped* (send-ahead) plan of one sweep program under
/// **both** communication models. This is the gate the distributed
/// executor runs before enabling comm/compute overlap: unlike the legacy
/// blocking plan — whose exchange idiom deadlocks under rendezvous — the
/// prefetch posts make the overlapped order acyclic even with synchronous
/// sends, because a send only waits for the peer to *post* the receive at
/// the top of its step, never for the completion.
///
/// # Errors
/// As [`verify_plan`], plus [`Violation::PrefetchMissing`] /
/// [`Violation::PrefetchUnused`] if posts and completions do not pair up.
pub fn verify_overlap_freedom(prog: &Program, vectors: bool) -> Result<(), Violation> {
    let plan = CommPlan::from_program_overlapped(prog, vectors);
    verify_plan(&plan, CommModel::Buffered)?;
    verify_plan(&plan, CommModel::Rendezvous)
}

/// Verify that one sweep program stays deadlock-free with the fault
/// layer's retry/ack recovery protocol armed
/// ([`CommPlan::with_recovery`]): the blocking plan under buffered
/// semantics (the legacy and zero-copy transports), and the overlapped
/// plan under **both** models. This is the gate the distributed executor
/// runs instead of [`verify_overlap_freedom`] when a fault policy arms
/// retransmission — deposits and acks are nonblocking store writes, so a
/// plan that was clean without them must stay clean, and this proves it
/// rather than assuming it.
///
/// # Errors
/// As [`verify_plan`].
pub fn verify_recovery_freedom(prog: &Program, vectors: bool) -> Result<(), Violation> {
    verify_plan(&CommPlan::from_program(prog).with_recovery(), CommModel::Buffered)?;
    let plan = CommPlan::from_program_overlapped(prog, vectors).with_recovery();
    verify_plan(&plan, CommModel::Buffered)?;
    verify_plan(&plan, CommModel::Rendezvous)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_orderings::{FatTreeOrdering, JacobiOrdering, NewRingOrdering, RoundRobinOrdering};

    fn sweep(ord: &dyn JacobiOrdering) -> Program {
        ord.sweep_program(0, &ord.initial_layout())
    }

    #[test]
    fn built_in_orderings_deadlock_free_when_buffered() {
        assert!(verify_deadlock_freedom(&sweep(&FatTreeOrdering::new(16).unwrap())).is_ok());
        assert!(verify_deadlock_freedom(&sweep(&RoundRobinOrdering::new(12).unwrap())).is_ok());
        assert!(verify_deadlock_freedom(&sweep(&NewRingOrdering::new(10).unwrap())).is_ok());
    }

    #[test]
    fn exchange_idiom_deadlocks_under_rendezvous() {
        // the first step of round-robin is a pure pairwise exchange: with
        // synchronous sends both partners block in send — a 4-op cycle
        let plan = CommPlan::from_program(&sweep(&RoundRobinOrdering::new(8).unwrap()));
        match verify_plan(&plan, CommModel::Rendezvous) {
            Err(Violation::WaitCycle { cycle }) => {
                assert!(cycle.len() >= 2, "cycle too short: {cycle:?}");
            }
            other => panic!("expected WaitCycle, got {other:?}"),
        }
    }

    #[test]
    fn dropped_send_is_an_unmatched_recv() {
        let mut plan = CommPlan::from_program(&sweep(&FatTreeOrdering::new(8).unwrap()));
        // lose the first send of rank 0
        let pos = plan.ops[0]
            .iter()
            .position(|(_, op)| matches!(op, CommOp::Send { .. }))
            .expect("rank 0 sends something");
        plan.ops[0].remove(pos);
        match verify_plan(&plan, CommModel::Buffered) {
            Err(Violation::UnmatchedRecv { op }) => assert!(!op.is_send),
            other => panic!("expected UnmatchedRecv, got {other:?}"),
        }
    }

    #[test]
    fn dropped_recv_is_an_unconsumed_send() {
        let mut plan = CommPlan::from_program(&sweep(&FatTreeOrdering::new(8).unwrap()));
        let pos = plan.ops[0]
            .iter()
            .position(|(_, op)| matches!(op, CommOp::Recv { .. }))
            .expect("rank 0 receives something");
        plan.ops[0].remove(pos);
        match verify_plan(&plan, CommModel::Buffered) {
            Err(Violation::UnconsumedSend { op }) => assert!(op.is_send),
            other => panic!("expected UnconsumedSend, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_tag_detected() {
        let mut plan = CommPlan::from_program(&sweep(&FatTreeOrdering::new(8).unwrap()));
        let dup = plan.ops[0]
            .iter()
            .find(|(_, op)| matches!(op, CommOp::Send { .. }))
            .copied()
            .expect("rank 0 sends something");
        plan.ops[0].push(dup);
        assert!(matches!(
            verify_plan(&plan, CommModel::Buffered),
            Err(Violation::AmbiguousTag { .. })
        ));
    }

    #[test]
    fn plan_mirrors_program_movement_volume() {
        let prog = sweep(&FatTreeOrdering::new(16).unwrap());
        let plan = CommPlan::from_program(&prog);
        let sends: usize =
            plan.ops.iter().flatten().filter(|(_, op)| matches!(op, CommOp::Send { .. })).count();
        assert_eq!(sends, prog.total_messages());
        assert_eq!(plan.op_count(), 2 * prog.total_messages());
    }

    #[test]
    fn overlapped_plans_deadlock_free_under_both_models() {
        use treesvd_orderings::{HybridOrdering, ModifiedRingOrdering, RingOrdering};
        let orderings: Vec<Box<dyn JacobiOrdering>> = vec![
            Box::new(NewRingOrdering::new(10).unwrap()),
            Box::new(RingOrdering::new(8).unwrap()),
            Box::new(ModifiedRingOrdering::new(8).unwrap()),
            Box::new(RoundRobinOrdering::new(12).unwrap()),
            Box::new(FatTreeOrdering::new(16).unwrap()),
            Box::new(HybridOrdering::with_default_groups(16).unwrap()),
        ];
        for ord in &orderings {
            for vectors in [false, true] {
                // every sweep of the restore period, since movement
                // patterns differ sweep to sweep
                for prog in ord.programs(ord.restore_period().max(1)) {
                    verify_overlap_freedom(&prog, vectors).unwrap_or_else(|v| {
                        panic!("{} (vectors={vectors}): {v}", ord.name());
                    });
                }
            }
        }
    }

    #[test]
    fn overlapped_plan_doubles_messages_with_vectors() {
        let prog = sweep(&FatTreeOrdering::new(16).unwrap());
        for (vectors, factor) in [(false, 1), (true, 2)] {
            let plan = CommPlan::from_program_overlapped(&prog, vectors);
            let count = |pred: fn(&CommOp) -> bool| {
                plan.ops.iter().flatten().filter(|(_, op)| pred(op)).count()
            };
            let sends = count(|op| matches!(op, CommOp::Send { .. }));
            let posts = count(|op| matches!(op, CommOp::PostRecv { .. }));
            let waits = count(|op| matches!(op, CommOp::WaitRecv { .. }));
            assert_eq!(sends, factor * prog.total_messages());
            assert_eq!(posts, sends, "one prefetch post per message");
            assert_eq!(waits, sends, "one completion per message");
        }
    }

    #[test]
    fn legacy_blocking_plan_still_cycles_but_overlap_does_not() {
        // the PR 2 two-cycle: blocking receives + rendezvous sends deadlock
        // on the very same schedule whose overlapped plan is clean
        let prog = sweep(&NewRingOrdering::new(8).unwrap());
        assert!(matches!(
            verify_plan(&CommPlan::from_program(&prog), CommModel::Rendezvous),
            Err(Violation::WaitCycle { .. })
        ));
        assert!(verify_overlap_freedom(&prog, true).is_ok());
    }

    #[test]
    fn recovery_protocol_deadlock_free_for_all_builtins() {
        use treesvd_orderings::{HybridOrdering, ModifiedRingOrdering, RingOrdering};
        let orderings: Vec<Box<dyn JacobiOrdering>> = vec![
            Box::new(NewRingOrdering::new(10).unwrap()),
            Box::new(RingOrdering::new(8).unwrap()),
            Box::new(ModifiedRingOrdering::new(8).unwrap()),
            Box::new(RoundRobinOrdering::new(12).unwrap()),
            Box::new(FatTreeOrdering::new(16).unwrap()),
            Box::new(HybridOrdering::with_default_groups(16).unwrap()),
        ];
        for ord in &orderings {
            for vectors in [false, true] {
                for prog in ord.programs(ord.restore_period().max(1)) {
                    verify_recovery_freedom(&prog, vectors).unwrap_or_else(|v| {
                        panic!("{} (vectors={vectors}): {v}", ord.name());
                    });
                }
            }
        }
    }

    #[test]
    fn recovery_adds_one_deposit_per_send_and_one_ack_per_recv() {
        let prog = sweep(&FatTreeOrdering::new(16).unwrap());
        let plan = CommPlan::from_program(&prog).with_recovery();
        let count = |pred: fn(&CommOp) -> bool| {
            plan.ops.iter().flatten().filter(|(_, op)| pred(op)).count()
        };
        let sends = count(|op| matches!(op, CommOp::Send { .. }));
        assert_eq!(sends, prog.total_messages());
        assert_eq!(count(|op| matches!(op, CommOp::Deposit { .. })), sends);
        assert_eq!(count(|op| matches!(op, CommOp::Ack { .. })), sends);
        // each deposit immediately precedes its send, sharing (peer, tag)
        for rank_ops in &plan.ops {
            for w in rank_ops.windows(2) {
                if let (_, CommOp::Deposit { to, tag }) = w[0] {
                    assert_eq!(w[1].1, CommOp::Send { to, tag }, "deposit must guard its send");
                }
            }
        }
    }

    #[test]
    fn blocking_ack_design_is_rejected_with_a_cycle() {
        // the negative exhibit: ack-by-message with the sender blocking on
        // its ack deadlocks on a pairwise exchange even with buffered
        // sends — the verifier must produce the cycle, not hang or pass
        let plan = CommPlan::from_program(&sweep(&RoundRobinOrdering::new(8).unwrap()))
            .with_blocking_acks();
        match verify_plan(&plan, CommModel::Buffered) {
            Err(Violation::WaitCycle { cycle }) => {
                assert!(cycle.len() >= 4, "cycle too short: {cycle:?}");
                assert!(
                    cycle.iter().any(|op| op.tag & CommPlan::ACK_TAG != 0),
                    "the cycle must pass through an ack edge: {cycle:?}"
                );
            }
            other => panic!("expected WaitCycle, got {other:?}"),
        }
        // ... and the shipped store-based protocol on the same schedule is clean
        let prog = sweep(&RoundRobinOrdering::new(8).unwrap());
        assert!(verify_recovery_freedom(&prog, true).is_ok());
    }

    #[test]
    fn corrupted_prefetch_is_rejected_step_precisely() {
        let prog = sweep(&NewRingOrdering::new(8).unwrap());
        let mut plan = CommPlan::from_program_overlapped(&prog, false);
        // aim one prefetch at the wrong next destination
        let pos = plan.ops[1]
            .iter()
            .position(|(_, op)| matches!(op, CommOp::PostRecv { .. }))
            .expect("rank 1 posts something");
        let (step, CommOp::PostRecv { from, tag }) = plan.ops[1][pos] else { unreachable!() };
        plan.ops[1][pos] = (step, CommOp::PostRecv { from: (from + 1) % plan.ranks, tag });
        match verify_plan(&plan, CommModel::Buffered) {
            Err(Violation::PrefetchMissing { op }) => {
                assert_eq!(op.rank, 1);
                assert_eq!(op.peer, from, "the starving completion names the true source");
            }
            other => panic!("expected PrefetchMissing, got {other:?}"),
        }
    }
}
