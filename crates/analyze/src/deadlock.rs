//! Deadlock freedom: the send/recv dependency graph implied by a schedule.
//!
//! The distributed executor (`treesvd-sim::distributed`) turns each step's
//! `move_after` into explicit tag-matched messages over the
//! `treesvd-comm` world: every rank first sends its departing columns,
//! then blocks receiving its arrivals, with the tag identifying
//! `(global step, destination slot)`. [`CommPlan::from_program`] extracts
//! exactly that operation sequence, and [`verify_deadlock_freedom`] checks
//! that the induced wait-for graph is acyclic and complete:
//!
//! * every receive has exactly one matching send (an unmatched receive
//!   blocks forever — the static twin of `RecvError::Timeout`);
//! * every send is consumed (an orphan send is a column lost in flight);
//! * no cyclic wait chain exists under the chosen [`CommModel`].
//!
//! Under [`CommModel::Buffered`] (the executor's real semantics — sends
//! are asynchronous, like a buffered CMMD `send_noblock`) a well-formed
//! slot schedule is always acyclic. Under [`CommModel::Rendezvous`]
//! (synchronous sends) the Jacobi exchange idiom itself deadlocks — both
//! partners sit in `send` waiting for the other's `recv` — which the
//! verifier demonstrates by exhibiting the cycle; this is the formal
//! reason the communicator buffers.

use crate::report::{OpRef, Violation};
use std::collections::HashMap;
use treesvd_orderings::Program;

/// Communication semantics for the wait-for analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommModel {
    /// Sends complete immediately (asynchronous/buffered). The executor's
    /// actual semantics.
    Buffered,
    /// Sends block until the matching receive is reached (synchronous).
    Rendezvous,
}

/// One communication operation of the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommOp {
    /// Send a column to `to` with `tag`.
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag (`global_step << 1 | dest_slot parity`).
        tag: u64,
    },
    /// Blocking receive from `from` with `tag`.
    Recv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: u64,
    },
}

/// The per-rank, program-ordered communication operations implied by a
/// sweep program, annotated with the step each belongs to.
#[derive(Debug, Clone)]
pub struct CommPlan {
    /// Number of ranks (`n/2`).
    pub ranks: usize,
    /// `ops[rank]` = that rank's operations in program order, as
    /// `(step, op)`.
    pub ops: Vec<Vec<(usize, CommOp)>>,
}

impl CommPlan {
    /// Extract the communication plan of one sweep, mirroring the
    /// distributed executor: per step, each rank sends its departing
    /// columns (slot order), then receives its arrivals (slot order).
    pub fn from_program(prog: &Program) -> Self {
        let ranks = prog.processors();
        let mut ops: Vec<Vec<(usize, CommOp)>> = vec![Vec::new(); ranks];
        for (step, pair_step) in prog.steps.iter().enumerate() {
            let perm = &pair_step.move_after;
            let inv = perm.inverse();
            for (rank, rank_ops) in ops.iter_mut().enumerate() {
                for s in [2 * rank, 2 * rank + 1] {
                    let d = perm.dest_of(s);
                    if d / 2 != rank {
                        let tag = (step as u64) << 1 | (d % 2) as u64;
                        rank_ops.push((step, CommOp::Send { to: d / 2, tag }));
                    }
                }
                for dest_slot in [2 * rank, 2 * rank + 1] {
                    let src_slot = inv.dest_of(dest_slot);
                    if src_slot / 2 != rank {
                        let tag = (step as u64) << 1 | (dest_slot % 2) as u64;
                        rank_ops.push((step, CommOp::Recv { from: src_slot / 2, tag }));
                    }
                }
            }
        }
        Self { ranks, ops }
    }

    /// Total operation count across all ranks.
    pub fn op_count(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }

    fn op_ref(&self, rank: usize, pos: usize) -> OpRef {
        let (step, op) = self.ops[rank][pos];
        match op {
            CommOp::Send { to, tag } => OpRef { rank, step, is_send: true, peer: to, tag },
            CommOp::Recv { from, tag } => OpRef { rank, step, is_send: false, peer: from, tag },
        }
    }
}

/// Verify that `plan` is deadlock-free under `model`.
///
/// # Errors
/// [`Violation::UnmatchedRecv`], [`Violation::UnconsumedSend`],
/// [`Violation::AmbiguousTag`], or [`Violation::WaitCycle`] with the full
/// wait chain.
pub fn verify_plan(plan: &CommPlan, model: CommModel) -> Result<(), Violation> {
    // global node ids: (rank, position) -> id
    let mut base = vec![0usize; plan.ranks + 1];
    for r in 0..plan.ranks {
        base[r + 1] = base[r] + plan.ops[r].len();
    }
    let node_count = base[plan.ranks];
    let id = |rank: usize, pos: usize| base[rank] + pos;

    // match sends to recvs on (sender, receiver, tag)
    let mut sends: HashMap<(usize, usize, u64), usize> = HashMap::new();
    let mut consumed: Vec<bool> = vec![false; node_count];
    for rank in 0..plan.ranks {
        for (pos, &(_, op)) in plan.ops[rank].iter().enumerate() {
            if let CommOp::Send { to, tag } = op {
                if sends.insert((rank, to, tag), id(rank, pos)).is_some() {
                    return Err(Violation::AmbiguousTag { op: plan.op_ref(rank, pos) });
                }
            }
        }
    }

    // dependency edges: dep -> node ("dep must complete before node can")
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); node_count];
    let mut indegree: Vec<usize> = vec![0; node_count];
    let add_edge =
        |edges: &mut Vec<Vec<usize>>, indegree: &mut Vec<usize>, dep: usize, node: usize| {
            edges[dep].push(node);
            indegree[node] += 1;
        };
    for rank in 0..plan.ranks {
        for (pos, &(_, op)) in plan.ops[rank].iter().enumerate() {
            let node = id(rank, pos);
            if pos > 0 {
                add_edge(&mut edges, &mut indegree, id(rank, pos - 1), node);
            }
            if let CommOp::Recv { from, tag } = op {
                let Some(&send) = sends.get(&(from, rank, tag)) else {
                    return Err(Violation::UnmatchedRecv { op: plan.op_ref(rank, pos) });
                };
                consumed[send] = true;
                // the message must be sent before it is received
                add_edge(&mut edges, &mut indegree, send, node);
                if model == CommModel::Rendezvous {
                    // a synchronous send cannot complete until the peer has
                    // *reached* the receive: everything before the recv in
                    // the peer's program order must complete first
                    if pos > 0 {
                        add_edge(&mut edges, &mut indegree, id(rank, pos - 1), send);
                    }
                }
            }
        }
    }
    for rank in 0..plan.ranks {
        for (pos, &(_, op)) in plan.ops[rank].iter().enumerate() {
            if matches!(op, CommOp::Send { .. }) && !consumed[id(rank, pos)] {
                return Err(Violation::UnconsumedSend { op: plan.op_ref(rank, pos) });
            }
        }
    }

    // Kahn's algorithm; whatever survives with nonzero indegree is cyclic
    let mut queue: Vec<usize> = (0..node_count).filter(|&v| indegree[v] == 0).collect();
    let mut done = 0usize;
    while let Some(v) = queue.pop() {
        done += 1;
        for &w in &edges[v] {
            indegree[w] -= 1;
            if indegree[w] == 0 {
                queue.push(w);
            }
        }
    }
    if done == node_count {
        return Ok(());
    }

    // extract one concrete cycle among the remaining nodes for the report
    let to_ref = |node: usize| {
        let rank = (0..plan.ranks).rfind(|&r| base[r] <= node).expect("node in range");
        plan.op_ref(rank, node - base[rank])
    };
    let in_cycle: Vec<usize> = (0..node_count).filter(|&v| indegree[v] > 0).collect();
    let cycle = find_cycle(&edges, &indegree, in_cycle[0]);
    Err(Violation::WaitCycle { cycle: cycle.into_iter().map(to_ref).collect() })
}

/// Extract one cycle among the blocked nodes (indegree > 0 after Kahn).
///
/// Every blocked node has at least one blocked *predecessor* — the
/// dependency that never completed — so walking backwards along residual
/// edges must eventually revisit a node; that loop, reversed into wait
/// order, is the cycle.
fn find_cycle(edges: &[Vec<usize>], indegree: &[usize], start: usize) -> Vec<usize> {
    let mut pred: Vec<Option<usize>> = vec![None; edges.len()];
    for (v, outs) in edges.iter().enumerate() {
        if indegree[v] > 0 {
            for &w in outs {
                if indegree[w] > 0 && pred[w].is_none() {
                    pred[w] = Some(v);
                }
            }
        }
    }
    let mut path: Vec<usize> = Vec::new();
    let mut seen: HashMap<usize, usize> = HashMap::new();
    let mut v = start;
    loop {
        if let Some(&at) = seen.get(&v) {
            let mut cycle = path[at..].to_vec();
            cycle.reverse();
            return cycle;
        }
        seen.insert(v, path.len());
        path.push(v);
        v = pred[v].expect("blocked node must have a blocked dependency");
    }
}

/// Verify deadlock freedom of one sweep program under buffered semantics —
/// the semantics of the real executor.
///
/// # Errors
/// As [`verify_plan`].
pub fn verify_deadlock_freedom(prog: &Program) -> Result<(), Violation> {
    verify_plan(&CommPlan::from_program(prog), CommModel::Buffered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_orderings::{FatTreeOrdering, JacobiOrdering, NewRingOrdering, RoundRobinOrdering};

    fn sweep(ord: &dyn JacobiOrdering) -> Program {
        ord.sweep_program(0, &ord.initial_layout())
    }

    #[test]
    fn built_in_orderings_deadlock_free_when_buffered() {
        assert!(verify_deadlock_freedom(&sweep(&FatTreeOrdering::new(16).unwrap())).is_ok());
        assert!(verify_deadlock_freedom(&sweep(&RoundRobinOrdering::new(12).unwrap())).is_ok());
        assert!(verify_deadlock_freedom(&sweep(&NewRingOrdering::new(10).unwrap())).is_ok());
    }

    #[test]
    fn exchange_idiom_deadlocks_under_rendezvous() {
        // the first step of round-robin is a pure pairwise exchange: with
        // synchronous sends both partners block in send — a 4-op cycle
        let plan = CommPlan::from_program(&sweep(&RoundRobinOrdering::new(8).unwrap()));
        match verify_plan(&plan, CommModel::Rendezvous) {
            Err(Violation::WaitCycle { cycle }) => {
                assert!(cycle.len() >= 2, "cycle too short: {cycle:?}");
            }
            other => panic!("expected WaitCycle, got {other:?}"),
        }
    }

    #[test]
    fn dropped_send_is_an_unmatched_recv() {
        let mut plan = CommPlan::from_program(&sweep(&FatTreeOrdering::new(8).unwrap()));
        // lose the first send of rank 0
        let pos = plan.ops[0]
            .iter()
            .position(|(_, op)| matches!(op, CommOp::Send { .. }))
            .expect("rank 0 sends something");
        plan.ops[0].remove(pos);
        match verify_plan(&plan, CommModel::Buffered) {
            Err(Violation::UnmatchedRecv { op }) => assert!(!op.is_send),
            other => panic!("expected UnmatchedRecv, got {other:?}"),
        }
    }

    #[test]
    fn dropped_recv_is_an_unconsumed_send() {
        let mut plan = CommPlan::from_program(&sweep(&FatTreeOrdering::new(8).unwrap()));
        let pos = plan.ops[0]
            .iter()
            .position(|(_, op)| matches!(op, CommOp::Recv { .. }))
            .expect("rank 0 receives something");
        plan.ops[0].remove(pos);
        match verify_plan(&plan, CommModel::Buffered) {
            Err(Violation::UnconsumedSend { op }) => assert!(op.is_send),
            other => panic!("expected UnconsumedSend, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_tag_detected() {
        let mut plan = CommPlan::from_program(&sweep(&FatTreeOrdering::new(8).unwrap()));
        let dup = plan.ops[0]
            .iter()
            .find(|(_, op)| matches!(op, CommOp::Send { .. }))
            .copied()
            .expect("rank 0 sends something");
        plan.ops[0].push(dup);
        assert!(matches!(
            verify_plan(&plan, CommModel::Buffered),
            Err(Violation::AmbiguousTag { .. })
        ));
    }

    #[test]
    fn plan_mirrors_program_movement_volume() {
        let prog = sweep(&FatTreeOrdering::new(16).unwrap());
        let plan = CommPlan::from_program(&prog);
        let sends: usize =
            plan.ops.iter().flatten().filter(|(_, op)| matches!(op, CommOp::Send { .. })).count();
        assert_eq!(sends, prog.total_messages());
        assert_eq!(plan.op_count(), 2 * prog.total_messages());
    }
}
