//! Structured verdicts: checks, violations, and the aggregate report.
//!
//! Every violation is *step-precise*: it names the first sweep step (and,
//! where relevant, the channel, rank, or index pair) at which the schedule
//! property fails, so a bad ordering generator can be debugged from the
//! diagnostic alone, before any matrix data is touched.

use std::fmt;
use treesvd_net::routing::Channel;
use treesvd_orderings::{ColIndex, Slot};

/// The five static checks of the schedule verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Check {
    /// Each column index is owned by exactly one processor at every step
    /// (schedule-level data-race freedom).
    Permutation,
    /// Every unordered index pair meets exactly once per sweep and the
    /// slot layout is restored after the ordering's period (paper §3).
    Coverage,
    /// No tree channel is ever loaded beyond the busiest endpoint channel
    /// (the §5 zero-contention claim).
    Contention,
    /// The send/recv dependency graph implied by the schedule is acyclic
    /// and every receive has a matching send.
    Deadlock,
    /// Every `MsgBuf` leased from the retransmission store (a `Deposit`)
    /// is returned exactly once (an `Ack`) on every recovery path.
    Pool,
}

impl Check {
    /// All checks, in report order.
    pub const ALL: [Check; 5] =
        [Check::Permutation, Check::Coverage, Check::Contention, Check::Deadlock, Check::Pool];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Check::Permutation => "permutation-safety",
            Check::Coverage => "coverage/restore",
            Check::Contention => "contention",
            Check::Deadlock => "deadlock-freedom",
            Check::Pool => "pool-lease",
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One step of a communication plan, for deadlock diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRef {
    /// Rank executing the operation.
    pub rank: usize,
    /// Sweep step (0-based) the operation belongs to.
    pub step: usize,
    /// `true` for a send, `false` for a receive.
    pub is_send: bool,
    /// The peer rank (destination of a send, source of a receive).
    pub peer: usize,
    /// The message tag.
    pub tag: u64,
}

impl fmt::Display for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, dir) = if self.is_send { ("send", "to") } else { ("recv", "from") };
        write!(
            f,
            "rank {} step {}: {kind} {dir} rank {} (tag {})",
            self.rank, self.step, self.peer, self.tag
        )
    }
}

/// A step-precise schedule violation — the reason a check failed.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The program's initial layout or a step layout has the wrong size.
    ShapeMismatch {
        /// Step at which the mismatch appears (0 = initial layout).
        step: usize,
        /// Slots found.
        found: usize,
        /// Slots expected (`n`).
        expected: usize,
    },
    /// An index appears in two slots at once — two processors own the same
    /// column (a schedule-level data race).
    DuplicateOwnership {
        /// First step at which the duplication holds.
        step: usize,
        /// The doubly-owned column index.
        index: ColIndex,
        /// The two slots claiming it.
        slots: (Slot, Slot),
    },
    /// An index is out of range or absent from a step's layout.
    IndexOutOfRange {
        /// Step at which the bad index appears.
        step: usize,
        /// The offending index value.
        index: ColIndex,
        /// Valid range bound (`n`).
        n: usize,
    },
    /// A pair is rotated twice within one sweep.
    PairRepeated {
        /// The step of the second meeting.
        step: usize,
        /// The step of the first meeting.
        first_step: usize,
        /// The repeated unordered pair.
        pair: (ColIndex, ColIndex),
    },
    /// A slot pair holds the same index twice (degenerate rotation).
    DegeneratePair {
        /// Step at which it happens.
        step: usize,
        /// The index paired with itself.
        index: ColIndex,
    },
    /// The sweep ends without meeting all `n(n−1)/2` pairs.
    PairsMissed {
        /// Pairs actually covered.
        covered: usize,
        /// Pairs required.
        expected: usize,
        /// One example pair that never met.
        example: (ColIndex, ColIndex),
    },
    /// The layout is not restored after the ordering's claimed period.
    LayoutNotRestored {
        /// Sweeps executed (the claimed period).
        sweeps: usize,
        /// First slot whose content differs.
        slot: Slot,
        /// Index expected in that slot.
        expected: ColIndex,
        /// Index actually there.
        found: ColIndex,
    },
    /// The layout is restored *before* the claimed period — the period
    /// claim is not tight.
    RestoredEarly {
        /// Sweep count after which the layout is already back.
        sweeps: usize,
        /// The claimed period.
        claimed: usize,
    },
    /// An interior channel drains slower than the busiest endpoint channel:
    /// contention in the sense of §5.
    ChannelOverload {
        /// Sweep step of the overloading phase.
        step: usize,
        /// The overloaded channel.
        channel: Channel,
        /// Words crossing the channel in the phase.
        load: u64,
        /// The channel's capacity in wires.
        capacity: u64,
        /// The phase's contention factor (interior over endpoint).
        factor: f64,
    },
    /// A receive with no matching send: the rank would block forever.
    UnmatchedRecv {
        /// The starving receive.
        op: OpRef,
    },
    /// A send that no receive ever consumes: the column is lost in flight.
    UnconsumedSend {
        /// The orphaned send.
        op: OpRef,
    },
    /// Two sends carry the same (source, destination, tag): the receiver
    /// cannot tell the columns apart.
    AmbiguousTag {
        /// The second send with the duplicate tag.
        op: OpRef,
    },
    /// A cyclic wait chain: under the given communication semantics these
    /// operations all wait on each other.
    WaitCycle {
        /// The operations forming the cycle, in wait order.
        cycle: Vec<OpRef>,
    },
    /// A blocking completion (`WaitRecv`) with no earlier matching
    /// prefetch post on the same rank: the overlapped executor would wait
    /// on a receive it never posted.
    PrefetchMissing {
        /// The completion lacking a post.
        op: OpRef,
    },
    /// A prefetch post (`PostRecv`) that no completion ever consumes —
    /// e.g. a prefetch aimed at the wrong next destination.
    PrefetchUnused {
        /// The dangling post.
        op: OpRef,
    },
    /// A deposited buffer lease (`Deposit`) is never returned (`Ack`)
    /// before the store epoch ends: the pooled `MsgBuf` copy leaks.
    BufferLeak {
        /// The dangling deposit.
        op: OpRef,
    },
    /// A lease is returned twice within one store epoch: the second ack
    /// would release a buffer the pool no longer owns.
    DoubleReturn {
        /// The second (offending) return.
        op: OpRef,
        /// The first return of the same lease.
        first: OpRef,
    },
    /// A return (`Ack`) with no matching deposit in the current store
    /// epoch: the pool would be handed a buffer it never leased.
    ReturnWithoutLease {
        /// The unmatched return.
        op: OpRef,
    },
    /// A certificate witness entry disagrees with the schedule it claims
    /// to certify — the certificate is stale or tampered with; the caller
    /// must hard-fail (or re-prove from scratch) rather than trust it.
    CertificateMismatch {
        /// The check whose witness failed validation.
        cert_check: Check,
        /// Sweep (restore-period index) of the offending witness entry.
        sweep: usize,
        /// Step of the offending witness entry within that sweep.
        step: usize,
        /// What disagreed.
        detail: String,
    },
    /// A serialized certificate could not be parsed.
    CertificateMalformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
}

impl Violation {
    /// The check this violation belongs to.
    pub fn check(&self) -> Check {
        match self {
            Violation::ShapeMismatch { .. }
            | Violation::DuplicateOwnership { .. }
            | Violation::IndexOutOfRange { .. } => Check::Permutation,
            Violation::PairRepeated { .. }
            | Violation::DegeneratePair { .. }
            | Violation::PairsMissed { .. }
            | Violation::LayoutNotRestored { .. }
            | Violation::RestoredEarly { .. } => Check::Coverage,
            Violation::ChannelOverload { .. } => Check::Contention,
            Violation::UnmatchedRecv { .. }
            | Violation::UnconsumedSend { .. }
            | Violation::AmbiguousTag { .. }
            | Violation::WaitCycle { .. }
            | Violation::PrefetchMissing { .. }
            | Violation::PrefetchUnused { .. } => Check::Deadlock,
            Violation::BufferLeak { .. }
            | Violation::DoubleReturn { .. }
            | Violation::ReturnWithoutLease { .. } => Check::Pool,
            Violation::CertificateMismatch { cert_check, .. } => *cert_check,
            // a malformed certificate invalidates the whole bundle before
            // any witness can be attributed; report it under the first check
            Violation::CertificateMalformed { .. } => Check::Permutation,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ShapeMismatch { step, found, expected } => {
                write!(f, "step {step}: layout has {found} slots, expected {expected}")
            }
            Violation::DuplicateOwnership { step, index, slots } => write!(
                f,
                "step {step}: index {index} owned twice, by slot {} (processor {}) and slot {} (processor {})",
                slots.0,
                slots.0 / 2,
                slots.1,
                slots.1 / 2
            ),
            Violation::IndexOutOfRange { step, index, n } => {
                write!(f, "step {step}: index {index} out of range 0..{n}")
            }
            Violation::PairRepeated { step, first_step, pair } => write!(
                f,
                "step {step}: pair ({},{}) meets again (first met at step {first_step})",
                pair.0, pair.1
            ),
            Violation::DegeneratePair { step, index } => {
                write!(f, "step {step}: degenerate pair ({index},{index})")
            }
            Violation::PairsMissed { covered, expected, example } => write!(
                f,
                "sweep covers {covered} of {expected} pairs; e.g. ({},{}) never meets",
                example.0, example.1
            ),
            Violation::LayoutNotRestored { sweeps, slot, expected, found } => write!(
                f,
                "layout not restored after {sweeps} sweep(s): slot {slot} holds index {found}, expected {expected}"
            ),
            Violation::RestoredEarly { sweeps, claimed } => write!(
                f,
                "layout already restored after {sweeps} sweep(s) but the ordering claims period {claimed}"
            ),
            Violation::ChannelOverload { step, channel, load, capacity, factor } => write!(
                f,
                "step {step}: {} channel at level {} above node {} carries {load} words over capacity {capacity} (contention factor {factor:.2})",
                if channel.up { "up" } else { "down" },
                channel.level,
                channel.node
            ),
            Violation::UnmatchedRecv { op } => {
                write!(f, "{op} has no matching send: the rank blocks forever")
            }
            Violation::UnconsumedSend { op } => {
                write!(f, "{op} is never received: the column is lost in flight")
            }
            Violation::AmbiguousTag { op } => {
                write!(f, "{op} duplicates an earlier send's (source, dest, tag)")
            }
            Violation::WaitCycle { cycle } => {
                write!(f, "cyclic wait chain of {} operations: ", cycle.len())?;
                for (i, op) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "[{op}]")?;
                }
                Ok(())
            }
            Violation::PrefetchMissing { op } => {
                write!(f, "{op} completes a receive that was never posted as a prefetch")
            }
            Violation::PrefetchUnused { op } => {
                write!(f, "{op} posts a prefetch that no completion consumes (wrong destination?)")
            }
            Violation::BufferLeak { op } => {
                write!(f, "{op} deposits a retransmission copy that is never acknowledged: the pooled buffer leaks")
            }
            Violation::DoubleReturn { op, first } => {
                write!(f, "{op} returns a lease already released by [{first}]: double return to the pool")
            }
            Violation::ReturnWithoutLease { op } => {
                write!(f, "{op} acknowledges a deposit that was never made in this store epoch")
            }
            Violation::CertificateMismatch { cert_check, sweep, step, detail } => write!(
                f,
                "certificate witness for {cert_check} disagrees at sweep {sweep} step {step}: {detail}"
            ),
            Violation::CertificateMalformed { line, detail } => {
                write!(f, "malformed certificate at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Outcome of one check: a short success summary or the first violation.
pub type CheckOutcome = Result<String, Violation>;

/// The aggregate verdict of [`analyze_ordering`](crate::analyze_ordering).
#[derive(Debug)]
pub struct AnalysisReport {
    /// Ordering name.
    pub ordering: String,
    /// Index count.
    pub n: usize,
    /// Processor count (`n/2`).
    pub processors: usize,
    /// Sweeps analyzed (the ordering's restore period).
    pub sweeps: usize,
    /// Steps per sweep.
    pub steps_per_sweep: usize,
    /// Per-check outcomes, in [`Check::ALL`] order.
    pub outcomes: Vec<(Check, CheckOutcome)>,
    /// Worst per-phase contention factor observed (when a topology was
    /// given); ≤ 1.0 means the zero-contention claim holds.
    pub max_contention: Option<f64>,
    /// Number of proof obligations served from a validated
    /// [`ProofCertificate`](crate::ProofCertificate) instead of re-running
    /// the prover. `0` whenever the prover actually ran.
    pub cert_skips: usize,
}

impl AnalysisReport {
    /// Whether every executed check passed.
    pub fn is_verified(&self) -> bool {
        self.outcomes.iter().all(|(_, o)| o.is_ok())
    }

    /// The first violation, if any check failed.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.outcomes.iter().find_map(|(_, o)| o.as_ref().err())
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule analysis: {} (n = {}, {} processors, {} sweep(s) x {} steps)",
            self.ordering, self.n, self.processors, self.sweeps, self.steps_per_sweep
        )?;
        for (check, outcome) in &self.outcomes {
            match outcome {
                Ok(msg) => writeln!(f, "  {:<20} OK   {msg}", check.name())?,
                Err(v) => writeln!(f, "  {:<20} FAIL {v}", check.name())?,
            }
        }
        if self.cert_skips > 0 {
            writeln!(f, "  ({} proof(s) served from a validated certificate)", self.cert_skips)?;
        }
        Ok(())
    }
}
