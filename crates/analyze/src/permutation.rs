//! Permutation safety: each column index owned by exactly one processor
//! per step.
//!
//! In the slot model a step's ownership map *is* the slot→index layout, so
//! the property to verify is that the layout stays a bijection of `0..n`
//! through the whole sweep. A duplicated index means two processors rotate
//! (and move) the same column concurrently — the schedule-level data race
//! that silently degrades convergence instead of crashing.

use crate::report::Violation;
use treesvd_orderings::Program;

/// Verify that every step of `prog` assigns each column index to exactly
/// one slot (hence exactly one processor).
///
/// # Errors
/// The first [`Violation`] found, naming the step, the index, and the two
/// claiming slots.
pub fn verify_permutation_safety(prog: &Program) -> Result<(), Violation> {
    let n = prog.n;
    if prog.initial_layout.len() != n {
        return Err(Violation::ShapeMismatch {
            step: 0,
            found: prog.initial_layout.len(),
            expected: n,
        });
    }
    for (step, perm) in prog.steps.iter().enumerate() {
        if perm.move_after.len() != n {
            return Err(Violation::ShapeMismatch {
                step,
                found: perm.move_after.len(),
                expected: n,
            });
        }
    }
    let mut owner: Vec<Option<usize>> = vec![None; n];
    let mut layout = prog.initial_layout.clone();
    for step in 0..=prog.steps.len() {
        owner.iter_mut().for_each(|o| *o = None);
        for (slot, &idx) in layout.iter().enumerate() {
            if idx >= n {
                return Err(Violation::IndexOutOfRange { step, index: idx, n });
            }
            if let Some(prev) = owner[idx] {
                return Err(Violation::DuplicateOwnership {
                    step,
                    index: idx,
                    slots: (prev, slot),
                });
            }
            owner[idx] = Some(slot);
        }
        if step < prog.steps.len() {
            layout = prog.steps[step].move_after.apply(&layout);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesvd_orderings::{FatTreeOrdering, JacobiOrdering, PairStep, Program};

    #[test]
    fn valid_ordering_passes() {
        let ord = FatTreeOrdering::new(16).unwrap();
        let prog = ord.sweep_program(0, &ord.initial_layout());
        assert!(verify_permutation_safety(&prog).is_ok());
    }

    #[test]
    fn duplicate_index_detected_with_slots() {
        let ord = FatTreeOrdering::new(8).unwrap();
        let mut prog = ord.sweep_program(0, &ord.initial_layout());
        prog.initial_layout[5] = prog.initial_layout[2];
        match verify_permutation_safety(&prog) {
            Err(Violation::DuplicateOwnership { step, index, slots }) => {
                assert_eq!(step, 0);
                assert_eq!(index, 2);
                assert_eq!(slots, (2, 5));
            }
            other => panic!("expected DuplicateOwnership, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_index_detected() {
        let prog = Program {
            n: 4,
            initial_layout: vec![0, 1, 2, 9],
            steps: vec![PairStep {
                move_after: treesvd_orderings::schedule::Permutation::identity(4),
            }],
        };
        assert!(matches!(
            verify_permutation_safety(&prog),
            Err(Violation::IndexOutOfRange { step: 0, index: 9, n: 4 })
        ));
    }

    #[test]
    fn shape_mismatch_detected() {
        let prog = Program { n: 4, initial_layout: vec![0, 1, 2], steps: vec![] };
        assert!(matches!(
            verify_permutation_safety(&prog),
            Err(Violation::ShapeMismatch { step: 0, found: 3, expected: 4 })
        ));
    }
}
